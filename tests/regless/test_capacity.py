"""Capacity-manager state machine, exercised through a full RegLess run.

The CM cannot be meaningfully driven without the OSU/shard around it, so
these tests run small kernels end-to-end and assert on the visible state
transitions and counters.
"""

from repro.compiler import compile_kernel
from repro.regless import ReglessConfig, ReglessStorage, WarpState
from repro.sim import run_simulation
from repro.sim.gpu import GPU


def run_regless(workload, config, rcfg=None, **kwargs):
    ck = compile_kernel(workload.kernel())
    return run_simulation(
        config, ck, workload,
        lambda sm, sh: ReglessStorage(ck, rcfg or ReglessConfig()),
        **kwargs,
    )


class TestLifecycle:
    def test_all_warps_complete(self, loop_workload, fast_config):
        stats = run_regless(loop_workload, fast_config)
        assert stats.finished

    def test_every_region_execution_activates_once(self, loop_workload, fast_config):
        stats = run_regless(loop_workload, fast_config)
        assert stats.counter("region_activations") == stats.counter(
            "region_executions"
        )

    def test_no_osu_read_misses(self, loop_workload, fast_config):
        """The contract: a warp only issues when its region is staged."""
        stats = run_regless(loop_workload, fast_config)
        assert stats.counter("osu_read_miss") == 0

    def test_final_state_machine_all_finished(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        gpu = GPU(fast_config, ck, loop_workload,
                  lambda sm, sh: ReglessStorage(ck))
        gpu.run()
        for shard in gpu.sms[0].shards:
            cm = shard.storage.cm
            for wid, ctx in cm.ctx.items():
                assert ctx.state is WarpState.FINISHED
            assert all(v == 0 for v in cm.reserved)

    def test_divergent_kernel_completes(self, diamond_workload, fast_config):
        stats = run_regless(diamond_workload, fast_config)
        assert stats.finished
        assert stats.counter("osu_read_miss") == 0


class TestCapacityPressure:
    def test_tiny_osu_still_completes(self, loop_workload, fast_config):
        rcfg = ReglessConfig(osu_entries_per_sm=64, shards_per_sm=2)
        stats = run_regless(loop_workload, fast_config, rcfg)
        assert stats.finished

    def test_tiny_osu_spills_to_l1(self, loop_workload, fast_config):
        rcfg = ReglessConfig(osu_entries_per_sm=32, shards_per_sm=2)
        small = run_regless(loop_workload, fast_config, rcfg)
        big = run_regless(loop_workload, fast_config,
                          ReglessConfig(osu_entries_per_sm=512, shards_per_sm=2))
        assert small.counter("l1_access") >= big.counter("l1_access")

    def test_larger_osu_not_slower(self, loop_workload, fast_config):
        small = run_regless(
            loop_workload, fast_config,
            ReglessConfig(osu_entries_per_sm=64, shards_per_sm=2))
        big = run_regless(
            loop_workload, fast_config,
            ReglessConfig(osu_entries_per_sm=1024, shards_per_sm=2))
        assert big.cycles <= small.cycles * 1.1


class TestAblations:
    def test_fifo_activation_still_completes(self, loop_workload, fast_config):
        rcfg = ReglessConfig(shards_per_sm=2, warp_stack_lifo=False)
        stats = run_regless(loop_workload, fast_config, rcfg)
        assert stats.finished

    def test_random_eviction_still_completes(self, loop_workload, fast_config):
        rcfg = ReglessConfig(shards_per_sm=2, ordered_eviction=False)
        stats = run_regless(loop_workload, fast_config, rcfg)
        assert stats.finished

    def test_no_compressor_still_completes(self, loop_workload, fast_config):
        rcfg = ReglessConfig(shards_per_sm=2, compressor_enabled=False)
        stats = run_regless(loop_workload, fast_config, rcfg)
        assert stats.finished
        assert stats.counter("compressor_store") == 0


class TestMetadata:
    def test_metadata_charged_once_per_activation(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        stats = run_regless(loop_workload, fast_config)
        # Total metadata <= activations * max(per-region metadata).
        per_region_max = max(a.n_metadata_insns for a in ck.annotations)
        assert stats.counter("metadata_issue") <= (
            stats.counter("region_activations") * per_region_max
        )
        assert stats.counter("metadata_issue") >= stats.counter(
            "region_activations"
        )


class TestDrainSemantics:
    def test_region_cycles_accumulated(self, loop_workload, fast_config):
        stats = run_regless(loop_workload, fast_config)
        assert stats.counter("region_cycles_total") > 0
        mean = stats.counter("region_cycles_total") / stats.counter(
            "region_executions"
        )
        assert 1 <= mean < stats.cycles
