"""Direct unit tests of CapacityManager policies using a stub OSU."""

import pytest

from repro.compiler import compile_kernel
from repro.energy import Counters
from repro.regless.capacity import CapacityManager, WarpState
from repro.regless.config import ReglessConfig
from repro.sim import Warp


class StubBank:
    def __init__(self, capacity):
        self.capacity = capacity


class StubOSU:
    """Just enough OSU for the CM: geometry + queues-as-lists."""

    def __init__(self, banks=8, lines_per_bank=4):
        self.banks = [StubBank(lines_per_bank) for _ in range(banks)]
        self.preloads = []
        self.invalidates = []

    def bank_of(self, warp_id, reg):
        return (warp_id + reg) % len(self.banks)

    def rotate_usage(self, usage, warp_id):
        n = len(self.banks)
        rotated = [0] * n
        for b, count in enumerate(usage):
            rotated[(b + warp_id) % n] = count
        return rotated

    def reservable(self, rotated, reserved):
        return all(
            reserved[b] + need <= self.banks[b].capacity
            for b, need in enumerate(rotated)
        )

    def enqueue_preload(self, wid, reg, invalidate):
        self.preloads.append((wid, reg, invalidate))

    def enqueue_invalidate(self, wid, reg):
        self.invalidates.append((wid, reg))


@pytest.fixture
def rig(compiled_loop):
    config = ReglessConfig()
    osu = StubOSU()
    counters = Counters()
    warps = [
        Warp(wid=i, shard_id=0, cta_id=0, entry_pc=0,
             sentinel_pc=compiled_loop.kernel.num_instructions + 1)
        for i in range(4)
    ]
    cm = CapacityManager(config, compiled_loop, counters, osu, warps)
    return cm, osu, warps, counters


class TestAdmission:
    def test_first_cycle_admits_top_of_stack(self, rig):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        states = [cm.state_of(w.wid) for w in warps]
        assert WarpState.PRELOADING in states or WarpState.ACTIVE in states

    def test_preloads_enqueued_per_annotation(self, rig, compiled_loop):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        admitted = next(
            w for w in warps
            if cm.state_of(w.wid) is not WarpState.INACTIVE
        )
        region = cm.active_region(admitted.wid)
        ann = compiled_loop.annotations[region.rid]
        assert len(osu.preloads) == len(ann.preloads)

    def test_zero_preload_region_activates_immediately(self, rig, compiled_loop):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        admitted = next(
            w for w in warps
            if cm.state_of(w.wid) is not WarpState.INACTIVE
        )
        region = cm.active_region(admitted.wid)
        ann = compiled_loop.annotations[region.rid]
        if not ann.preloads:
            assert cm.state_of(admitted.wid) is WarpState.ACTIVE

    def test_preload_completion_activates(self, rig):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        for wid, reg, inval in osu.preloads:
            cm.on_preload_done(wid, "osu")
        admitted = osu.preloads[0][0] if osu.preloads else warps[0].wid
        assert cm.state_of(admitted) in (WarpState.ACTIVE,)

    def test_reservations_tracked(self, rig):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        assert sum(cm.reserved) > 0


class TestDrain:
    def admit_and_activate(self, cm, osu, warps):
        cm.cycle(now=1)
        for wid, reg, inval in list(osu.preloads):
            cm.on_preload_done(wid, "osu")
        return next(w for w in warps
                    if cm.state_of(w.wid) is WarpState.ACTIVE)

    def test_drain_with_no_inflight_finishes_immediately(self, rig):
        cm, osu, warps, _ = rig
        warp = self.admit_and_activate(cm, osu, warps)
        cm.on_last_issue(warp, now=5)
        assert cm.state_of(warp.wid) is WarpState.INACTIVE
        assert sum(cm.reserved) == 0
        assert cm.stack[-1] == warp.wid  # re-pushed on top

    def test_drain_keeps_only_pending_banks(self, rig):
        cm, osu, warps, _ = rig
        warp = self.admit_and_activate(cm, osu, warps)
        warp.inflight = 1
        warp.pending_regs = {3: 1}
        before = sum(cm.reserved)
        cm.on_last_issue(warp, now=5)
        assert cm.state_of(warp.wid) is WarpState.DRAINING
        assert sum(cm.reserved) <= min(before, 1)
        warp.inflight = 0
        cm.on_writeback(warp, now=9)
        assert cm.state_of(warp.wid) is WarpState.INACTIVE
        assert sum(cm.reserved) == 0

    def test_region_cycle_accounting(self, rig):
        cm, osu, warps, _ = rig
        warp = self.admit_and_activate(cm, osu, warps)
        cm.on_last_issue(warp, now=42)
        assert cm.region_executions == 1
        assert cm.mean_region_cycles() > 0


class TestAgingAndExit:
    def test_aged_warp_wins_over_stack_top(self, rig):
        cm, osu, warps, _ = rig
        # Force the bottom warp to be ancient.
        bottom = cm.stack[0]
        cm.ctx[bottom].inactive_since = -10_000
        picked = cm._pick_candidate(now=1)
        assert picked == bottom

    def test_recent_top_wins_without_aging(self, rig):
        cm, osu, warps, _ = rig
        for wid in cm.stack:
            cm.ctx[wid].inactive_since = 0
        assert cm._pick_candidate(now=10) == cm.stack[-1]

    def test_exited_warp_removed_from_stack(self, rig):
        cm, osu, warps, _ = rig
        top = cm.stack[-1]
        warps[top].exited = True
        # The top-of-stack warp has exited; admission must drop it and
        # reserve nothing on its behalf.
        cm.cycle(now=1)
        assert top not in cm.stack
        assert sum(cm.reserved) == 0

    def test_exit_mid_region_releases(self, rig):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        for wid, reg, inval in list(osu.preloads):
            cm.on_preload_done(wid, "osu")
        warp = next(w for w in warps
                    if cm.state_of(w.wid) is WarpState.ACTIVE)
        warp.exited = True
        cm.on_warp_exit(warp, now=7)
        assert cm.state_of(warp.wid) is WarpState.FINISHED
        assert sum(cm.reserved) == 0


class TestDeadWarpDrop:
    def test_runoff_warp_dropped_from_stack(self, rig, compiled_loop):
        # Regression: a warp whose pc ran past the program end used to stay
        # on the stack, pinning the activation candidate slot forever.
        cm, osu, warps, counters = rig
        top = cm.stack[-1]
        warps[top].top.pc = compiled_loop.kernel.num_instructions
        cm.cycle(now=1)
        assert top not in cm.stack
        assert sum(cm.reserved) == 0
        assert counters.get("cm_dead_warp_drop") == 1

    def test_drop_unblocks_the_warp_below(self, rig, compiled_loop):
        cm, osu, warps, _ = rig
        top = cm.stack[-1]
        warps[top].top.pc = compiled_loop.kernel.num_instructions
        cm.cycle(now=1)  # drops the dead warp, admits nothing
        cm.cycle(now=2)  # the next candidate admits normally
        states = [cm.state_of(w.wid) for w in warps]
        assert WarpState.PRELOADING in states or WarpState.ACTIVE in states


class TestBankRouting:
    def admit_and_activate(self, cm, osu, warps):
        cm.cycle(now=1)
        for wid, reg, inval in list(osu.preloads):
            cm.on_preload_done(wid, "osu")
        return next(w for w in warps
                    if cm.state_of(w.wid) is WarpState.ACTIVE)

    def test_release_keeps_the_pending_regs_bank(self, rig):
        cm, osu, warps, _ = rig
        warp = self.admit_and_activate(cm, osu, warps)
        ctx = cm.ctx[warp.wid]
        reg = next(
            r for r in range(64)
            if ctx.reserved[osu.bank_of(warp.wid, r)] > 0
        )
        bank = osu.bank_of(warp.wid, reg)
        warp.inflight = 1
        warp.pending_regs = {reg: 1}
        cm.on_last_issue(warp, now=5)
        assert cm.reserved[bank] == 1
        assert sum(cm.reserved) == 1
        warp.inflight = 0
        cm.on_writeback(warp, now=9)
        assert cm.reserved == [0] * len(cm.reserved)

    def test_release_routes_through_osu_mapping(self, rig):
        # Regression: the CM used to re-derive the bank locally as
        # ``(wid + reg) % banks``; with an OSU whose mapping disagrees,
        # the kept entry must land in the OSU's bank, not the re-derived
        # one.
        cm, osu, warps, _ = rig
        banks = len(osu.banks)
        osu.bank_of = lambda wid, reg: (wid + reg + 1) % banks
        warp = self.admit_and_activate(cm, osu, warps)
        ctx = cm.ctx[warp.wid]
        reg = next(
            r for r in range(64)
            if ctx.reserved[osu.bank_of(warp.wid, r)] > 0
        )
        osu_bank = osu.bank_of(warp.wid, reg)
        warp.inflight = 1
        warp.pending_regs = {reg: 1}
        cm.on_last_issue(warp, now=5)
        assert cm.reserved[osu_bank] == 1
        assert sum(cm.reserved) == 1


class TestMetadata:
    def test_consumed_once_per_activation(self, rig, compiled_loop):
        cm, osu, warps, _ = rig
        cm.cycle(now=1)
        for wid, reg, inval in list(osu.preloads):
            cm.on_preload_done(wid, "osu")
        warp = next(w for w in warps
                    if cm.state_of(w.wid) is WarpState.ACTIVE)
        region = cm.active_region(warp.wid)
        first = cm.consume_metadata(warp, region.start_pc)
        second = cm.consume_metadata(warp, region.start_pc)
        assert first >= 1
        assert second == 0
