"""Geometry sensitivity: RegLess works across bank counts and shard splits.

The paper fixes 8 banks per OSU; the compiler's bank-usage annotations and
the hardware's rotation must stay consistent for any geometry, so these
sweep the bank count (compiler and hardware together) and the shard count.
"""

import pytest

from repro.compiler import RegionConfig, compile_kernel
from repro.regfile import BaselineRF
from repro.regless import ReglessConfig, ReglessStorage
from repro.sim import run_simulation
from repro.workloads import make_workload


@pytest.mark.parametrize("banks", [4, 8, 16])
def test_bank_count_sweep(fast_config, banks):
    wl = make_workload("streamcluster")
    ck = compile_kernel(wl.kernel(), RegionConfig(banks=banks))
    rcfg = ReglessConfig(
        osu_entries_per_sm=512,
        shards_per_sm=fast_config.schedulers_per_sm,
        banks_per_shard=banks,
    )
    stats = run_simulation(fast_config, ck, wl,
                           lambda sm, sh: ReglessStorage(ck, rcfg))
    assert stats.finished
    assert stats.counter("osu_read_miss") == 0


@pytest.mark.parametrize("banks", [4, 8, 16])
def test_bank_usage_annotation_matches_geometry(banks):
    wl = make_workload("hotspot")
    ck = compile_kernel(wl.kernel(), RegionConfig(banks=banks))
    for region in ck.regions:
        assert len(region.bank_usage) == banks


def test_mismatched_geometry_still_safe(fast_config):
    """Compiling for 8 banks but running 4-bank hardware is wasteful (the
    per-bank guarantees are wrong) but must not break correctness — the
    emergency valve and evictable lines absorb it."""
    wl = make_workload("streamcluster")
    ck = compile_kernel(wl.kernel(), RegionConfig(banks=8))
    rcfg = ReglessConfig(
        osu_entries_per_sm=256,
        shards_per_sm=fast_config.schedulers_per_sm,
        banks_per_shard=4,
    )
    stats = run_simulation(fast_config, ck, wl,
                           lambda sm, sh: ReglessStorage(ck, rcfg))
    assert stats.finished
    assert stats.counter("osu_read_miss") == 0


def test_performance_insensitive_to_bank_count(fast_config):
    """With ample capacity, 4 vs 16 banks should not change run time much
    (bank rotation spreads usage either way)."""
    wl = make_workload("nw")
    cycles = {}
    for banks in (4, 16):
        ck = compile_kernel(wl.kernel(), RegionConfig(banks=banks))
        rcfg = ReglessConfig(
            osu_entries_per_sm=512,
            shards_per_sm=fast_config.schedulers_per_sm,
            banks_per_shard=banks,
        )
        stats = run_simulation(fast_config, ck, wl,
                               lambda sm, sh: ReglessStorage(ck, rcfg))
        cycles[banks] = stats.cycles
    ratio = cycles[4] / cycles[16]
    assert 0.7 < ratio < 1.4
