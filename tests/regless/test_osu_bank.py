from repro.regless.osu import Bank


def key(w, r):
    return (w, r)


class TestAllocate:
    def test_allocate_until_full(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.allocate(key(0, 1))
        assert b.free == 0
        assert b.active_count == 2

    def test_clean_evicted_silently(self):
        b = Bank(capacity=1)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))
        ok, victim = b.allocate(key(0, 1))
        assert ok and victim is None
        assert not b.has(key(0, 0))

    def test_dirty_eviction_returns_victim(self):
        b = Bank(capacity=1)
        b.allocate(key(0, 0))
        b.mark_dirty(key(0, 0))
        b.mark_evictable(key(0, 0))
        ok, victim = b.allocate(key(0, 1))
        assert ok and victim == key(0, 0)

    def test_clean_preferred_over_dirty(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_dirty(key(0, 0))
        b.mark_evictable(key(0, 0))
        b.allocate(key(0, 1))
        b.mark_evictable(key(0, 1))  # clean
        ok, victim = b.allocate(key(0, 2))
        assert victim is None  # clean victim chosen, dropped silently
        assert b.has(key(0, 0))  # dirty survivor

    def test_all_active_overflows_visibly(self):
        b = Bank(capacity=1)
        b.allocate(key(0, 0))
        ok, victim = b.allocate(key(0, 1))
        assert ok and victim is None
        assert b.overflow == 1

    def test_allocate_existing_reacquires(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))
        ok, victim = b.allocate(key(0, 0))
        assert ok and victim is None
        assert b.active_count == 1


class TestAcquireEraseEvictable:
    def test_acquire_from_clean_list(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))
        assert len(b.clean) == 1
        assert b.acquire(key(0, 0))
        assert len(b.clean) == 0
        assert b.active_count == 1

    def test_acquire_missing(self):
        assert not Bank(2).acquire(key(0, 0))

    def test_erase_removes_everywhere(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_dirty(key(0, 0))
        b.mark_evictable(key(0, 0))
        assert b.erase(key(0, 0))
        assert not b.has(key(0, 0))
        assert len(b.dirty) == 0
        assert b.free == 2

    def test_erase_missing(self):
        assert not Bank(2).erase(key(0, 0))

    def test_mark_evictable_respects_dirty_flag(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))
        assert key(0, 0) in b.clean
        b2 = Bank(capacity=2)
        b2.allocate(key(0, 1))
        b2.mark_dirty(key(0, 1))
        b2.mark_evictable(key(0, 1))
        assert key(0, 1) in b2.dirty

    def test_mark_dirty_moves_clean_to_dirty(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))  # clean
        b.mark_dirty(key(0, 0))
        assert key(0, 0) in b.dirty and key(0, 0) not in b.clean

    def test_mark_evictable_on_evictable_is_noop(self):
        b = Bank(capacity=2)
        b.allocate(key(0, 0))
        b.mark_evictable(key(0, 0))
        b.mark_evictable(key(0, 0))
        assert len(b.clean) == 1


class TestLRUOrder:
    def test_oldest_evictable_chosen_first(self):
        b = Bank(capacity=3)
        for r in range(3):
            b.allocate(key(0, r))
            b.mark_dirty(key(0, r))
            b.mark_evictable(key(0, r))
        _, victim = b.allocate(key(1, 0))
        assert victim == key(0, 0)
        _, victim = b.allocate(key(1, 1))
        assert victim == key(0, 1)
