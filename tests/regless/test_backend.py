"""End-to-end RegLess backend behaviour and cross-backend invariants."""

import pytest

from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.regless import ReglessConfig, ReglessStorage
from repro.sim import run_simulation


class TestEquivalenceWithBaseline:
    """RegLess only changes *where operands live*; the computation —
    dynamic instruction counts, memory traffic of the program itself —
    must match the baseline exactly."""

    def test_same_instruction_count(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        base = run_simulation(fast_config, ck, loop_workload,
                              lambda sm, sh: BaselineRF())
        rl = run_simulation(fast_config, ck, loop_workload,
                            lambda sm, sh: ReglessStorage(ck))
        assert base.instructions == rl.instructions

    def test_same_data_memory_traffic(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        base = run_simulation(fast_config, ck, loop_workload,
                              lambda sm, sh: BaselineRF())
        rl = run_simulation(fast_config, ck, loop_workload,
                            lambda sm, sh: ReglessStorage(ck))
        assert base.counter("gmem_load_lines") == rl.counter("gmem_load_lines")
        assert base.counter("gmem_store_lines") == rl.counter("gmem_store_lines")

    def test_same_divergence(self, diamond_workload, fast_config):
        ck = compile_kernel(diamond_workload.kernel())
        base = run_simulation(fast_config, ck, diamond_workload,
                              lambda sm, sh: BaselineRF())
        rl = run_simulation(fast_config, ck, diamond_workload,
                            lambda sm, sh: ReglessStorage(ck))
        assert base.counter("divergent_branch") == rl.counter("divergent_branch")


class TestOperandAccounting:
    def test_osu_reads_match_operand_reads(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        rl = run_simulation(fast_config, ck, loop_workload,
                            lambda sm, sh: ReglessStorage(ck))
        base = run_simulation(fast_config, ck, loop_workload,
                              lambda sm, sh: BaselineRF())
        assert rl.counter("osu_read") == base.counter("rf_read")
        assert rl.counter("osu_write") == base.counter("rf_write")

    def test_preload_sources_partition(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        rl = run_simulation(fast_config, ck, loop_workload,
                            lambda sm, sh: ReglessStorage(ck))
        total = rl.counter("preloads")
        parts = sum(
            rl.counter(f"preload_src_{s}")
            for s in ("osu", "compressor", "const", "l1", "l2dram")
        )
        assert total == parts > 0

    def test_preloads_mostly_hit_osu_or_const(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        rl = run_simulation(fast_config, ck, loop_workload,
                            lambda sm, sh: ReglessStorage(ck))
        near = (rl.counter("preload_src_osu") + rl.counter("preload_src_const")
                + rl.counter("preload_src_compressor"))
        assert near / rl.counter("preloads") > 0.8


class TestDeterminism:
    def test_repeat_runs_identical(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        runs = [
            run_simulation(fast_config, ck, loop_workload,
                           lambda sm, sh: ReglessStorage(ck))
            for _ in range(2)
        ]
        assert runs[0].cycles == runs[1].cycles
        assert runs[0].counters == runs[1].counters


class TestRodiniaSubset:
    """Three structurally different benchmarks, run end to end."""

    @pytest.mark.parametrize("name", ["bfs", "streamcluster", "nw"])
    def test_completes_without_read_misses(self, name, fast_config):
        from repro.workloads import make_workload

        wl = make_workload(name)
        ck = compile_kernel(wl.kernel())
        stats = run_simulation(fast_config, ck, wl,
                               lambda sm, sh: ReglessStorage(ck))
        assert stats.finished
        assert stats.counter("osu_read_miss") == 0
        assert stats.counter("osu_overflow_activation") == 0
