from repro.energy import Counters
from repro.regless import Compressor, RegisterMapping, match_pattern
from repro.sim import LaneValues


def make(cache_lines=2, enabled=True):
    counters = Counters()
    mapping = RegisterMapping(n_warps=8, n_regs=16)
    return Compressor(counters, mapping, cache_lines, enabled), counters, mapping


class TestPatternMatching:
    def test_constant(self):
        assert match_pattern(LaneValues.uniform(5)) == "constant"

    def test_strides(self):
        assert match_pattern(LaneValues.affine(0, 1)) == "stride1"
        assert match_pattern(LaneValues.affine(9, 4)) == "stride4"
        assert match_pattern(LaneValues.affine(9, -4)) == "stride4"

    def test_other_strides_incompressible(self):
        assert match_pattern(LaneValues.affine(0, 3)) is None

    def test_random_incompressible(self):
        assert match_pattern(LaneValues.random(7)) is None


class TestCompressionPath:
    def test_compress_sets_bit(self):
        c, counters, _ = make()
        ok, victim = c.try_compress(2, 1, LaneValues.uniform(3))
        assert ok and victim is None
        assert c.is_compressed(2, 1)
        assert counters.get("compress_constant") == 1

    def test_incompressible_clears_bit(self):
        c, _, _ = make()
        c.try_compress(2, 1, LaneValues.uniform(3))
        ok, _ = c.try_compress(2, 1, LaneValues.random(9))
        assert not ok
        assert not c.is_compressed(2, 1)

    def test_disabled_compressor_rejects(self):
        c, _, _ = make(enabled=False)
        ok, _ = c.try_compress(0, 0, LaneValues.uniform(1))
        assert not ok

    def test_cache_eviction_returns_dirty_line(self):
        c, _, m = make(cache_lines=1)
        # Two registers mapping to different compressed lines.
        c.try_compress(0, 0, LaneValues.uniform(1))
        far_reg = 15  # slot far enough to be in another compressed line
        ok, victim = c.try_compress(far_reg, 7, LaneValues.uniform(2))
        assert ok
        assert victim is not None  # the first dirty line spilled to L1


class TestPreloadPath:
    def test_cache_hit_after_compress(self):
        c, counters, _ = make()
        c.begin_cycle()
        c.try_compress(2, 1, LaneValues.uniform(3))
        c.begin_cycle()
        assert c.fetch(2, 1) == "compressor"
        assert counters.get("compressor_hit") == 1

    def test_fetch_from_l1_when_line_not_cached(self):
        c, _, _ = make(cache_lines=1)
        c.begin_cycle()
        c.try_compress(0, 0, LaneValues.uniform(1))
        c.try_compress(15, 7, LaneValues.uniform(2))  # evicts first line
        c.begin_cycle()
        assert c.fetch(0, 0) == "l1"

    def test_port_is_per_cycle(self):
        c, _, _ = make()
        c.begin_cycle()
        c.try_compress(2, 1, LaneValues.uniform(3))
        c.begin_cycle()
        assert c.fetch(2, 1) == "compressor"
        assert c.fetch(2, 1) is None  # port used this cycle

    def test_install_line_makes_future_hits(self):
        c, _, _ = make()
        c._bitvec.add(c.mapping.slot(3, 2))  # pretend compressed in L1
        c.begin_cycle()
        assert c.fetch(3, 2) == "l1"
        c.install_line(3, 2)
        c.begin_cycle()
        assert c.fetch(3, 2) == "compressor"


class TestCacheReconciliation:
    def test_uncompressed_reevict_reclaims_stale_line(self):
        c, counters, _ = make()
        c.try_compress(2, 1, LaneValues.uniform(3))
        assert c.cache_has_line(2, 1)
        ok, _ = c.try_compress(2, 1, LaneValues.random(9))
        assert not ok
        assert not c.cache_has_line(2, 1)
        assert counters.get("compressor_line_reclaim") == 1

    def test_compress_uncompress_compress_roundtrip(self):
        # Regression: the stale line used to survive the uncompressed
        # re-evict, so the third evict merged into a cache line whose
        # memory copy was actually uncompressed.
        c, _, _ = make()
        c.try_compress(2, 1, LaneValues.uniform(3))
        c.try_compress(2, 1, LaneValues.random(9))
        ok, victim = c.try_compress(2, 1, LaneValues.uniform(4))
        assert ok and victim is None
        assert c.is_compressed(2, 1)
        assert c.cache_has_line(2, 1)
        c.begin_cycle()
        assert c.fetch(2, 1) == "compressor"

    def test_line_with_live_sibling_survives(self):
        c, counters, _ = make()
        # (reg 0, warp 0) and (reg 0, warp 1) are slots 0 and 1: the same
        # compressed line.
        c.try_compress(0, 0, LaneValues.uniform(1))
        c.try_compress(0, 1, LaneValues.uniform(2))
        c.try_compress(0, 0, LaneValues.random(5))
        assert c.cache_has_line(0, 1)
        assert counters.get("compressor_line_reclaim") == 0

    def test_invalidating_the_last_register_reclaims_the_line(self):
        c, counters, _ = make()
        c.try_compress(0, 0, LaneValues.uniform(1))
        c.try_compress(0, 1, LaneValues.uniform(2))
        c.invalidate(0, 0)
        assert c.cache_has_line(0, 1)
        c.invalidate(0, 1)
        assert not c.cache_has_line(0, 1)
        assert counters.get("compressor_line_reclaim") == 1


class TestInvalidate:
    def test_invalidate_clears_bit(self):
        c, _, _ = make()
        c.try_compress(2, 1, LaneValues.uniform(3))
        c.invalidate(2, 1)
        assert not c.is_compressed(2, 1)
        assert c.compressed_count == 0

    def test_invalidate_absent_is_noop(self):
        c, _, _ = make()
        c.invalidate(5, 5)
