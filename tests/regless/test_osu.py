from repro.energy import Counters
from repro.mem import L1RegCache, MemoryHierarchy
from repro.regless import Compressor, OperandStagingUnit, RegisterMapping, ReglessConfig
from repro.sim import EventWheel, GPUConfig, LaneValues


class Rig:
    """Standalone OSU with a live memory hierarchy beneath it."""

    def __init__(self, osu_entries=64, compressor_enabled=True):
        self.cfg = GPUConfig()
        self.counters = Counters()
        self.wheel = EventWheel()
        self.hier = MemoryHierarchy(self.cfg, self.counters, self.wheel)
        self.l1 = L1RegCache(0, self.cfg, self.counters, self.wheel, self.hier)
        self.rcfg = ReglessConfig(
            osu_entries_per_sm=osu_entries * 4,
            compressor_enabled=compressor_enabled,
        )
        self.mapping = RegisterMapping(n_warps=16, n_regs=16)
        self.compressor = Compressor(
            self.counters, self.mapping, enabled=compressor_enabled
        )
        self.values = {}
        self.done = []
        self.osu = OperandStagingUnit(
            self.rcfg,
            self.counters,
            self.wheel,
            self.l1,
            self.compressor,
            self.mapping,
            value_of=lambda w, r: self.values.get((w, r), LaneValues.uniform(0)),
            on_preload_done=lambda wid, src: self.done.append((wid, src)),
        )

    def pump(self, cycles):
        for _ in range(cycles):
            self.wheel.tick()
            self.hier.cycle()
            self.l1.begin_cycle()
            self.osu.cycle()


class TestPreloadSources:
    def test_launch_constant_served_without_memory(self):
        rig = Rig()
        rig.osu.enqueue_preload(0, 1, invalidate=False)
        rig.pump(5)
        assert rig.done == [(0, "const")]
        assert rig.counters.get("l1_access") == 0

    def test_osu_hit(self):
        rig = Rig()
        rig.osu.reserve_write(0, 1)
        rig.osu.mark_evictable(0, 1)
        rig.osu.enqueue_preload(0, 1, invalidate=False)
        rig.pump(3)
        assert rig.done == [(0, "osu")]

    def test_materialized_register_fetched_from_memory(self):
        rig = Rig(osu_entries=8)
        # Write, evict to L1 (incompressible value), erase, then preload.
        rig.values[(0, 1)] = LaneValues.random(7)
        rig.osu.reserve_write(0, 1)
        rig.osu.complete_write(0, 1)
        rig.osu.mark_evictable(0, 1)
        # Force eviction by filling the bank.
        bank = rig.osu.bank_of(0, 1)
        fillers = [
            (w, r)
            for w in range(16)
            for r in range(16)
            if rig.osu.bank_of(w, r) == bank and (w, r) != (0, 1)
        ]
        for w, r in fillers[: rig.rcfg.lines_per_bank]:
            rig.osu.reserve_write(w, r)
        rig.pump(10)  # eviction drains to L1
        assert rig.counters.get("l1_reg_store") >= 1
        rig.osu.enqueue_preload(0, 1, invalidate=False)
        rig.pump(self.l1_roundtrip(rig))
        assert (0, "l1") in rig.done or (0, "l2dram") in rig.done

    @staticmethod
    def l1_roundtrip(rig):
        return rig.cfg.l1_latency + rig.cfg.l2_latency + rig.cfg.dram_latency + 20

    def test_compressed_eviction_comes_back_from_compressor(self):
        rig = Rig(osu_entries=8)
        rig.values[(0, 1)] = LaneValues.uniform(42)  # compressible
        rig.osu.reserve_write(0, 1)
        rig.osu.complete_write(0, 1)
        rig.osu.mark_evictable(0, 1)
        bank = rig.osu.bank_of(0, 1)
        fillers = [
            (w, r)
            for w in range(16)
            for r in range(16)
            if rig.osu.bank_of(w, r) == bank and (w, r) != (0, 1)
        ]
        for w, r in fillers[: rig.rcfg.lines_per_bank]:
            rig.osu.reserve_write(w, r)
        rig.pump(10)
        assert rig.counters.get("compressor_store") == 1
        rig.osu.enqueue_preload(0, 1, invalidate=False)
        rig.pump(10)
        assert (0, "compressor") in rig.done


class TestReadWritePath:
    def test_read_hit_counts(self):
        rig = Rig()
        rig.osu.reserve_write(0, 1)
        rig.osu.read(0, 1)
        assert rig.counters.get("osu_read") == 1
        assert rig.counters.get("osu_read_miss") == 0

    def test_read_miss_is_visible(self):
        rig = Rig()
        rig.osu.read(0, 9)
        assert rig.counters.get("osu_read_miss") == 1

    def test_write_marks_dirty(self):
        rig = Rig()
        rig.osu.reserve_write(0, 1)
        rig.osu.complete_write(0, 1)
        bank = rig.osu.bank(0, 1)
        assert bank.entry((0, 1)).dirty

    def test_erase_warp_clears_everything(self):
        rig = Rig()
        for r in range(8):
            rig.osu.reserve_write(3, r)
        rig.osu.erase_warp(3, 16)
        for r in range(8):
            assert not rig.osu.bank(3, r).has((3, r))


class TestInvalidations:
    def test_invalidating_preload_without_l1_copy_sends_no_request(self):
        rig = Rig()
        rig.osu.reserve_write(0, 1)
        rig.osu.mark_evictable(0, 1)
        rig.osu.enqueue_preload(0, 1, invalidate=True)
        rig.pump(5)
        assert rig.counters.get("l1_inval_req") == 0

    def test_explicit_invalidate_consumes_l1_port(self):
        rig = Rig()
        rig.osu.enqueue_invalidate(0, 1)
        rig.pump(3)
        assert rig.counters.get("l1_inval_req") == 1


class TestHeadOfLine:
    def test_waiting_job_does_not_block_bank_queue(self):
        rig = Rig()
        # First preload must fetch from memory (materialized), second is a
        # launch constant in the same bank.
        rig.osu._materialized.add((0, 1))
        bank = rig.osu.bank_of(0, 1)
        # Find another (warp, reg) in the same bank.
        other = next(
            (w, r)
            for w in range(16)
            for r in range(16)
            if rig.osu.bank_of(w, r) == bank and (w, r) != (0, 1)
        )
        rig.osu.enqueue_preload(0, 1, invalidate=False)
        rig.osu.enqueue_preload(other[0], other[1], invalidate=False)
        rig.pump(12)
        # The const preload completed long before the memory one.
        assert (other[0], "const") in rig.done
        assert all(src != "l2dram" for _, src in rig.done)  # still in flight

    def test_idle_reflects_queues(self):
        rig = Rig()
        assert rig.osu.idle
        rig.osu.enqueue_invalidate(0, 0)
        assert not rig.osu.idle
        rig.pump(3)
        assert rig.osu.idle


class TestRotation:
    def test_rotate_usage_preserves_counts(self):
        rig = Rig()
        usage = (3, 1, 0, 0, 2, 0, 0, 1)
        rotated = rig.osu.rotate_usage(usage, warp_id=5)
        assert sorted(rotated) == sorted(usage)
        assert rotated[(0 + 5) % 8] == usage[0]

    def test_reservable_respects_capacity(self):
        rig = Rig(osu_entries=8)  # 1 line per bank
        assert rig.osu.reservable([1] * 8, [0] * 8)
        assert not rig.osu.reservable([1] * 8, [1] + [0] * 7)
