import pytest
from hypothesis import given, settings, strategies as st

from repro.regless import REGS_PER_COMPRESSED_LINE, RegisterMapping


def make(n_warps=64, n_regs=16):
    return RegisterMapping(n_warps=n_warps, n_regs=n_regs)


class TestAddresses:
    def test_same_register_different_warps_sequential(self):
        m = make()
        a0 = m.address(3, 0)
        a1 = m.address(3, 1)
        assert a1 - a0 == m.line_bytes

    def test_register_major_layout(self):
        m = make(n_warps=64)
        assert m.address(1, 0) - m.address(0, 0) == 64 * m.line_bytes

    def test_line_aligned(self):
        m = make()
        for reg in range(4):
            for warp in (0, 17, 63):
                assert m.address(reg, warp) % m.line_bytes == 0

    def test_out_of_range_register_rejected(self):
        with pytest.raises(ValueError):
            make(n_regs=4).address(4, 0)

    @given(st.integers(0, 15), st.integers(0, 63),
           st.integers(0, 15), st.integers(0, 63))
    @settings(max_examples=100)
    def test_unique_addresses(self, r1, w1, r2, w2):
        m = make()
        if (r1, w1) != (r2, w2):
            assert m.address(r1, w1) != m.address(r2, w2)


class TestCompressedSpace:
    def test_disjoint_from_uncompressed(self):
        m = make()
        top_uncompressed = m.address(15, 63)
        assert m.compressed_address(0, 0) > top_uncompressed

    def test_fifteen_registers_per_line(self):
        m = make(n_warps=1, n_regs=64)
        first_line = {m.compressed_address(r, 0) for r in range(
            REGS_PER_COMPRESSED_LINE)}
        assert len(first_line) == 1
        next_line = m.compressed_address(REGS_PER_COMPRESSED_LINE, 0)
        assert next_line not in first_line

    def test_capacity_accounting(self):
        m = make(n_warps=4, n_regs=8)
        assert m.uncompressed_bytes == 4 * 8 * 128
