"""Property tests for the RegLess hardware structures."""

from hypothesis import given, settings, strategies as st

from repro.regless.osu import Bank
from repro.regless import Compressor, RegisterMapping, match_pattern
from repro.energy import Counters
from repro.sim import LaneValues


# ---------------------------------------------------------------------------
# Bank: random operation sequences preserve the structural invariants
# ---------------------------------------------------------------------------

op_strategy = st.lists(
    st.tuples(
        st.sampled_from(["allocate", "erase", "mark_dirty", "mark_evictable",
                         "acquire"]),
        st.integers(0, 3),   # warp
        st.integers(0, 7),   # reg
    ),
    max_size=120,
)


@given(op_strategy, st.integers(1, 6))
@settings(max_examples=80, deadline=None)
def test_bank_invariants_under_random_ops(ops, capacity):
    bank = Bank(capacity)
    for op, w, r in ops:
        getattr(bank, op)((w, r))
        # Invariant 1: clean/dirty lists only reference tagged entries with
        # the matching state.
        for key in bank.clean:
            assert bank.tags[key].state == "clean"
        for key in bank.dirty:
            assert bank.tags[key].state == "dirty"
        # Invariant 2: every tagged entry is in exactly the list its state
        # names (active entries in neither).
        for key, entry in bank.tags.items():
            in_clean = key in bank.clean
            in_dirty = key in bank.dirty
            if entry.state == "active":
                assert not in_clean and not in_dirty
            elif entry.state == "clean":
                assert in_clean and not in_dirty
            else:
                assert in_dirty and not in_clean
        # Invariant 3: occupancy only exceeds capacity via active overflow.
        evictable = len(bank.clean) + len(bank.dirty)
        if len(bank.tags) > capacity:
            assert evictable == 0


@given(op_strategy, st.integers(1, 4))
@settings(max_examples=50, deadline=None)
def test_bank_free_count_consistent(ops, capacity):
    bank = Bank(capacity)
    for op, w, r in ops:
        getattr(bank, op)((w, r))
        assert bank.free == capacity - len(bank.tags)


# ---------------------------------------------------------------------------
# Compressor: the bit vector always agrees with the last compress/invalidate
# ---------------------------------------------------------------------------

value_strategy = st.one_of(
    st.integers(0, 1000).map(LaneValues.uniform),
    st.integers(0, 1000).map(lambda b: LaneValues.affine(b, 1)),
    st.integers(0, 1000).map(lambda b: LaneValues.affine(b, 4)),
    st.integers(0, 1000).map(lambda b: LaneValues.affine(b, 3)),
    st.integers(0, 1000).map(LaneValues.random),
)


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                          value_strategy), max_size=60))
@settings(max_examples=60, deadline=None)
def test_compressor_bitvec_tracks_last_operation(events):
    counters = Counters()
    mapping = RegisterMapping(n_warps=8, n_regs=8)
    comp = Compressor(counters, mapping, cache_lines=4)
    expected = {}
    for reg, warp, value in events:
        comp.begin_cycle()
        ok, _ = comp.try_compress(reg, warp, value)
        assert ok == (match_pattern(value) is not None)
        expected[(reg, warp)] = ok
        for (r, w), compressed in expected.items():
            assert comp.is_compressed(r, w) == compressed


@given(st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=40))
@settings(max_examples=40, deadline=None)
def test_compressor_invalidate_idempotent(pairs):
    counters = Counters()
    mapping = RegisterMapping(n_warps=8, n_regs=8)
    comp = Compressor(counters, mapping)
    for reg, warp in pairs:
        comp.begin_cycle()
        comp.try_compress(reg, warp, LaneValues.uniform(1))
        comp.invalidate(reg, warp)
        comp.invalidate(reg, warp)
        assert not comp.is_compressed(reg, warp)
    assert comp.compressed_count == 0
