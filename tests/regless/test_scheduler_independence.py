"""Paper section 6.4: "RegLess is independent of the choice of warp
scheduler" — it must work, unmodified, under every scheduler."""

import pytest

from repro.compiler import compile_kernel
from repro.regless import ReglessStorage
from repro.sim import run_simulation
from repro.workloads import make_workload


@pytest.mark.parametrize("scheduler", ["gto", "lrr", "two_level"])
def test_regless_under_every_scheduler(fast_config, scheduler):
    wl = make_workload("streamcluster")
    ck = compile_kernel(wl.kernel())
    cfg = fast_config.with_(scheduler=scheduler)
    stats = run_simulation(cfg, ck, wl, lambda sm, sh: ReglessStorage(ck))
    assert stats.finished
    assert stats.counter("osu_read_miss") == 0


def test_scheduler_choice_does_not_change_work(fast_config):
    wl = make_workload("kmeans")
    ck = compile_kernel(wl.kernel())
    counts = set()
    for scheduler in ("gto", "lrr", "two_level"):
        cfg = fast_config.with_(scheduler=scheduler)
        stats = run_simulation(cfg, ck, wl,
                               lambda sm, sh: ReglessStorage(ck))
        counts.add(stats.instructions)
    assert len(counts) == 1  # same dynamic instruction count everywhere
