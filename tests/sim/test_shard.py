"""Direct tests of the shard's issue paths (memory, control, guards)."""

import pytest

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF
from repro.sim import (
    AlwaysTaken,
    BernoulliLanes,
    GPUConfig,
    LoadBehavior,
    NeverTaken,
    run_simulation,
)
from repro.workloads import Workload

ONE_WARP = GPUConfig(warps_per_sm=2, schedulers_per_sm=2, cta_size_warps=1,
                     max_cycles=50_000)


def run_kernel(build, pred_behaviors=None, load_behaviors=None,
               divergent_lines=8, init_regs=None):
    wl = Workload(name="t", build=build, pred_behaviors=pred_behaviors or {},
                  load_behaviors=load_behaviors or {},
                  divergent_lines=divergent_lines, regalloc=False,
                  init_regs=init_regs)
    ck = compile_kernel(wl.kernel())
    return run_simulation(ONE_WARP, ck, wl, lambda sm, sh: BaselineRF())


class TestMemoryCoalescing:
    def build_one_load(self, addr_reg):
        def build():
            b = KernelBuilder("ld")
            b.block("entry")
            v = b.fresh()
            b.ldg(v, b.reg(addr_reg))
            b.stg(b.reg(1), v)
            b.exit()
            return b.build()
        return build

    def test_uniform_address_one_line(self):
        stats = run_kernel(self.build_one_load(1))  # R1 = uniform pointer
        assert stats.counter("gmem_load_lines") == stats.warps_total

    def test_thread_id_address_coalesces(self):
        # R0 = affine stride 1: 32 lanes x 4B span 128B -> one line.
        stats = run_kernel(self.build_one_load(0))
        assert stats.counter("gmem_load_lines") == stats.warps_total

    def test_divergent_address_fans_out(self):
        from repro.sim import LaneValues

        def init(wid):
            return {0: LaneValues.random(wid + 1), 1: LaneValues.uniform(4096)}

        stats = run_kernel(self.build_one_load(0), divergent_lines=6,
                           init_regs=init)
        assert stats.counter("gmem_load_lines") == 6 * stats.warps_total


class TestStores:
    def test_store_is_fire_and_forget(self):
        def build():
            b = KernelBuilder("st")
            b.block("entry")
            b.stg(b.reg(1), b.reg(0))
            b.stg(b.reg(1), b.reg(0))
            b.exit()
            return b.build()
        stats = run_kernel(build)
        assert stats.finished
        assert stats.counter("gmem_store_lines") == 2 * stats.warps_total


class TestSharedMemory:
    def test_lds_sts_counted_and_local(self):
        def build():
            b = KernelBuilder("sh")
            b.block("entry")
            v = b.fresh()
            b.lds(v, b.reg(0))
            b.sts(b.reg(0), v)
            b.stg(b.reg(1), v)
            b.exit()
            return b.build()
        stats = run_kernel(build)
        assert stats.counter("shared_access") == 2 * stats.warps_total
        # Shared traffic never reaches the hierarchy.
        assert stats.counter("gmem_load_lines") == 0


class TestBranchResolution:
    def build_branch(self, tag):
        def build():
            b = KernelBuilder("br")
            b.block("entry")
            p = b.fresh_pred()
            b.setp(p, b.reg(0), 0, tag=tag)
            b.bra("skip", pred=p)
            b.block("then")
            b.iadd(b.fresh(), b.reg(0), 1)
            b.block("skip")
            b.exit()
            return b.build()
        return build

    def test_all_taken_skips_then(self):
        stats = run_kernel(self.build_branch("t"),
                           pred_behaviors={"t": AlwaysTaken()})
        # then-block body never executes: setp + bra + exit per warp.
        assert stats.instructions == 3 * stats.warps_total
        assert stats.counter("divergent_branch") == 0

    def test_none_taken_runs_then(self):
        stats = run_kernel(self.build_branch("t"),
                           pred_behaviors={"t": NeverTaken()})
        assert stats.instructions == 4 * stats.warps_total

    def test_divergent_executes_both(self):
        stats = run_kernel(self.build_branch("t"),
                           pred_behaviors={"t": BernoulliLanes(0.5)})
        assert stats.counter("divergent_branch") == stats.warps_total
        assert stats.instructions == 4 * stats.warps_total


class TestGuardedExecution:
    def test_guarded_instruction_always_issues(self):
        def build():
            b = KernelBuilder("g")
            b.block("entry")
            p = b.fresh_pred()
            b.setp(p, b.reg(0), 0, tag="never")
            b.iadd(b.fresh(), b.reg(0), 1, guard=b.guard(p))
            b.exit()
            return b.build()
        stats = run_kernel(build, pred_behaviors={"never": NeverTaken()})
        # Predicated-off instructions still occupy issue slots.
        assert stats.instructions == 3 * stats.warps_total


class TestLoadValues:
    def test_load_behavior_controls_structure(self):
        def build():
            b = KernelBuilder("lv")
            b.block("entry")
            v = b.fresh()
            b.ldg(v, b.reg(1), tag="z")
            # Store back through the loaded value as an address: uniform
            # loaded values coalesce to 1 line, random ones fan out.
            b.stg(v, b.reg(0))
            b.exit()
            return b.build()

        uniform = run_kernel(build, load_behaviors={"z": LoadBehavior(1.0, 0.0)})
        random_ = run_kernel(build, divergent_lines=8,
                             load_behaviors={"z": LoadBehavior(0.0, 0.0)})
        assert uniform.counter("gmem_store_lines") < random_.counter(
            "gmem_store_lines"
        )
