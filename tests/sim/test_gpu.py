import pytest

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF
from repro.sim import BernoulliLanes, GPUConfig, LoopExit, SimDeadlock, run_simulation
from repro.sim.gpu import GPU
from repro.workloads import Workload


def run(workload, config, **kwargs):
    ck = compile_kernel(workload.kernel())
    return run_simulation(config, ck, workload, lambda sm, sh: BaselineRF(), **kwargs)


class TestCompletion:
    def test_all_warps_finish(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config)
        assert stats.finished
        assert stats.warps_done == stats.warps_total == 8

    def test_deterministic(self, loop_workload, fast_config):
        a = run(loop_workload, fast_config)
        b = run(loop_workload, fast_config)
        assert a.cycles == b.cycles
        assert a.counters == b.counters

    def test_instruction_count_matches_trips(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config)
        # Per warp: 2 entry + 6*(setp+bra) + 5*(7 body) + 2 tail = 51.
        per_warp = stats.instructions / stats.warps_total
        assert per_warp == 51

    def test_ipc_positive_and_bounded(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config)
        assert 0 < stats.ipc <= fast_config.schedulers_per_sm * fast_config.issue_width


class TestDivergence:
    def test_divergent_kernel_completes(self, diamond_workload, fast_config):
        stats = run(diamond_workload, fast_config)
        assert stats.finished
        assert stats.counter("divergent_branch") > 0

    def test_both_paths_execute(self, diamond_workload, fast_config):
        stats = run(diamond_workload, fast_config)
        # then (1) + else (1) + entry (4) + join (2) per warp when divergent.
        per_warp = stats.instructions / stats.warps_total
        assert per_warp == 8


class TestBarriers:
    def make_barrier_workload(self):
        def build():
            b = KernelBuilder("barrier")
            b.block("entry")
            t = b.fresh()
            b.iadd(t, b.reg(0), 1)
            b.bar()
            b.imul(t, t, 2)
            b.stg(b.reg(1), t)
            b.exit()
            return b.build()
        return Workload(name="barrier", build=build, regalloc=False)

    def test_barrier_synchronizes(self, fast_config):
        stats = run(self.make_barrier_workload(), fast_config)
        assert stats.finished


class TestMemoryTraffic:
    def test_loads_reach_memory(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config)
        assert stats.counter("gmem_load_lines") > 0
        assert stats.counter("l2_access") > 0

    def test_rf_accesses_counted(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config)
        assert stats.counter("rf_read") > 0
        assert stats.counter("rf_write") > 0


class TestWorkingSetTracking:
    def test_samples_collected(self, loop_workload):
        cfg = GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                        track_working_set=True)
        stats = run(loop_workload, cfg)
        assert stats.working_set_samples
        assert stats.working_set_kb() > 0

    def test_window_series(self, loop_workload, fast_config):
        stats = run(loop_workload, fast_config,
                    window_series=("rf_read",))
        series = stats.window_series["rf_read"]
        assert sum(series) <= stats.counter("rf_read")
        assert all(v >= 0 for v in series)


class TestDeadlockDetection:
    def test_infinite_loop_hits_max_cycles(self):
        def build():
            b = KernelBuilder("spin")
            b.block("entry")
            t = b.fresh()
            b.mov(t, 0)
            b.block("loop")
            b.iadd(t, t, 1)
            b.bra("loop")
            return b.build()

        wl = Workload(name="spin", build=build, regalloc=False)
        cfg = GPUConfig(warps_per_sm=4, schedulers_per_sm=2, cta_size_warps=2,
                        max_cycles=2000)
        stats = run(wl, cfg)
        assert not stats.finished
        assert stats.cycles >= 2000


class TestMultiSM:
    def test_two_sms_double_the_warps(self, loop_workload, fast_config):
        cfg = fast_config.with_(n_sms=2)
        stats = run(loop_workload, cfg)
        assert stats.warps_total == 16
        assert stats.finished
