import dataclasses

import pytest

from repro.sim import GPUConfig


class TestDerived:
    def test_warps_per_scheduler(self):
        cfg = GPUConfig(warps_per_sm=64, schedulers_per_sm=4)
        assert cfg.warps_per_scheduler == 16

    def test_l1_geometry(self):
        cfg = GPUConfig(l1_kb=48, line_bytes=128)
        assert cfg.l1_lines == 384

    def test_l2_geometry(self):
        cfg = GPUConfig(l2_kb=2048, line_bytes=128)
        assert cfg.l2_lines == 16384


class TestPresets:
    def test_default_is_single_sm_gtx980_slice(self):
        cfg = GPUConfig()
        assert cfg.n_sms == 1
        assert cfg.warps_per_sm == 64
        assert cfg.schedulers_per_sm == 4
        assert cfg.scheduler == "gto"
        assert cfg.l1_ports == 1  # Table 1: one L1 request per cycle

    def test_gtx980_has_sixteen_sms(self):
        assert GPUConfig.gtx980().n_sms == 16

    def test_fast_preset_small(self):
        cfg = GPUConfig.fast()
        assert cfg.warps_per_sm < GPUConfig().warps_per_sm


class TestWith:
    def test_with_returns_modified_copy(self):
        base = GPUConfig()
        derived = base.with_(scheduler="lrr")
        assert derived.scheduler == "lrr"
        assert base.scheduler == "gto"

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            GPUConfig().scheduler = "lrr"  # type: ignore[misc]

    def test_dram_bandwidth_matches_table1(self):
        # 224 GB/s at 1 GHz in 128-byte lines.
        assert GPUConfig().dram_lines_per_cycle == pytest.approx(1.75)
