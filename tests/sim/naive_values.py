"""Scalar reference semantics for the vectorized lane domain.

``repro.sim.values`` materializes RANDOM lanes and divergent line addresses
as batched numpy expressions.  This module preserves the pre-vectorization
scalar implementations — independent re-statements of the contract, not
imports of the production code — so the Hypothesis suite in
``test_values_equivalence.py`` can check the two bit-for-bit.

Everything here is deliberately the *slow obvious* version: explicit Python
loops, one lane at a time, exact integer arithmetic.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.isa.registers import WARP_WIDTH
from repro.sim.values import FLOAT32_EXACT, LaneValues

MASK32 = 0xFFFFFFFF
_FNV_BASIS = 0x811C9DC5
_FNV_PRIME = 0x01000193


def naive_mix_hash(*parts: int) -> int:
    """One-part-at-a-time FNV fold (the ``mix_hash`` contract)."""
    h = _FNV_BASIS
    for p in parts:
        h ^= p & MASK32
        h = (h * _FNV_PRIME) & MASK32
    return h


def naive_mix_hash_lanes(
    prefix: Sequence[int], suffix: Sequence[int] = (), n: int = WARP_WIDTH
) -> List[int]:
    """``mix_hash_lanes`` contract: element ``i`` is
    ``mix_hash(*prefix, i, *suffix)``."""
    return [naive_mix_hash(*prefix, i, *suffix) for i in range(n)]


def naive_lane(v: LaneValues, i: int) -> int:
    """Concrete value of lane ``i`` from the closed form."""
    if v.is_uniform:
        return v.base
    if v.is_affine:
        return (v.base + v.stride * i) & MASK32
    return naive_mix_hash(v.tag, i)


def naive_lanes(v: LaneValues) -> List[int]:
    """All lanes, one scalar evaluation per lane."""
    return [naive_lane(v, i) for i in range(WARP_WIDTH)]


def naive_coalesced_lines(
    v: LaneValues, line_bytes: int, divergent_lines: int = 32
) -> int:
    """Distinct cache lines touched when ``v`` is a byte address."""
    if v.is_uniform:
        return 1
    if v.is_affine:
        stride = abs(v.stride)
        span = stride * (WARP_WIDTH - 1)
        first = v.base // line_bytes
        last = (v.base + span) // line_bytes
        return int(last - first + 1)
    return max(1, min(WARP_WIDTH, divergent_lines))


def naive_line_addresses(
    v: LaneValues, line_bytes: int, divergent_lines: int = 32
) -> List[int]:
    """Distinct line-aligned addresses (the pre-vectorization loop)."""
    if v.is_uniform:
        return [v.base - v.base % line_bytes]
    if v.is_affine:
        n = naive_coalesced_lines(v, line_bytes)
        first = v.base - v.base % line_bytes
        step = line_bytes if v.stride >= 0 else -line_bytes
        return [(first + step * i) & MASK32 for i in range(n)]
    n = max(1, min(WARP_WIDTH, divergent_lines))
    return [(naive_mix_hash(v.tag, i) * line_bytes) & MASK32 for i in range(n)]


def _signed32(v: int) -> int:
    v &= MASK32
    return v - 0x100000000 if v >= 0x80000000 else v


def naive_f32_exact(base: int, stride: int) -> bool:
    """Every lane of ``AFFINE(base, stride)``, read as signed 32-bit, fits
    exactly in a float32 mantissa (|value| <= 2**24) — checked lane by
    lane, no shortcuts."""
    return all(
        -FLOAT32_EXACT <= _signed32(base + stride * i) <= FLOAT32_EXACT
        for i in range(WARP_WIDTH)
    )


def naive_float_add_kind(a: LaneValues, b: LaneValues) -> str:
    """Which shape ``a.float_add(b)`` must produce: ``"add"`` (the shared
    integer-add tag path), ``"affine"`` (structure preserved; includes the
    uniform collapse), or ``"random"`` (float rounding degrade)."""
    if a.is_random or b.is_random:
        return "add"
    if (
        naive_f32_exact(a.base, a.stride)
        and naive_f32_exact(b.base, b.stride)
        and naive_f32_exact(a.base + b.base, a.stride + b.stride)
    ):
        return "affine"
    return "random"
