"""Vectorized lane semantics == scalar reference, property-checked.

The production domain in ``repro.sim.values`` expands RANDOM lanes and
divergent line addresses with batched numpy FNV chains; the scalar
reference lives in ``tests/sim/naive_values.py``.  Hypothesis drives both
over the full parameter space (negative and unbounded strides, boundary
bases, odd line sizes) and requires bit identity.

Also home of the FADD degrade-to-RANDOM regression tests: float adds keep
their affine structure only while every lane of both operands and the sum
stays inside the float32-exact integer range (|v| <= 2**24).
"""

from hypothesis import given, settings, strategies as st

from repro.isa.registers import WARP_WIDTH
from repro.sim.values import (
    FLOAT32_EXACT,
    LaneValues,
    mix_hash,
    mix_hash_lanes,
)

from .naive_values import (
    naive_coalesced_lines,
    naive_f32_exact,
    naive_float_add_kind,
    naive_lane,
    naive_lanes,
    naive_line_addresses,
    naive_mix_hash,
    naive_mix_hash_lanes,
)

MASK = 0xFFFFFFFF

# Bases/strides cover the small values real kernels produce AND the
# extremes: 32-bit boundary bases, negative strides, and strides past the
# int32 range (which force the exact-arithmetic fallback in ``lanes``).
bases = st.one_of(
    st.integers(0, 2**32 - 1),
    st.sampled_from([0, 1, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFF]),
)
strides = st.one_of(
    st.integers(-64, 64),
    st.integers(-(2**34), 2**34),
)
tags = st.integers(0, 2**32 - 1)

lane_values = st.one_of(
    bases.map(LaneValues.uniform),
    st.tuples(bases, strides).map(lambda t: LaneValues.affine(*t)),
    tags.map(LaneValues.random),
)

line_sizes = st.sampled_from([1, 4, 32, 64, 128, 256, (1 << 30) + 128])


class TestHashEquivalence:
    @given(st.lists(st.integers(0, 2**40), max_size=4),
           st.lists(st.integers(0, 2**40), max_size=4),
           st.integers(1, 2 * WARP_WIDTH))
    @settings(max_examples=200)
    def test_mix_hash_lanes_matches_scalar(self, prefix, suffix, n):
        got = mix_hash_lanes(tuple(prefix), tuple(suffix), n=n)
        assert [int(x) for x in got] == naive_mix_hash_lanes(prefix, suffix, n)

    @given(st.lists(st.integers(-(2**40), 2**40), max_size=6))
    @settings(max_examples=200)
    def test_mix_hash_matches_reference(self, parts):
        assert mix_hash(*parts) == naive_mix_hash(*parts)


class TestLaneEquivalence:
    @given(lane_values)
    @settings(max_examples=300)
    def test_lanes_match_naive(self, v):
        assert [int(x) for x in v.lanes()] == naive_lanes(v)

    @given(lane_values, st.integers(0, WARP_WIDTH - 1))
    @settings(max_examples=200)
    def test_lane_matches_naive(self, v, i):
        assert v.lane(i) == naive_lane(v, i)

    @given(lane_values)
    @settings(max_examples=200)
    def test_lanes_equals_per_lane_loop(self, v):
        got = [int(x) for x in v.lanes()]
        assert got == [v.lane(i) for i in range(WARP_WIDTH)]


# Address expansion enumerates one entry per touched line, so keep the
# affine span sane (real kernels stride by a few words); huge strides are
# still covered by the count-only coalesced_lines test below.
addr_values = st.one_of(
    bases.map(LaneValues.uniform),
    st.tuples(bases, st.integers(-256, 256)).map(
        lambda t: LaneValues.affine(*t)
    ),
    tags.map(LaneValues.random),
)


class TestAddressEquivalence:
    @given(addr_values, line_sizes, st.integers(1, 32))
    @settings(max_examples=300, deadline=None)
    def test_line_addresses_match_naive(self, v, line_bytes, divergent):
        got = [int(x) for x in v.line_addresses(line_bytes, divergent)]
        assert got == naive_line_addresses(v, line_bytes, divergent)

    @given(lane_values, line_sizes, st.integers(1, 32))
    @settings(max_examples=200)
    def test_coalesced_lines_match_naive(self, v, line_bytes, divergent):
        assert (v.coalesced_lines(line_bytes, divergent)
                == naive_coalesced_lines(v, line_bytes, divergent))


class TestFloatAddDegrade:
    """The FADD affine-preservation boundary (values.float_add)."""

    def test_uniform_at_exact_boundary_stays_uniform(self):
        a = LaneValues.uniform(FLOAT32_EXACT)
        r = a.float_add(LaneValues.uniform(0))
        assert r.is_uniform and r.base == FLOAT32_EXACT

    def test_uniform_past_boundary_degrades(self):
        a = LaneValues.uniform(FLOAT32_EXACT + 1)
        r = a.float_add(LaneValues.uniform(0))
        assert r.is_random

    def test_affine_lane31_at_boundary_stays_affine(self):
        a = LaneValues.affine(FLOAT32_EXACT - (WARP_WIDTH - 1), 1)
        r = a.float_add(LaneValues.uniform(0))
        assert r.is_affine and r.lane(WARP_WIDTH - 1) == FLOAT32_EXACT

    def test_affine_lane31_past_boundary_degrades(self):
        a = LaneValues.affine(FLOAT32_EXACT - (WARP_WIDTH - 2), 1)
        r = a.float_add(LaneValues.uniform(0))
        assert r.is_random

    def test_sum_crossing_boundary_degrades_even_if_operands_exact(self):
        a = LaneValues.uniform(FLOAT32_EXACT - 1)
        b = LaneValues.uniform(2)
        assert a.float_add(b).is_random

    def test_negative_boundary_is_symmetric(self):
        ok = LaneValues.uniform((-FLOAT32_EXACT) & MASK)
        assert ok.float_add(LaneValues.uniform(0)).is_uniform
        over = LaneValues.uniform((-FLOAT32_EXACT - 1) & MASK)
        assert over.float_add(LaneValues.uniform(0)).is_random

    def test_degrade_tag_is_deterministic(self):
        a = LaneValues.uniform(FLOAT32_EXACT + 7)
        b = LaneValues.affine(3, 5)
        r1, r2 = a.float_add(b), a.float_add(b)
        assert r1.is_random and r1.tag == r2.tag

    @given(lane_values, lane_values)
    @settings(max_examples=300)
    def test_float_add_shape_matches_reference(self, a, b):
        r = a.float_add(b)
        kind = naive_float_add_kind(a, b)
        if kind == "add":
            i = a.add(b)
            assert r.kind is i.kind and r.tag == i.tag and r.base == i.base
        elif kind == "affine":
            assert not r.is_random
            for lane in (0, 1, 13, WARP_WIDTH - 1):
                assert r.lane(lane) == (a.lane(lane) + b.lane(lane)) & MASK
        else:
            assert r.is_random

    @given(st.integers(-(2**32), 2**32), st.integers(-(2**8), 2**8))
    @settings(max_examples=200)
    def test_f32_exact_matches_reference(self, base, stride):
        from repro.sim.values import _f32_exact
        assert _f32_exact(base, stride) == naive_f32_exact(base, stride)
