from hypothesis import given, settings, strategies as st

from repro.sim import LaneValues, THREAD_ID, ValueKind, ZERO, mix_hash

MASK = 0xFFFFFFFF

lane_values = st.one_of(
    st.integers(0, 2**31).map(LaneValues.uniform),
    st.tuples(st.integers(0, 2**20), st.integers(-16, 16)).map(
        lambda t: LaneValues.affine(*t)
    ),
    st.integers(0, 2**31).map(LaneValues.random),
)


class TestConstructors:
    def test_zero_stride_affine_collapses_to_uniform(self):
        assert LaneValues.affine(5, 0).is_uniform

    def test_thread_id(self):
        assert THREAD_ID.lane(0) == 0
        assert THREAD_ID.lane(31) == 31

    def test_kinds(self):
        assert LaneValues.uniform(1).kind is ValueKind.UNIFORM
        assert LaneValues.affine(0, 4).kind is ValueKind.AFFINE
        assert LaneValues.random(7).kind is ValueKind.RANDOM


class TestArithmetic:
    @given(st.integers(0, 2**20), st.integers(0, 2**20))
    def test_uniform_add(self, a, b):
        r = LaneValues.uniform(a).add(LaneValues.uniform(b))
        assert r.is_uniform and r.base == (a + b) & MASK

    @given(lane_values, lane_values)
    @settings(max_examples=100)
    def test_add_lanewise_consistent(self, a, b):
        r = a.add(b)
        if not r.is_random:
            for lane in (0, 7, 31):
                assert r.lane(lane) == (a.lane(lane) + b.lane(lane)) & MASK

    @given(lane_values, lane_values)
    @settings(max_examples=100)
    def test_sub_lanewise_consistent(self, a, b):
        r = a.sub(b)
        if not r.is_random:
            for lane in (0, 15):
                assert r.lane(lane) == (a.lane(lane) - b.lane(lane)) & MASK

    def test_affine_times_uniform_stays_affine(self):
        r = THREAD_ID.mul(LaneValues.uniform(4))
        assert r.is_affine and r.stride == 4

    def test_affine_times_affine_degrades(self):
        assert THREAD_ID.mul(THREAD_ID).is_random

    def test_shl_scales_stride(self):
        r = THREAD_ID.shl(LaneValues.uniform(2))
        assert r.is_affine and r.stride == 4

    def test_random_poisons(self):
        r = LaneValues.random(1).add(LaneValues.uniform(2))
        assert r.is_random

    def test_opaque_deterministic(self):
        a, b = LaneValues.random(1), LaneValues.random(2)
        assert a.opaque(b, salt=3) == a.opaque(b, salt=3)
        assert a.opaque(b, salt=3) != a.opaque(b, salt=4)

    def test_opaque_uniform_stays_uniform(self):
        r = LaneValues.uniform(5).opaque(LaneValues.uniform(6), salt=1)
        assert r.is_uniform


class TestCoalescing:
    def test_uniform_touches_one_line(self):
        assert LaneValues.uniform(0x1000).coalesced_lines(128) == 1

    def test_stride4_fits_one_line(self):
        assert LaneValues.affine(0, 4).coalesced_lines(128) == 1

    def test_stride16_touches_four_lines(self):
        assert LaneValues.affine(0, 16).coalesced_lines(128) == 4

    def test_random_uses_divergence_parameter(self):
        assert LaneValues.random(9).coalesced_lines(128, divergent_lines=6) == 6

    def test_line_addresses_aligned_and_count(self):
        for v in (LaneValues.uniform(0x1234), LaneValues.affine(0x999, 16),
                  LaneValues.random(3)):
            addrs = v.line_addresses(128, divergent_lines=4)
            assert all(a % 128 == 0 for a in addrs)
            assert len(addrs) == v.coalesced_lines(128, divergent_lines=4)

    @given(st.integers(0, 2**24), st.integers(1, 32))
    @settings(max_examples=60)
    def test_affine_line_count_matches_span(self, base, stride):
        v = LaneValues.affine(base, stride)
        span_lines = ((base + stride * 31) // 128) - (base // 128) + 1
        assert v.coalesced_lines(128) == span_lines


def test_mix_hash_deterministic_and_32bit():
    assert mix_hash(1, 2, 3) == mix_hash(1, 2, 3)
    assert mix_hash(1) != mix_hash(2)
    assert 0 <= mix_hash(12345, 678) <= MASK
