"""Demand-clocked component pumps == always-ticked reference.

The demand clock is a pure wall-clock optimization: skipping a component's
``cycle`` call on a cycle where it has no work must be invisible in every
simulated observable (counters, callback times, completion order, stall
bins).  These tests drive randomized traces through both clocking modes
and require bit-identical results, plus one full-simulation check with the
gating hooks forced to "always tick".
"""

from __future__ import annotations

from hypothesis import example, given, settings, strategies as st

from repro.energy import Counters
from repro.harness.runner import SuiteRunner
from repro.mem import L1RegCache, MemoryHierarchy
from repro.regless import (
    Compressor,
    OperandStagingUnit,
    RegisterMapping,
    ReglessConfig,
)
from repro.regless.backend import ReglessStorage
from repro.regless.capacity import CapacityManager
from repro.sim import EventWheel, GPUConfig, LaneValues
from repro.sim.scheduler import WarpScheduler


# ---------------------------------------------------------------------------
# Memory hierarchy: gated pump + lazy token credit == per-cycle pump
# ---------------------------------------------------------------------------

# Rates restricted to multiples of 0.25: exact in binary floating point, so
# the closed-form credit in credit_idle is bit-identical to iterated regen.
_RATES = (0.25, 0.5, 1.0, 1.75)

hier_trace = st.lists(
    st.tuples(
        st.integers(0, 30),  # idle gap before this request
        st.integers(0, 1),   # sm id
        st.integers(0, 9),   # address selector
        st.booleans(),       # is_write
    ),
    max_size=25,
)


def _drive_hierarchy(trace, icnt_rate, dram_rate, gated):
    cfg = GPUConfig(n_sms=2, icnt_per_sm=icnt_rate,
                    dram_lines_per_cycle=dram_rate)
    counters = Counters()
    wheel = EventWheel()
    hier = MemoryHierarchy(cfg, counters, wheel)
    # Absolute issue cycle per request (gaps accumulate).
    sched: dict = {}
    t = 1
    for gap, sm_id, sel, is_write in trace:
        t += gap
        sched.setdefault(t, []).append((sm_id, sel, is_write))
    horizon = t + 600
    events = []
    idle = 0
    while wheel.now < horizon:
        wheel.tick()
        if gated:
            if hier.pending_total:
                if idle:
                    hier.credit_idle(idle)
                    idle = 0
                hier.cycle()
            else:
                idle += 1
        else:
            hier.cycle()
        # Requests enter after the pump, like SM issue after hierarchy.cycle.
        for sm_id, sel, is_write in sched.get(wheel.now, ()):
            tag = len(events)
            cb = None
            if not is_write:
                cb = lambda tag=tag: events.append((tag, wheel.now))
            hier.request(sm_id, sel * 4096, is_write, cb,
                         kind="data" if sel % 2 else "reg")
    assert not hier.busy
    return counters.as_dict(), events


@given(hier_trace, st.sampled_from(_RATES), st.sampled_from(_RATES))
# Regression: a long idle gap at rate 0.25 used to under-credit the token
# buckets (regen clamp assumed saturation within 8 cycles; the icnt bucket
# needs 16 and DRAM 32 at the slowest rate), delaying a hit by one cycle.
@example(trace=[(8, 0, 0, False), (0, 0, 0, False), (0, 0, 0, False)],
         icnt=0.25, dram=0.25)
@settings(max_examples=40, deadline=None)
def test_hierarchy_demand_clock_matches_reference(trace, icnt, dram):
    ref_counters, ref_events = _drive_hierarchy(trace, icnt, dram, gated=False)
    got_counters, got_events = _drive_hierarchy(trace, icnt, dram, gated=True)
    assert got_counters == ref_counters
    assert got_events == ref_events


# ---------------------------------------------------------------------------
# OSU: work_pending-gated pump == unconditionally-called pump
# ---------------------------------------------------------------------------

osu_ops = st.lists(
    st.tuples(
        st.integers(0, 12),  # idle gap before this op
        st.sampled_from(["preload", "preload_inv", "write_evict", "inval"]),
        st.integers(0, 7),   # warp
        st.integers(0, 7),   # reg
        st.integers(0, 2),   # value class
    ),
    max_size=30,
)


class _OsuRig:
    def __init__(self):
        self.cfg = GPUConfig()
        self.counters = Counters()
        self.wheel = EventWheel()
        self.hier = MemoryHierarchy(self.cfg, self.counters, self.wheel)
        self.l1 = L1RegCache(0, self.cfg, self.counters, self.wheel, self.hier)
        self.rcfg = ReglessConfig(osu_entries_per_sm=64 * 4)
        self.mapping = RegisterMapping(n_warps=8, n_regs=8)
        self.compressor = Compressor(self.counters, self.mapping)
        self.values: dict = {}
        self.done: list = []
        self.osu = OperandStagingUnit(
            self.rcfg,
            self.counters,
            self.wheel,
            self.l1,
            self.compressor,
            self.mapping,
            value_of=lambda w, r: self.values.get((w, r), LaneValues.uniform(0)),
            on_preload_done=lambda wid, src: self.done.append(
                (wid, src, self.wheel.now)
            ),
        )


_VALUES = (
    lambda seed: LaneValues.uniform(seed),
    lambda seed: LaneValues.affine(seed, 1),
    lambda seed: LaneValues.random(seed),
)


def _drive_osu(ops, gated):
    rig = _OsuRig()
    sched: dict = {}
    t = 1
    for gap, op, w, r, vclass in ops:
        t += gap
        sched.setdefault(t, []).append((op, w, r, vclass))
    horizon = t + 800
    while rig.wheel.now < horizon:
        rig.wheel.tick()
        rig.hier.cycle()
        # Ops land before the pump, like CM admission before osu.cycle.
        for op, w, r, vclass in sched.get(rig.wheel.now, ()):
            if op == "preload":
                rig.osu.enqueue_preload(w, r, invalidate=False)
            elif op == "preload_inv":
                rig.osu.enqueue_preload(w, r, invalidate=True)
            elif op == "write_evict":
                rig.values[(w, r)] = _VALUES[vclass](w * 8 + r + 1)
                rig.osu.reserve_write(w, r)
                rig.osu.complete_write(w, r)
                rig.osu.mark_evictable(w, r)
            else:
                rig.osu.enqueue_invalidate(w, r)
        if gated:
            if rig.osu.work_pending:
                rig.osu.cycle()
        else:
            rig.osu.cycle()
    assert rig.osu.idle and not rig.hier.busy
    return rig.counters.as_dict(), rig.done


@given(osu_ops)
@settings(max_examples=40, deadline=None)
def test_osu_demand_gate_matches_always_ticked(ops):
    ref_counters, ref_done = _drive_osu(ops, gated=False)
    got_counters, got_done = _drive_osu(ops, gated=True)
    assert got_counters == ref_counters
    assert got_done == ref_done


# ---------------------------------------------------------------------------
# Full simulation: forcing every gate open reproduces the same SimStats
# ---------------------------------------------------------------------------

def test_full_sim_always_ticked_matches_demand_clocked(monkeypatch):
    demand = SuiteRunner(cache=False).run("bfs", "regless").stats

    # Re-open every demand-clock gate: storages and schedulers report work
    # every cycle, so each component's cycle hook runs unconditionally.
    monkeypatch.setattr(ReglessStorage, "has_work", lambda self, now: True)
    monkeypatch.setattr(CapacityManager, "needs_cycle", lambda self, now: True)
    monkeypatch.setattr(
        OperandStagingUnit, "work_pending", property(lambda self: True)
    )
    monkeypatch.setattr(
        WarpScheduler, "quiescent", property(lambda self: False)
    )
    always = SuiteRunner(cache=False).run("bfs", "regless").stats

    assert always.finished and demand.finished
    assert always.cycles == demand.cycles
    assert always.instructions == demand.instructions
    assert always.warps_done == demand.warps_done
    assert always.counters == demand.counters
    assert always.stalls == demand.stalls
