from repro.sim import (
    AlwaysTaken,
    BernoulliLanes,
    BernoulliWarp,
    DivergentLoopExit,
    FULL_MASK,
    LoadBehavior,
    LoopExit,
    NeverTaken,
    Oracle,
)


class TestLoopExit:
    def test_exits_on_final_trip(self):
        b = LoopExit(trips=4)
        masks = [b.mask(0, c, seed=1) for c in range(4)]
        assert masks == [0, 0, 0, FULL_MASK]

    def test_modular_for_nesting(self):
        b = LoopExit(trips=3)
        # Second loop instance (counts 3..5) behaves like the first.
        assert b.mask(0, 5, seed=1) == FULL_MASK
        assert b.mask(0, 3, seed=1) == 0

    def test_per_warp_skew(self):
        b = LoopExit(trips=3, per_warp_skew=2)
        assert b.mask(0, 2, seed=1) == FULL_MASK  # 3 trips
        assert b.mask(1, 2, seed=1) == 0          # 4 trips
        assert b.mask(1, 3, seed=1) == FULL_MASK


class TestDivergentLoopExit:
    def test_lanes_exit_in_range(self):
        b = DivergentLoopExit(min_trips=2, max_trips=5)
        # By count max_trips-1 every lane has exited.
        assert b.mask(3, 4, seed=7) == FULL_MASK
        # Early on, not all lanes have exited.
        assert b.mask(3, 0, seed=7) != FULL_MASK

    def test_monotone_within_instance(self):
        b = DivergentLoopExit(min_trips=1, max_trips=6)
        prev = 0
        for c in range(6):
            mask = b.mask(2, c, seed=3)
            assert mask & prev == prev  # lanes never un-exit
            prev = mask


class TestBernoulli:
    def test_warp_uniform(self):
        b = BernoulliWarp(0.5)
        masks = {b.mask(w, c, seed=9) for w in range(8) for c in range(8)}
        assert masks <= {0, FULL_MASK}
        assert len(masks) == 2  # both outcomes occur

    def test_lanes_divergent(self):
        b = BernoulliLanes(0.5)
        mask = b.mask(0, 0, seed=11)
        assert 0 < mask < FULL_MASK  # overwhelmingly likely

    def test_probability_extremes(self):
        assert BernoulliLanes(0.0).mask(0, 0, 5) == 0
        assert BernoulliLanes(1.0).mask(0, 0, 5) == FULL_MASK

    def test_constants(self):
        assert NeverTaken().mask(0, 0, 1) == 0
        assert AlwaysTaken().mask(0, 0, 1) == FULL_MASK


class TestLoadBehavior:
    def test_fraction_of_kinds(self):
        b = LoadBehavior(uniform_frac=0.5, affine_frac=0.5)
        kinds = [b.value(w, c, seed=1).kind.value for w in range(4) for c in range(50)]
        assert "random" not in kinds

    def test_all_random(self):
        b = LoadBehavior(uniform_frac=0.0, affine_frac=0.0)
        vals = [b.value(0, c, seed=2) for c in range(20)]
        assert all(v.is_random for v in vals)

    def test_deterministic(self):
        b = LoadBehavior()
        assert b.value(3, 7, seed=5) == b.value(3, 7, seed=5)


class TestOracle:
    def test_counts_advance_per_warp_pc(self):
        o = Oracle(pred_behaviors={"loop": LoopExit(trips=2)})
        assert o.pred_mask(0, 10, "loop") == 0
        assert o.pred_mask(0, 10, "loop") == FULL_MASK
        # Different warp has its own count.
        assert o.pred_mask(1, 10, "loop") == 0

    def test_untagged_uses_default(self):
        o = Oracle(default_pred=AlwaysTaken())
        assert o.pred_mask(0, 0, None) == FULL_MASK

    def test_load_values_by_tag(self):
        o = Oracle(load_behaviors={"z": LoadBehavior(1.0, 0.0)})
        assert o.load_value(0, 5, "z").is_uniform

    def test_reset(self):
        o = Oracle(pred_behaviors={"l": LoopExit(trips=2)})
        o.pred_mask(0, 0, "l")
        o.reset()
        assert o.pred_mask(0, 0, "l") == 0
