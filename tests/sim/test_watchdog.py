"""Watchdog + invariant sanitizer: trips, diagnostics, zero-cost cleanness."""

import pickle

import pytest

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF
from repro.sim import (
    GPUConfig,
    SimDeadlock,
    SimulationHang,
    Watchdog,
    WatchdogConfig,
    check_invariants,
    run_simulation,
)
from repro.sim.gpu import DEFAULT_MAX_CYCLES, GPU
from repro.workloads import Workload


def run(workload, config, **kwargs):
    ck = compile_kernel(workload.kernel())
    return run_simulation(config, ck, workload,
                          lambda sm, sh: BaselineRF(), **kwargs)


def make_spin_workload():
    """An infinite loop: issues forever, never finishes."""
    def build():
        b = KernelBuilder("spin")
        b.block("entry")
        t = b.fresh()
        b.mov(t, 0)
        b.block("loop")
        b.iadd(t, t, 1)
        b.bra("loop")
        return b.build()

    return Workload(name="spin", build=build, regalloc=False)


SPIN_CFG = GPUConfig(warps_per_sm=4, schedulers_per_sm=2, cta_size_warps=2,
                     max_cycles=50_000)


class TestTrips:
    def test_watchdog_cycle_ceiling_raises(self):
        wd = Watchdog(WatchdogConfig(max_cycles=3000, check_interval=64))
        with pytest.raises(SimulationHang) as ei:
            run(make_spin_workload(), SPIN_CFG, watchdog=wd)
        exc = ei.value
        assert exc.reason == "cycle_ceiling"
        assert exc.cycle >= 3000
        assert wd.trips == 1
        assert exc.diagnostics["warps_done"] == 0
        assert exc.diagnostics["shards"]

    def test_wall_clock_trip_with_injected_clock(self):
        ticks = {"now": 0.0}

        def clock():
            ticks["now"] += 10.0
            return ticks["now"]

        wd = Watchdog(
            WatchdogConfig(max_wall_seconds=5.0, check_interval=8),
            clock=clock,
        )
        with pytest.raises(SimulationHang) as ei:
            run(make_spin_workload(), SPIN_CFG, watchdog=wd)
        assert ei.value.reason == "wall_clock"
        assert ei.value.wall_seconds >= 5.0

    def test_config_ceiling_still_returns_without_watchdog(self):
        stats = run(make_spin_workload(), SPIN_CFG.with_(max_cycles=2000))
        assert not stats.finished
        assert stats.cycles >= 2000
        assert stats.counter("cycle_ceiling") == 1

    def test_explicit_max_cycles_overrides_config(self):
        ck = compile_kernel(make_spin_workload().kernel())
        stats = run_simulation(
            SPIN_CFG, ck, make_spin_workload(),
            lambda sm, sh: BaselineRF(), max_cycles=1500,
        )
        assert not stats.finished
        assert 1500 <= stats.cycles < 50_000

    def test_zero_config_ceiling_falls_back_to_default(self, loop_workload):
        # A config with no ceiling must still be bounded (and a finite
        # workload still finishes normally under the fallback).
        assert DEFAULT_MAX_CYCLES > 0
        cfg = GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                        cta_size_warps=4, max_cycles=0)
        stats = run(loop_workload, cfg)
        assert stats.finished
        assert stats.counter("cycle_ceiling") == 0


class TestCleanRuns:
    def test_invariant_watchdog_is_bit_identical(self, loop_workload,
                                                 fast_config):
        plain = run(loop_workload, fast_config)
        wd = Watchdog(WatchdogConfig(invariants=True, check_interval=32))
        guarded = run(loop_workload, fast_config, watchdog=wd)
        assert wd.polls > 0
        assert wd.trips == 0
        assert guarded.cycles == plain.cycles
        assert guarded.instructions == plain.instructions
        assert guarded.counters == plain.counters
        assert guarded.stalls == plain.stalls

    def test_finished_run_has_no_ceiling_counter(self, loop_workload,
                                                 fast_config):
        stats = run(loop_workload, fast_config)
        assert stats.finished
        assert stats.counter("cycle_ceiling") == 0


class TestInvariantSanitizer:
    def _gpu(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        return GPU(fast_config, ck, loop_workload,
                   lambda sm, sh: BaselineRF())

    def test_clean_gpu_has_no_violations(self, loop_workload, fast_config):
        gpu = self._gpu(loop_workload, fast_config)
        assert check_invariants(gpu) == []

    def test_detects_ready_flag_desync(self, loop_workload, fast_config):
        gpu = self._gpu(loop_workload, fast_config)
        warp = gpu.sms[0].shards[0].warps[0]
        warp.ready = False  # flag now disagrees with the ready set
        problems = check_invariants(gpu)
        assert any("ready flag" in p for p in problems)

    def test_detects_negative_inflight(self, loop_workload, fast_config):
        gpu = self._gpu(loop_workload, fast_config)
        gpu.sms[0].shards[0].warps[0].inflight = -1
        problems = check_invariants(gpu)
        assert any("negative inflight" in p for p in problems)

    def test_poll_trips_on_violation(self, loop_workload, fast_config):
        gpu = self._gpu(loop_workload, fast_config)
        wd = Watchdog(WatchdogConfig(invariants=True))
        wd.start(gpu)
        gpu.sms[0].shards[0].warps[0].inflight = -1
        with pytest.raises(SimulationHang) as ei:
            wd.poll(gpu, 0, 0)
        assert ei.value.reason == "invariant"
        assert "negative inflight" in ei.value.detail


class TestStructuredHang:
    def test_hang_is_a_deadlock_subclass(self):
        exc = SimulationHang("no_progress")
        assert isinstance(exc, SimDeadlock)

    def test_pickle_roundtrip_preserves_fields(self):
        exc = SimulationHang(
            "no_progress", cycle=42, wall_seconds=1.5,
            diagnostics={"dominant": {"sm": 0, "shard": 1,
                                      "stall": "cm_inactive"}},
            detail="wedged",
        )
        back = pickle.loads(pickle.dumps(exc))
        assert back.reason == "no_progress"
        assert back.cycle == 42
        assert back.wall_seconds == 1.5
        assert back.diagnostics == exc.diagnostics
        assert "wedged" in str(back)
        assert isinstance(back, SimDeadlock)
