"""Region-JIT bit-identity: compiled steps == interpreter, any kernel.

The region JIT (``repro.sim.regionjit``) replaces the shard's interpreted
issue path with per-pc compiled step functions plus generated
``cycle``/``reevaluate``/``_account_stalls``/writeback bodies.  Its
correctness contract is *bit identity*: with ``REPRO_JIT=1`` every
simulated statistic — cycles, instructions, counters, stall attribution —
must equal the ``REPRO_JIT=0`` interpreter run exactly.

Hypothesis generates small structured kernels (loops, divergent diamonds,
guarded writes, loads) and checks the contract on every operand-storage
backend.  A deterministic smoke test pins the contract on one kernel per
backend for fast failure localization.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF, RFHStorage, RFVStorage
from repro.regless import ReglessStorage
from repro.sim import (
    BernoulliLanes,
    GPUConfig,
    LoopExit,
    run_simulation,
)
from repro.workloads import Workload

FAST = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                 max_cycles=60_000)

FACTORIES = {
    "baseline": lambda ck: (lambda sm, sh: BaselineRF()),
    "rfh": lambda ck: (lambda sm, sh: RFHStorage(ck)),
    "rfv": lambda ck: (lambda sm, sh: RFVStorage(ck)),
    "regless": lambda ck: (lambda sm, sh: ReglessStorage(ck)),
}


def _run(ck, workload, backend, jit):
    """One simulation with the JIT forced on or off; returns (stats, jit_out)."""
    prev = os.environ.get("REPRO_JIT")
    os.environ["REPRO_JIT"] = "1" if jit else "0"
    try:
        jit_out = {}
        stats = run_simulation(
            FAST, ck, workload, FACTORIES[backend](ck), jit_out=jit_out
        )
        return stats, jit_out
    finally:
        if prev is None:
            del os.environ["REPRO_JIT"]
        else:
            os.environ["REPRO_JIT"] = prev


def _assert_identical(off, on, label):
    assert on.cycles == off.cycles, label
    assert on.instructions == off.instructions, label
    assert on.warps_done == off.warps_done, label
    assert on.finished == off.finished, label
    assert on.counters == off.counters, label
    assert on.stalls == off.stalls, label


@st.composite
def jit_workload(draw):
    """Small structured kernel: optional loop, arithmetic soup, optional
    divergent diamond and guarded writes, loads and stores."""
    b = KernelBuilder("jitfuzz")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    acc = b.fresh()
    b.mov(acc, 1)
    behaviors = {}

    loop = draw(st.booleans())
    if loop:
        i = b.fresh()
        b.mov(i, 0)
        header, exit_lbl = b.label(), b.label()
        b.block_named(header)
        p = b.fresh_pred()
        behaviors["loop"] = LoopExit(trips=draw(st.integers(2, 4)))
        b.setp(p, i, 99, tag="loop")
        b.bra(exit_lbl, pred=p)
        b.block()

    live = [tid, acc]
    for k in range(draw(st.integers(2, 10))):
        kind = draw(st.integers(0, 5))
        src = live[draw(st.integers(0, len(live) - 1))]
        v = b.fresh()
        if kind == 0:
            b.ldg(v, src)
        elif kind == 1:
            b.iadd(v, src, k + 1)
        elif kind == 2:
            b.imad(v, src, 3, acc)
        elif kind == 3:
            b.stg(src, acc)
            continue
        elif kind == 4:
            tag = f"g{k}"
            behaviors[tag] = BernoulliLanes(draw(st.floats(0.1, 0.9)))
            p = b.fresh_pred()
            b.setp(p, src, 0, tag=tag)
            b.iadd(acc, acc, 1, guard=b.guard(p))
            continue
        else:
            tag = f"d{k}"
            behaviors[tag] = BernoulliLanes(draw(st.floats(0.1, 0.9)))
            p = b.fresh_pred()
            b.setp(p, src, 0, tag=tag)
            join = b.label()
            b.bra(join, pred=p)
            b.block()
            b.iadd(acc, acc, k)
            b.block_named(join)
            continue
        live.append(v)
        if len(live) > 5:
            live.pop(0)

    if loop:
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)

    b.stg(out, acc)
    b.exit()
    return Workload(name="jitfuzz", build=lambda: b.build(),
                    pred_behaviors=behaviors, regalloc=False)


@given(jit_workload(), st.sampled_from(sorted(FACTORIES)))
@settings(max_examples=20, deadline=None)
def test_jit_matches_interpreter_on_random_kernels(workload, backend):
    ck = compile_kernel(workload.kernel())
    off, _ = _run(ck, workload, backend, jit=False)
    on, _ = _run(ck, workload, backend, jit=True)
    _assert_identical(off, on, backend)


def test_jit_arms_and_matches_on_every_backend():
    """Deterministic pin: one kernel, all backends, JIT really armed."""
    b = KernelBuilder("pin")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    acc, v = b.fresh(), b.fresh()
    b.mov(acc, 1)
    b.ldg(v, tid)
    b.imad(acc, v, 3, acc)
    b.iadd(acc, acc, 7)
    b.stg(out, acc)
    b.exit()
    workload = Workload(name="pin", build=lambda: b.build(),
                        pred_behaviors={}, regalloc=False)
    ck = compile_kernel(workload.kernel())
    for backend in sorted(FACTORIES):
        off, jit_off = _run(ck, workload, backend, jit=False)
        on, jit_on = _run(ck, workload, backend, jit=True)
        _assert_identical(off, on, backend)
        assert not any(k.endswith(".armed") and v
                       for k, v in jit_off.items()), backend
        armed = [k for k, v in jit_on.items()
                 if k.endswith(".armed") and v]
        assert armed, f"{backend}: no shard armed the region JIT"
        issued = sum(v for k, v in jit_on.items() if k.endswith(".issued"))
        assert issued > 0, f"{backend}: JIT armed but issued nothing"
