"""Cohort batching bit-identity: batched account/issue == scalar, always.

``repro.sim.warpbatch`` layers same-pc warp-cohort batching under the
region JIT: operand-staging checks shared across a cohort, stall
accounting committed from covered aggregates instead of a full per-warp
pass, and grouped RANDOM-address lane materialization through the
widened ``values`` path.  Its contract is the same as the JIT's — with
``REPRO_BATCH=1`` every simulated statistic must equal the
``REPRO_BATCH=0`` run bit for bit (both under ``REPRO_JIT=1``; batching
is a JIT sublayer).

Hypothesis reuses the region-JIT kernel fuzzer (loops, divergent
diamonds that split cohorts mid-region, loads whose wake events split
and re-form cohorts) across backends and schedulers.  Deterministic
tests pin the compat ladder (scheduler/storage/env refusals) and that
cohorts really form on a lockstep kernel.
"""

import os

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF, RFHStorage, RFVStorage
from repro.regless import ReglessStorage
from repro.sim import GPUConfig, run_simulation
from repro.sim.warpbatch import partition_cohorts
from repro.workloads import Workload

from .test_regionjit_equivalence import (
    FACTORIES,
    _assert_identical,
    jit_workload,
)


def _config(scheduler):
    return GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                     max_cycles=60_000, scheduler=scheduler)


def _run(ck, workload, backend, batch, scheduler="gto"):
    """One REPRO_JIT=1 simulation with batching forced on or off;
    returns (stats, batch_out)."""
    prev_jit = os.environ.get("REPRO_JIT")
    prev_batch = os.environ.get("REPRO_BATCH")
    os.environ["REPRO_JIT"] = "1"
    os.environ["REPRO_BATCH"] = "1" if batch else "0"
    try:
        batch_out = {}
        stats = run_simulation(
            _config(scheduler), ck, workload, FACTORIES[backend](ck),
            batch_out=batch_out,
        )
        return stats, batch_out
    finally:
        for name, prev in (("REPRO_JIT", prev_jit),
                           ("REPRO_BATCH", prev_batch)):
            if prev is None:
                del os.environ[name]
            else:
                os.environ[name] = prev


def _pin_workload():
    """All-lockstep kernel: every warp walks the same pcs — maximal
    cohorts under GTO."""
    b = KernelBuilder("pin")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    acc, v = b.fresh(), b.fresh()
    b.mov(acc, 1)
    b.ldg(v, tid)
    b.imad(acc, v, 3, acc)
    b.iadd(acc, acc, 7)
    b.iadd(acc, acc, 1)
    b.stg(out, acc)
    b.exit()
    return Workload(name="pin", build=lambda: b.build(),
                    pred_behaviors={}, regalloc=False)


@given(jit_workload(), st.sampled_from(sorted(FACTORIES)))
@settings(max_examples=20, deadline=None)
def test_batch_matches_scalar_on_random_kernels(workload, backend):
    ck = compile_kernel(workload.kernel())
    off, _ = _run(ck, workload, backend, batch=False)
    on, _ = _run(ck, workload, backend, batch=True)
    _assert_identical(off, on, backend)


@given(jit_workload(), st.sampled_from(["baseline", "rfh"]))
@settings(max_examples=10, deadline=None)
def test_batch_is_inert_under_two_level_scheduler(workload, backend):
    """The demoting scheduler refuses batching — on/off must match
    trivially, and the refusal reason must say why."""
    ck = compile_kernel(workload.kernel())
    off, _ = _run(ck, workload, backend, batch=False, scheduler="two_level")
    on, out = _run(ck, workload, backend, batch=True, scheduler="two_level")
    _assert_identical(off, on, backend)
    reasons = {v for k, v in out.items() if k.endswith(".reason")}
    assert reasons <= {"demoting_scheduler", "no_full_loop"}, reasons
    assert not any(k.endswith(".armed") and v for k, v in out.items())


def test_batch_arms_and_forms_cohorts_on_lockstep_kernel():
    workload = _pin_workload()
    ck = compile_kernel(workload.kernel())
    for backend in ("baseline", "regless"):
        off, batch_off = _run(ck, workload, backend, batch=False)
        on, batch_on = _run(ck, workload, backend, batch=True)
        _assert_identical(off, on, backend)
        # off: every shard refused with the env reason
        off_reasons = {v for k, v in batch_off.items()
                       if k.endswith(".reason")}
        assert off_reasons == {"env_off"}, backend
        armed = [k for k, v in batch_on.items()
                 if k.endswith(".armed") and v]
        assert armed, f"{backend}: no shard armed cohort batching"
        batched = sum(v for k, v in batch_on.items()
                      if k.endswith(".batched_warps"))
        assert batched > 0, f"{backend}: armed but formed no cohorts"


def test_impure_storage_refuses_batching():
    workload = _pin_workload()
    ck = compile_kernel(workload.kernel())
    off, _ = _run(ck, workload, "rfv", batch=False)
    on, out = _run(ck, workload, "rfv", batch=True)
    _assert_identical(off, on, "rfv")
    reasons = {v for k, v in out.items() if k.endswith(".reason")}
    assert "impure_storage" in reasons, reasons
    assert not any(k.endswith(".armed") and v for k, v in out.items())


# ---------------------------------------------------------------------------
# partition_cohorts unit behavior


def test_partition_empty_and_singleton():
    assert partition_cohorts([], key=lambda w: w) == {}
    groups = partition_cohorts([7], key=lambda w: w % 3)
    assert groups == {1: [7]}


def test_partition_all_singletons_and_one_cohort():
    items = [10, 21, 32, 43]
    groups = partition_cohorts(items, key=lambda w: w)
    assert all(len(g) == 1 for g in groups.values())
    groups = partition_cohorts(items, key=lambda w: 0)
    assert groups == {0: [10, 21, 32, 43]}


def test_partition_preserves_scheduler_order_within_cohort():
    items = [("b", 2), ("a", 1), ("b", 1), ("a", 2), ("b", 3)]
    groups = partition_cohorts(items, key=lambda w: w[0])
    assert groups["b"] == [("b", 2), ("b", 1), ("b", 3)]
    assert groups["a"] == [("a", 1), ("a", 2)]
    # insertion order of the group keys follows first appearance
    assert list(groups) == ["b", "a"]
