import pytest

from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.sim import Tracer
from repro.sim.gpu import GPU


@pytest.fixture
def traced_run(loop_workload, fast_config):
    ck = compile_kernel(loop_workload.kernel())
    gpu = GPU(fast_config, ck, loop_workload, lambda sm, sh: BaselineRF())
    tracer = Tracer(capacity=100_000)
    tracer.attach(gpu)
    stats = gpu.run()
    return tracer, stats


class TestTracer:
    def test_issue_events_match_instruction_count(self, traced_run):
        tracer, stats = traced_run
        assert len(tracer.issues()) == stats.instructions

    def test_writebacks_recorded(self, traced_run):
        tracer, _ = traced_run
        assert any(e.kind == "writeback" for e in tracer.events)

    def test_per_warp_filter(self, traced_run):
        tracer, stats = traced_run
        w0 = tracer.for_warp(0)
        assert w0
        assert all(e.warp == 0 for e in w0)

    def test_window_filter(self, traced_run):
        tracer, stats = traced_run
        window = tracer.between(0, 50)
        assert all(e.cycle < 50 for e in window)

    def test_render(self, traced_run):
        tracer, _ = traced_run
        text = tracer.render(limit=10)
        assert "cycle" in text and "issue" in text
        assert len(text.splitlines()) <= 10

    def test_bounded_capacity(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        gpu = GPU(fast_config, ck, loop_workload, lambda sm, sh: BaselineRF())
        tracer = Tracer(capacity=50)
        tracer.attach(gpu)
        gpu.run()
        assert len(tracer) == 50  # ring buffer kept the newest

    def test_double_attach_rejected(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        gpu = GPU(fast_config, ck, loop_workload, lambda sm, sh: BaselineRF())
        tracer = Tracer()
        tracer.attach(gpu)
        with pytest.raises(RuntimeError):
            tracer.attach(gpu)

    def test_tracing_does_not_change_results(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        plain = GPU(fast_config, ck, loop_workload,
                    lambda sm, sh: BaselineRF()).run()
        traced_gpu = GPU(fast_config, ck, loop_workload,
                         lambda sm, sh: BaselineRF())
        Tracer().attach(traced_gpu)
        traced = traced_gpu.run()
        assert plain.cycles == traced.cycles
        assert plain.counters == traced.counters
