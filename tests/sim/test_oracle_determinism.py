"""Cross-cutting oracle determinism and distribution sanity."""

from hypothesis import given, settings, strategies as st

from repro.sim import (
    BernoulliLanes,
    DivergentLoopExit,
    FULL_MASK,
    LoadBehavior,
    LoopExit,
    Oracle,
)


@given(st.integers(0, 63), st.integers(0, 200), st.integers(1, 10**6))
@settings(max_examples=80)
def test_behaviors_are_pure_functions(warp, count, seed):
    for behavior in (
        LoopExit(trips=4),
        DivergentLoopExit(min_trips=2, max_trips=6),
        BernoulliLanes(0.3),
    ):
        a = behavior.mask(warp, count, seed)
        b = behavior.mask(warp, count, seed)
        assert a == b
        assert 0 <= a <= FULL_MASK


@given(st.integers(1, 10**6))
@settings(max_examples=30)
def test_bernoulli_lane_rate_tracks_p(seed):
    behavior = BernoulliLanes(0.25)
    bits = 0
    samples = 64
    for count in range(samples):
        bits += bin(behavior.mask(0, count, seed)).count("1")
    rate = bits / (samples * 32)
    assert 0.10 < rate < 0.45  # loose CI around 0.25


@given(st.integers(1, 10**6))
@settings(max_examples=30)
def test_load_behavior_distribution(seed):
    behavior = LoadBehavior(uniform_frac=0.5, affine_frac=0.25)
    kinds = [behavior.value(0, c, seed).kind.value for c in range(200)]
    uniform = kinds.count("uniform") / len(kinds)
    assert 0.3 < uniform < 0.7


def test_oracle_counts_isolated_by_pc_and_warp():
    oracle = Oracle(pred_behaviors={"l": LoopExit(trips=2)})
    # Interleave two PCs and two warps; each stream keeps its own phase.
    assert oracle.pred_mask(0, 10, "l") == 0
    assert oracle.pred_mask(0, 20, "l") == 0
    assert oracle.pred_mask(1, 10, "l") == 0
    assert oracle.pred_mask(0, 10, "l") == FULL_MASK
    assert oracle.pred_mask(0, 20, "l") == FULL_MASK
    assert oracle.pred_mask(1, 10, "l") == FULL_MASK


def test_load_and_pred_counts_do_not_collide():
    oracle = Oracle(pred_behaviors={"l": LoopExit(trips=2)},
                    load_behaviors={"d": LoadBehavior(1.0, 0.0)})
    oracle.load_value(0, 10, "d")
    # The load at pc 10 must not advance the predicate stream at pc 10.
    assert oracle.pred_mask(0, 10, "l") == 0
