"""Seed (pre-ready-set) scheduler implementations, kept as naive references.

These are the original O(W)-per-cycle schedulers the event-driven
incremental schedulers in :mod:`repro.sim.scheduler` must replicate
*exactly*: the property tests in ``test_scheduler_equivalence.py`` drive
both through randomized block/wake/issue traces and assert identical issue
orders, including the quirky corners —

* GTO's generator yields the greedy warp first and filters ``w is not
  self._greedy`` at *each* subsequent yield, so a mid-scan greedy handoff
  makes the old greedy warp come up a second time at its sorted position;
* LRR's generator reads ``self._next`` at each yield, so an issue mid-scan
  rebases the ring and can skip or repeat warps within one cycle;
* the two-level scheduler's per-cycle ``_refill`` promotes into exit-freed
  slots only at the *next* ``order()`` call, which shifts the promotion
  penalty (``stall_until``) by one cycle relative to the exit.

Do not "fix" these behaviors here: they define bit-identity for the
simulator's results.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.sim.warp import Warp

__all__ = [
    "NaiveGTOScheduler",
    "NaiveLRRScheduler",
    "NaiveTwoLevelScheduler",
]


class _NaiveBase:
    def __init__(self, warps: List[Warp]):
        self.warps = warps

    def order(self, cycle: int) -> Iterable[Warp]:
        raise NotImplementedError

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        """A warp issued this cycle."""

    def notify_long_stall(self, warp: Warp) -> None:
        """A warp blocked on a long-latency (memory) operation."""

    def eligible(self, warp: Warp) -> bool:
        return True


class NaiveGTOScheduler(_NaiveBase):
    """Greedy-then-oldest, re-sorting every warp every cycle."""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._greedy: Warp = warps[0] if warps else None  # type: ignore
        self._greedy_issued_at = -1

    def order(self, cycle: int) -> Iterable[Warp]:
        if self._greedy is not None and not self._greedy.done:
            yield self._greedy
        for w in sorted(self.warps, key=lambda w: w.last_issue_cycle):
            if w is not self._greedy:
                yield w

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        warp.last_issue_cycle = cycle
        if warp is self._greedy:
            self._greedy_issued_at = cycle
            return
        if (
            self._greedy is None
            or self._greedy.done
            or self._greedy_issued_at < cycle
        ):
            self._greedy = warp
            self._greedy_issued_at = cycle


class NaiveLRRScheduler(_NaiveBase):
    """Loose round-robin with the O(W) ``list.index`` on issue."""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._next = 0

    def order(self, cycle: int) -> Iterable[Warp]:
        n = len(self.warps)
        for i in range(n):
            yield self.warps[(self._next + i) % n]

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        self._next = (self.warps.index(warp) + 1) % len(self.warps)


class NaiveTwoLevelScheduler(_NaiveBase):
    """Two-level scheduling with the per-cycle rebuild-and-copy pools."""

    PROMOTE_PENALTY = 14

    def __init__(self, warps: List[Warp], active_size: int = 8):
        super().__init__(warps)
        self.active_size = active_size
        self._active: List[Warp] = list(warps[:active_size])
        self._pending: List[Warp] = list(warps[active_size:])
        self._now = 0

    def order(self, cycle: int) -> Iterable[Warp]:
        self._now = cycle
        self._refill()
        return list(self._active)

    def _refill(self) -> None:
        self._active = [w for w in self._active if not w.done]
        self._pending = [w for w in self._pending if not w.done]
        while len(self._active) < self.active_size and self._pending:
            warp = self._pending.pop(0)
            warp.stall_until = max(
                warp.stall_until, self._now + self.PROMOTE_PENALTY
            )
            self._active.append(warp)

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        warp.last_issue_cycle = cycle

    def notify_long_stall(self, warp: Warp) -> None:
        if warp in self._active:
            self._active.remove(warp)
            self._pending.append(warp)
            self._refill()

    def eligible(self, warp: Warp) -> bool:
        return warp in self._active

    @property
    def active_pool(self) -> List[Warp]:
        return list(self._active)
