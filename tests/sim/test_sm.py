from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.sim.gpu import GPU


def make_gpu(workload, config):
    ck = compile_kernel(workload.kernel())
    return GPU(config, ck, workload, lambda sm, sh: BaselineRF())


class TestProgramViews:
    def test_block_start_lookup(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        kernel = gpu.compiled.kernel
        for block in kernel.blocks:
            assert sm.block_start(block.label) == kernel.block_start_pc(block.label)

    def test_reconvergence_points_are_block_starts(self, diamond_workload, fast_config):
        gpu = make_gpu(diamond_workload, fast_config)
        sm = gpu.sms[0]
        kernel = gpu.compiled.kernel
        starts = {kernel.block_start_pc(b.label) for b in kernel.blocks}
        starts.add(sm.program_len)
        for pc in range(sm.program_len):
            assert sm.reconv_pc(pc) in starts

    def test_diamond_reconverges_at_join(self, diamond_workload, fast_config):
        gpu = make_gpu(diamond_workload, fast_config)
        sm = gpu.sms[0]
        kernel = gpu.compiled.kernel
        branch_pc = kernel.block_end_pc("entry") - 1
        assert sm.reconv_pc(branch_pc) == kernel.block_start_pc("join")


class TestWarpLayout:
    def test_warps_partitioned_across_shards(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        all_wids = [w.wid for shard in sm.shards for w in shard.warps]
        assert sorted(all_wids) == list(range(fast_config.warps_per_sm))

    def test_cta_ids_contiguous(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        for sm in gpu.sms:
            for warp in sm.warps:
                assert warp.cta_id == (
                    warp.wid % fast_config.warps_per_sm
                ) // fast_config.cta_size_warps

    def test_initial_registers_installed(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        warp = gpu.sms[0].warps[1]
        expected = loop_workload.initial_regs(warp.wid)
        for idx, value in expected.items():
            assert warp.regs[idx] == value

    def test_multi_sm_unique_global_warp_ids(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config.with_(n_sms=2))
        wids = [w.wid for sm in gpu.sms for w in sm.warps]
        assert len(set(wids)) == len(wids) == 16


class TestMemSlot:
    def test_one_ldst_issue_per_cycle(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        sm._mem_slot_cycle = -1
        assert sm.take_mem_slot()
        assert not sm.take_mem_slot()


class TestBarrierBookkeeping:
    def test_partial_arrival_blocks(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        cta0 = [w for w in sm.warps if w.cta_id == 0]
        sm.barrier_arrive(cta0[0])
        assert cta0[0].at_barrier

    def test_full_arrival_releases(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        cta0 = [w for w in sm.warps if w.cta_id == 0]
        for w in cta0:
            sm.barrier_arrive(w)
        assert all(not w.at_barrier for w in cta0)

    def test_exited_members_do_not_block_release(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        cta0 = [w for w in sm.warps if w.cta_id == 0]
        cta0[0].exited = True
        for w in cta0[1:]:
            sm.barrier_arrive(w)
        assert all(not w.at_barrier for w in cta0[1:])

    def test_exit_after_arrivals_releases_waiters(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sm = gpu.sms[0]
        cta0 = [w for w in sm.warps if w.cta_id == 0]
        for w in cta0[:-1]:
            sm.barrier_arrive(w)
        cta0[-1].exited = True
        sm.notify_warp_done(cta0[-1])
        assert all(not w.at_barrier for w in cta0[:-1])
