"""The fast-forward optimization must be invisible in every result."""

import pytest

from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim import run_simulation


@pytest.mark.parametrize("backend", ["baseline", "regless"])
def test_fast_forward_is_result_invariant(loop_workload, fast_config, backend):
    ck = compile_kernel(loop_workload.kernel())

    def factory(sm, sh):
        if backend == "baseline":
            return BaselineRF()
        return ReglessStorage(ck)

    fast = run_simulation(fast_config, ck, loop_workload, factory)
    slow = run_simulation(fast_config.with_(fast_forward=False), ck,
                          loop_workload, factory)
    assert fast.cycles == slow.cycles
    assert fast.instructions == slow.instructions
    assert fast.counters == slow.counters


def test_fast_forward_invariant_with_divergence(diamond_workload, fast_config):
    ck = compile_kernel(diamond_workload.kernel())
    fast = run_simulation(fast_config, ck, diamond_workload,
                          lambda sm, sh: BaselineRF())
    slow = run_simulation(fast_config.with_(fast_forward=False), ck,
                          diamond_workload, lambda sm, sh: BaselineRF())
    assert fast.counters == slow.counters
