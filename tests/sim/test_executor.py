from repro.isa import Imm, Instruction, Opcode, Pred, Reg
from repro.sim import LaneValues, Warp
from repro.sim.executor import compute_result, read_operand


def warp():
    w = Warp(wid=0, shard_id=0, cta_id=0, entry_pc=0, sentinel_pc=10)
    w.write_reg(Reg(0), LaneValues.affine(0, 1))  # thread id
    w.write_reg(Reg(1), LaneValues.uniform(100))
    w.write_reg(Reg(2), LaneValues.random(9))
    return w


def insn(op, dst, *srcs):
    return Instruction(op, (Reg(dst),), tuple(srcs))


class TestReadOperand:
    def test_register(self):
        assert read_operand(warp(), Reg(1)).base == 100

    def test_immediate(self):
        v = read_operand(warp(), Imm(7))
        assert v.is_uniform and v.base == 7

    def test_predicate_is_opaque(self):
        assert read_operand(warp(), Pred(0)).is_random


class TestSemantics:
    def test_mov_passthrough(self):
        w = warp()
        r = compute_result(w, insn(Opcode.MOV, 3, Reg(1)))
        assert r == w.read_reg(Reg(1))

    def test_iadd_affine(self):
        r = compute_result(warp(), insn(Opcode.IADD, 3, Reg(0), Imm(5)))
        assert r.is_affine and r.base == 5 and r.stride == 1

    def test_imad(self):
        # tid * 4 + 100: affine stride 4.
        r = compute_result(warp(), insn(Opcode.IMAD, 3, Reg(0), Imm(4), Reg(1)))
        assert r.is_affine and r.stride == 4 and r.base == 100

    def test_shl(self):
        r = compute_result(warp(), insn(Opcode.SHL, 3, Reg(0), Imm(3)))
        assert r.stride == 8

    def test_float_ops_preserve_structure(self):
        r = compute_result(warp(), insn(Opcode.FADD, 3, Reg(0), Reg(1)))
        assert r.is_affine

    def test_xor_is_opaque(self):
        r = compute_result(warp(), insn(Opcode.XOR, 3, Reg(0), Reg(1)))
        assert r.is_random

    def test_sfu_is_opaque_but_uniform_preserving(self):
        r = compute_result(warp(), insn(Opcode.RSQ, 3, Reg(1)))
        assert r.is_uniform  # uniform in, uniform out
        r2 = compute_result(warp(), insn(Opcode.RSQ, 3, Reg(0)))
        assert r2.is_random

    def test_random_input_poisons(self):
        r = compute_result(warp(), insn(Opcode.IADD, 3, Reg(2), Imm(1)))
        assert r.is_random

    def test_deterministic(self):
        a = compute_result(warp(), insn(Opcode.FDIV, 3, Reg(0), Reg(1)))
        b = compute_result(warp(), insn(Opcode.FDIV, 3, Reg(0), Reg(1)))
        assert a == b


class TestPlanCache:
    """The content-keyed global plan store (``executor._PLAN_CACHE``)."""

    def test_equal_instructions_share_one_plan(self):
        from repro.sim import executor
        a = insn(Opcode.IADD, 3, Reg(0), Imm(5))
        b = insn(Opcode.IADD, 3, Reg(0), Imm(5))
        assert a is not b and a == b
        compute_result(warp(), a)
        compute_result(warp(), b)
        assert a.exec_plan is b.exec_plan
        assert executor._PLAN_CACHE[a] is a.exec_plan

    def test_distinct_instructions_get_distinct_plans(self):
        a = insn(Opcode.IADD, 3, Reg(0), Imm(5))
        b = insn(Opcode.IADD, 3, Reg(0), Imm(6))
        compute_result(warp(), a)
        compute_result(warp(), b)
        assert a.exec_plan is not b.exec_plan

    def test_unpickled_instruction_rejoins_cache(self):
        import pickle
        a = insn(Opcode.IMAD, 3, Reg(0), Imm(4), Reg(1))
        compute_result(warp(), a)
        b = pickle.loads(pickle.dumps(a))
        assert b.exec_plan is None  # closures never travel
        r = compute_result(warp(), b)
        assert b.exec_plan is a.exec_plan
        assert r == compute_result(warp(), a)

    def test_cache_cap_clears_instead_of_growing(self):
        from repro.sim import executor
        before = dict(executor._PLAN_CACHE)
        try:
            executor._PLAN_CACHE.clear()
            executor._PLAN_CACHE_MAX, saved = 4, executor._PLAN_CACHE_MAX
            try:
                for k in range(9):
                    compute_result(warp(), insn(Opcode.IADD, 3, Reg(0), Imm(k)))
                assert len(executor._PLAN_CACHE) <= 4
            finally:
                executor._PLAN_CACHE_MAX = saved
        finally:
            executor._PLAN_CACHE.clear()
            executor._PLAN_CACHE.update(before)
