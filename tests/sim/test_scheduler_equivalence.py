"""Property tests: the incremental (event-driven) schedulers issue in the
exact order of their naive per-cycle-scan references.

A randomized *trace* gives every warp a little program of abstract
instructions — ``free`` (no hazard), ``alu``/``mem`` (scoreboard-block the
warp for a latency), ``ext`` (block until another warp exits; the stand-in
for barrier releases and CTA-admission wakes, which arrive *mid-scan*).
The driver replicates the shard's issue loop semantics on both sides:

* naive side: iterate ``order(cycle)``, attempt every candidate, failures
  are side-effect free except ``notify_long_stall`` on memory blocks;
* event side: ``begin_cycle`` → timed wake-ups → ``begin_scan`` /
  ``next_candidate``, parking failed candidates out of the ready set and
  re-inserting them only on the unblocking event (including the mid-scan
  ``_Scan.on_wake`` path for exits that release ``ext``-blocked warps).

Both sides must produce identical issue traces and identical final warp
state.  This pins the quirky corners documented in
:mod:`tests.sim.naive_schedulers` (GTO greedy handoff double-yield, LRR
mid-scan ring rebasing, two-level promote-at-next-cycle timing).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from hypothesis import given, settings, strategies as st

from repro.sim.scheduler import (
    GTOScheduler,
    LRRScheduler,
    TwoLevelScheduler,
    WarpScheduler,
)
from repro.sim.warp import Warp

from .naive_schedulers import (
    NaiveGTOScheduler,
    NaiveLRRScheduler,
    NaiveTwoLevelScheduler,
)

_INF = 10**9
_ISSUE_WIDTH = 2
_CYCLES = 240

#: (kind, arg) abstract instructions; arg is a latency (alu/mem) or the
#: wid whose exit releases the block (ext).
Insn = Tuple[str, int]


@st.composite
def traces(draw):
    n = draw(st.integers(min_value=2, max_value=10))
    plans: List[List[Insn]] = []
    for _ in range(n):
        m = draw(st.integers(min_value=0, max_value=10))
        plan: List[Insn] = []
        for _ in range(m):
            kind = draw(
                st.sampled_from(["free", "alu", "alu", "mem", "mem", "ext"])
            )
            if kind == "alu":
                plan.append(("alu", draw(st.integers(1, 5))))
            elif kind == "mem":
                plan.append(("mem", draw(st.integers(2, 30))))
            elif kind == "ext":
                plan.append(("ext", draw(st.integers(0, n - 1))))
            else:
                plan.append(("free", 0))
        plans.append(plan)
    return n, plans


def _make_warps(n: int) -> List[Warp]:
    return [
        Warp(wid=i, shard_id=0, cta_id=0, entry_pc=0, sentinel_pc=999)
        for i in range(n)
    ]


class _Side:
    """One scheduler driven through a trace with shard-equivalent rules."""

    def __init__(self, sched: WarpScheduler, plans: List[List[Insn]],
                 event_driven: bool):
        self.sched = sched
        self.warps = sched.warps
        self.plans = plans
        n = len(self.warps)
        self.ip = [0] * n
        self.block_until = [0] * n
        self.block_kind: List[Optional[str]] = [None] * n
        self.waiters: Dict[int, List[int]] = {}
        self.event_driven = event_driven
        self.trace: List[Tuple[int, int]] = []
        self.scan = None
        self.now = 0
        if event_driven:
            #: wid -> wake cycle (_INF: woken only by an external event)
            self.parked: Dict[int, int] = {}
            sched.on_promote = self._on_promote

    # -- shared issue-attempt semantics (mirrors Shard._try_issue) ----------

    def _attempt(self, w: Warp, cycle: int) -> str:
        wid = w.wid
        if w.exited:
            return "exited"
        if self.block_kind[wid] == "ext" and cycle < self.block_until[wid]:
            return "barrier"
        if cycle < w.stall_until:
            return "pipeline"
        if cycle < self.block_until[wid]:
            if self.block_kind[wid] == "mem":
                # The shard demotes on memory-blocked attempts.
                self.sched.notify_long_stall(w)
                return "mem_pending"
            return "scoreboard"
        # Issue.
        self.trace.append((cycle, wid))
        plan = self.plans[wid]
        ip = self.ip[wid]
        if ip >= len(plan):
            w.exited = True
            self._release_waiters(w, cycle)
            return "issued"
        kind, arg = plan[ip]
        self.ip[wid] = ip + 1
        if kind in ("alu", "mem"):
            self.block_until[wid] = cycle + arg
            self.block_kind[wid] = kind
        elif kind == "ext":
            if arg != wid and not self.warps[arg].exited:
                self.block_until[wid] = _INF
                self.block_kind[wid] = "ext"
                self.waiters.setdefault(arg, []).append(wid)
        return "issued"

    def _release_waiters(self, w: Warp, cycle: int) -> None:
        for wid in self.waiters.pop(w.wid, ()):
            if self.block_kind[wid] == "ext":
                self.block_until[wid] = 0
                self.block_kind[wid] = None
                if self.event_driven:
                    # Mid-scan wake, like a barrier release / CTA admission.
                    self._reevaluate(self.warps[wid], cycle)

    # -- event-side park/wake bookkeeping (mirrors Shard) -------------------

    def _classify(self, w: Warp, cycle: int) -> str:
        wid = w.wid
        if w.exited:
            return "exited"
        if self.block_kind[wid] == "ext" and cycle < self.block_until[wid]:
            return "barrier"
        if cycle < w.stall_until:
            return "pipeline"
        if cycle < self.block_until[wid]:
            return "mem_pending" if self.block_kind[wid] == "mem" else "scoreboard"
        return "none"

    def _make_ready(self, w: Warp) -> None:
        w.ready = True
        del self.parked[w.wid]
        self.sched.notify_ready(w)
        if self.scan is not None:
            self.scan.on_wake(w)

    def _wake_cycle(self, w: Warp, bin_: str) -> int:
        if bin_ == "pipeline":
            return w.stall_until
        if bin_ in ("scoreboard", "mem_pending"):
            return self.block_until[w.wid]
        return _INF  # exited / barrier: woken externally or never

    def _park(self, w: Warp, bin_: str) -> None:
        w.ready = False
        self.parked[w.wid] = self._wake_cycle(w, bin_)
        self.sched.notify_blocked(w)
        if bin_ == "exited":
            self.sched.notify_exit(w)

    def _repark(self, w: Warp, bin_: str) -> None:
        self.parked[w.wid] = self._wake_cycle(w, bin_)

    def _maybe_park(self, w: Warp, bin_: str) -> None:
        if (
            bin_ == "mem_pending"
            and self.sched.demotes
            and self.sched.eligible(w)
        ):
            return  # stays ready so the demotion fires at a seed-timed scan
        self._park(w, bin_)

    def _reevaluate(self, w: Warp, cycle: int) -> None:
        if w.ready:
            return
        wid = w.wid
        if (
            not w.exited
            and cycle >= w.stall_until
            and cycle >= self.block_until[wid]
        ):
            self._make_ready(w)
            return
        bin_ = self._classify(w, cycle)
        if (
            bin_ == "mem_pending"
            and self.sched.demotes
            and self.sched.eligible(w)
        ):
            self._make_ready(w)
            return
        self._repark(w, bin_)

    def _on_promote(self, w: Warp) -> None:
        if not w.ready:
            self._repark(w, self._classify(w, self.now))

    # -- per-cycle loops ----------------------------------------------------

    def cycle(self, cycle: int) -> None:
        if self.event_driven:
            self._cycle_event(cycle)
        else:
            self._cycle_naive(cycle)

    def _cycle_naive(self, cycle: int) -> None:
        budget = _ISSUE_WIDTH
        for w in self.sched.order(cycle):
            if budget == 0:
                break
            if self._attempt(w, cycle) == "issued":
                budget -= 1
                self.sched.notify_issue(w, cycle)
                if budget > 0 and self._attempt(w, cycle) == "issued":
                    budget -= 1

    def _cycle_event(self, cycle: int) -> None:
        self.now = cycle
        self.sched.begin_cycle(cycle)
        due = sorted(
            (t, wid) for wid, t in self.parked.items() if t <= cycle
        )
        for t, wid in due:
            if self.parked.get(wid) == t:
                self._reevaluate(self.warps[wid], cycle)
        if not any(w.ready for w in self.warps):
            return
        self.scan = self.sched.begin_scan(cycle)
        budget = _ISSUE_WIDTH
        while budget > 0:
            w = self.scan.next_candidate()
            if w is None:
                break
            res = self._attempt(w, cycle)
            if res == "issued":
                budget -= 1
                self.sched.notify_issue(w, cycle)
                if budget > 0 and self._attempt(w, cycle) == "issued":
                    budget -= 1
                if w.exited:
                    self._park(w, "exited")
            else:
                self._maybe_park(w, res)
        self.scan = None


def _run_pair(naive_factory, incr_factory, n: int,
              plans: List[List[Insn]]) -> None:
    naive = _Side(naive_factory(_make_warps(n)), plans, event_driven=False)
    incr = _Side(incr_factory(_make_warps(n)), plans, event_driven=True)
    for cycle in range(_CYCLES):
        naive.cycle(cycle)
        incr.cycle(cycle)
        assert naive.trace == incr.trace, f"diverged at cycle {cycle}"
    for a, b in zip(naive.warps, incr.warps):
        assert a.exited == b.exited, a.wid
        assert a.last_issue_cycle == b.last_issue_cycle, a.wid
        assert a.stall_until == b.stall_until, a.wid
    assert naive.ip == incr.ip
    assert naive.block_until == incr.block_until


@settings(deadline=None, max_examples=60)
@given(traces())
def test_gto_matches_naive(trace):
    n, plans = trace
    _run_pair(NaiveGTOScheduler, GTOScheduler, n, plans)


@settings(deadline=None, max_examples=60)
@given(traces())
def test_lrr_matches_naive(trace):
    n, plans = trace
    _run_pair(NaiveLRRScheduler, LRRScheduler, n, plans)


@settings(deadline=None, max_examples=60)
@given(traces())
def test_two_level_matches_naive(trace):
    n, plans = trace
    active = 4

    def naive(warps):
        return NaiveTwoLevelScheduler(warps, active_size=active)

    def incr(warps):
        return TwoLevelScheduler(warps, active_size=active)

    _run_pair(naive, incr, n, plans)


def test_gto_greedy_handoff_double_yield():
    """The seed quirk, pinned deterministically: when the greedy warp
    stalls and another warp takes greediness mid-scan, the *old* greedy
    comes up again at its sorted position in the same cycle."""
    n = 3
    # warp0 (greedy) blocks; warp1 issues and becomes greedy; warp0 is no
    # longer filtered as greedy and gets a second attempt at its sorted
    # position — where it fails again, side-effect free.
    plans = [[("alu", 4), ("free", 0)], [("free", 0)] * 3, [("free", 0)] * 3]
    _run_pair(NaiveGTOScheduler, GTOScheduler, n, plans)


def test_lrr_midscan_rebase():
    """LRR reads the ring cursor live: an issue mid-scan rebases the ring."""
    plans = [[("mem", 10), ("free", 0)], [("free", 0)] * 4,
             [("alu", 2)] * 3, [("free", 0)] * 2]
    _run_pair(NaiveLRRScheduler, LRRScheduler, 4, plans)


def test_two_level_midscan_refill_keeps_snapshot_positions():
    """Pinned regression (found by Hypothesis): warp0 exits mid-scan, then
    warp1's demotion triggers a ``_refill`` that purges the exited warp0
    from the live active list.  A live-list walk saw warp2 shift from
    index 2 to index 0 — behind the cursor — and never attempted it; the
    naive reference iterates the cycle-start snapshot and issues warp2 in
    the same cycle."""
    plans = [[("alu", 1)], [("mem", 2)], []]
    _run_pair(NaiveTwoLevelScheduler, TwoLevelScheduler, 3, plans)


def test_two_level_promotes_next_cycle_after_exit():
    """An exit frees an active-pool slot, but the promotion (and its
    pipeline refill penalty) lands at the next cycle start."""
    plans = [[("free", 0)], [("mem", 20)] * 2, [("free", 0)] * 4,
             [("free", 0)] * 4, [("free", 0)] * 6]

    def naive(warps):
        return NaiveTwoLevelScheduler(warps, active_size=2)

    def incr(warps):
        return TwoLevelScheduler(warps, active_size=2)

    _run_pair(naive, incr, 5, plans)


def test_ext_release_wakes_midscan():
    """A warp blocked on another warp's exit is woken mid-scan (the
    barrier-release / CTA-admission path) and must only be attempted if
    the naive scan would still have reached it."""
    plans = [[("ext", 2), ("free", 0), ("free", 0)],
             [("ext", 2), ("free", 0)],
             [("free", 0)],
             [("alu", 3), ("free", 0)]]
    for naive_f, incr_f in [
        (NaiveGTOScheduler, GTOScheduler),
        (NaiveLRRScheduler, LRRScheduler),
    ]:
        _run_pair(naive_f, incr_f, 4, plans)
