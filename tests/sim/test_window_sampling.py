"""Window-series sampling must not lose counts across fast-forward skips."""

from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.sim import run_simulation


def run(workload, config, **kwargs):
    ck = compile_kernel(workload.kernel())
    return run_simulation(config, ck, workload, lambda sm, sh: BaselineRF(),
                          **kwargs)


def test_series_deltas_sum_to_totals(loop_workload, fast_config):
    stats = run(loop_workload, fast_config,
                window_series=("rf_read", "rf_write"))
    for name in ("rf_read", "rf_write"):
        sampled = sum(stats.window_series[name])
        total = stats.counter(name)
        # Only the final partial window may be missing (activity is bursty,
        # so the tail can exceed the per-window average but never a full
        # window's worth more than the largest observed burst).
        assert 0 <= total - sampled
        if stats.window_series[name]:
            burst = max(stats.window_series[name])
            assert total - sampled <= max(burst, total * 0.25)


def test_series_identical_with_and_without_fast_forward(loop_workload,
                                                        fast_config):
    fast = run(loop_workload, fast_config, window_series=("rf_read",))
    slow = run(loop_workload, fast_config.with_(fast_forward=False),
               window_series=("rf_read",))
    assert fast.window_series == slow.window_series


def test_working_set_samples_identical_with_and_without_fast_forward(
        loop_workload, fast_config):
    # The sampling block is shared between the normal per-cycle path and the
    # fast-forward catch-up path; a desync between the two would show up as
    # differing sample series.
    cfg = fast_config.with_(track_working_set=True)
    fast = run(loop_workload, cfg, window_series=("rf_read",))
    slow = run(loop_workload, cfg.with_(fast_forward=False),
               window_series=("rf_read",))
    assert fast.working_set_samples == slow.working_set_samples
    assert fast.window_series == slow.window_series
    assert fast.cycles == slow.cycles


def test_window_length_matches_cycle_count(loop_workload, fast_config):
    stats = run(loop_workload, fast_config, window_series=("rf_read",))
    expected = stats.cycles // fast_config.working_set_window
    assert abs(len(stats.window_series["rf_read"]) - expected) <= 1
