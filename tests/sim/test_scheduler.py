import pytest

from repro.sim import GTOScheduler, LRRScheduler, TwoLevelScheduler, Warp, make_scheduler


def warps(n):
    return [
        Warp(wid=i, shard_id=0, cta_id=0, entry_pc=0, sentinel_pc=100)
        for i in range(n)
    ]


class TestGTO:
    def test_greedy_first(self):
        ws = warps(4)
        s = GTOScheduler(ws)
        s.notify_issue(ws[2], cycle=5)
        order = list(s.order(6))
        assert order[0] is ws[2]

    def test_greedy_sticks_while_issuing(self):
        ws = warps(4)
        s = GTOScheduler(ws)
        s.notify_issue(ws[1], cycle=1)   # greedy = w1
        s.notify_issue(ws[1], cycle=2)   # w1 keeps issuing
        s.notify_issue(ws[3], cycle=2)   # second slot, same cycle
        assert list(s.order(3))[0] is ws[1]  # w1 stays greedy

    def test_greedy_handoff_on_stall(self):
        ws = warps(4)
        s = GTOScheduler(ws)
        s.notify_issue(ws[1], cycle=1)
        # Cycle 2: w1 did not issue; w3 did -> greediness moves.
        s.notify_issue(ws[3], cycle=2)
        assert list(s.order(3))[0] is ws[3]

    def test_fallback_is_least_recently_issued(self):
        ws = warps(4)
        s = GTOScheduler(ws)
        for i, w in enumerate(ws):
            w.last_issue_cycle = 10 - i
        order = [w.wid for w in s.order(20)]
        tail = [w for w in order if w != order[0]]
        assert tail == sorted(
            tail, key=lambda wid: ws[wid].last_issue_cycle
        )

    def test_done_greedy_skipped(self):
        ws = warps(2)
        s = GTOScheduler(ws)
        s.notify_issue(ws[0], 1)
        ws[0].exited = True
        assert list(s.order(2))[0] is ws[1]


class TestLRR:
    def test_rotates_after_issue(self):
        ws = warps(3)
        s = LRRScheduler(ws)
        assert list(s.order(0))[0] is ws[0]
        s.notify_issue(ws[0], 0)
        assert list(s.order(1))[0] is ws[1]

    def test_covers_all(self):
        ws = warps(3)
        s = LRRScheduler(ws)
        assert {w.wid for w in s.order(0)} == {0, 1, 2}


class TestTwoLevel:
    def test_active_pool_limited(self):
        ws = warps(16)
        s = TwoLevelScheduler(ws, active_size=4)
        assert len(list(s.order(0))) == 4

    def test_demotion_promotes_pending(self):
        ws = warps(16)
        s = TwoLevelScheduler(ws, active_size=4)
        first = list(s.order(0))
        s.notify_long_stall(first[0])
        second = list(s.order(1))
        assert first[0] not in second
        assert len(second) == 4

    def test_promoted_warp_pays_refill_penalty(self):
        ws = warps(16)
        s = TwoLevelScheduler(ws, active_size=4)
        list(s.order(10))  # establish current cycle
        s.notify_long_stall(ws[0])
        promoted = list(s.order(10))[-1]
        assert promoted.stall_until >= 10 + TwoLevelScheduler.PROMOTE_PENALTY

    def test_done_warps_drain_from_pool(self):
        ws = warps(6)
        s = TwoLevelScheduler(ws, active_size=4)
        for w in ws[:4]:
            w.exited = True
        active = list(s.order(0))
        assert all(not w.done for w in active)
        assert len(active) == 2

    def test_demoting_unknown_warp_is_noop(self):
        ws = warps(4)
        s = TwoLevelScheduler(ws, active_size=2)
        outsider = warps(1)[0]
        s.notify_long_stall(outsider)  # no crash


class TestFactory:
    @pytest.mark.parametrize("kind,cls", [
        ("gto", GTOScheduler),
        ("lrr", LRRScheduler),
        ("two_level", TwoLevelScheduler),
    ])
    def test_kinds(self, kind, cls):
        assert isinstance(make_scheduler(kind, warps(2)), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheduler("fifo", warps(2))
