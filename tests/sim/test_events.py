import pytest

from repro.sim import EventWheel


class TestScheduling:
    def test_fires_at_exact_cycle(self):
        w = EventWheel()
        fired = []
        w.at(3, lambda: fired.append(w.now))
        for _ in range(5):
            w.tick()
        assert fired == [3]

    def test_after_relative(self):
        w = EventWheel()
        fired = []
        w.tick()
        w.after(2, lambda: fired.append(w.now))
        w.tick()
        w.tick()
        assert fired == [3]

    def test_past_scheduling_rejected(self):
        w = EventWheel()
        w.tick()
        with pytest.raises(ValueError):
            w.at(1, lambda: None)
        with pytest.raises(ValueError):
            w.at(0, lambda: None)

    def test_after_clamps_to_next_cycle(self):
        w = EventWheel()
        fired = []
        w.after(0, lambda: fired.append(w.now))
        w.tick()
        assert fired == [1]

    def test_multiple_events_same_cycle_in_order(self):
        w = EventWheel()
        fired = []
        w.at(1, lambda: fired.append("a"))
        w.at(1, lambda: fired.append("b"))
        w.tick()
        assert fired == ["a", "b"]

    def test_next_event_cycle(self):
        w = EventWheel()
        assert w.next_event_cycle() is None
        w.at(7, lambda: None)
        w.at(4, lambda: None)
        assert w.next_event_cycle() == 4
        for _ in range(4):
            w.tick()
        assert w.next_event_cycle() == 7
        for _ in range(3):
            w.tick()
        assert w.next_event_cycle() is None

    def test_pending_count(self):
        w = EventWheel()
        w.at(5, lambda: None)
        w.at(6, lambda: None)
        assert w.pending_events == 2
        for _ in range(6):
            w.tick()
        assert w.pending_events == 0
