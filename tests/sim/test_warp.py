import pytest

from repro.isa import Imm, Instruction, Opcode, Pred, PredGuard, Reg
from repro.sim import FULL_MASK, LaneValues, Warp


def make_warp():
    return Warp(wid=0, shard_id=0, cta_id=0, entry_pc=0, sentinel_pc=100)


def mov(dst=0, guard=None):
    return Instruction(Opcode.MOV, (Reg(dst),), (Imm(1),), guard=guard)


class TestSIMTStack:
    def test_initial_state(self):
        w = make_warp()
        assert w.pc == 0
        assert w.active_mask == FULL_MASK
        assert len(w.stack) == 1

    def test_advance_and_jump(self):
        w = make_warp()
        w.advance()
        assert w.pc == 1
        w.jump(17)
        assert w.pc == 17

    def test_diverge_runs_taken_first(self):
        w = make_warp()
        w.jump(5)
        w.diverge(reconv_pc=20, taken_pc=10, taken_mask=0xF,
                  fallthrough_pc=6, nottaken_mask=FULL_MASK & ~0xF)
        assert w.pc == 10
        assert w.active_mask == 0xF

    def test_reconvergence_restores_mask(self):
        w = make_warp()
        w.jump(5)
        w.diverge(20, 10, 0xF, 6, FULL_MASK & ~0xF)
        w.jump(20)  # taken path reaches reconvergence
        w.maybe_reconverge()
        assert w.pc == 6  # not-taken path resumes
        assert w.active_mask == FULL_MASK & ~0xF
        w.jump(20)
        w.maybe_reconverge()
        assert w.pc == 20
        assert w.active_mask == FULL_MASK

    def test_nested_divergence(self):
        w = make_warp()
        w.diverge(30, 10, 0xFF, 1, FULL_MASK & ~0xFF)
        w.diverge(20, 12, 0xF, 11, 0xF0)
        assert w.active_mask == 0xF
        w.jump(20)
        w.maybe_reconverge()
        assert w.active_mask == 0xF0
        w.jump(20)
        w.maybe_reconverge()
        # The outer taken entry (0xFF) became the inner reconvergence entry.
        assert w.pc == 20 and w.active_mask == 0xFF
        w.jump(30)
        w.maybe_reconverge()
        assert w.active_mask == FULL_MASK & ~0xFF


class TestRegisters:
    def test_default_zero(self):
        w = make_warp()
        assert w.read_reg(Reg(5)) == LaneValues.uniform(0)

    def test_full_write(self):
        w = make_warp()
        w.write_reg(Reg(1), LaneValues.uniform(7))
        assert w.read_reg(Reg(1)).base == 7

    def test_partial_write_destroys_structure(self):
        w = make_warp()
        w.write_reg(Reg(1), LaneValues.uniform(7))
        w.write_reg(Reg(1), LaneValues.uniform(9), full=False)
        assert w.read_reg(Reg(1)).is_random

    def test_partial_write_same_value_noop(self):
        w = make_warp()
        v = LaneValues.uniform(7)
        w.write_reg(Reg(1), v)
        w.write_reg(Reg(1), v, full=False)
        assert w.read_reg(Reg(1)) == v


class TestPredicatesAndGuards:
    def test_guard_mask_plain(self):
        w = make_warp()
        assert w.guard_mask(mov()) == FULL_MASK

    def test_guard_mask_positive_and_negated(self):
        w = make_warp()
        w.write_pred(Pred(0), 0xFF)
        g = PredGuard(Pred(0))
        ng = PredGuard(Pred(0), negate=True)
        assert w.guard_mask(mov(guard=g)) == 0xFF
        assert w.guard_mask(mov(guard=ng)) == FULL_MASK & ~0xFF


class TestScoreboard:
    def test_raw_blocks(self):
        w = make_warp()
        producer = mov(dst=1)
        consumer = Instruction(Opcode.IADD, (Reg(2),), (Reg(1), Imm(1)))
        w.mark_pending(producer)
        assert not w.scoreboard_ready(consumer)
        w.clear_pending(producer)
        assert w.scoreboard_ready(consumer)

    def test_waw_blocks(self):
        w = make_warp()
        w.mark_pending(mov(dst=1))
        assert not w.scoreboard_ready(mov(dst=1))

    def test_pred_dependence_blocks(self):
        w = make_warp()
        setp = Instruction(Opcode.SETP, (Pred(0),), (Reg(1), Imm(0)))
        guarded = mov(guard=PredGuard(Pred(0)))
        w.mark_pending(setp)
        assert not w.scoreboard_ready(guarded)
        w.clear_pending(setp)
        assert w.scoreboard_ready(guarded)

    def test_inflight_counting(self):
        w = make_warp()
        a, b = mov(dst=1), mov(dst=2)
        w.mark_pending(a)
        w.mark_pending(b)
        assert w.inflight == 2
        w.clear_pending(a)
        w.clear_pending(b)
        assert w.inflight == 0
        assert not w.pending_regs

    def test_double_pending_same_reg(self):
        w = make_warp()
        w.mark_pending(mov(dst=1))
        w.mark_pending(mov(dst=1))
        w.clear_pending(mov(dst=1))
        assert not w.scoreboard_ready(mov(dst=1))
        w.clear_pending(mov(dst=1))
        assert w.scoreboard_ready(mov(dst=1))


def test_runnable_flags():
    w = make_warp()
    assert w.runnable
    w.at_barrier = True
    assert not w.runnable
    w.at_barrier = False
    w.exited = True
    assert not w.runnable and w.done
