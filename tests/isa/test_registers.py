import pytest

from repro.isa import Imm, Pred, Reg, REGISTER_BYTES, WARP_WIDTH


class TestReg:
    def test_repr(self):
        assert repr(Reg(5)) == "R5"

    def test_equality_and_hash(self):
        assert Reg(3) == Reg(3)
        assert Reg(3) != Reg(4)
        assert len({Reg(1), Reg(1), Reg(2)}) == 2

    def test_ordering(self):
        assert Reg(1) < Reg(2)
        assert sorted([Reg(5), Reg(0), Reg(3)]) == [Reg(0), Reg(3), Reg(5)]

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Reg(-1)

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Reg(1).index = 2  # type: ignore[misc]


class TestPred:
    def test_repr(self):
        assert repr(Pred(0)) == "P0"

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            Pred(-2)

    def test_distinct_from_reg(self):
        assert Pred(1) != Reg(1)


class TestImm:
    def test_repr(self):
        assert repr(Imm(42)) == "#42"

    def test_negative_allowed(self):
        assert Imm(-1).value == -1


def test_geometry_constants():
    assert WARP_WIDTH == 32
    assert REGISTER_BYTES == 128
