from repro.isa import FuncUnit, Opcode, OPCODE_INFO


def test_every_opcode_has_info():
    for op in Opcode:
        assert op in OPCODE_INFO
        assert op.info.latency >= 1


def test_memory_classification():
    assert Opcode.LDG.info.is_load
    assert Opcode.LDG.is_global_load
    assert Opcode.STG.info.is_store
    assert not Opcode.LDS.is_global_load
    assert Opcode.LDS.is_memory
    assert not Opcode.IADD.is_memory


def test_control_classification():
    assert Opcode.BRA.info.is_branch
    assert Opcode.BAR.info.is_barrier
    assert Opcode.EXIT.info.is_exit
    assert Opcode.BRA.info.unit is FuncUnit.CTRL


def test_sfu_slower_than_alu():
    assert Opcode.RSQ.info.latency > Opcode.IADD.info.latency
    assert Opcode.RSQ.info.unit is FuncUnit.SFU


def test_flags_are_exclusive():
    for op in Opcode:
        info = op.info
        flags = [info.is_load, info.is_store, info.is_branch,
                 info.is_barrier, info.is_exit]
        assert sum(flags) <= 1
