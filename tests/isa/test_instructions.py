import pytest

from repro.isa import Imm, Instruction, Opcode, Pred, PredGuard, Reg


def iadd(dst, a, b):
    return Instruction(Opcode.IADD, (Reg(dst),), (Reg(a), Reg(b)))


class TestValidation:
    def test_branch_requires_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.BRA)

    def test_non_branch_rejects_target(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, (Reg(0),), (Reg(1),), target="bb0")

    def test_immediate_destination_rejected(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.IADD, (Imm(1),), (Reg(0),))


class TestAccessors:
    def test_reg_srcs_and_dsts(self):
        insn = Instruction(
            Opcode.IMAD, (Reg(0),), (Reg(1), Imm(3), Reg(2))
        )
        assert insn.reg_dsts == (Reg(0),)
        assert insn.reg_srcs == (Reg(1), Reg(2))
        assert insn.regs == (Reg(1), Reg(2), Reg(0))

    def test_pred_dsts(self):
        insn = Instruction(Opcode.SETP, (Pred(0),), (Reg(1), Imm(0)))
        assert insn.pred_dsts == (Pred(0),)
        assert insn.reg_dsts == ()

    def test_guard_counts_as_pred_src(self):
        guard = PredGuard(Pred(2), negate=True)
        insn = Instruction(Opcode.MOV, (Reg(0),), (Imm(1),), guard=guard)
        assert Pred(2) in insn.pred_srcs
        assert insn.is_guarded

    def test_unguarded(self):
        assert not iadd(0, 1, 2).is_guarded


class TestRepr:
    def test_plain(self):
        assert "iadd" in repr(iadd(0, 1, 2))

    def test_guard_repr(self):
        guard = PredGuard(Pred(1), negate=True)
        insn = Instruction(Opcode.MOV, (Reg(0),), (Imm(1),), guard=guard)
        assert "@!P1" in repr(insn)

    def test_branch_repr(self):
        insn = Instruction(Opcode.BRA, target="loop")
        assert "loop" in repr(insn)


def test_instructions_hashable_and_tagged():
    a = Instruction(Opcode.MOV, (Reg(0),), (Imm(1),), tag="x")
    b = Instruction(Opcode.MOV, (Reg(0),), (Imm(1),), tag="y")
    assert a != b
    assert len({a, b}) == 2
