import pytest

from repro.isa import Imm, KernelBuilder, Opcode, Pred, Reg


class TestOperandAllocation:
    def test_fresh_single(self):
        b = KernelBuilder("k")
        r = b.fresh()
        assert isinstance(r, Reg)

    def test_fresh_multiple_distinct(self):
        b = KernelBuilder("k")
        regs = b.fresh(5)
        assert len(set(regs)) == 5

    def test_fixed_reg_reserves_range(self):
        b = KernelBuilder("k")
        b.reg(3)
        r = b.fresh()
        assert r.index > 3

    def test_fresh_pred(self):
        b = KernelBuilder("k")
        assert b.fresh_pred() == Pred(0)
        assert b.fresh_pred() == Pred(1)


class TestBlocks:
    def test_auto_labels(self):
        b = KernelBuilder("k")
        assert b.block() == "bb0"
        assert b.block() == "bb1"

    def test_duplicate_label_rejected(self):
        b = KernelBuilder("k")
        b.block("entry")
        with pytest.raises(ValueError):
            b.block("entry")

    def test_emit_without_block_rejected(self):
        b = KernelBuilder("k")
        with pytest.raises(RuntimeError):
            b.mov(b.fresh(), 0)

    def test_label_then_block_named(self):
        b = KernelBuilder("k")
        b.block("entry")
        b.exit()
        lbl = b.label()
        b.block_named(lbl)
        b.exit()
        k = b.build()
        assert [blk.label for blk in k.blocks] == ["entry", lbl]


class TestEmission:
    def test_immediates_coerced(self):
        b = KernelBuilder("k")
        b.block("entry")
        insn = b.iadd(b.fresh(), b.fresh(), 7)
        assert insn.srcs[1] == Imm(7)

    def test_int_destination_coerced_to_reg(self):
        b = KernelBuilder("k")
        b.block("entry")
        insn = b.mov(5, 1)
        assert insn.reg_dsts == (Reg(5),)

    def test_branch_with_pred(self):
        b = KernelBuilder("k")
        b.block("entry")
        p = b.fresh_pred()
        b.setp(p, b.reg(0), 0)
        insn = b.bra("entry", pred=p, negate=True)
        assert insn.guard is not None
        assert insn.guard.negate

    def test_load_store_shapes(self):
        b = KernelBuilder("k")
        b.block("entry")
        addr = b.reg(0)
        v = b.fresh()
        ld = b.ldg(v, addr, tag="t")
        st = b.stg(addr, v)
        assert ld.opcode is Opcode.LDG and ld.tag == "t"
        assert st.reg_dsts == () and st.reg_srcs == (addr, v)

    def test_guard_helper(self):
        b = KernelBuilder("k")
        b.block("entry")
        p = b.fresh_pred()
        insn = b.mov(b.fresh(), 1, guard=b.guard(p))
        assert insn.guard.pred == p and not insn.guard.negate

    def test_all_alu_helpers_emit(self):
        b = KernelBuilder("k")
        b.block("entry")
        d, a, c = b.fresh(3)
        for helper in (b.iadd, b.isub, b.imul, b.and_, b.or_, b.xor,
                       b.shl, b.shr, b.imin, b.imax, b.fadd, b.fmul,
                       b.fmin, b.fmax, b.fdiv):
            helper(d, a, c)
        b.imad(d, a, c, a)
        b.ffma(d, a, c, a)
        for helper in (b.rcp, b.rsq, b.sin, b.ex2, b.lg2, b.cvt):
            helper(d, a)
        b.exit()
        k = b.build()
        assert k.num_instructions == 24


def test_build_produces_valid_kernel():
    b = KernelBuilder("k")
    b.block("entry")
    b.bar()
    b.exit()
    k = b.build()
    assert k.name == "k"
    assert k.num_instructions == 2
