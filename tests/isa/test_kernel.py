import pytest

from repro.isa import BasicBlock, Instruction, Kernel, KernelBuilder, Opcode, Pred, PredGuard, Reg


def mov(dst, v):
    from repro.isa import Imm
    return Instruction(Opcode.MOV, (Reg(dst),), (Imm(v),))


def bra(target, pred=None):
    guard = PredGuard(Pred(pred)) if pred is not None else None
    return Instruction(Opcode.BRA, guard=guard, target=target)


def exit_():
    return Instruction(Opcode.EXIT)


class TestBasicBlock:
    def test_terminator_detection(self):
        block = BasicBlock("a", [mov(0, 1), exit_()])
        assert block.terminator is not None
        assert not block.falls_through

    def test_no_terminator_falls_through(self):
        block = BasicBlock("a", [mov(0, 1)])
        assert block.terminator is None
        assert block.falls_through

    def test_conditional_branch_falls_through(self):
        block = BasicBlock("a", [bra("t", pred=0)])
        assert block.falls_through

    def test_unconditional_branch_does_not_fall_through(self):
        block = BasicBlock("a", [bra("t")])
        assert not block.falls_through

    def test_control_in_middle_rejected(self):
        with pytest.raises(ValueError):
            BasicBlock("a", [exit_(), mov(0, 1)])


class TestKernelCFG:
    def make(self):
        return Kernel(
            "k",
            [
                BasicBlock("entry", [mov(0, 1), bra("join", pred=0)]),
                BasicBlock("then", [mov(1, 2)]),
                BasicBlock("join", [exit_()]),
            ],
        )

    def test_successors(self):
        k = self.make()
        assert set(k.successors("entry")) == {"join", "then"}
        assert k.successors("then") == ["join"]
        assert k.successors("join") == []

    def test_predecessors(self):
        k = self.make()
        assert set(k.predecessors("join")) == {"entry", "then"}

    def test_entry_and_exits(self):
        k = self.make()
        assert k.entry == "entry"
        assert k.exit_labels == ["join"]

    def test_unknown_branch_target_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [BasicBlock("a", [bra("nowhere")])])

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [BasicBlock("a", [mov(0, 1)]), BasicBlock("a", [exit_()])])

    def test_empty_kernel_rejected(self):
        with pytest.raises(ValueError):
            Kernel("k", [])


class TestPCViews:
    def test_flat_pcs(self):
        k = Kernel(
            "k",
            [
                BasicBlock("a", [mov(0, 1), mov(1, 2)]),
                BasicBlock("b", [exit_()]),
            ],
        )
        assert k.num_instructions == 3
        assert k.block_of_pc(0) == "a"
        assert k.block_of_pc(2) == "b"
        assert k.block_start_pc("b") == 2
        assert k.block_end_pc("a") == 2
        assert list(k.pcs_of_block("a")) == [0, 1]

    def test_iter_pcs(self):
        k = Kernel("k", [BasicBlock("a", [mov(0, 1), exit_()])])
        triples = list(k.iter_pcs())
        assert [t[0] for t in triples] == [0, 1]
        assert all(t[1] == "a" for t in triples)


class TestRegisterStats:
    def test_registers_and_num_regs(self, loop_kernel):
        regs = loop_kernel.registers
        assert regs == sorted(regs)
        assert loop_kernel.num_regs == max(r.index for r in regs) + 1

    def test_has_exit(self, loop_kernel):
        assert loop_kernel.has_exit

    def test_repr(self, loop_kernel):
        assert "loop" in repr(loop_kernel)


def test_builder_and_kernel_agree(loop_kernel):
    # Rebuild through the builder: block boundaries must match CFG edges.
    for block in loop_kernel.blocks:
        for succ in loop_kernel.successors(block.label):
            assert block.label in loop_kernel.predecessors(succ)
