import pytest

from repro.isa import AssemblerError, Opcode, assemble, disassemble

SAMPLE = """
.kernel saxpy
entry:
    ldg   R2, R0
    ldg   R3, R1
    ffma  R4, R2, R3, R2   ; comment
    setp  P0, R4, #0
    @P0 bra loop
    exit
loop:
    mov   R5, #1           // another comment
    @!P1 stg R1, R5
    exit
"""


class TestAssemble:
    def test_name_directive(self):
        k = assemble(SAMPLE)
        assert k.name == "saxpy"

    def test_blocks_and_instructions(self):
        # A control instruction ends a block: the exit after the
        # conditional branch lands in an implicit continuation block.
        k = assemble(SAMPLE)
        labels = [b.label for b in k.blocks]
        assert labels[0] == "entry" and "loop" in labels
        assert len(labels) == 3
        assert len(k.block("entry")) == 5
        assert len(k.block("loop")) == 3

    def test_operand_kinds(self):
        k = assemble(SAMPLE)
        ffma = k.block("entry").instructions[2]
        assert ffma.opcode is Opcode.FFMA
        assert len(ffma.reg_srcs) == 3

    def test_guards(self):
        k = assemble(SAMPLE)
        bra = k.block("entry").instructions[4]
        assert bra.guard is not None and not bra.guard.negate
        stg = k.block("loop").instructions[1]
        assert stg.guard is not None and stg.guard.negate

    def test_mid_block_branch_auto_splits(self):
        k = assemble("entry:\n bra entry\n mov R0, #1\n exit")
        assert len(k.blocks) == 2
        assert len(k.blocks[1]) == 2

    def test_implicit_entry_block(self):
        k = assemble("exit")
        assert k.blocks[0].label == "entry"

    def test_store_has_no_destination(self):
        k = assemble("entry:\n stg R0, R1\n exit")
        st = k.block("entry").instructions[0]
        assert st.reg_dsts == ()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "frobnicate R0, R1",
            "iadd R0, Q1",
            "bra",
            "@X0 mov R0, #1",
            ":",
            "",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(AssemblerError):
            assemble(text)


class TestRoundTrip:
    def test_assemble_disassemble_assemble(self):
        k1 = assemble(SAMPLE)
        text = disassemble(k1)
        k2 = assemble(text)
        assert k1.name == k2.name
        assert k1.num_instructions == k2.num_instructions
        for pc in range(k1.num_instructions):
            a, b = k1.insn_at(pc), k2.insn_at(pc)
            assert a.opcode == b.opcode
            assert a.dsts == b.dsts
            assert a.srcs == b.srcs
            assert a.target == b.target
            assert (a.guard is None) == (b.guard is None)

    def test_builder_kernel_round_trips(self, loop_kernel):
        text = disassemble(loop_kernel)
        k2 = assemble(text)
        assert k2.num_instructions == loop_kernel.num_instructions
        assert [b.label for b in k2.blocks] == [
            b.label for b in loop_kernel.blocks
        ]
