import pytest

from repro.isa import KernelBuilder, Reg, assemble
from repro.isa.validate import (
    KernelValidationError,
    check_kernel,
    validate_kernel,
)


def codes(kernel, **kwargs):
    return [d.code for d in validate_kernel(kernel, **kwargs)]


class TestCleanKernels:
    def test_loop_kernel_clean(self, loop_kernel):
        assert [d for d in validate_kernel(loop_kernel)
                if d.severity == "error"] == []

    def test_rodinia_suite_is_clean(self):
        from repro.workloads import make_workload, workload_names

        for name in workload_names():
            kernel = make_workload(name).kernel()
            errors = [d for d in validate_kernel(kernel)
                      if d.severity == "error"]
            assert errors == [], (name, errors)


class TestFindings:
    def test_unreachable_block(self):
        k = assemble("""
        entry:
            exit
        orphan:
            mov R4, #1
            exit
        """)
        assert "unreachable-block" in codes(k)

    def test_missing_exit(self):
        k = assemble("entry:\n mov R4, #1")
        assert "missing-exit" in codes(k)

    def test_infinite_loop_is_error(self):
        k = assemble("""
        entry:
            mov R4, #0
        spin:
            iadd R4, R4, #1
            bra spin
        """)
        diags = validate_kernel(k)
        assert any(d.code == "no-exit-path" and d.severity == "error"
                   for d in diags)

    def test_read_before_write(self):
        k = assemble("entry:\n iadd R5, R9, #1\n exit")
        assert "read-before-write" in codes(k)

    def test_inputs_suppress_read_warning(self):
        k = assemble("entry:\n iadd R5, R9, #1\n exit")
        assert "read-before-write" not in codes(k, inputs=[Reg(9)])

    def test_pred_before_setp(self):
        k = assemble("entry:\n @P0 mov R4, #1\n exit")
        assert "pred-before-setp" in codes(k)

    def test_untagged_setp(self):
        b = KernelBuilder("k")
        b.block("entry")
        p = b.fresh_pred()
        b.setp(p, b.reg(0), 0)  # no tag
        b.exit()
        assert "untagged-setp" in codes(b.build())

    def test_tagged_setp_clean(self):
        b = KernelBuilder("k")
        b.block("entry")
        p = b.fresh_pred()
        b.setp(p, b.reg(0), 0, tag="cond")
        b.bra("entry", pred=p)
        b.block("next")
        b.exit()
        assert "untagged-setp" not in codes(b.build())


class TestCheckKernel:
    def test_raises_on_error(self):
        k = assemble("entry:\n mov R4, #0\nspin:\n bra spin")
        with pytest.raises(KernelValidationError) as exc:
            check_kernel(k)
        assert "no-exit-path" in str(exc.value)

    def test_warnings_pass_by_default(self):
        k = assemble("entry:\n iadd R5, R9, #1\n exit")
        check_kernel(k)  # warning only

    def test_strict_raises_on_warnings(self):
        k = assemble("entry:\n iadd R5, R9, #1\n exit")
        with pytest.raises(KernelValidationError):
            check_kernel(k, strict=True)

    def test_diagnostic_render(self):
        k = assemble("entry:\n @P0 mov R4, #1\n exit")
        diag = validate_kernel(k)[0]
        assert "[" in diag.render() and diag.code in diag.render()
