"""Cross-cutting integration invariants over the full pipeline.

These run three structurally different benchmarks end-to-end under every
backend and check the conservation laws that tie the subsystems together.
"""

import pytest

from repro.compiler import compile_kernel
from repro.harness import SuiteRunner
from repro.regless import ReglessStorage
from repro.sim import GPUConfig, run_simulation
from repro.workloads import make_workload

NAMES = ["bfs", "hotspot", "streamcluster"]
BACKENDS = ["baseline", "rfh", "rfv", "regless"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(config=GPUConfig(warps_per_sm=16, schedulers_per_sm=2,
                                        cta_size_warps=8))


@pytest.mark.parametrize("name", NAMES)
class TestConservation:
    def test_instruction_counts_identical_across_backends(self, runner, name):
        counts = {
            b: runner.run(name, b).stats.instructions for b in BACKENDS
        }
        assert len(set(counts.values())) == 1, counts

    def test_warps_all_finish_everywhere(self, runner, name):
        for b in BACKENDS:
            stats = runner.run(name, b).stats
            assert stats.finished, (name, b)
            assert stats.warps_done == stats.warps_total

    def test_operand_access_conservation(self, runner, name):
        """Total operand reads/writes are a property of the program, not of
        the storage backend."""
        base = runner.run(name, "baseline").stats
        rl = runner.run(name, "regless").stats
        rfv = runner.run(name, "rfv").stats
        assert base.counter("rf_read") == rl.counter("osu_read")
        assert base.counter("rf_read") == rfv.counter("rfv_read")
        assert base.counter("rf_write") == rl.counter("osu_write")

    def test_regless_contract_no_staging_misses(self, runner, name):
        rl = runner.run(name, "regless").stats
        assert rl.counter("osu_read_miss") == 0
        assert rl.counter("region_activations") == rl.counter(
            "region_executions"
        )

    def test_preload_partition(self, runner, name):
        rl = runner.run(name, "regless").stats
        sources = sum(
            rl.counter(f"preload_src_{s}")
            for s in ("osu", "compressor", "const", "l1", "l2dram")
        )
        assert sources == rl.counter("preloads")

    def test_static_preload_counts_bound_dynamic(self, runner, name):
        """Dynamic preloads = sum over executed regions of their static
        preload count; each activation preloads exactly its annotation."""
        rl = runner.run(name, "regless")
        ck = rl.compiled
        max_static = max((a.n_preloads for a in ck.annotations), default=0)
        executions = rl.stats.counter("region_executions")
        assert rl.stats.counter("preloads") <= max_static * executions


class TestEnergyInvariants:
    def test_rf_energy_ordering(self, runner):
        for name in NAMES:
            base = runner.run(name, "baseline")
            rl = runner.run(name, "regless")
            assert rl.rf_energy < base.rf_energy

    def test_gpu_energy_above_no_rf_bound(self, runner):
        for name in NAMES:
            bound = runner.no_rf_energy(name)
            for b in BACKENDS:
                assert runner.run(name, b).gpu_energy >= bound * 0.999


class TestDeterminismAcrossProcess:
    def test_fresh_runner_reproduces(self):
        cfg = GPUConfig(warps_per_sm=16, schedulers_per_sm=2, cta_size_warps=8)
        a = SuiteRunner(config=cfg).run("bfs", "regless")
        b = SuiteRunner(config=cfg).run("bfs", "regless")
        assert a.cycles == b.cycles
        assert a.stats.counters == b.stats.counters


class TestFullMachineScale:
    def test_gtx980_config_runs(self):
        """The full 16-SM machine on one small benchmark."""
        cfg = GPUConfig.gtx980().with_(max_cycles=200_000)
        wl = make_workload("streamcluster")
        ck = compile_kernel(wl.kernel())
        stats = run_simulation(cfg, ck, wl,
                               lambda sm, sh: ReglessStorage(ck))
        assert stats.finished
        assert stats.warps_total == 16 * 64
        assert stats.counter("osu_read_miss") == 0
