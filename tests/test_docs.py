"""Documentation integrity: referenced files, modules and CLI verbs exist."""

import os
import re

import pytest

DOCS = ["README.md", "DESIGN.md", "EXPERIMENTS.md",
        "docs/architecture.md", "docs/compiler.md", "docs/hardware.md",
        "docs/observability.md", "docs/performance.md",
        "docs/robustness.md", "docs/simulator.md", "docs/workloads.md",
        "examples/README.md"]


@pytest.mark.parametrize("doc", DOCS)
def test_doc_exists_and_nonempty(doc):
    assert os.path.exists(doc), doc
    assert os.path.getsize(doc) > 500


@pytest.mark.parametrize("doc", DOCS)
def test_relative_markdown_links_resolve(doc):
    text = open(doc).read()
    base = os.path.dirname(doc)
    for match in re.finditer(r"\]\(([^)#http][^)]*)\)", text):
        target = match.group(1)
        if target.startswith("http"):
            continue
        path = os.path.normpath(os.path.join(base, target))
        assert os.path.exists(path), f"{doc} links to missing {target}"


def test_readme_mentions_every_experiment_verb():
    from repro.harness.cli import _RENDER

    readme = open("README.md").read()
    for verb in _RENDER:
        assert verb in readme, f"README does not document {verb}"


def test_design_lists_every_benchmark_figure():
    design = open("DESIGN.md").read()
    for fig in ("Fig. 2", "Fig. 3", "Fig. 5", "Fig. 11", "Fig. 12",
                "Fig. 13", "Fig. 14", "Fig. 15", "Fig. 16", "Fig. 17",
                "Fig. 18", "Fig. 19", "Table 2"):
        assert fig in design


def test_mentioned_source_files_exist():
    design = open("DESIGN.md").read()
    for match in re.finditer(r"`([a-z_]+\.py)`", design):
        name = match.group(1)
        found = False
        for root, _, files in os.walk("src"):
            if name in files:
                found = True
                break
        assert found, f"DESIGN.md mentions {name} which does not exist"


def test_experiments_md_headline_table_complete():
    text = open("EXPERIMENTS.md").read()
    for phrase in ("Run time vs baseline", "Register-structure energy",
                   "Total GPU energy", "No RF", "L2/DRAM"):
        assert phrase in text


def test_examples_readme_lists_every_example():
    listing = open("examples/README.md").read()
    for fname in os.listdir("examples"):
        if fname.endswith(".py"):
            assert fname in listing, f"examples/README.md missing {fname}"
