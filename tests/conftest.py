"""Shared fixtures: small kernels and fast simulator configurations."""

import pytest

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.sim import GPUConfig, LoopExit, BernoulliLanes
from repro.workloads import Workload


def build_straightline():
    """No control flow: entry computes and exits."""
    b = KernelBuilder("straight")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    t1, t2, t3 = b.fresh(3)
    b.iadd(t1, tid, 1)
    b.imul(t2, t1, 3)
    b.xor(t3, t2, t1)
    b.stg(out, t3)
    b.exit()
    return b.build()


def build_loop(trips_tag="loop"):
    """Counted loop with a global load in the body."""
    b = KernelBuilder("loop")
    b.block("entry")
    tid, src, dst = b.reg(0), b.reg(1), b.reg(2)
    i, acc = b.fresh(2)
    b.mov(i, 0)
    b.mov(acc, 0)
    header = b.label()
    done = b.label()
    b.block_named(header)
    p = b.fresh_pred()
    b.setp(p, i, 100, tag=trips_tag)
    b.bra(done, pred=p)
    b.block_named("body")
    addr, v, t = b.fresh(3)
    b.shl(addr, i, 7)
    b.iadd(addr, addr, src)
    b.ldg(v, addr)
    b.iadd(t, v, 1)
    b.iadd(acc, acc, t)
    b.iadd(i, i, 1)
    b.bra(header)
    b.block_named(done)
    b.stg(dst, acc)
    b.exit()
    return b.build()


def build_diamond():
    """Divergent if/else with guarded writes (soft definitions)."""
    b = KernelBuilder("diamond")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    x = b.fresh()
    b.mov(x, 7)
    p = b.fresh_pred()
    b.setp(p, tid, 16, tag="div")
    b.bra("else_", pred=p)
    b.block("then")
    b.iadd(x, x, 1)
    b.bra("join")
    b.block("else_")
    b.iadd(x, x, 2)
    b.block("join")
    b.stg(out, x)
    b.exit()
    return b.build()


@pytest.fixture
def straightline_kernel():
    return build_straightline()


@pytest.fixture
def loop_kernel():
    return build_loop()


@pytest.fixture
def diamond_kernel():
    return build_diamond()


@pytest.fixture
def loop_workload():
    return Workload(
        name="loop",
        build=build_loop,
        pred_behaviors={"loop": LoopExit(trips=6)},
        regalloc=False,
    )


@pytest.fixture
def diamond_workload():
    return Workload(
        name="diamond",
        build=build_diamond,
        pred_behaviors={"div": BernoulliLanes(0.5)},
        regalloc=False,
    )


@pytest.fixture
def fast_config():
    return GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                     max_cycles=100_000)


@pytest.fixture
def compiled_loop(loop_workload):
    return compile_kernel(loop_workload.kernel())
