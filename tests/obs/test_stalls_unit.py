"""Unit tests of the shard stall tracker's bookkeeping."""

import pytest

from repro.obs.stalls import (
    ISSUED,
    STALL_REASONS,
    ShardStallTracker,
    check_conservation,
    merge_stalls,
)


class TestCommit:
    def test_bins_accumulate(self):
        t = ShardStallTracker(4)
        t.commit({ISSUED: 1, "scoreboard": 3})
        t.commit({ISSUED: 2, "scoreboard": 1, "exited": 1})
        assert t.bins == {ISSUED: 3, "scoreboard": 4, "exited": 1}
        assert t.cycles == 2
        assert t.total == 8

    def test_occupancy_histogram(self):
        t = ShardStallTracker(4)
        t.commit({"scoreboard": 3, ISSUED: 1})
        t.commit({"scoreboard": 3, ISSUED: 1})
        t.commit({"scoreboard": 1, ISSUED: 3})
        assert t.occupancy["scoreboard"] == {3: 2, 1: 1}
        # Histogram and bins agree: sum(n * cycles_at_n) == warp-cycles.
        for reason, hist in t.occupancy.items():
            assert sum(n * c for n, c in hist.items()) == t.bins[reason]


class TestExtend:
    def test_extend_equals_recommitting_the_same_bins(self):
        a = ShardStallTracker(4)
        b = ShardStallTracker(4)
        bins = {ISSUED: 1, "scoreboard": 3}
        a.commit(dict(bins))
        b.commit(dict(bins))
        for _ in range(5):
            a.commit(dict(bins))  # scalar path: compare-and-repeat
            b.extend()            # batched path: proven-equal, O(1)
        assert a.bins == b.bins
        assert a.cycles == b.cycles == 6
        assert a.occupancy == b.occupancy

    def test_extend_then_new_commit_flushes_the_run(self):
        t = ShardStallTracker(4)
        t.commit({"scoreboard": 2})
        t.extend()
        t.commit({"scoreboard": 1, ISSUED: 1})
        assert t.cycles == 3
        assert t.bins == {"scoreboard": 5, ISSUED: 1}
        assert t.occupancy["scoreboard"] == {2: 2, 1: 1}


class TestReplay:
    def test_replay_scales_the_last_cycle(self):
        t = ShardStallTracker(4)
        t.commit({"mem_pending": 4})
        t.replay(10)
        assert t.cycles == 11
        assert t.bins == {"mem_pending": 44}
        assert t.occupancy["mem_pending"] == {4: 11}

    def test_replay_zero_is_noop(self):
        t = ShardStallTracker(2)
        t.commit({ISSUED: 2})
        t.replay(0)
        assert t.cycles == 1

    def test_replay_before_any_commit_stays_conservative(self):
        t = ShardStallTracker(4)
        t.replay(5)
        check_conservation(t.report(0, 0))


class TestReportAndMerge:
    def test_report_is_plain_data(self):
        t = ShardStallTracker(2)
        t.commit({ISSUED: 1, "barrier": 1})
        report = t.report(1, 3)
        assert report["sm"] == 1 and report["shard"] == 3
        assert report["warps"] == 2 and report["cycles"] == 1
        check_conservation(report)

    def test_conservation_violation_raises(self):
        t = ShardStallTracker(4)
        t.commit({ISSUED: 1})  # 3 warps unaccounted
        with pytest.raises(AssertionError):
            check_conservation(t.report(0, 0))

    def test_merge_stalls_sums_shards(self):
        a, b = ShardStallTracker(2), ShardStallTracker(2)
        a.commit({ISSUED: 2})
        b.commit({"barrier": 2})
        merged = merge_stalls([a.report(0, 0), b.report(0, 1)])
        assert merged == {ISSUED: 2, "barrier": 2}


def test_reason_names_are_unique_and_exclude_issued():
    assert len(set(STALL_REASONS)) == len(STALL_REASONS)
    assert ISSUED not in STALL_REASONS
