"""The hierarchical metrics registry and its legacy-counter bridge."""

from repro.energy import Counters
from repro.obs import MetricsRegistry


class TestScopeAliasing:
    def test_inc_mirrors_to_legacy_flat_name(self):
        legacy = Counters()
        reg = MetricsRegistry(legacy)
        cm = reg.scope("sm0.shard1.cm")
        cm.inc("region_activations")
        cm.inc("region_activations", 2)
        assert reg.get("sm0.shard1.cm.region_activations") == 3
        assert legacy.get("region_activations") == 3

    def test_sibling_scopes_share_the_legacy_aggregate(self):
        legacy = Counters()
        reg = MetricsRegistry(legacy)
        reg.scope("sm0.shard0.osu").inc("osu_read")
        reg.scope("sm0.shard1.osu").inc("osu_read")
        assert legacy.get("osu_read") == 2
        assert reg.get("sm0.shard0.osu.osu_read") == 1
        assert reg.get("sm0.shard1.osu.osu_read") == 1

    def test_scope_get_is_component_local(self):
        reg = MetricsRegistry(Counters())
        a, b = reg.scope("sm0.l1"), reg.scope("sm1.l1")
        a.inc("l1_hit", 5)
        assert a.get("l1_hit") == 5
        assert b.get("l1_hit") == 0

    def test_child_scope_extends_the_path(self):
        reg = MetricsRegistry()
        child = reg.scope("sm0").scope("shard1").scope("cm")
        child.inc("x")
        assert reg.get("sm0.shard1.cm.x") == 1

    def test_registry_without_bridge(self):
        reg = MetricsRegistry()
        reg.scope("sm0.cm").inc("evt")
        assert reg.get("sm0.cm.evt") == 1


class TestQueries:
    def _filled(self):
        reg = MetricsRegistry()
        reg.inc("sm0.shard0.cm.a", 1)
        reg.inc("sm0.shard1.cm.a", 2)
        reg.inc("sm0.shard10.cm.a", 4)
        reg.inc("sm0.l1.hit", 8)
        return reg

    def test_collect_respects_component_boundaries(self):
        reg = self._filled()
        got = reg.collect("sm0.shard1")
        assert got == {"sm0.shard1.cm.a": 2}  # not shard10

    def test_total(self):
        reg = self._filled()
        assert reg.total("sm0") == 15
        assert reg.total("sm0.l1") == 8

    def test_leaf_totals_fold_instances(self):
        reg = self._filled()
        by_component = reg.leaf_totals(depth=2)
        assert by_component["cm.a"] == 7
        by_name = reg.leaf_totals()
        assert by_name["a"] == 7 and by_name["hit"] == 8

    def test_tree_nests_by_path(self):
        reg = self._filled()
        tree = reg.tree()
        assert tree["sm0"]["shard0"]["cm"]["a"] == 1
        assert tree["sm0"]["l1"]["hit"] == 8

    def test_as_dict_includes_gauges(self):
        reg = MetricsRegistry()
        reg.inc("a.count", 2)
        reg.gauge("a.level", 0.5)
        snap = reg.as_dict()
        assert snap == {"a.count": 2, "a.level": 0.5}

    def test_observe_builds_histogram(self):
        reg = MetricsRegistry()
        scope = reg.scope("sm0")
        scope.observe("lat", 3)
        scope.observe("lat", 3)
        scope.observe("lat", 7)
        assert reg.histograms["sm0.lat"] == {3: 2, 7: 1}

    def test_bucket_125_rounds_up_to_series(self):
        from repro.obs import bucket_125
        assert bucket_125(0.3) == 0.5
        assert bucket_125(0.05) == 0.05
        assert bucket_125(1.0) == 1.0
        assert bucket_125(1.5) == 2.0
        assert bucket_125(15) == 20
        assert bucket_125(50) == 50
        assert bucket_125(51) == 100
        assert bucket_125(700) == 1000
        assert bucket_125(0) == 0.0
        assert bucket_125(float("inf")) == 0.0

    def test_as_dict_flattens_histograms(self):
        from repro.obs import bucket_125
        reg = MetricsRegistry()
        scope = reg.scope("service")
        scope.observe("run.exec_ms", bucket_125(3.2))
        scope.observe("run.exec_ms", bucket_125(4.0))
        scope.observe("run.exec_ms", bucket_125(700))
        snap = reg.as_dict()
        assert snap["service.run.exec_ms.bucket.5"] == 2
        assert snap["service.run.exec_ms.bucket.1000"] == 1
        assert snap["service.run.exec_ms.count"] == 3.0
        # render_text (the /metrics endpoint) rides on as_dict
        text = reg.render_text("service")
        assert "service.run.exec_ms.bucket.5 2" in text

    def test_merge_sums_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("x", 1)
        b.inc("x", 2)
        b.gauge("g", 9)
        b.observe("h", 4)
        a.merge(b)
        assert a.get("x") == 3
        assert a.gauges["g"] == 9
        assert a.histograms["h"] == {4: 1}
