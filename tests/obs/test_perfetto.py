"""Chrome-trace export: schema validity and event content."""

import json

import pytest

from repro.compiler import compile_kernel
from repro.obs.perfetto import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim import GPUConfig
from repro.sim.gpu import GPU
from repro.sim.trace import Tracer

FAST = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                 max_cycles=60_000)


def _traced_run(workload, factory_of):
    compiled = compile_kernel(workload.kernel())
    gpu = GPU(FAST, compiled, workload, factory_of(compiled))
    tracer = Tracer()
    tracer.attach(gpu)
    stats = gpu.run()
    assert stats.finished
    return tracer


class TestExport:
    def test_baseline_trace_is_valid(self, loop_workload):
        tracer = _traced_run(
            loop_workload, lambda ck: (lambda sm, sh: BaselineRF())
        )
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert {"M", "X"} <= phases  # metadata + issue slices

    def test_regless_trace_carries_region_spans(self, loop_workload):
        tracer = _traced_run(
            loop_workload, lambda ck: (lambda sm, sh: ReglessStorage(ck))
        )
        assert len(tracer.region_spans) > 0
        trace = to_chrome_trace(tracer)
        assert validate_chrome_trace(trace) == []
        regions = [e for e in trace["traceEvents"]
                   if e.get("cat") == "region"]
        assert regions
        for ev in regions:
            assert ev["ph"] == "X" and ev["dur"] >= 1
            assert ev["args"]["preload_cycles"] >= 0
            assert ev["args"]["drain_cycles"] >= 0

    def test_every_event_track_is_named(self, loop_workload):
        tracer = _traced_run(
            loop_workload, lambda ck: (lambda sm, sh: BaselineRF())
        )
        trace = to_chrome_trace(tracer)
        named = {
            (e["pid"], e["tid"])
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        used = {
            (e["pid"], e["tid"])
            for e in trace["traceEvents"] if e["ph"] != "M"
        }
        assert used <= named

    def test_write_round_trips_through_json(self, tmp_path, loop_workload):
        tracer = _traced_run(
            loop_workload, lambda ck: (lambda sm, sh: ReglessStorage(ck))
        )
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []
        assert loaded["traceEvents"]


class TestValidator:
    def test_accepts_minimal_event(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "i", "ts": 0, "pid": 0, "tid": 0},
        ]}
        assert validate_chrome_trace(trace) == []

    def test_rejects_non_dict(self):
        assert validate_chrome_trace([1, 2]) != []

    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({"other": 1}) != []

    def test_rejects_missing_keys(self):
        trace = {"traceEvents": [{"name": "a", "ph": "i"}]}
        errors = validate_chrome_trace(trace)
        assert any("missing" in e for e in errors)

    def test_rejects_negative_ts(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "i", "ts": -1, "pid": 0, "tid": 0},
        ]}
        assert any("bad ts" in e for e in validate_chrome_trace(trace))

    def test_rejects_complete_event_without_duration(self):
        trace = {"traceEvents": [
            {"name": "a", "ph": "X", "ts": 0, "pid": 0, "tid": 0},
        ]}
        assert any("dur" in e for e in validate_chrome_trace(trace))

    def test_error_list_truncates(self):
        trace = {"traceEvents": [{} for _ in range(50)]}
        errors = validate_chrome_trace(trace)
        assert errors[-1].startswith("...")

    def test_write_refuses_invalid(self, tmp_path):
        class FakeTracer:
            events = ()
            region_spans = (
                type("S", (), {"sm": 0, "shard": 0, "warp": 0, "rid": 0,
                               "start": -5, "active": -5, "drain": -5,
                               "end": -4})(),
            )

        with pytest.raises(ValueError):
            write_chrome_trace(str(tmp_path / "bad.json"), FakeTracer())
