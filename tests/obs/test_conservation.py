"""End-to-end stall-attribution conservation: for every backend and any
program, each shard's bins must sum to exactly ``warps x cycles``."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.obs.stalls import ISSUED, STALL_REASONS, check_conservation
from repro.regfile import BaselineRF, RFHStorage, RFVStorage
from repro.regless import ReglessConfig, ReglessStorage
from repro.sim import BernoulliLanes, GPUConfig, LoopExit, run_simulation
from repro.workloads import Workload

FAST = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                 max_cycles=60_000)

BACKENDS = ("baseline", "rfh", "rfv", "regless", "regless-nc")


def _run(backend, compiled, workload):
    cfg = FAST
    if backend in ("rfh", "rfv"):
        cfg = cfg.with_(scheduler="two_level")
    factory = {
        "baseline": lambda sm, sh: BaselineRF(),
        "rfh": lambda sm, sh: RFHStorage(compiled),
        "rfv": lambda sm, sh: RFVStorage(compiled),
        "regless": lambda sm, sh: ReglessStorage(compiled),
        "regless-nc": lambda sm, sh: ReglessStorage(
            compiled, ReglessConfig(compressor_enabled=False)
        ),
    }[backend]
    return run_simulation(cfg, compiled, workload, factory)


def _assert_conservative(stats):
    assert stats.stall_shards, "attribution enabled but no reports"
    for report in stats.stall_shards:
        check_conservation(report)
        assert report["cycles"] == stats.cycles
        for reason, count in report["bins"].items():
            assert count >= 0
            assert reason == ISSUED or reason in STALL_REASONS
        for reason, hist in report["occupancy"].items():
            # Each reason appears in at most `cycles` histogram entries,
            # and the histogram re-derives the bin exactly.
            assert sum(hist.values()) <= report["cycles"]
            assert sum(n * c for n, c in hist.items()) == \
                report["bins"][reason]
    assert sum(stats.stalls.values()) == stats.warps_total * stats.cycles


def _mixed_workload(trips: int, p: float) -> Workload:
    """A loop with a global load and a divergent diamond in the body —
    exercises scoreboard, memory, divergence and drain paths at once."""
    def build():
        b = KernelBuilder("mixed")
        b.block("entry")
        tid, src, dst = b.reg(0), b.reg(1), b.reg(2)
        i, acc = b.fresh(2)
        b.mov(i, 0)
        b.mov(acc, 0)
        header, done = b.label(), b.label()
        b.block_named(header)
        pl = b.fresh_pred()
        b.setp(pl, i, 99, tag="trip")
        b.bra(done, pred=pl)
        b.block()
        addr, v, t = b.fresh(3)
        b.shl(addr, i, 7)
        b.iadd(addr, addr, src)
        b.ldg(v, addr)
        pd = b.fresh_pred()
        b.setp(pd, v, 0, tag="div")
        join = b.label()
        b.bra(join, pred=pd)
        b.block()
        b.iadd(acc, acc, 1)
        b.block_named(join)
        b.iadd(t, v, 1)
        b.iadd(acc, acc, t)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(done)
        b.stg(dst, acc)
        b.exit()
        return b.build()

    return Workload(
        name="mixed",
        build=build,
        pred_behaviors={"trip": LoopExit(trips=trips),
                        "div": BernoulliLanes(p)},
        regalloc=False,
    )


@pytest.mark.parametrize("backend", BACKENDS)
def test_fixed_workloads_conserve(backend, loop_workload, diamond_workload):
    for workload in (loop_workload, diamond_workload):
        compiled = compile_kernel(workload.kernel())
        stats = _run(backend, compiled, workload)
        assert stats.finished
        _assert_conservative(stats)
        assert stats.stalls.get(ISSUED, 0) > 0


@given(
    backend=st.sampled_from(BACKENDS),
    trips=st.integers(1, 8),
    p=st.floats(0.05, 0.95),
)
@settings(max_examples=20, deadline=None)
def test_conservation_property(backend, trips, p):
    workload = _mixed_workload(trips, p)
    compiled = compile_kernel(workload.kernel())
    stats = _run(backend, compiled, workload)
    assert stats.finished
    _assert_conservative(stats)


def test_attribution_can_be_disabled(loop_workload):
    compiled = compile_kernel(loop_workload.kernel())
    cfg = FAST.with_(stall_attribution=False)
    stats = run_simulation(cfg, compiled, loop_workload,
                           lambda sm, sh: BaselineRF())
    assert stats.finished
    assert stats.stalls == {} and stats.stall_shards == []


def test_attribution_does_not_change_timing(loop_workload):
    """The observability pass must be a pure observer."""
    compiled = compile_kernel(loop_workload.kernel())
    on = run_simulation(FAST, compiled, loop_workload,
                        lambda sm, sh: ReglessStorage(compiled))
    off = run_simulation(FAST.with_(stall_attribution=False), compiled,
                         loop_workload,
                         lambda sm, sh: ReglessStorage(compiled))
    assert on.cycles == off.cycles
    assert on.instructions == off.instructions

    rfv_on = run_simulation(FAST.with_(scheduler="two_level"), compiled,
                            loop_workload, lambda sm, sh: RFVStorage(compiled))
    rfv_off = run_simulation(
        FAST.with_(scheduler="two_level", stall_attribution=False),
        compiled, loop_workload, lambda sm, sh: RFVStorage(compiled),
    )
    assert rfv_on.cycles == rfv_off.cycles
    assert rfv_on.counters == rfv_off.counters
