"""Smoke tests for the fast examples (the slow sweeps are exercised by the
benchmark suite; these guard the pedagogical scripts against bit-rot)."""

import runpy
import sys

import pytest

EXAMPLES = [
    "examples/quickstart.py",
    "examples/compiler_explorer.py",
    "examples/pipeline_trace.py",
]


@pytest.mark.parametrize("path", EXAMPLES)
def test_example_runs(path, capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", [path])
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100  # produced a real report


def test_quickstart_shows_savings(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/quickstart.py"])
    runpy.run_path("examples/quickstart.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "RF-structure energy" in out
    assert "preloads staged without memory traffic" in out


def test_compiler_explorer_finds_soft_defs(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["examples/compiler_explorer.py"])
    runpy.run_path("examples/compiler_explorer.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "soft-def" in out
    assert "region" in out
