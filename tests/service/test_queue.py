"""Engine core: job store, priorities, dedupe, drain/restart resume.

Simulation is stubbed with a gateable fake runner, so these tests pin
the *scheduling* semantics deterministically — the real-simulator path
is covered end to end in ``test_http_e2e.py``.
"""

from __future__ import annotations

import asyncio
import threading
from types import SimpleNamespace

import pytest

from repro.harness.parallel import RunOutcome, RunRequest
from repro.service import DrainingError, Job, JobStore, Priority, \
    ServiceConfig, ServiceEngine


BFS = RunRequest.make("bfs", "baseline")
NW = RunRequest.make("nw", "baseline")
HOTSPOT = RunRequest.make("hotspot", "baseline")


def fake_result(request):
    stats = SimpleNamespace(cycles=100, instructions=50, warps_done=4,
                            warps_total=4, finished=True, counters={},
                            stalls={})
    return SimpleNamespace(
        benchmark=request.benchmark, backend=request.backend,
        osu_entries=request.osu_entries, stats=stats,
        energy=SimpleNamespace(as_dict=lambda: {"total": 1.0}),
        timings={}, jit={},
    )


class FakeRunner:
    """Stands in for SuiteRunner: instant, gateable, records executions."""

    def __init__(self, fail_keys=()):
        self.executed = []
        self.batches = []
        self.fail_keys = set(fail_keys)
        self.gate = threading.Event()
        self.gate.set()
        self.dispatched = threading.Event()

    def run_grid_outcomes(self, requests, jobs=None, on_outcome=None):
        self.batches.append(list(requests))
        self.dispatched.set()
        assert self.gate.wait(timeout=30)
        outcomes = []
        for i, request in enumerate(requests):
            self.executed.append(request)
            if request.key in self.fail_keys:
                outcome = RunOutcome(request, RunOutcome.CRASHED,
                                     attempts=3, error="injected")
            else:
                outcome = RunOutcome(request, RunOutcome.OK,
                                     result=fake_result(request), attempts=1)
            if on_outcome is not None:
                on_outcome(i, outcome)
            outcomes.append(outcome)
        return outcomes


def make_engine(runner=None, **config):
    return ServiceEngine(ServiceConfig(**config), runner=runner or FakeRunner())


async def collect_events(engine, job_id):
    """Replay + live events until the terminal ``job`` record."""
    replay, queue = engine.subscribe(job_id)
    events = list(replay)
    while queue is not None:
        event = await queue.get()
        if event is None:
            break
        events.append(event)
    return events


def run(coro):
    return asyncio.run(coro)


class TestJobRecord:
    def job(self):
        return Job(id="j1", tenant="a", priority="batch",
                   requests=[BFS, NW], tags={"k": "v"}, created=12.5,
                   outcomes={0: {"status": "ok", "index": 0}})

    def test_record_round_trip(self):
        job = self.job()
        clone = Job.from_record(job.to_record())
        assert clone.requests == job.requests
        assert clone.outcomes == job.outcomes
        assert clone.tags == job.tags
        assert clone.status == job.status

    def test_missing_indices(self):
        assert self.job().missing_indices() == [1]

    def test_store_round_trip(self, tmp_path):
        store = JobStore(str(tmp_path / "state.json"))
        store.save([self.job()], seq=7)
        jobs, seq = store.load()
        assert seq == 7
        assert [j.id for j in jobs] == ["j1"]
        assert jobs[0].requests == [BFS, NW]

    def test_missing_or_garbage_store_loads_empty(self, tmp_path):
        path = tmp_path / "state.json"
        assert JobStore(str(path)).load() == ([], 0)
        path.write_text("{ not json")
        assert JobStore(str(path)).load() == ([], 0)
        path.write_text('{"version": 999, "jobs": []}')
        assert JobStore(str(path)).load() == ([], 0)


class TestEngine:
    def test_submit_stream_finalize(self):
        async def main():
            runner = FakeRunner()
            engine = make_engine(runner)
            await engine.start()
            job = engine.submit([BFS, NW], tenant="t1")
            events = await collect_events(engine, job.id)
            await engine.stop()
            return runner, engine, job, events

        runner, engine, job, events = run(main())
        assert job.status == Job.DONE
        assert [e["event"] for e in events] == ["outcome", "outcome", "job"]
        assert {e["index"] for e in events[:2]} == {0, 1}
        assert all(e["status"] == "ok" for e in events[:2])
        assert events[-1]["status"] == Job.DONE
        assert len(runner.executed) == 2
        assert engine.registry.get("service.jobs.done") == 1
        assert engine.quotas.active("t1") == {"jobs": 0, "runs": 0}

    def test_latency_histograms_populated(self):
        async def main():
            engine = make_engine()
            await engine.start()
            job = engine.submit([BFS, NW])
            await collect_events(engine, job.id)
            await engine.stop()
            return engine

        engine = run(main())
        snap = engine.registry.as_dict()
        assert snap["service.queue.wait_ms.count"] == 1  # per job dispatch
        assert snap["service.run.exec_ms.count"] == 2    # per run outcome
        for path in ("service.queue.wait_ms", "service.run.exec_ms"):
            buckets = [k for k in snap if k.startswith(path + ".bucket.")]
            assert buckets, path
            assert sum(snap[k] for k in buckets) == snap[path + ".count"]

    def test_failed_run_fails_job_with_summary(self):
        async def main():
            engine = make_engine(FakeRunner(fail_keys={"nw/baseline"}))
            await engine.start()
            job = engine.submit([BFS, NW])
            await collect_events(engine, job.id)
            await engine.stop()
            return job

        job = run(main())
        assert job.status == Job.FAILED
        assert "1/2 run(s) failed" in job.error
        assert "crashed" in job.error

    def test_identical_requests_across_jobs_execute_once(self):
        async def main():
            runner = FakeRunner()
            runner.gate.clear()  # hold job A's batch in flight
            engine = make_engine(runner)
            await engine.start()
            job_a = engine.submit([BFS])
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, runner.dispatched.wait)
            # Job B arrives while A's identical run is executing: it must
            # attach to the in-flight execution, not start a second one.
            job_b = engine.submit([RunRequest.make("bfs", "baseline")])
            runner.gate.set()
            events_b = await collect_events(engine, job_b.id)
            events_a = await collect_events(engine, job_a.id)
            await engine.stop()
            return runner, engine, events_a, events_b

        runner, engine, events_a, events_b = run(main())
        assert len(runner.executed) == 1
        assert events_a[0].get("deduped") is None
        assert events_b[0]["deduped"] is True
        assert events_b[0]["run"] == events_a[0]["run"]
        assert engine.admission.deduped == 1
        assert engine.registry.get("service.admission.deduped") == 1

    def test_priority_orders_work(self):
        async def main():
            runner = FakeRunner()
            engine = make_engine(runner, max_batch_runs=1)
            # Submit before the scheduler exists: bulk first, then
            # interactive — the heap must still run interactive first.
            bulk = engine.submit([NW], priority=Priority.BULK)
            inter = engine.submit([BFS], priority=Priority.INTERACTIVE)
            await engine.start()
            await collect_events(engine, bulk.id)
            await collect_events(engine, inter.id)
            await engine.stop()
            return runner

        runner = run(main())
        assert runner.executed == [BFS, NW]

    def test_cancel_queued_job_never_executes(self):
        async def main():
            runner = FakeRunner()
            runner.gate.clear()
            engine = make_engine(runner, max_batch_runs=1)
            await engine.start()
            job_a = engine.submit([BFS])
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, runner.dispatched.wait)
            job_b = engine.submit([NW])  # queued behind the 1-run batch
            cancelled = engine.cancel(job_b.id)
            runner.gate.set()
            await collect_events(engine, job_a.id)
            await engine.stop()
            return runner, cancelled

        runner, cancelled = run(main())
        assert cancelled.status == Job.CANCELLED
        assert NW not in runner.executed

    def test_draining_engine_refuses_submissions(self):
        async def main():
            engine = make_engine()
            await engine.start()
            await engine.drain()
            with pytest.raises(DrainingError):
                engine.submit([BFS])
            await engine.stop()

        run(main())

    def test_quota_violations_surface_from_submit(self):
        from repro.service import QuotaError, RateLimited, TenantQuota

        async def main():
            engine = make_engine(
                quota=TenantQuota(max_active_runs=2, submit_burst=2,
                                  submit_rate=0.0),
            )
            await engine.start()
            with pytest.raises(QuotaError):
                engine.submit([BFS, NW, HOTSPOT])
            job = engine.submit([BFS])
            with pytest.raises(RateLimited):
                engine.submit([NW])  # burst of 2 spent, zero refill
            await collect_events(engine, job.id)
            await engine.stop()

        run(main())


class TestDrainRestart:
    def test_drain_persists_and_restart_resumes(self, tmp_path):
        state = str(tmp_path / "state.json")

        async def first_life():
            engine = make_engine(state_path=state)
            # The scheduler never starts: everything stays queued, as
            # after a SIGTERM that lands before the batch dispatches.
            job = engine.submit([BFS, NW])
            await engine.drain()
            await engine.stop()
            return job.id

        async def second_life(job_id):
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.job(job_id)
            assert not job.terminal
            events = await collect_events(engine, job_id)
            await engine.stop()
            return runner, engine, job, events

        job_id = run(first_life())
        runner, engine, job, events = run(second_life(job_id))
        assert job.status == Job.DONE
        assert len(runner.executed) == 2
        assert engine.registry.get("service.jobs.resumed") == 1
        assert engine.registry.get("service.runs.resumed") == 2
        assert events[-1]["status"] == Job.DONE

    def test_restart_runs_only_missing_indices(self, tmp_path):
        state = str(tmp_path / "state.json")

        async def first_life():
            engine = make_engine(state_path=state)
            job = engine.submit([BFS, NW])
            # Simulate a drain that caught index 0 already finished.
            from repro.service import outcome_to_wire
            done = RunOutcome(BFS, RunOutcome.OK, result=fake_result(BFS),
                              attempts=1)
            job.outcomes[0] = outcome_to_wire(0, done)
            job.status = Job.RUNNING
            engine.persist()
            return job.id

        async def second_life(job_id):
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.job(job_id)
            await collect_events(engine, job_id)
            await engine.stop()
            return runner, job

        job_id = run(first_life())
        runner, job = run(second_life(job_id))
        assert job.status == Job.DONE
        # Only the missing run was re-executed; index 0 kept its record.
        assert runner.executed == [NW]
        assert sorted(job.outcomes) == [0, 1]

    def test_terminal_jobs_survive_restart_untouched(self, tmp_path):
        state = str(tmp_path / "state.json")

        async def first_life():
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.submit([BFS])
            await collect_events(engine, job.id)
            await engine.drain()
            await engine.stop()
            return job.id

        async def second_life(job_id):
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.job(job_id)
            replay, queue = engine.subscribe(job_id)
            assert queue is None  # terminal: replay only
            await engine.stop()
            return runner, job, replay

        job_id = run(first_life())
        runner, job, replay = run(second_life(job_id))
        assert job.status == Job.DONE
        assert runner.executed == []
        assert replay[-1]["status"] == Job.DONE
        assert replay[0]["run"]["stats"]["cycles"] == 100

    def test_journal_persists_without_drain(self, tmp_path):
        # The crash case: the first life never drains or persists — the
        # write-ahead journal alone must carry every outcome across.
        state = str(tmp_path / "state.json")

        async def first_life():
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.submit([BFS])
            await collect_events(engine, job.id)
            await engine.stop()  # no drain(), no compaction
            return job.id

        async def second_life(job_id):
            runner = FakeRunner()
            engine = ServiceEngine(ServiceConfig(state_path=state),
                                   runner=runner)
            await engine.start()
            job = engine.job(job_id)
            await engine.stop()
            return runner, job

        job_id = run(first_life())
        import os
        assert os.path.exists(state + ".wal")
        runner, job = run(second_life(job_id))
        assert job.status == Job.DONE
        assert runner.executed == []  # exactly-once: nothing re-ran
        assert job.outcomes[0]["status"] == "ok"


class TestEventSequences:
    def test_events_carry_monotonic_seqs(self):
        async def main():
            engine = make_engine()
            await engine.start()
            job = engine.submit([BFS, NW])
            events = await collect_events(engine, job.id)
            await engine.stop()
            return events

        events = run(main())
        assert [e["seq"] for e in events] == [0, 1, 2]
        assert events[-1]["event"] == "job"

    def test_subscribe_after_skips_seen_events(self):
        async def main():
            engine = make_engine()
            await engine.start()
            job = engine.submit([BFS, NW])
            await collect_events(engine, job.id)
            replay, queue = engine.subscribe(job.id, after=0)
            await engine.stop()
            return replay, queue

        replay, queue = run(main())
        assert queue is None
        assert [e["seq"] for e in replay] == [1, 2]
        assert replay[-1]["event"] == "job"

    def test_drain_marks_live_streams(self):
        async def main():
            engine = make_engine()
            # scheduler never started: the job stays queued, and drain
            # must end the attached stream with an explicit marker
            job = engine.submit([BFS])
            _, queue = engine.subscribe(job.id)
            await engine.drain()
            marker = await queue.get()
            sentinel = await queue.get()
            await engine.stop()
            return job, marker, sentinel

        job, marker, sentinel = run(main())
        assert marker == {"event": "service", "status": "draining",
                          "job": job.id}
        assert sentinel is None


class TestDeadlines:
    def test_overdue_job_degrades_to_partial_results(self):
        class OneBatchRunner(FakeRunner):
            def run_grid_outcomes(self, requests, jobs=None, on_outcome=None):
                result = super().run_grid_outcomes(
                    requests, jobs=jobs, on_outcome=on_outcome
                )
                self.gate.clear()  # the next batch blocks until released
                return result

        async def main():
            runner = OneBatchRunner()
            engine = make_engine(runner, max_batch_runs=1,
                                 deadline_poll=3600.0)
            await engine.start()
            job = engine.submit([BFS, NW], deadline_s=5.0)
            # let the first run finish; the second batch sits on the gate
            while not job.outcomes:
                await asyncio.sleep(0.005)
            engine.expire_overdue(now=job.created + 10.0)
            events = await collect_events(engine, job.id)
            runner.gate.set()  # release the straggler batch
            await engine.stop()
            return engine, job, events

        engine, job, events = run(main())
        assert job.status == Job.FAILED
        done = next(iter(job.outcomes))  # whichever run dispatched first
        late = 1 - done
        assert job.outcomes[done]["status"] == "ok"   # finished runs kept
        assert job.outcomes[late]["status"] == "expired"
        assert "deadline" in job.outcomes[late]["error"]
        assert engine.registry.get("service.jobs.expired") == 1
        assert engine.registry.get("service.runs.expired") == 1

    def test_default_deadline_applies(self):
        async def main():
            engine = make_engine(default_deadline=7.0, deadline_poll=3600.0)
            await engine.start()
            job = engine.submit([BFS])
            await collect_events(engine, job.id)
            await engine.stop()
            return job

        assert run(main()).deadline_s == 7.0

    def test_jobs_without_deadline_never_expire(self):
        async def main():
            engine = make_engine(deadline_poll=3600.0)
            await engine.start()
            job = engine.submit([BFS])
            assert engine.expire_overdue(now=job.created + 1e9) == []
            await collect_events(engine, job.id)
            await engine.stop()

        run(main())


class TestBackpressureAndBreaker:
    def test_queue_bound_sheds_submissions(self):
        from repro.service import OverloadedError

        async def main():
            runner = FakeRunner()
            runner.gate.clear()
            engine = make_engine(runner, max_batch_runs=1,
                                 max_queued_runs=2)
            await engine.start()
            engine.submit([BFS])
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, runner.dispatched.wait)
            engine.submit([NW, HOTSPOT])  # fills the queue bound
            with pytest.raises(OverloadedError) as err:
                engine.submit([RunRequest.make("srad", "baseline")])
            runner.gate.set()
            for job_id in list(engine.jobs):
                await collect_events(engine, job_id)
            await engine.stop()
            return engine, err.value

        engine, err = run(main())
        assert err.retry_after > 0
        assert engine.registry.get("service.backpressure.shed") == 1

    def test_broken_batches_open_breaker_and_recover(self):
        from repro.service import BreakerConfig, BreakerOpen

        class ExplodingRunner(FakeRunner):
            def __init__(self):
                super().__init__()
                self.explosions = 0

            def run_grid_outcomes(self, requests, jobs=None, on_outcome=None):
                if self.explosions < 2:
                    self.explosions += 1
                    raise RuntimeError("pool burned down")
                return super().run_grid_outcomes(
                    requests, jobs=jobs, on_outcome=on_outcome
                )

        async def main():
            runner = ExplodingRunner()
            engine = make_engine(
                runner,
                breaker=BreakerConfig(failure_threshold=2,
                                      reset_timeout=0.05),
            )
            await engine.start()
            # each broken batch fails its job; two in a row trip the breaker
            job_a = engine.submit([BFS])
            await collect_events(engine, job_a.id)
            job_b = engine.submit([NW])
            await collect_events(engine, job_b.id)
            assert engine.supervisor.breaker.state == "open"
            with pytest.raises(BreakerOpen):
                engine.submit([HOTSPOT])
            # after the reset timeout the half-open probe dispatches and
            # the healthy batch closes the breaker again
            await asyncio.sleep(0.1)
            job_c = engine.submit([HOTSPOT])
            events = await collect_events(engine, job_c.id)
            await engine._idle.wait()  # let the batch's health probe land
            await engine.stop()
            return engine, job_a, job_b, events

        engine, job_a, job_b, events = run(main())
        assert job_a.status == Job.FAILED
        assert job_b.status == Job.FAILED
        assert events[-1]["status"] == Job.DONE
        assert engine.supervisor.breaker.state == "closed"
        assert engine.registry.get("service.breaker.opened") == 1
        assert engine.registry.get("service.breaker.rejected") == 1
        assert engine.registry.get("service.batches.broken") == 2
