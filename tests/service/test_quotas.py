"""Token buckets and per-tenant quotas, driven by a fake clock."""

import pytest

from repro.service import QuotaError, QuotaGate, RateLimited, TenantQuota, \
    TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3, clock=clock)
        assert [bucket.try_take() for _ in range(4)] == [True] * 3 + [False]

    def test_refills_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2, clock=clock)
        bucket.try_take(2)
        assert not bucket.try_take()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        clock.advance(100.0)
        bucket.try_take(2)
        assert not bucket.try_take()

    def test_wait_time(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=1, clock=clock)
        assert bucket.wait_time() == 0.0
        bucket.try_take()
        assert bucket.wait_time() == pytest.approx(0.5)

    def test_zero_rate_never_refills(self):
        bucket = TokenBucket(rate=0.0, burst=1, clock=FakeClock())
        bucket.try_take()
        assert bucket.wait_time() == float("inf")


class TestQuotaGate:
    def gate(self, clock=None, **quota):
        defaults = dict(max_active_runs=10, max_active_jobs=2,
                        submit_rate=1.0, submit_burst=5)
        defaults.update(quota)
        return QuotaGate(TenantQuota(**defaults), clock=clock or FakeClock())

    def test_admit_charges_and_release_returns(self):
        gate = self.gate()
        gate.admit("a", 4)
        assert gate.active("a") == {"jobs": 1, "runs": 4}
        gate.release("a", 4)
        assert gate.active("a") == {"jobs": 0, "runs": 0}

    def test_active_jobs_limit(self):
        gate = self.gate(max_active_jobs=1)
        gate.admit("a", 1)
        with pytest.raises(QuotaError, match="active job"):
            gate.admit("a", 1)
        gate.admit("b", 1)  # quotas are per tenant

    def test_active_runs_limit(self):
        gate = self.gate(max_active_runs=5)
        gate.admit("a", 4)
        with pytest.raises(QuotaError, match="active run"):
            gate.admit("a", 2)
        gate.admit("a", 1)  # exactly at the limit is fine

    def test_rate_limit_carries_retry_after(self):
        clock = FakeClock()
        gate = self.gate(clock=clock, submit_rate=2.0, submit_burst=1,
                         max_active_jobs=0)
        gate.admit("a", 1)
        with pytest.raises(RateLimited) as err:
            gate.admit("a", 1)
        assert err.value.retry_after == pytest.approx(0.5)
        clock.advance(0.5)
        gate.admit("a", 1)

    def test_rate_limited_is_a_quota_error(self):
        assert issubclass(RateLimited, QuotaError)

    def test_per_tenant_override(self):
        clock = FakeClock()
        gate = QuotaGate(
            TenantQuota(max_active_jobs=1),
            per_tenant={"vip": TenantQuota(max_active_jobs=3)},
            clock=clock,
        )
        gate.admit("vip", 1)
        gate.admit("vip", 1)
        gate.admit("anon", 1)
        with pytest.raises(QuotaError):
            gate.admit("anon", 1)

    def test_charge_bypasses_checks_for_restart_resume(self):
        gate = self.gate(max_active_jobs=1, submit_burst=1)
        gate.charge("a", 5)
        gate.charge("a", 5)  # no rate limit, no job limit
        assert gate.active("a") == {"jobs": 2, "runs": 10}

    def test_disabled_limits(self):
        gate = self.gate(max_active_runs=0, max_active_jobs=0)
        for _ in range(5):
            gate.admit("a", 100)
