"""End-to-end service tests over a real HTTP socket.

Covers the PR's acceptance criteria:

* submit → stream per-run outcomes → fetch results returns stats
  **bit-identical** to ``tests/golden/simstats_bfs_nw.json``;
* identical concurrent submissions from two clients execute once;
* SIGTERM drains gracefully and a restarted daemon completes the
  remaining grid (subprocess CLI test, below);
* HTTP error mapping: 400/404/405/409/429/503.
"""

from __future__ import annotations

import asyncio
import functools
import http.client
import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.harness.cache import ResultCache
from repro.harness.runner import SuiteRunner
from repro.service import ServiceApp, ServiceClient, ServiceConfig, \
    ServiceEngine, ServiceError, TenantQuota
from repro.sim import GPUConfig

from .test_queue import FakeRunner

REPO_ROOT = Path(__file__).resolve().parents[2]
GOLDEN = REPO_ROOT / "tests" / "golden" / "simstats_bfs_nw.json"
SMALL = dict(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)
GOLDEN_BACKENDS = ("baseline", "rfh", "rfv", "regless", "regless-nc")
GOLDEN_KEYS = ("cycles", "instructions", "warps_done", "counters", "stalls")


async def call(fn, *args, **kwargs):
    """Run a blocking client call off the loop thread."""
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None, functools.partial(fn, *args, **kwargs)
    )


def serve_inprocess(engine_or_config, body):
    """Start a real server on a free port, run ``body(client)``, shut down."""

    async def main():
        if isinstance(engine_or_config, ServiceEngine):
            app = ServiceApp(engine=engine_or_config)
        else:
            app = ServiceApp(engine_or_config)
        host, port = await app.start("127.0.0.1", 0)
        try:
            return await body(app, ServiceClient(host, port, tenant="test"))
        finally:
            await app.shutdown(drain=False)

    return asyncio.run(main())


class TestGoldenIdentity:
    """Service results must be bit-identical to the committed golden."""

    def test_submit_stream_result_matches_golden(self, tmp_path):
        golden = json.loads(GOLDEN.read_text())
        config = ServiceConfig(jobs=2,
                               cache=ResultCache(str(tmp_path / "cache")))
        runs = [{"benchmark": "bfs", "backend": b} for b in GOLDEN_BACKENDS]

        async def body(app, client):
            job = await call(client.submit, runs, priority="interactive",
                             tags={"suite": "e2e"})
            events = await call(lambda: list(client.events(job["id"])))
            result = await call(client.result, job["id"])
            listing = await call(client.jobs)
            return job, events, result, listing

        job, events, result, listing = serve_inprocess(config, body)
        # The stream carried every outcome, then the terminal job event.
        assert [e["event"] for e in events] == ["outcome"] * 5 + ["job"]
        assert all(e["status"] == "ok" for e in events[:5])
        assert events[-1]["status"] == "done"
        assert [j["id"] for j in listing] == [job["id"]]
        # The result bundle is bit-identical to the golden grid.
        assert result["job"]["status"] == "done"
        assert result["job"]["tags"] == {"suite": "e2e"}
        by_backend = {r["request"]["backend"]: r for r in result["runs"]}
        assert set(by_backend) == set(GOLDEN_BACKENDS)
        for backend, run in by_backend.items():
            assert run["status"] == "ok"
            want = golden[f"bfs/{backend}"]
            stats = run["run"]["stats"]
            for key in GOLDEN_KEYS:
                assert stats[key] == want[key], f"bfs/{backend} {key}"


class GatedRunner(SuiteRunner):
    """Real SuiteRunner whose batches block until the test releases them —
    makes "submitted while in flight" deterministic."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.dispatched = threading.Event()
        self.batches = []

    def run_grid_outcomes(self, requests, jobs=None, on_outcome=None):
        self.batches.append(list(requests))
        self.dispatched.set()
        assert self.gate.wait(timeout=60)
        return super().run_grid_outcomes(requests, jobs=jobs,
                                         on_outcome=on_outcome)


class TestConcurrentDedupe:
    def test_identical_concurrent_submissions_execute_once(self):
        runner = GatedRunner(config=GPUConfig(**SMALL), cache=False)
        engine = ServiceEngine(ServiceConfig(jobs=1), runner=runner)
        spec = {"benchmark": "bfs", "backend": "baseline"}

        async def body(app, client_a):
            client_b = ServiceClient(client_a.host, client_a.port,
                                     tenant="other")
            job_a = await call(client_a.submit, [spec])
            await call(runner.dispatched.wait)
            # Second client submits the identical run mid-flight.
            job_b = await call(client_b.submit, [spec])
            runner.gate.set()
            result_b = await call(client_b.wait, job_b["id"])
            result_a = await call(client_a.wait, job_a["id"])
            metrics = await call(client_a.metrics, "service")
            return result_a, result_b, metrics

        result_a, result_b, metrics = serve_inprocess(engine, body)
        assert len(runner.batches) == 1  # one simulation, two clients
        assert metrics["service.admission.deduped"] == 1
        assert metrics["service.runs.dispatched"] == 1
        run_a, run_b = result_a["runs"][0], result_b["runs"][0]
        assert run_a["status"] == run_b["status"] == "ok"
        assert run_b["deduped"] is True
        assert "deduped" not in run_a
        assert run_b["run"]["stats"] == run_a["run"]["stats"]


class TestHTTPContract:
    def test_error_mapping_and_introspection(self):
        runner = FakeRunner()
        runner.gate.clear()
        engine = ServiceEngine(
            ServiceConfig(quota=TenantQuota(submit_rate=0.5, submit_burst=1)),
            runner=runner,
        )
        spec = {"benchmark": "bfs", "backend": "baseline"}

        async def body(app, client):
            health = await call(client.health)
            assert health["status"] == "ok"

            with pytest.raises(ServiceError) as err:
                await call(client.submit, [{"benchmark": "nope",
                                            "backend": "baseline"}])
            assert err.value.status == 400

            with pytest.raises(ServiceError) as err:
                await call(client.job, "no-such-job")
            assert err.value.status == 404

            job = await call(client.submit, [spec])
            with pytest.raises(ServiceError) as err:
                await call(client.result, job["id"])  # still running
            assert err.value.status == 409

            with pytest.raises(ServiceError) as err:  # burst of 1 spent
                await call(client.submit, [spec])
            assert err.value.status == 429
            assert err.value.retry_after is not None

            runner.gate.set()
            result = await call(client.wait, job["id"])
            assert result["job"]["status"] == "done"

            metrics = await call(client.metrics, "service")
            assert metrics["service.jobs.submitted"] == 1
            assert metrics["service.jobs.done"] == 1
            text = await call(self.raw_get, client, "/metrics?prefix=service")
            assert "service.jobs.done 1" in text.splitlines()

            app.request_drain()
            with pytest.raises(ServiceError) as err:
                await call(client.submit, [spec])
            assert err.value.status == 503
            health = await call(client.health)
            assert health["status"] == "draining"

        serve_inprocess(engine, body)

    @staticmethod
    def raw_get(client, path):
        conn = http.client.HTTPConnection(client.host, client.port, timeout=30)
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            assert response.status == 200
            return response.read().decode()
        finally:
            conn.close()


class TestHangDiagnostics:
    """The watchdog's hang snapshot rides /events and /result."""

    DIAG = {"cycle": 420, "no_progress_cycles": 64,
            "warps": [{"warp": 0, "state": "parked"}]}

    def test_hung_outcome_carries_diagnostics(self):
        from repro.harness.parallel import RunOutcome

        diag = self.DIAG

        class HangRunner(FakeRunner):
            def run_grid_outcomes(self, requests, jobs=None, on_outcome=None):
                outcomes = []
                for i, request in enumerate(requests):
                    outcome = RunOutcome(
                        request, RunOutcome.HUNG, attempts=2,
                        error="watchdog: no forward progress",
                        diagnostics=diag,
                    )
                    if on_outcome is not None:
                        on_outcome(i, outcome)
                    outcomes.append(outcome)
                return outcomes

        engine = ServiceEngine(ServiceConfig(), runner=HangRunner())
        spec = {"benchmark": "bfs", "backend": "baseline"}

        async def body(app, client):
            job = await call(client.submit, [spec])
            events = await call(lambda: list(client.events(job["id"])))
            result = await call(client.result, job["id"])
            return events, result

        events, result = serve_inprocess(engine, body)
        outcome = events[0]
        assert outcome["status"] == "hung"
        assert outcome["diagnostics"] == self.DIAG
        run = result["runs"][0]
        assert run["status"] == "hung"
        assert run["diagnostics"] == self.DIAG
        assert result["job"]["status"] == "failed"


class TestSigtermDrainRestart:
    """Boot the real CLI daemon, SIGTERM it mid-grid, restart, finish."""

    BENCHMARKS = ("bfs", "nw", "streamcluster")

    def boot(self, tmp_path, env):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.harness", "serve", "--port", "0",
             "--state-dir", str(tmp_path / "state"), "--jobs", "1",
             "--batch-runs", "1"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
            env=env, cwd=str(REPO_ROOT),
        )
        line = proc.stdout.readline().strip()
        assert "repro-service listening on" in line, line
        return proc, int(line.rsplit(":", 1)[1])

    def test_drain_persists_and_restart_completes(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        runs = [{"benchmark": name, "backend": "baseline",
                 "overrides": SMALL} for name in self.BENCHMARKS]

        proc, port = self.boot(tmp_path, env)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            job = client.submit(runs)
            events = client.events(job["id"])
            first = next(events)
            assert first["event"] == "outcome" and first["status"] == "ok"
            events.close()
            # --batch-runs 1: at most one more run is in flight; the rest
            # of the grid must survive the drain in the job store.
            proc.send_signal(signal.SIGTERM)
            output, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "draining" in output and "stopped" in output
        state = json.loads(
            (tmp_path / "state" / "service-state.json").read_text()
        )
        [record] = state["jobs"]
        assert record["id"] == job["id"]
        assert record["status"] != "done"
        persisted = len(record["outcomes"])
        assert 1 <= persisted < len(runs)

        proc2, port2 = self.boot(tmp_path, env)
        try:
            client2 = ServiceClient("127.0.0.1", port2, timeout=120)
            result = client2.wait(job["id"])
            metrics = client2.metrics("service")
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.communicate(timeout=120)
            except subprocess.TimeoutExpired:
                proc2.kill()
        assert result["job"]["status"] == "done"
        assert [r["status"] for r in result["runs"]] == ["ok"] * len(runs)
        assert metrics["service.jobs.resumed"] == 1
        assert metrics["service.runs.resumed"] == len(runs) - persisted
