"""Supervisor: batch health probes and the circuit-breaker state machine."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.service.supervisor import BreakerConfig, BreakerOpen, \
    CircuitBreaker, OverloadedError, Supervisor


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


def make_supervisor(threshold=2, reset=10.0):
    clock = FakeClock()
    registry = MetricsRegistry()
    supervisor = Supervisor(
        BreakerConfig(failure_threshold=threshold, reset_timeout=reset),
        metrics=registry.scope("service"),
        clock=clock,
    )
    return supervisor, clock, registry


class TestBreakerStateMachine:
    def test_opens_after_threshold_consecutive_failures(self):
        supervisor, _, registry = make_supervisor(threshold=3)
        breaker = supervisor.breaker
        supervisor.observe_batch(["crashed"], broke=False)
        supervisor.observe_batch([], broke=True)
        assert breaker.state == CircuitBreaker.CLOSED
        supervisor.observe_batch(["hung", "quarantined"])
        assert breaker.state == CircuitBreaker.OPEN
        metrics = registry.as_dict()
        assert metrics["service.breaker.opened"] == 1
        assert metrics["service.breaker.batch_failures"] == 3

    def test_success_resets_the_failure_count(self):
        supervisor, _, _ = make_supervisor(threshold=2)
        supervisor.observe_batch(["crashed"])
        supervisor.observe_batch(["ok", "crashed"])  # mixed batch = healthy
        supervisor.observe_batch(["crashed"])
        assert supervisor.breaker.state == CircuitBreaker.CLOSED

    def test_open_sheds_admission_with_retry_after(self):
        supervisor, clock, registry = make_supervisor(threshold=1, reset=10.0)
        supervisor.observe_batch([], broke=True)
        clock.now += 4.0
        with pytest.raises(BreakerOpen) as err:
            supervisor.admit()
        assert err.value.retry_after == pytest.approx(6.0)
        assert isinstance(err.value, OverloadedError)
        assert registry.as_dict()["service.breaker.rejected"] == 1
        assert not supervisor.allow_dispatch()

    def test_half_open_probe_closes_on_success(self):
        supervisor, clock, registry = make_supervisor(threshold=1, reset=10.0)
        supervisor.observe_batch([], broke=True)
        clock.now += 10.0
        assert supervisor.allow_dispatch()  # the probe batch
        assert supervisor.breaker.state == CircuitBreaker.HALF_OPEN
        supervisor.admit()  # half-open no longer sheds
        supervisor.observe_batch(["ok"])
        assert supervisor.breaker.state == CircuitBreaker.CLOSED
        assert registry.as_dict()["service.breaker.closed"] == 1

    def test_half_open_probe_reopens_on_failure(self):
        supervisor, clock, _ = make_supervisor(threshold=3, reset=10.0)
        for _ in range(3):
            supervisor.observe_batch([], broke=True)
        clock.now += 10.0
        assert supervisor.allow_dispatch()
        supervisor.observe_batch(["crashed"])  # a single bad probe reopens
        assert supervisor.breaker.state == CircuitBreaker.OPEN
        assert supervisor.breaker.retry_after() == pytest.approx(10.0)


class TestBatchHealth:
    def test_empty_batch_is_healthy(self):
        supervisor, _, _ = make_supervisor(threshold=1)
        supervisor.observe_batch([])
        assert supervisor.breaker.state == CircuitBreaker.CLOSED

    def test_all_broken_statuses_count_as_failure(self):
        supervisor, _, _ = make_supervisor(threshold=1)
        supervisor.observe_batch(["crashed", "hung", "quarantined"])
        assert supervisor.breaker.state == CircuitBreaker.OPEN

    def test_unknown_statuses_are_not_executor_damage(self):
        # only the explicit broken set trips the breaker — a status added
        # later (e.g. "expired") must not shed every tenant's traffic
        supervisor, _, _ = make_supervisor(threshold=1)
        supervisor.observe_batch(["expired", "expired"])
        assert supervisor.breaker.state == CircuitBreaker.CLOSED
