"""Cross-client admission dedupe: one in-flight execution per identity."""

from repro.harness.parallel import RunOutcome, RunRequest
from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionController


REQ = RunRequest.make("bfs", "baseline")
OTHER = RunRequest.make("nw", "baseline")


def test_first_acquire_creates_later_attach():
    registry = MetricsRegistry()
    ctl = AdmissionController(registry.scope("service"))
    assert ctl.acquire(REQ, ("job-a", 0)) is True
    assert ctl.acquire(REQ, ("job-b", 3)) is False
    assert ctl.acquire(OTHER, ("job-b", 4)) is True
    assert len(ctl) == 2
    assert ctl.deduped == 1
    assert registry.get("service.admission.deduped") == 1


def test_equal_but_distinct_objects_share_an_execution():
    ctl = AdmissionController()
    assert ctl.acquire(RunRequest.make("bfs", "baseline"), ("a", 0))
    assert not ctl.acquire(RunRequest.make("bfs", "baseline"), ("b", 0))


def test_resolve_fans_out_in_subscription_order():
    ctl = AdmissionController()
    ctl.acquire(REQ, ("job-a", 0))
    ctl.acquire(REQ, ("job-b", 1))
    outcome = RunOutcome(REQ, RunOutcome.OK)
    assert ctl.resolve(REQ, outcome) == [("job-a", 0), ("job-b", 1)]
    assert len(ctl) == 0
    assert ctl.resolve(REQ, outcome) == []  # already retired


def test_unsubscribe_drops_unstarted_orphans_only():
    ctl = AdmissionController()
    ctl.acquire(REQ, ("job-a", 0))
    ctl.mark_started(REQ)
    ctl.acquire(OTHER, ("job-a", 1))  # not started
    ctl.unsubscribe("job-a")
    # The started execution survives (its batch is running and will
    # resolve); the unstarted orphan is discarded.
    assert ctl.is_inflight(REQ)
    assert not ctl.is_inflight(OTHER)
    assert ctl.resolve(REQ, RunOutcome(REQ, RunOutcome.OK)) == []


def test_unsubscribe_keeps_other_jobs_interest():
    ctl = AdmissionController()
    ctl.acquire(REQ, ("job-a", 0))
    ctl.acquire(REQ, ("job-b", 0))
    ctl.unsubscribe("job-a")
    assert ctl.resolve(REQ, RunOutcome(REQ, RunOutcome.OK)) == [("job-b", 0)]


def test_pending_lists_unstarted_executions():
    ctl = AdmissionController()
    ctl.acquire(REQ, ("a", 0))
    ctl.acquire(OTHER, ("a", 1))
    ctl.mark_started(REQ)
    assert [e.request for e in ctl.pending()] == [OTHER]
