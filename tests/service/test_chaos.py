"""Kill-anywhere chaos suite: the real daemon dies at every injection
point and the restarted daemon must converge.

Convergence means, for every point:

* no lost outcomes — the job (resubmitted only if its submit was never
  acknowledged) finishes ``done`` with every run ``ok``;
* no duplicated outcomes — each run index carries exactly one record and
  event sequence numbers are gap- and duplicate-free;
* bit-identical results — ``SimStats`` match the committed golden grid
  (``tests/golden/simstats_bfs_nw.json``) exactly, crash or no crash.

The suite shares one result-cache directory across tests: re-dispatch of
work that simulated-but-never-journaled becomes a deterministic cache
hit, which is exactly the production recovery path and keeps the suite
fast.  Fault claims live in per-test directories and persist across
daemon restarts, so an exhausted fault never re-fires in the second
life.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.harness.faults import KILL_EXIT_CODE, FaultSpec, \
    ServiceFaultSpec, encode_service_plan, injected_faults
from repro.harness.parallel import FaultPolicy
from repro.harness.runner import SuiteRunner
from repro.service import BreakerConfig, ServiceClient, ServiceConfig, \
    ServiceEngine, ServiceError
from repro.sim import GPUConfig

from .test_http_e2e import REPO_ROOT, SMALL, call, serve_inprocess

GOLDEN = REPO_ROOT / "tests" / "golden" / "simstats_bfs_nw.json"
GOLDEN_KEYS = ("cycles", "instructions", "warps_done", "counters", "stalls")

#: the chaos grid — default config, so results diff against the golden.
RUNS = [{"benchmark": "bfs", "backend": "baseline"},
        {"benchmark": "nw", "backend": "baseline"}]

#: every named injection point on the journal/dispatch paths.
KILL_POINTS = [
    "journal.submit.pre",    # die before the job is durable
    "journal.submit.post",   # durable but the 201 never sent
    "journal.start.post",    # batch journaled, never dispatched
    "dispatch.pre",          # die entering the dispatch path
    "journal.outcome.pre",   # run finished, outcome not journaled
    "journal.outcome.post",  # outcome durable, not yet applied
    "journal.finish.pre",    # all outcomes durable, job not finalized
    "journal.finish.post",   # finalized, died right after
    "compact.pre",           # die entering compaction
    "compact.post",          # snapshot rotated, died right after
]


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("chaos-cache"))


def boot_daemon(tmp_path, env):
    """Start the real CLI daemon; returns (process, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.harness", "serve", "--port", "0",
         "--state-dir", str(tmp_path / "state"), "--jobs", "1",
         "--batch-runs", "1", "--compact-every", "2"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        env=env, cwd=str(REPO_ROOT),
    )
    line = proc.stdout.readline().strip()
    assert "repro-service listening on" in line, line
    return proc, int(line.rsplit(":", 1)[1])


def chaos_env(tmp_path, cache_dir, specs):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_CACHE_DIR"] = cache_dir
    env["REPRO_SERVICE_FAULTS"] = encode_service_plan(specs)
    env["REPRO_FAULT_DIR"] = str(tmp_path / "claims")
    os.makedirs(env["REPRO_FAULT_DIR"], exist_ok=True)
    return env


def end_daemon(proc):
    """SIGTERM a (possibly already dead) daemon and reap it."""
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
    try:
        return proc.communicate(timeout=120)[0]
    except subprocess.TimeoutExpired:
        proc.kill()
        return proc.communicate()[0]


def submit_expecting_crash(client, runs):
    """Submit to a daemon that may die mid-request; job id or ``None``."""
    try:
        return client.submit(runs)["id"]
    except (ServiceError, OSError):
        return None


def assert_converged(result, golden, runs=RUNS):
    assert result["job"]["status"] == "done"
    assert len(result["runs"]) == len(runs)
    seen = set()
    for spec, run in zip(runs, result["runs"]):
        key = f"{spec['benchmark']}/{spec['backend']}"
        assert run["status"] == "ok", (key, run.get("error"))
        assert run["index"] not in seen  # no duplicated outcomes
        seen.add(run["index"])
        stats = run["run"]["stats"]
        for field in GOLDEN_KEYS:
            assert stats[field] == golden[key][field], (key, field)


class TestKillAnywhere:
    """SIGKILL-equivalent death at every injection point, then converge."""

    @pytest.mark.parametrize("point", KILL_POINTS)
    def test_daemon_killed_at_point_converges(self, tmp_path, cache_dir,
                                              golden, point):
        env = chaos_env(tmp_path, cache_dir,
                        [ServiceFaultSpec("kill", point)])
        proc, port = boot_daemon(tmp_path, env)
        job_id = None
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120, retries=0)
            job_id = submit_expecting_crash(client, RUNS)
            proc.wait(timeout=120)  # the armed fault kills the daemon
        finally:
            output = end_daemon(proc)
        assert proc.returncode == KILL_EXIT_CODE, (point, output)

        # Second life: same fault plan armed, but the claim is spent.
        proc2, port2 = boot_daemon(tmp_path, env)
        try:
            client2 = ServiceClient("127.0.0.1", port2, timeout=120)
            if job_id is None:
                # the crash beat the 201: recover the job id if the
                # submit was journaled, else resubmit
                jobs = client2.jobs()
                assert len(jobs) <= 1
                job_id = jobs[0]["id"] if jobs else \
                    client2.submit(RUNS)["id"]
            result = client2.wait(job_id)
            metrics = client2.metrics("service")
        finally:
            end_daemon(proc2)
        assert_converged(result, golden)
        # resumed work is bounded by the grid — nothing ran twice into
        # the journal, and completed jobs are never re-dispatched
        assert metrics.get("service.runs.resumed", 0) <= len(RUNS)

    def test_journaled_outcomes_never_reexecute(self, tmp_path, cache_dir,
                                                golden):
        """Exactly-once: die after every outcome is journaled but before
        the finish record — the restarted daemon must finalize the job
        from the journal alone, dispatching nothing."""
        env = chaos_env(tmp_path, cache_dir,
                        [ServiceFaultSpec("kill", "journal.finish.pre")])
        proc, port = boot_daemon(tmp_path, env)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120, retries=0)
            job_id = submit_expecting_crash(client, RUNS)
            assert job_id is not None
            proc.wait(timeout=120)
        finally:
            end_daemon(proc)
        assert proc.returncode == KILL_EXIT_CODE

        proc2, port2 = boot_daemon(tmp_path, env)
        try:
            client2 = ServiceClient("127.0.0.1", port2, timeout=120)
            result = client2.wait(job_id)
            metrics = client2.metrics("service")
        finally:
            end_daemon(proc2)
        assert_converged(result, golden)
        assert metrics.get("service.runs.dispatched", 0) == 0
        assert metrics.get("service.jobs.done", 0) == 1


class TestTornJournal:
    """Torn and bit-flipped journal writes truncate-and-continue."""

    @pytest.mark.parametrize("kind,point", [
        ("torn", "journal.outcome.pre"),
        ("torn", "journal.submit.pre"),
        ("bitflip", "journal.outcome.pre"),
    ])
    def test_damaged_tail_recovers(self, tmp_path, cache_dir, golden,
                                   kind, point):
        env = chaos_env(tmp_path, cache_dir, [ServiceFaultSpec(kind, point)])
        proc, port = boot_daemon(tmp_path, env)
        job_id = None
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120, retries=0)
            job_id = submit_expecting_crash(client, RUNS)
            proc.wait(timeout=120)
        finally:
            end_daemon(proc)
        assert proc.returncode == KILL_EXIT_CODE

        proc2, port2 = boot_daemon(tmp_path, env)
        try:
            client2 = ServiceClient("127.0.0.1", port2, timeout=120)
            if job_id is None:
                jobs = client2.jobs()
                job_id = jobs[0]["id"] if jobs else \
                    client2.submit(RUNS)["id"]
            result = client2.wait(job_id)
            metrics = client2.metrics("service")
        finally:
            end_daemon(proc2)
        assert_converged(result, golden)
        # replay saw the damaged tail, counted it, and kept going
        assert metrics.get("service.journal.torn_tails", 0) >= 1


class TestDrainWithAttachedStream:
    """SIGTERM drain while a client is attached to the live NDJSON
    stream: the stream must end with a clean terminal marker, and a
    reconnect after restart replays exactly the missed tail."""

    BENCHMARKS = ("bfs", "nw", "streamcluster")

    def test_stream_gets_drain_marker_and_resumes(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        runs = [{"benchmark": name, "backend": "baseline",
                 "overrides": SMALL} for name in self.BENCHMARKS]

        proc, port = boot_daemon(tmp_path, env)
        streamed = []
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            job = client.submit(runs)

            done = threading.Event()

            def consume():
                # raw single-connection stream: no client-side reconnect,
                # we want to see exactly what the drain delivers
                for event in client._stream_once(job["id"], -1):
                    streamed.append(event)
                done.set()

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            while not streamed:  # first outcome arrives
                assert thread.is_alive()
                time.sleep(0.05)
            proc.send_signal(signal.SIGTERM)
            output = end_daemon(proc)
            thread.join(timeout=60)
            assert done.is_set()
        finally:
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == 0
        assert "draining" in output and "stopped" in output
        # the stream ended with the explicit drain marker, not a cut wire
        assert streamed[-1] == {"event": "service", "status": "draining",
                                "job": job["id"]}
        outcomes = [e for e in streamed if e.get("event") == "outcome"]
        assert outcomes and len(outcomes) < len(runs)
        last_seq = max(e["seq"] for e in outcomes)

        proc2, port2 = boot_daemon(tmp_path, env)
        try:
            client2 = ServiceClient("127.0.0.1", port2, timeout=120)
            tail = list(client2.events(job["id"], after=last_seq))
        finally:
            end_daemon(proc2)
        # the reconnect replays only the missed tail, then terminates
        assert tail[-1]["event"] == "job" and tail[-1]["status"] == "done"
        tail_seqs = [e["seq"] for e in tail]
        assert min(tail_seqs) == last_seq + 1  # gapless, no duplicates
        assert sorted(tail_seqs) == list(range(last_seq + 1,
                                               last_seq + 1 + len(tail)))
        statuses = {e["index"]: e["status"] for e in streamed + tail
                    if e.get("event") == "outcome"}
        assert statuses == {i: "ok" for i in range(len(runs))}


class TestBreakerStorm:
    """A pool-breakage storm opens the breaker over HTTP; recovery runs."""

    def test_storm_sheds_then_recovers(self, tmp_path):
        claim_dir = str(tmp_path / "claims")
        # every run in a storm batch is a targeted kill — the batch comes
        # back all-crashed no matter how the pool schedules the deaths
        storm = [{"benchmark": "bfs", "backend": "baseline",
                  "overrides": SMALL},
                 {"benchmark": "nw", "backend": "baseline",
                  "overrides": SMALL}]
        recovery = [{"benchmark": "hotspot", "backend": "baseline",
                     "overrides": SMALL},
                    {"benchmark": "streamcluster", "backend": "baseline",
                     "overrides": SMALL}]
        faults = [FaultSpec("kill", "bfs/baseline", count=2),
                  FaultSpec("kill", "nw/baseline", count=2)]
        with injected_faults(faults, claim_dir):
            runner = SuiteRunner(
                config=GPUConfig(**SMALL), cache=False,
                policy=FaultPolicy(retries=0),
            )
            engine = ServiceEngine(
                ServiceConfig(
                    jobs=2,  # a real worker pool, so kill faults fire
                    breaker=BreakerConfig(failure_threshold=2,
                                          reset_timeout=0.2),
                ),
                runner=runner,
            )

            async def body(app, client):
                # two worker-kill batches in a row open the breaker
                for _ in range(2):
                    job = await call(client.submit, storm)
                    for event in await call(
                        lambda: list(client.events(job["id"]))
                    ):
                        if event.get("event") == "outcome":
                            assert event["status"] == "crashed"
                with pytest.raises(ServiceError) as err:
                    await call(client.submit, recovery)
                assert err.value.status == 503
                assert err.value.retry_after is not None
                health = await call(client.health)
                assert health["breaker"] == "open"
                # after the reset timeout, the half-open probe dispatches
                # the next batch; it matches no fault target, so it heals
                await asyncio.sleep(0.3)
                job = await call(client.submit, recovery)
                result = await call(client.wait, job["id"])
                assert [r["status"] for r in result["runs"]] == ["ok", "ok"]
                metrics = await call(client.metrics, "service")
                assert metrics["service.breaker.opened"] == 1
                assert metrics["service.breaker.rejected"] == 1
                health = await call(client.health)
                assert health["breaker"] == "closed"

            serve_inprocess(engine, body)


class TestClientReconnect:
    """Client disconnect mid-stream + reconnect-with-backoff plumbing."""

    def test_events_resume_across_dropped_connection(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        runs = [{"benchmark": name, "backend": "baseline",
                 "overrides": SMALL} for name in ("bfs", "nw")]

        proc, port = boot_daemon(tmp_path, env)
        try:
            client = ServiceClient("127.0.0.1", port, timeout=120)
            job = client.submit(runs)

            # sabotage the first connection after one event: the client
            # must reconnect with ?after= and finish the stream gapless
            real_stream = client._stream_once
            dropped = {"count": 0}

            def breaking_stream(job_id, after):
                for i, event in enumerate(real_stream(job_id, after)):
                    yield event
                    if dropped["count"] == 0 and i == 0:
                        dropped["count"] += 1
                        raise ConnectionResetError("injected disconnect")

            client._stream_once = breaking_stream
            events = list(client.events(job["id"]))
        finally:
            end_daemon(proc)
        assert dropped["count"] == 1
        assert events[-1]["event"] == "job"
        seqs = [e["seq"] for e in events]
        assert seqs == sorted(set(seqs))  # gapless, duplicate-free
        outcomes = [e for e in events if e["event"] == "outcome"]
        assert {e["index"] for e in outcomes} == {0, 1}
        assert all(e["status"] == "ok" for e in outcomes)

    def test_idempotent_gets_retry_through_backoff(self):
        naps = []
        client = ServiceClient("127.0.0.1", 1, timeout=0.2, retries=3,
                               backoff=0.01, sleep=naps.append)
        with pytest.raises(ServiceError) as err:
            client.health()
        assert err.value.status == 503
        assert naps == [0.01, 0.02, 0.04]  # exponential backoff
        # mutating requests are never replayed
        naps.clear()
        with pytest.raises(ServiceError):
            client._request("POST", "/jobs", {"runs": []})
        assert naps == []
