"""JournalStore: WAL framing, torn-tail recovery, compaction."""

import hashlib
import json
import os
import struct

from repro.obs.metrics import MetricsRegistry
from repro.service.journal import JournalStore, WAL_HEADER


def make_store(tmp_path, **kwargs):
    registry = MetricsRegistry()
    store = JournalStore(
        str(tmp_path / "state.json"),
        metrics=registry.scope("service.journal"),
        **kwargs,
    )
    return store, registry


def submit_entry(job_id, seq=1, status="queued", outcomes=None):
    return {
        "type": "submit",
        "seq": seq,
        "job": {
            "id": job_id,
            "tenant": "anon",
            "priority": "batch",
            "status": status,
            "created": 1.0,
            "finished_at": 0.0,
            "tags": {},
            "error": "",
            "deadline_s": None,
            "requests": [],
            "outcomes": dict(outcomes or {}),
        },
    }


class TestReplay:
    def test_append_then_load_round_trips(self, tmp_path):
        store, _ = make_store(tmp_path)
        store.append(submit_entry("a", seq=1))
        store.append({"type": "outcome", "seq": 1, "job": "a", "index": 0,
                      "record": {"status": "ok", "seq": 0}})
        store.append({"type": "finish", "seq": 1, "job": "a",
                      "status": "done", "finished_at": 2.0, "error": ""})
        store.close()

        fresh, registry = make_store(tmp_path)
        records, seq = fresh.load()
        fresh.close()
        assert seq == 1
        assert [r["id"] for r in records] == ["a"]
        assert records[0]["status"] == "done"
        assert records[0]["outcomes"] == {"0": {"status": "ok", "seq": 0}}
        assert registry.as_dict()["service.journal.replayed"] == 3

    def test_duplicate_submit_is_idempotent(self, tmp_path):
        # compaction crash-consistency: a journal replayed on top of a
        # snapshot that already contains its records must not duplicate
        store, _ = make_store(tmp_path)
        store.append(submit_entry("a"))
        store.append(submit_entry("a"))
        store.close()
        fresh, _ = make_store(tmp_path)
        records, _ = fresh.load()
        fresh.close()
        assert [r["id"] for r in records] == ["a"]

    def test_missing_files_load_empty(self, tmp_path):
        store, _ = make_store(tmp_path)
        records, seq = store.load()
        store.close()
        assert records == [] and seq == 0


class TestTornTail:
    def frames(self, tmp_path):
        store, _ = make_store(tmp_path)
        store.append(submit_entry("a", seq=1))
        store.append(submit_entry("b", seq=2))
        store.close()
        return store.wal_path

    def test_half_written_frame_is_truncated(self, tmp_path):
        wal = self.frames(tmp_path)
        good_size = os.path.getsize(wal)
        payload = json.dumps({"type": "submit"}).encode()
        frame = struct.pack("<I", len(payload)) + \
            hashlib.sha256(payload).digest() + payload
        with open(wal, "ab") as fh:
            fh.write(frame[: len(frame) // 2])

        store, registry = make_store(tmp_path)
        records, seq = store.load()
        metrics = registry.as_dict()
        assert [r["id"] for r in records] == ["a", "b"]
        assert seq == 2
        assert metrics["service.journal.torn_tails"] == 1
        assert metrics["service.journal.truncated_bytes"] > 0
        assert os.path.getsize(wal) == good_size
        # the journal keeps working at the truncation point
        store.append(submit_entry("c", seq=3))
        store.close()
        fresh, _ = make_store(tmp_path)
        records, seq = fresh.load()
        fresh.close()
        assert [r["id"] for r in records] == ["a", "b", "c"]
        assert seq == 3

    def test_bitflipped_frame_is_dropped(self, tmp_path):
        wal = self.frames(tmp_path)
        data = bytearray(open(wal, "rb").read())
        data[-1] ^= 0x01  # flip a payload bit in the last frame
        open(wal, "wb").write(bytes(data))
        store, registry = make_store(tmp_path)
        records, _ = store.load()
        store.close()
        assert [r["id"] for r in records] == ["a"]
        assert registry.as_dict()["service.journal.torn_tails"] == 1

    def test_garbage_file_resets_to_header(self, tmp_path):
        store, _ = make_store(tmp_path)
        with open(store.wal_path, "wb") as fh:
            fh.write(b"not a journal at all")
        fresh, registry = make_store(tmp_path)
        records, _ = fresh.load()
        fresh.close()
        assert records == []
        assert registry.as_dict()["service.journal.torn_tails"] == 1
        assert open(store.wal_path, "rb").read() == WAL_HEADER

    def test_absurd_length_is_corruption(self, tmp_path):
        wal = self.frames(tmp_path)
        with open(wal, "ab") as fh:
            fh.write(struct.pack("<I", 2**31) + b"\0" * 40)
        store, _ = make_store(tmp_path)
        records, _ = store.load()
        store.close()
        assert [r["id"] for r in records] == ["a", "b"]


class TestCompaction:
    def test_compact_writes_legacy_snapshot_and_rotates(self, tmp_path):
        store, registry = make_store(tmp_path, compact_every=2)
        store.append(submit_entry("a"))
        assert not store.should_compact()
        store.append({"type": "finish", "seq": 1, "job": "a",
                      "status": "done", "finished_at": 2.0, "error": ""})
        assert store.should_compact()
        record = submit_entry("a", status="done")["job"]
        store.compact([record], 1)
        store.close()

        # snapshot is the legacy JobStore format
        payload = json.load(open(store.path))
        assert payload["version"] == 1
        assert [j["id"] for j in payload["jobs"]] == ["a"]
        # journal rotated down to the bare header
        assert open(store.wal_path, "rb").read() == WAL_HEADER
        assert registry.as_dict()["service.journal.compactions"] == 1

        fresh, _ = make_store(tmp_path)
        records, seq = fresh.load()
        fresh.close()
        assert [r["id"] for r in records] == ["a"] and seq == 1

    def test_wal_survives_on_top_of_snapshot(self, tmp_path):
        store, _ = make_store(tmp_path)
        store.append(submit_entry("a"))
        store.compact([submit_entry("a")["job"]], 1)
        store.append(submit_entry("b", seq=2))
        store.close()
        fresh, _ = make_store(tmp_path)
        records, seq = fresh.load()
        fresh.close()
        assert [r["id"] for r in records] == ["a", "b"]
        assert seq == 2
