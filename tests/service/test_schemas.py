"""Wire-schema validation: everything crossing the HTTP boundary."""

import pytest

from repro.harness.parallel import RunOutcome, RunRequest
from repro.service import SpecError, outcome_to_wire, parse_job_spec, \
    request_from_wire, request_to_wire


class TestRequestRoundTrip:
    def test_wire_round_trip_is_identity(self):
        req = RunRequest.make("bfs", "regless", 256, ("rf_read",),
                              scheduler="lrr")
        assert request_from_wire(request_to_wire(req)) == req

    def test_defaults_fill_in(self):
        req = request_from_wire({"benchmark": "bfs", "backend": "baseline"})
        assert req.osu_entries == 512
        assert req.window_series == ()
        assert req.overrides == ()


class TestRequestValidation:
    def reject(self, wire, match):
        with pytest.raises(SpecError, match=match):
            request_from_wire(wire)

    def test_rejects_non_object(self):
        self.reject(["bfs"], "must be an object")

    def test_rejects_unknown_field(self):
        self.reject({"benchmark": "bfs", "backend": "baseline",
                     "bencmark": "typo"}, "unknown run-spec field")

    def test_rejects_unknown_benchmark(self):
        self.reject({"benchmark": "no-such-workload",
                     "backend": "baseline"}, "unknown benchmark")

    def test_rejects_unknown_backend(self):
        self.reject({"benchmark": "bfs", "backend": "magic"},
                    "unknown backend")

    def test_rejects_bad_osu_entries(self):
        for bad in (0, -1, "512", True):
            self.reject({"benchmark": "bfs", "backend": "baseline",
                         "osu_entries": bad}, "osu_entries")

    def test_rejects_bad_window_series(self):
        self.reject({"benchmark": "bfs", "backend": "baseline",
                     "window_series": [1]}, "window_series")

    def test_rejects_bad_overrides(self):
        self.reject({"benchmark": "bfs", "backend": "baseline",
                     "overrides": [("a", 1)]}, "overrides")


class TestJobSpec:
    RUN = {"benchmark": "bfs", "backend": "baseline"}

    def test_parses_runs_priority_tags(self):
        requests, priority, tags, deadline_s = parse_job_spec({
            "runs": [self.RUN], "priority": "interactive",
            "tags": {"note": "x"},
        })
        assert [r.key for r in requests] == ["bfs/baseline"]
        assert priority == "interactive"
        assert tags == {"note": "x"}
        assert deadline_s is None

    def test_priority_defaults_to_batch(self):
        _, priority, tags, _ = parse_job_spec({"runs": [self.RUN]})
        assert priority == "batch"
        assert tags == {}

    def test_parses_deadline(self):
        _, _, _, deadline_s = parse_job_spec(
            {"runs": [self.RUN], "deadline_s": 2.5}
        )
        assert deadline_s == 2.5

    def test_rejects_bad_deadline(self):
        for bad in (0, -1, "60", True):
            with pytest.raises(SpecError, match="deadline_s"):
                parse_job_spec({"runs": [self.RUN], "deadline_s": bad})

    def test_rejects_empty_or_missing_runs(self):
        for body in ({}, {"runs": []}, {"runs": "bfs"}, None, []):
            with pytest.raises(SpecError):
                parse_job_spec(body)

    def test_rejects_unknown_priority_and_fields(self):
        with pytest.raises(SpecError, match="priority"):
            parse_job_spec({"runs": [self.RUN], "priority": "urgent"})
        with pytest.raises(SpecError, match="unknown job-spec"):
            parse_job_spec({"runs": [self.RUN], "prio": "batch"})


class TestOutcomeWire:
    def test_failure_carries_error_no_run(self):
        req = RunRequest.make("bfs", "baseline")
        out = RunOutcome(req, RunOutcome.CRASHED, attempts=3,
                         error="worker died")
        wire = outcome_to_wire(4, out)
        assert wire["event"] == "outcome"
        assert wire["index"] == 4
        assert wire["status"] == "crashed"
        assert wire["attempts"] == 3
        assert wire["error"] == "worker died"
        assert "run" not in wire
        assert "deduped" not in wire

    def test_deduped_flag(self):
        req = RunRequest.make("bfs", "baseline")
        out = RunOutcome(req, RunOutcome.CRASHED, attempts=1, error="x")
        assert outcome_to_wire(0, out, deduped=True)["deduped"] is True
