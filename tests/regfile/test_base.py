"""The OperandStorage base contract and the CTA-occupancy mixin."""

from repro.compiler import compile_kernel
from repro.isa import Imm, Instruction, Opcode, Reg
from repro.regfile import OperandStorage
from repro.regfile.base import CTAOccupancyMixin
from repro.sim import Warp
from repro.sim.gpu import GPU
from repro.regfile import BaselineRF


class TestNullStorage:
    def test_defaults_never_block(self):
        storage = OperandStorage()
        warp = Warp(wid=0, shard_id=0, cta_id=0, entry_pc=0, sentinel_pc=10)
        insn = Instruction(Opcode.MOV, (Reg(0),), (Imm(1),))
        assert storage.can_issue(warp, 0, insn)
        assert storage.metadata_slots(warp, 0) == 0
        assert storage.idle
        # Hooks are no-ops.
        storage.on_issue(warp, 0, insn)
        storage.on_writeback(warp, 0, insn)
        storage.on_warp_exit(warp)
        storage.cycle()
        storage.finalize()

    def test_null_storage_runs_a_kernel(self, loop_workload, fast_config):
        from repro.sim import run_simulation

        ck = compile_kernel(loop_workload.kernel())
        stats = run_simulation(fast_config, ck, loop_workload,
                               lambda sm, sh: OperandStorage())
        assert stats.finished


class FakeShard:
    def __init__(self, warps, sm):
        self.warps = warps
        self.sm = sm


class FakeSM:
    def __init__(self, config):
        self.config = config


class TestCTAOccupancy:
    def make(self, fast_config, warps_per_cta=2, rf_entries=64, num_regs=8):
        cfg = fast_config.with_(cta_size_warps=warps_per_cta)
        warps = [
            Warp(wid=i, shard_id=0, cta_id=i // warps_per_cta,
                 entry_pc=0, sentinel_pc=10)
            for i in range(4)
        ]
        mixin = CTAOccupancyMixin()
        mixin.init_occupancy(FakeShard(warps, FakeSM(cfg)), num_regs, rf_entries)
        return mixin, warps

    def test_partial_residency(self, fast_config):
        # 64 entries / 2 schedulers = 32 per shard; 32/8 regs = 4 warps
        # = 2 CTAs of 2... all resident. Shrink:
        mixin, warps = self.make(fast_config, rf_entries=32)
        # 16 per shard / 8 regs = 2 warps = 1 CTA resident.
        resident = [w for w in warps if mixin.is_resident(w)]
        assert len(resident) == 2
        assert all(w.cta_id == 0 for w in resident)

    def test_retire_admits_next_cta(self, fast_config):
        mixin, warps = self.make(fast_config, rf_entries=32)
        for w in warps[:2]:
            w.exited = True
            mixin.retire_warp(w)
        assert mixin.is_resident(warps[2])

    def test_partial_cta_exit_does_not_admit(self, fast_config):
        mixin, warps = self.make(fast_config, rf_entries=32)
        warps[0].exited = True
        mixin.retire_warp(warps[0])
        assert not mixin.is_resident(warps[2])

    def test_at_least_one_cta_always_resident(self, fast_config):
        # Register demand beyond the whole RF must still admit one CTA.
        mixin, warps = self.make(fast_config, rf_entries=8, num_regs=100)
        assert any(mixin.is_resident(w) for w in warps)
