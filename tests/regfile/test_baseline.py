from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.sim import run_simulation
from repro.sim.gpu import GPU


class TestAccessCounting:
    def test_reads_writes_counted(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        stats = run_simulation(fast_config, ck, loop_workload,
                               lambda sm, sh: BaselineRF())
        # Every ALU/load instruction reads its register sources once each.
        assert stats.counter("rf_read") > 0
        assert stats.counter("rf_write") > 0
        # Writes cannot exceed instructions (one dest max).
        assert stats.counter("rf_write") <= stats.instructions


class TestOccupancyGating:
    def test_small_kernel_all_resident(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        gpu = GPU(fast_config, ck, loop_workload, lambda sm, sh: BaselineRF())
        for shard in gpu.sms[0].shards:
            storage = shard.storage
            assert all(storage.is_resident(w) for w in shard.warps)

    def test_register_heavy_kernel_limits_residency(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        # Two CTAs of two warps per shard; an RF that only fits one CTA.
        cfg = fast_config.with_(cta_size_warps=2)
        gpu = GPU(cfg, ck, loop_workload,
                  lambda sm, sh: BaselineRF(entries_per_sm=ck.kernel.num_regs * 4))
        shard = gpu.sms[0].shards[0]
        storage = shard.storage
        resident = [w for w in shard.warps if storage.is_resident(w)]
        assert 0 < len(resident) < len(shard.warps)

    def test_waves_launch_as_ctas_retire(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        stats = run_simulation(
            fast_config, ck, loop_workload,
            lambda sm, sh: BaselineRF(entries_per_sm=ck.kernel.num_regs * 8),
        )
        # Despite limited residency, everything eventually runs.
        assert stats.finished
        assert stats.warps_done == stats.warps_total
