from repro.compiler import compile_kernel
from repro.regfile import BaselineRF, RFVStorage
from repro.sim import run_simulation


class TestRenaming:
    def test_completes_with_ample_capacity(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        stats = run_simulation(fast_config, ck, loop_workload,
                               lambda sm, sh: RFVStorage(ck))
        assert stats.finished
        assert stats.counter("rfv_read") > 0
        assert stats.counter("rfv_write") > 0

    def test_access_counts_match_baseline(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        base = run_simulation(fast_config, ck, loop_workload,
                              lambda sm, sh: BaselineRF())
        rfv = run_simulation(fast_config, ck, loop_workload,
                             lambda sm, sh: RFVStorage(ck))
        assert rfv.counter("rfv_read") == base.counter("rf_read")
        assert rfv.counter("rfv_write") == base.counter("rf_write")


class TestPressure:
    def test_scarce_physical_registers_stall(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        tight = run_simulation(
            fast_config, ck, loop_workload,
            lambda sm, sh: RFVStorage(ck, phys_regs_per_shard=16),
        )
        ample = run_simulation(
            fast_config, ck, loop_workload,
            lambda sm, sh: RFVStorage(ck, phys_regs_per_shard=256),
        )
        assert tight.finished
        assert tight.counter("rfv_stall_cycles") > ample.counter("rfv_stall_cycles")
        assert tight.cycles >= ample.cycles

    def test_dead_registers_recycled(self, loop_workload, fast_config):
        # Capacity far below (warps x total regs) but enough for live values:
        # the run still completes because deaths free physical registers.
        ck = compile_kernel(loop_workload.kernel())
        n_live = ck.liveness.max_live()
        warps_per_shard = fast_config.warps_per_scheduler
        stats = run_simulation(
            fast_config, ck, loop_workload,
            lambda sm, sh: RFVStorage(
                ck, phys_regs_per_shard=n_live * warps_per_shard + 4
            ),
        )
        assert stats.finished


class TestExitCleanup:
    def test_warp_exit_frees_mappings(self, loop_workload, fast_config):
        from repro.sim.gpu import GPU

        ck = compile_kernel(loop_workload.kernel())
        storages = []

        def factory(sm, sh):
            s = RFVStorage(ck)
            storages.append(s)
            return s

        gpu = GPU(fast_config, ck, loop_workload, factory)
        gpu.run()
        assert all(s.allocated == 0 for s in storages)
