from repro.compiler import compile_kernel
from repro.regfile import RFHStorage, assign_levels
from repro.regfile.rfh import LRF, MRF, ORF
from repro.sim import run_simulation


class TestLevelAssignment:
    def test_immediate_consumption_goes_lrf(self):
        from repro.isa import KernelBuilder

        b = KernelBuilder("k")
        b.block("entry")
        t1, t2 = b.fresh(2)
        b.iadd(t1, b.reg(0), 1)
        b.iadd(t2, t1, 2)  # consumed immediately, never again
        b.stg(b.reg(1), t2)
        b.exit()
        ck = compile_kernel(b.build())
        assignment = assign_levels(ck)
        # t1's def is pc 0; its only use is pc 1.
        assert assignment.write_level[(0, t1.index)] == LRF

    def test_cross_block_values_read_from_mrf(self, compiled_loop):
        assignment = assign_levels(compiled_loop)
        kernel = compiled_loop.kernel
        liveness = compiled_loop.liveness
        for pc, label, insn in kernel.iter_pcs():
            for r in insn.reg_srcs:
                level = assignment.read_level.get((pc, r.index), MRF)
                if level != MRF:
                    # Small-structure reads never cross block boundaries.
                    block_pcs = kernel.pcs_of_block(label)
                    defs_in_block = [
                        p for p in block_pcs
                        if p < pc and r in kernel.insn_at(p).reg_dsts
                    ]
                    assert defs_in_block

    def test_escaping_values_written_through(self, compiled_loop):
        assignment = assign_levels(compiled_loop)
        liveness = compiled_loop.liveness
        kernel = compiled_loop.kernel
        for (pc, reg_idx), level in assignment.write_level.items():
            if level == MRF:
                continue
            from repro.isa import Reg
            label = kernel.block_of_pc(pc)
            if Reg(reg_idx) in liveness.live_out[label]:
                assert (pc, reg_idx) in assignment.writethrough

    def test_orf_capacity_respected(self, compiled_loop):
        # With zero ORF entries, nothing may land in the ORF.
        assignment = assign_levels(compiled_loop, orf_entries=0)
        assert all(level != ORF for level in assignment.write_level.values())


class TestRFHRun:
    def test_counters_split_across_levels(self, loop_workload, fast_config):
        ck = compile_kernel(loop_workload.kernel())
        cfg = fast_config.with_(scheduler="two_level")
        stats = run_simulation(cfg, ck, loop_workload,
                               lambda sm, sh: RFHStorage(ck))
        small = (stats.counter("rfh_lrf_read") + stats.counter("rfh_orf_read")
                 + stats.counter("rfh_lrf_write") + stats.counter("rfh_orf_write"))
        assert small > 0
        assert stats.counter("rf_read") + stats.counter("rf_write") > 0
        assert stats.finished

    def test_total_reads_preserved(self, loop_workload, fast_config):
        from repro.regfile import BaselineRF
        ck = compile_kernel(loop_workload.kernel())
        base = run_simulation(fast_config, ck, loop_workload,
                              lambda sm, sh: BaselineRF())
        cfg = fast_config.with_(scheduler="two_level")
        rfh = run_simulation(cfg, ck, loop_workload,
                             lambda sm, sh: RFHStorage(ck))
        rfh_reads = (rfh.counter("rf_read") + rfh.counter("rfh_lrf_read")
                     + rfh.counter("rfh_orf_read"))
        assert rfh_reads == base.counter("rf_read")
