"""Cross-pass property tests: random kernels through the whole compiler.

These generate small random structured kernels (loops + diamonds + loads)
and assert the invariants that every pass must jointly maintain.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import (
    allocate_registers,
    analyze_liveness,
    annotate_regions,
    compile_kernel,
    create_regions,
    RegionConfig,
)
from repro.isa import KernelBuilder


@st.composite
def structured_kernel(draw):
    """A kernel with optional loop and diamond, random body lengths."""
    b = KernelBuilder("rand")
    b.block("entry")
    tid = b.reg(0)
    out = b.reg(1)
    acc = b.fresh()
    b.mov(acc, 0)

    use_loop = draw(st.booleans())
    header = exit_lbl = None
    i = None
    if use_loop:
        i = b.fresh()
        b.mov(i, 0)
        header = b.label()
        exit_lbl = b.label()
        b.block_named(header)
        p = b.fresh_pred()
        b.setp(p, i, 8, tag="loop")
        b.bra(exit_lbl, pred=p)
        b.block()

    # body
    live = [tid, acc]
    for k in range(draw(st.integers(1, 18))):
        v = b.fresh()
        choice = draw(st.integers(0, 3))
        src = live[draw(st.integers(0, len(live) - 1))]
        if choice == 0:
            b.ldg(v, src)
        elif choice == 1:
            b.iadd(v, src, k)
        elif choice == 2:
            b.imul(v, src, k + 2)
        else:
            b.xor(v, src, 0x5A)
        live.append(v)
        if len(live) > 5:
            live.pop(0)
    b.iadd(acc, acc, live[-1])

    if use_loop:
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)

    use_diamond = draw(st.booleans())
    if use_diamond:
        p2 = b.fresh_pred()
        b.setp(p2, acc, 0, tag="if")
        join = b.label()
        b.bra(join, pred=p2)
        b.block()
        b.iadd(acc, acc, 1)
        b.block_named(join)

    b.stg(out, acc)
    b.exit()
    return b.build()


@given(structured_kernel())
@settings(max_examples=50, deadline=None)
def test_full_pipeline_invariants(kernel):
    compiled = compile_kernel(kernel)

    # 1. Regions tile the kernel.
    covered = sorted(
        pc for r in compiled.regions for pc in range(r.start_pc, r.end_pc)
    )
    assert covered == list(range(kernel.num_instructions))

    # 2. Every referenced register in every region gets exactly one
    #    last-use mark.
    for region, ann in zip(compiled.regions, compiled.annotations):
        referenced = set()
        for pc in range(region.start_pc, region.end_pc):
            referenced.update(kernel.insn_at(pc).regs)
        marks = []
        for bucket in (ann.erase_at, ann.evict_at, ann.erase_on_write,
                       ann.evict_on_write):
            for regs in bucket.values():
                marks.extend(regs)
        assert sorted(set(marks)) == sorted(marks)  # no double marks
        assert set(marks) == referenced

    # 3. Preloads are exactly the region inputs.
    for region, ann in zip(compiled.regions, compiled.annotations):
        assert {p.reg for p in ann.preloads} == set(region.inputs)

    # 4. Metadata for every region fits the encoding budget.
    from repro.compiler import encode_region_metadata
    for region, ann in zip(compiled.regions, compiled.annotations):
        words = encode_region_metadata(ann, region.num_insns)
        assert len(words) == ann.n_metadata_insns


@given(structured_kernel())
@settings(max_examples=40, deadline=None)
def test_regalloc_then_compile_agrees_on_structure(kernel):
    alloc = allocate_registers(kernel)
    before = compile_kernel(kernel)
    after = compile_kernel(alloc)
    # Region boundaries shift only where bank limits changed; the tiling
    # invariant and block confinement always hold.
    for compiled in (before, after):
        for region in compiled.regions:
            assert compiled.kernel.block_of_pc(region.start_pc) == region.block

    # Renaming cannot raise the peak footprint of any single PC.
    assert after.liveness.max_live() == before.liveness.max_live()


@given(structured_kernel(), st.integers(2, 6))
@settings(max_examples=30, deadline=None)
def test_region_limits_respected_when_splittable(kernel, limit):
    lv = analyze_liveness(kernel)
    config = RegionConfig(max_regs_per_region=limit)
    regions = create_regions(kernel, lv, config)
    for region in regions:
        # Either the limit holds, or the region is a minimal unsplittable
        # range whose single peak exceeds it.
        if region.max_live > limit:
            stats_first = region.num_insns
            assert stats_first >= 1  # accepted-as-is fallback
