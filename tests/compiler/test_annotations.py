from repro.compiler import (
    RegionConfig,
    analyze_liveness,
    annotate_regions,
    compile_kernel,
    create_regions,
)
from repro.isa import KernelBuilder


def annotate(kernel, config=None):
    config = config or RegionConfig()
    lv = analyze_liveness(kernel)
    regions = create_regions(kernel, lv, config)
    return regions, annotate_regions(kernel, lv, regions, config), lv


class TestPreloads:
    def test_preloads_match_inputs(self, loop_kernel):
        regions, anns, _ = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            assert {p.reg for p in a.preloads} == set(r.inputs)

    def test_invalidating_preload_for_dying_input(self, loop_kernel):
        regions, anns, lv = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            live_after = lv.live_after[r.end_pc - 1]
            for p in a.preloads:
                assert p.invalidate == (p.reg not in live_after)


class TestLastUseMarks:
    def test_every_referenced_reg_gets_a_mark(self, loop_kernel):
        regions, anns, _ = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            referenced = set()
            for pc in range(r.start_pc, r.end_pc):
                referenced.update(loop_kernel.insn_at(pc).regs)
            marked = set()
            for bucket in (a.erase_at, a.evict_at, a.erase_on_write,
                           a.evict_on_write):
                for regs in bucket.values():
                    marked.update(regs)
            assert marked == referenced

    def test_marks_land_on_last_reference(self, loop_kernel):
        regions, anns, _ = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            for bucket in (a.erase_at, a.evict_at, a.erase_on_write,
                           a.evict_on_write):
                for pc, regs in bucket.items():
                    for reg in regs:
                        # No later reference inside the region.
                        for later in range(pc + 1, r.end_pc):
                            assert reg not in loop_kernel.insn_at(later).regs

    def test_erase_vs_evict_split_by_liveness(self, loop_kernel):
        regions, anns, lv = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            live_after = lv.live_after[r.end_pc - 1]
            for bucket in (a.erase_at, a.erase_on_write):
                for regs in bucket.values():
                    for reg in regs:
                        assert reg not in live_after
            for bucket in (a.evict_at, a.evict_on_write):
                for regs in bucket.values():
                    for reg in regs:
                        assert reg in live_after


class TestCacheInvalidations:
    def build_branchy(self):
        """A value used on one path only: dead-by-control-flow on the other."""
        b = KernelBuilder("inv")
        b.block("entry")
        tid = b.reg(0)
        x = b.fresh()
        b.ldg(x, tid)
        y = b.fresh()
        b.iadd(y, x, 1)  # force x cross-region (load/use split)
        p = b.fresh_pred()
        b.setp(p, tid, 0)
        b.bra("skip", pred=p)
        b.block("use")
        b.stg(tid, y)
        b.block("skip")
        b.stg(tid, tid)
        b.exit()
        return b.build()

    def test_invalidation_placed_after_all_refs(self):
        k = self.build_branchy()
        regions, anns, lv = annotate(k)
        for r, a in zip(regions, anns):
            for reg in a.cache_invalidates:
                # Dead at that region's block entry.
                assert reg not in lv.live_in[r.block]

    def test_loop_value_not_invalidated_inside_loop(self, loop_kernel):
        regions, anns, _ = annotate(loop_kernel)
        # No invalidation may target a region in the loop header or body
        # for a register referenced there (it would re-fire every trip).
        for r, a in zip(regions, anns):
            if r.block in ("body",):
                for reg in a.cache_invalidates:
                    refs = [
                        pc
                        for pc, _, insn in loop_kernel.iter_pcs()
                        if reg in insn.regs
                    ]
                    assert all(pc < r.start_pc for pc in refs)


class TestMetadataCounts:
    def test_positive_and_bounded(self, loop_kernel):
        regions, anns, _ = annotate(loop_kernel)
        for r, a in zip(regions, anns):
            assert a.n_metadata_insns >= 1
            # Never absurdly large relative to the region.
            assert a.n_metadata_insns <= 2 + len(a.preloads) + r.num_insns

    def test_compact_encoding_for_tiny_regions(self):
        b = KernelBuilder("tiny")
        b.block("entry")
        b.mov(b.fresh(), 1)
        b.exit()
        k = b.build()
        ck = compile_kernel(k)
        assert all(a.n_metadata_insns == 1 for a in ck.annotations)
