"""Dominator-tree edge cases beyond the main domtree tests."""

from repro.compiler import dominator_tree, postdominator_tree
from repro.isa import BasicBlock, Imm, Instruction, Kernel, Opcode, Pred, PredGuard, Reg


def mov():
    return Instruction(Opcode.MOV, (Reg(0),), (Imm(0),))


def cbra(target):
    return Instruction(Opcode.BRA, guard=PredGuard(Pred(0)), target=target)


def bra(target):
    return Instruction(Opcode.BRA, target=target)


def exit_():
    return Instruction(Opcode.EXIT)


class TestSingleBlock:
    def test_trivial_kernel(self):
        k = Kernel("t", [BasicBlock("entry", [exit_()])])
        dom = dominator_tree(k)
        assert dom.idom("entry") is None
        assert dom.dominators("entry") == {"entry"}
        pdom = postdominator_tree(k)
        assert pdom.dominates("entry", "entry")


class TestUnreachable:
    def test_unreachable_block_absent_from_tree(self):
        k = Kernel("u", [
            BasicBlock("entry", [exit_()]),
            BasicBlock("orphan", [exit_()]),
        ])
        dom = dominator_tree(k)
        assert "orphan" not in dom
        assert "entry" in dom


class TestInfiniteLoop:
    def test_loop_with_no_exit_has_no_postdominators(self):
        k = Kernel("inf", [
            BasicBlock("entry", [mov()]),
            BasicBlock("spin", [mov(), bra("spin")]),
        ])
        pdom = postdominator_tree(k)
        # `spin` cannot reach any exit; it is outside the pdom tree.
        assert "spin" not in pdom or pdom.idom("spin") in (None, "spin")


class TestNestedStructures:
    def make_nested(self):
        # entry -> outer_hdr -> (exit | inner_hdr)
        # inner_hdr -> (outer_latch | body); body -> inner_hdr
        # outer_latch -> outer_hdr; done: exit
        return Kernel("n", [
            BasicBlock("entry", [mov()]),
            BasicBlock("outer_hdr", [cbra("done")]),
            BasicBlock("inner_hdr", [cbra("outer_latch")]),
            BasicBlock("body", [mov(), bra("inner_hdr")]),
            BasicBlock("outer_latch", [bra("outer_hdr")]),
            BasicBlock("done", [exit_()]),
        ])

    def test_nested_loop_dominators(self):
        dom = dominator_tree(self.make_nested())
        assert dom.idom("inner_hdr") == "outer_hdr"
        assert dom.idom("body") == "inner_hdr"
        assert dom.idom("outer_latch") == "inner_hdr"
        assert dom.idom("done") == "outer_hdr"

    def test_nested_loop_postdominators(self):
        pdom = postdominator_tree(self.make_nested())
        assert pdom.dominates("done", "entry")
        assert pdom.dominates("outer_hdr", "outer_latch")
        # body always returns through inner_hdr.
        assert pdom.dominates("inner_hdr", "body")

    def test_nodes_listing(self):
        dom = dominator_tree(self.make_nested())
        assert set(dom.nodes) == {
            "entry", "outer_hdr", "inner_hdr", "body", "outer_latch", "done"
        }
