import pytest

from repro.compiler import compile_kernel, encode_region_metadata, metadata_overhead
from repro.compiler.metadata import (
    BANK_USAGE_BITS,
    EVENT_BITS,
    METADATA_BITS_PER_INSN,
    MetadataWord,
)


class TestMetadataWord:
    def test_within_budget(self):
        MetadataWord("flag", METADATA_BITS_PER_INSN)

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            MetadataWord("flag", METADATA_BITS_PER_INSN + 1)


class TestEncoding:
    def test_compact_for_small_region(self, compiled_loop):
        small = [
            (r, a)
            for r, a in zip(compiled_loop.regions, compiled_loop.annotations)
            if r.num_insns <= 4 and len(a.preloads) + len(a.cache_invalidates) <= 2
        ]
        for region, ann in small:
            words = encode_region_metadata(ann, region.num_insns)
            assert len(words) == 1
            assert words[0].kind == "compact"

    def test_flag_word_first_for_large_region(self):
        from repro.compiler.annotations import Preload, RegionAnnotations
        from repro.isa import Reg

        ann = RegionAnnotations(
            rid=0,
            preloads=tuple(Preload(Reg(i)) for i in range(5)),
            cache_invalidates=(),
            bank_usage=(1,) * 8,
        )
        words = encode_region_metadata(ann, n_insns=12)
        assert words[0].kind == "flag"
        assert words[0].bits_used == BANK_USAGE_BITS + 3 * EVENT_BITS
        kinds = [w.kind for w in words]
        assert "event" in kinds  # 2 leftover preloads
        assert kinds.count("lastuse") == 2  # ceil(12 / 9)

    def test_every_word_fits_budget(self, compiled_loop):
        for region, ann in zip(compiled_loop.regions, compiled_loop.annotations):
            for word in encode_region_metadata(ann, region.num_insns):
                assert word.bits_used <= METADATA_BITS_PER_INSN

    def test_overhead_matches_annotation_count(self, compiled_loop):
        for region, ann in zip(compiled_loop.regions, compiled_loop.annotations):
            n_words, bits = metadata_overhead(ann, region.num_insns)
            assert n_words == ann.n_metadata_insns
            assert bits > 0


def test_kernel_level_metadata_totals(compiled_loop):
    assert compiled_loop.total_metadata_insns() == sum(
        a.n_metadata_insns for a in compiled_loop.annotations
    )
    assert compiled_loop.metadata_bits() > 0
