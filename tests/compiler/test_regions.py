from hypothesis import given, settings, strategies as st

from repro.compiler import (
    RegionConfig,
    analyze_liveness,
    create_regions,
    region_stats,
)
from repro.isa import KernelBuilder, Opcode


def regions_of(kernel, config=None):
    lv = analyze_liveness(kernel)
    return create_regions(kernel, lv, config), lv


class TestTiling:
    def test_every_pc_in_exactly_one_region(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        covered = sorted(
            pc for r in regions for pc in range(r.start_pc, r.end_pc)
        )
        assert covered == list(range(loop_kernel.num_instructions))

    def test_regions_do_not_cross_blocks(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        for r in regions:
            assert loop_kernel.block_of_pc(r.start_pc) == r.block
            assert loop_kernel.block_of_pc(r.end_pc - 1) == r.block

    def test_region_ids_sequential(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        assert [r.rid for r in regions] == list(range(len(regions)))
        starts = [r.start_pc for r in regions]
        assert starts == sorted(starts)


class TestLoadUseSplit:
    def test_load_and_use_in_different_regions(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        for r in regions:
            loads = {}
            for pc in range(r.start_pc, r.end_pc):
                insn = loop_kernel.insn_at(pc)
                if insn.opcode.is_global_load:
                    loads[insn.reg_dsts[0]] = pc
                for s in insn.reg_srcs:
                    assert s not in loads, (
                        f"load at {loads.get(s)} and use at {pc} share a region"
                    )

    def test_split_disabled_keeps_block_whole(self, loop_kernel):
        config = RegionConfig(split_load_use=False)
        regions, _ = regions_of(loop_kernel, config)
        body_regions = [r for r in regions if r.block == "body"]
        assert len(body_regions) == 1


class TestCapacityLimits:
    def build_wide(self, width):
        b = KernelBuilder("wide")
        b.block("entry")
        tid = b.reg(0)
        vals = []
        for i in range(width):
            v = b.fresh()
            b.imad(v, tid, i + 1, tid)
            vals.append(v)
        acc = vals[0]
        for v in vals[1:]:
            nxt = b.fresh()
            b.iadd(nxt, acc, v)
            acc = nxt
        b.stg(tid, acc)
        b.exit()
        return b.build()

    def test_max_live_forces_split(self):
        k = self.build_wide(12)
        config = RegionConfig(max_regs_per_region=6, max_regs_per_bank=8)
        regions, lv = regions_of(k, config)
        assert len(regions) > 1

    def test_bank_limit_forces_split(self):
        k = self.build_wide(20)
        config = RegionConfig(max_regs_per_bank=2, max_regs_per_region=64)
        regions, _ = regions_of(k, config)
        assert len(regions) > 1

    def test_big_limits_keep_single_region(self):
        k = self.build_wide(6)
        regions, _ = regions_of(k)
        assert len(regions) == 1


class TestBarrierIsolation:
    def test_barrier_gets_own_region(self):
        b = KernelBuilder("bar")
        b.block("entry")
        t = b.fresh()
        b.iadd(t, b.reg(0), 1)
        b.bar()
        b.imul(t, t, 3)
        b.stg(b.reg(1), t)
        b.exit()
        k = b.build()
        regions, _ = regions_of(k)
        bar_regions = [
            r
            for r in regions
            if any(
                k.insn_at(pc).opcode is Opcode.BAR
                for pc in range(r.start_pc, r.end_pc)
            )
        ]
        assert len(bar_regions) == 1
        assert bar_regions[0].num_insns == 1


class TestRegionStats:
    def test_inputs_are_live_in_and_read(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        regions = create_regions(loop_kernel, lv, RegionConfig())
        for r in regions:
            for reg in r.inputs:
                assert reg in lv.live_before[r.start_pc]

    def test_outputs_live_after_region(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        regions = create_regions(loop_kernel, lv, RegionConfig())
        for r in regions:
            for reg in r.outputs:
                assert reg in lv.live_after[r.end_pc - 1]

    def test_interior_disjoint_from_boundary(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        for r in regions:
            assert not (r.interior & r.inputs)
            assert not (r.interior & r.outputs)

    def test_max_live_at_least_inputs(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        for r in regions:
            assert r.max_live >= len(r.inputs)

    def test_bank_usage_sums_cover_max_live(self, loop_kernel):
        regions, _ = regions_of(loop_kernel)
        for r in regions:
            assert sum(r.bank_usage) >= r.max_live

    def test_stats_function_matches_region(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        config = RegionConfig()
        regions = create_regions(loop_kernel, lv, config)
        for r in regions:
            stats = region_stats(loop_kernel, lv, r.start_pc, r.end_pc, config)
            assert stats == r.stats


@st.composite
def chain_kernel(draw):
    """Straight-line kernel with random loads sprinkled in."""
    b = KernelBuilder("rand")
    b.block("entry")
    tid = b.reg(0)
    n = draw(st.integers(min_value=3, max_value=40))
    live = [tid]
    for i in range(n):
        v = b.fresh()
        if draw(st.booleans()) and i > 0:
            b.ldg(v, live[-1])
        else:
            b.iadd(v, live[draw(st.integers(0, len(live) - 1))], i)
        live.append(v)
        if len(live) > 6:
            live.pop(0)
    b.stg(tid, live[-1])
    b.exit()
    return b.build()


class TestRegionProperties:
    @given(chain_kernel())
    @settings(max_examples=40, deadline=None)
    def test_tiling_property(self, kernel):
        regions, _ = regions_of(kernel)
        covered = sorted(
            pc for r in regions for pc in range(r.start_pc, r.end_pc)
        )
        assert covered == list(range(kernel.num_instructions))

    @given(chain_kernel())
    @settings(max_examples=40, deadline=None)
    def test_no_load_use_pairs_property(self, kernel):
        regions, _ = regions_of(kernel)
        for r in regions:
            pending = set()
            for pc in range(r.start_pc, r.end_pc):
                insn = kernel.insn_at(pc)
                assert not (set(insn.reg_srcs) & pending)
                if insn.opcode.is_global_load:
                    pending.update(insn.reg_dsts)
