from hypothesis import given, settings, strategies as st

from repro.compiler import analyze_liveness, allocate_registers, build_interference
from repro.isa import KernelBuilder, Reg
from repro.workloads import make_workload


class TestInterference:
    def test_simultaneously_live_regs_interfere(self, loop_kernel):
        graph = build_interference(loop_kernel)
        lv = analyze_liveness(loop_kernel)
        for live in lv.live_before:
            regs = sorted(live)
            for i, a in enumerate(regs):
                for b in regs[i + 1:]:
                    assert b in graph[a]

    def test_graph_is_symmetric(self, loop_kernel):
        graph = build_interference(loop_kernel)
        for a, neighbors in graph.items():
            for b in neighbors:
                assert a in graph[b]


class TestAllocation:
    def test_reduces_register_count(self):
        wl = make_workload("myocyte")
        raw = wl.build()
        alloc = allocate_registers(raw)
        assert alloc.num_regs < raw.num_regs

    def test_structure_preserved(self, loop_kernel):
        alloc = allocate_registers(loop_kernel)
        assert alloc.num_instructions == loop_kernel.num_instructions
        assert [b.label for b in alloc.blocks] == [
            b.label for b in loop_kernel.blocks
        ]
        for pc in range(alloc.num_instructions):
            a, b = alloc.insn_at(pc), loop_kernel.insn_at(pc)
            assert a.opcode == b.opcode
            assert a.target == b.target
            assert a.tag == b.tag
            assert len(a.reg_srcs) == len(b.reg_srcs)

    def test_entry_live_in_pinned(self, loop_kernel):
        # Parameters (live-in at entry) keep their indices: their launch
        # values are positional.
        lv = analyze_liveness(loop_kernel)
        params = lv.live_in[loop_kernel.entry]
        alloc = allocate_registers(loop_kernel)
        lv2 = analyze_liveness(alloc)
        assert lv2.live_in[alloc.entry] == params

    def test_no_interference_violated(self, loop_kernel):
        """After renaming, two simultaneously live values never share a
        register (checked by re-running liveness on the renamed kernel and
        verifying per-PC live sets have no duplicates, which holds by
        construction, plus dataflow equivalence of use counts)."""
        alloc = allocate_registers(loop_kernel)
        lv2 = analyze_liveness(alloc)
        # max_live can only stay equal or shrink-by-aliasing never happen:
        lv1 = analyze_liveness(loop_kernel)
        assert lv2.max_live() == lv1.max_live()

    def test_idempotent_ish(self, loop_kernel):
        once = allocate_registers(loop_kernel)
        twice = allocate_registers(once)
        assert twice.num_regs <= once.num_regs


@st.composite
def ssa_kernel(draw):
    b = KernelBuilder("rand")
    b.block("entry")
    tid = b.reg(0)
    live = [tid]
    n = draw(st.integers(min_value=2, max_value=25))
    for i in range(n):
        v = b.fresh()
        src = live[draw(st.integers(0, len(live) - 1))]
        b.iadd(v, src, i)
        live.append(v)
        if len(live) > draw(st.integers(2, 6)):
            live.pop(0)
    b.stg(tid, live[-1])
    b.exit()
    return b.build()


class TestAllocationProperties:
    @given(ssa_kernel())
    @settings(max_examples=40, deadline=None)
    def test_max_live_preserved(self, kernel):
        alloc = allocate_registers(kernel)
        assert analyze_liveness(alloc).max_live() == analyze_liveness(kernel).max_live()

    @given(ssa_kernel())
    @settings(max_examples=40, deadline=None)
    def test_register_count_bounded_below_by_max_live(self, kernel):
        alloc = allocate_registers(kernel)
        lv = analyze_liveness(alloc)
        assert alloc.num_regs >= lv.max_live()
