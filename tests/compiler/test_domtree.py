import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler import dominator_tree, postdominator_tree
from repro.compiler.domtree import VIRTUAL_EXIT
from repro.isa import BasicBlock, Instruction, Kernel, Opcode, Pred, PredGuard, Reg, Imm


def mov():
    return Instruction(Opcode.MOV, (Reg(0),), (Imm(0),))


def cbra(target):
    return Instruction(Opcode.BRA, guard=PredGuard(Pred(0)), target=target)


def bra(target):
    return Instruction(Opcode.BRA, target=target)


def exit_():
    return Instruction(Opcode.EXIT)


def diamond():
    return Kernel(
        "d",
        [
            BasicBlock("a", [cbra("c")]),
            BasicBlock("b", [mov()]),
            BasicBlock("c", [mov()]),
            BasicBlock("d", [exit_()]),
        ],
    )
    # a -> {b, c}; b -> c (fallthrough); c -> d


def loop():
    return Kernel(
        "l",
        [
            BasicBlock("entry", [mov()]),
            BasicBlock("header", [cbra("done")]),
            BasicBlock("body", [mov(), bra("header")]),
            BasicBlock("done", [exit_()]),
        ],
    )


class TestDominators:
    def test_entry_dominates_all(self):
        dom = dominator_tree(diamond())
        for label in ("a", "b", "c", "d"):
            assert dom.dominates("a", label)

    def test_diamond_idoms(self):
        dom = dominator_tree(diamond())
        assert dom.idom("b") == "a"
        assert dom.idom("c") == "a"
        assert dom.idom("d") == "c"
        assert dom.idom("a") is None

    def test_branch_sides_do_not_dominate_each_other(self):
        dom = dominator_tree(diamond())
        assert not dom.dominates("b", "c")

    def test_loop_idoms(self):
        dom = dominator_tree(loop())
        assert dom.idom("header") == "entry"
        assert dom.idom("body") == "header"
        assert dom.idom("done") == "header"

    def test_self_domination(self):
        dom = dominator_tree(loop())
        assert dom.dominates("body", "body")
        assert not dom.strictly_dominates("body", "body")

    def test_strict_dominators(self):
        dom = dominator_tree(loop())
        assert dom.strict_dominators("body") == {"entry", "header"}


class TestPostdominators:
    def test_exit_postdominates_all(self):
        pdom = postdominator_tree(diamond())
        for label in ("a", "b", "c"):
            assert pdom.dominates("d", label)

    def test_diamond_reconvergence(self):
        # c postdominates a (both paths pass through c).
        pdom = postdominator_tree(diamond())
        assert pdom.dominates("c", "a")

    def test_loop_postdominators(self):
        pdom = postdominator_tree(loop())
        assert pdom.idom("body") == "header"
        assert pdom.dominates("done", "entry")

    def test_multiple_exits_use_virtual_node(self):
        k = Kernel(
            "m",
            [
                BasicBlock("a", [cbra("y")]),
                BasicBlock("x", [exit_()]),
                BasicBlock("y", [exit_()]),
            ],
        )
        pdom = postdominator_tree(k)
        assert pdom.root == VIRTUAL_EXIT
        assert pdom.idom("x") == VIRTUAL_EXIT
        # No real block postdominates `a`.
        assert pdom.dominators("a") & {"x", "y"} == set()


@st.composite
def random_cfg(draw):
    """Random small reducible-ish CFG as a Kernel."""
    n = draw(st.integers(min_value=2, max_value=8))
    labels = [f"b{i}" for i in range(n)]
    blocks = []
    for i, label in enumerate(labels):
        insns = [mov()]
        if i == n - 1:
            insns.append(exit_())
        else:
            kind = draw(st.integers(min_value=0, max_value=2))
            if kind == 1:  # conditional branch to a random target
                target = labels[draw(st.integers(min_value=0, max_value=n - 1))]
                insns.append(cbra(target))
            elif kind == 2:  # unconditional forward branch
                target = labels[draw(st.integers(min_value=i + 1, max_value=n - 1))]
                insns.append(bra(target))
        blocks.append(BasicBlock(label, insns))
    return Kernel("rand", blocks)


class TestDominatorProperties:
    @given(random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_idom_strictly_dominates(self, kernel):
        dom = dominator_tree(kernel)
        for label in dom.nodes:
            idom = dom.idom(label)
            if idom is not None:
                assert dom.strictly_dominates(idom, label)

    @given(random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_dominance_is_transitive_on_chain(self, kernel):
        dom = dominator_tree(kernel)
        for label in dom.nodes:
            doms = dom.dominators(label)
            for d in doms:
                assert dom.dominators(d) <= doms

    @given(random_cfg())
    @settings(max_examples=60, deadline=None)
    def test_entry_in_every_dominator_set(self, kernel):
        dom = dominator_tree(kernel)
        for label in dom.nodes:
            assert kernel.entry in dom.dominators(label)
