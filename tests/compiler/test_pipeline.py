import pytest

from repro.compiler import RegionConfig, compile_kernel


class TestCompiledKernel:
    def test_region_of_pc_total(self, compiled_loop):
        k = compiled_loop.kernel
        for pc in range(k.num_instructions):
            region = compiled_loop.region_of_pc(pc)
            assert region.contains_pc(pc)

    def test_region_of_bad_pc(self, compiled_loop):
        with pytest.raises(IndexError):
            compiled_loop.region_of_pc(10_000)

    def test_annotations_of_pc(self, compiled_loop):
        for pc in range(compiled_loop.kernel.num_instructions):
            ann = compiled_loop.annotations_of_pc(pc)
            assert ann.rid == compiled_loop.region_of_pc(pc).rid

    def test_regions_of_block_ordered(self, compiled_loop):
        for block in compiled_loop.kernel.blocks:
            regions = compiled_loop.regions_of_block(block.label)
            starts = [r.start_pc for r in regions]
            assert starts == sorted(starts)

    def test_region_start_end_predicates(self, compiled_loop):
        for region in compiled_loop.regions:
            assert compiled_loop.is_region_start(region.start_pc)
            assert compiled_loop.is_region_end(region.end_pc - 1)

    def test_statistics(self, compiled_loop):
        assert compiled_loop.n_regions > 0
        assert compiled_loop.mean_insns_per_region() > 0
        assert compiled_loop.mean_preloads_per_region() >= 0
        assert compiled_loop.std_live_per_region() >= 0

    def test_summary_mentions_kernel(self, compiled_loop):
        assert compiled_loop.kernel.name in compiled_loop.summary()

    def test_custom_config_respected(self, loop_workload):
        config = RegionConfig(split_load_use=False)
        ck = compile_kernel(loop_workload.kernel(), config)
        assert ck.config.split_load_use is False
