from repro.compiler import analyze_liveness
from repro.isa import KernelBuilder, Reg


def test_straightline_liveness(straightline_kernel):
    lv = analyze_liveness(straightline_kernel)
    # R0 (tid) is live-in at entry, consumed by the first add.
    assert Reg(0) in lv.live_in["entry"]
    # t3 is live right until the store.
    counts = lv.live_counts()
    assert counts[0] >= 2  # tid + out pointer


def test_loop_carried_value_live_around_backedge(loop_kernel):
    lv = analyze_liveness(loop_kernel)
    # acc is read and written in the body and consumed after the loop:
    # it must be live at the loop header.
    header = loop_kernel.blocks[1].label
    acc = Reg(4)
    assert acc in lv.live_in[header]
    assert acc in lv.live_out["body"]


def test_dead_after_last_use(loop_kernel):
    lv = analyze_liveness(loop_kernel)
    # The loaded value v is consumed inside the body and never escapes.
    body_pcs = list(loop_kernel.pcs_of_block("body"))
    last = body_pcs[-1]
    v = Reg(6)
    assert v not in lv.live_after[last]


class TestSoftDefinitions:
    def test_guarded_write_is_soft(self):
        b = KernelBuilder("g")
        b.block("entry")
        x = b.fresh()
        b.mov(x, 1)
        p = b.fresh_pred()
        b.setp(p, b.reg(0), 0)
        b.mov(x, 2, guard=b.guard(p))
        b.stg(b.reg(1), x)
        b.exit()
        k = b.build()
        lv = analyze_liveness(k)
        guarded_pc = 2
        assert lv.is_soft_def(guarded_pc, x)

    def test_divergent_redefinition_is_soft(self, diamond_kernel):
        # x is written in `then` under divergent control while the entry
        # definition's value flows along the `else_` edge: Figure 7.
        lv = analyze_liveness(diamond_kernel)
        k = diamond_kernel
        then_pc = k.block_start_pc("then")
        x = k.insn_at(then_pc).reg_dsts[0]
        assert lv.is_soft_def(then_pc, x)

    def test_soft_def_does_not_kill(self, diamond_kernel):
        lv = analyze_liveness(diamond_kernel)
        k = diamond_kernel
        # Because the `then` write is soft, x stays live *into* then.
        then_pc = k.block_start_pc("then")
        x = k.insn_at(then_pc).reg_dsts[0]
        assert x in lv.live_in["then"]

    def test_dominating_full_write_is_hard(self):
        b = KernelBuilder("h")
        b.block("entry")
        x = b.fresh()
        b.mov(x, 1)  # first def
        b.mov(x, 2)  # full redefinition, same block: hard
        b.stg(b.reg(0), x)
        b.exit()
        k = b.build()
        lv = analyze_liveness(k)
        assert not lv.is_soft_def(1, x)
        # The first value dies at the redefinition.
        assert x not in lv.live_before[1]


class TestPerPC:
    def test_before_after_relation(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        for pc, _, insn in loop_kernel.iter_pcs():
            # Everything read must be live before.
            for r in insn.reg_srcs:
                assert r in lv.live_before[pc]

    def test_live_counts_length(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        assert len(lv.live_counts()) == loop_kernel.num_instructions

    def test_max_live_bounds(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        assert lv.max_live() == max(lv.live_counts())

    def test_live_on_edge(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        header = loop_kernel.blocks[1].label
        edge = lv.live_on_edge("body", header)
        assert edge == lv.live_in[header]

    def test_live_on_missing_edge_raises(self, loop_kernel):
        import pytest
        lv = analyze_liveness(loop_kernel)
        with pytest.raises(ValueError):
            lv.live_on_edge("entry", "body")


class TestDeathMap:
    def test_every_reg_dies_somewhere(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        deaths = lv.death_map()
        dead_regs = {r for regs in deaths.values() for r in regs}
        # Values written in the body die in the body (v, t, addr).
        assert Reg(5) in dead_regs or Reg(6) in dead_regs

    def test_deaths_consistent_with_liveness(self, loop_kernel):
        lv = analyze_liveness(loop_kernel)
        for pc, regs in lv.death_map().items():
            for r in regs:
                assert r not in lv.live_after[pc]
