"""Simulator fuzzing: random structured kernels through every backend.

Hypothesis generates small kernels with loops, divergent branches, guarded
writes and loads, runs them end to end on the baseline and on RegLess, and
checks the cross-backend invariants that must hold for *any* program:
completion, instruction-count equality, staging-contract compliance, and
determinism.  This is the failure-injection net for the whole stack.
"""

from hypothesis import given, settings, strategies as st

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF, RFVStorage
from repro.regless import ReglessConfig, ReglessStorage
from repro.sim import (
    BernoulliLanes,
    BernoulliWarp,
    GPUConfig,
    LoopExit,
    run_simulation,
)
from repro.workloads import Workload

FAST = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4,
                 max_cycles=60_000)


@st.composite
def fuzz_workload(draw):
    b = KernelBuilder("fuzz")
    b.block("entry")
    tid, out = b.reg(0), b.reg(1)
    acc = b.fresh()
    b.mov(acc, 1)

    n_loops = draw(st.integers(0, 2))
    open_loops = []
    behaviors = {}
    for li in range(n_loops):
        i = b.fresh()
        b.mov(i, 0)
        header, exit_lbl = b.label(), b.label()
        b.block_named(header)
        p = b.fresh_pred()
        tag = f"loop{li}"
        behaviors[tag] = LoopExit(trips=draw(st.integers(2, 5)))
        b.setp(p, i, 99, tag=tag)
        b.bra(exit_lbl, pred=p)
        b.block()
        open_loops.append((header, exit_lbl, i))

    # Body soup.
    live = [tid, acc]
    for k in range(draw(st.integers(2, 14))):
        kind = draw(st.integers(0, 5))
        src = live[draw(st.integers(0, len(live) - 1))]
        v = b.fresh()
        if kind == 0:
            b.ldg(v, src)
        elif kind == 1:
            b.iadd(v, src, k + 1)
        elif kind == 2:
            b.imad(v, src, 3, acc)
        elif kind == 3:
            b.stg(src, acc)
            continue
        elif kind == 4:
            # guarded (soft) write
            tag = f"g{k}"
            behaviors[tag] = BernoulliLanes(draw(st.floats(0.1, 0.9)))
            p = b.fresh_pred()
            b.setp(p, src, 0, tag=tag)
            b.mov(v, src)
            b.iadd(acc, acc, 1, guard=b.guard(p))
        else:
            # divergent diamond
            tag = f"d{k}"
            behaviors[tag] = BernoulliLanes(draw(st.floats(0.1, 0.9)))
            p = b.fresh_pred()
            b.setp(p, src, 0, tag=tag)
            join = b.label()
            b.bra(join, pred=p)
            b.block()
            b.iadd(acc, acc, k)
            b.block_named(join)
            continue
        live.append(v)
        if len(live) > 5:
            live.pop(0)

    for header, exit_lbl, i in reversed(open_loops):
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)

    b.stg(out, acc)
    b.exit()
    return Workload(name="fuzz", build=lambda: b.build(),
                    pred_behaviors=behaviors, regalloc=False)


@given(fuzz_workload())
@settings(max_examples=25, deadline=None)
def test_fuzz_baseline_vs_regless(workload):
    ck = compile_kernel(workload.kernel())
    base = run_simulation(FAST, ck, workload, lambda sm, sh: BaselineRF())
    rl = run_simulation(FAST, ck, workload,
                        lambda sm, sh: ReglessStorage(ck))
    assert base.finished and rl.finished
    assert base.instructions == rl.instructions
    assert rl.counter("osu_read_miss") == 0
    assert rl.counter("region_activations") == rl.counter("region_executions")


@given(fuzz_workload())
@settings(max_examples=15, deadline=None)
def test_fuzz_tiny_osu_never_deadlocks(workload):
    ck = compile_kernel(workload.kernel())
    rcfg = ReglessConfig(osu_entries_per_sm=64, shards_per_sm=2)
    rl = run_simulation(FAST, ck, workload,
                        lambda sm, sh: ReglessStorage(ck, rcfg))
    assert rl.finished


@given(fuzz_workload())
@settings(max_examples=15, deadline=None)
def test_fuzz_rfv_matches_baseline_accesses(workload):
    ck = compile_kernel(workload.kernel())
    base = run_simulation(FAST, ck, workload, lambda sm, sh: BaselineRF())
    rfv = run_simulation(FAST, ck, workload, lambda sm, sh: RFVStorage(ck))
    assert rfv.finished
    assert rfv.counter("rfv_read") == base.counter("rf_read")


@given(fuzz_workload(), st.integers(500, 4000))
@settings(max_examples=10, deadline=None)
def test_fuzz_cycle_ceiling_always_bounds(workload, ceiling):
    """No workload can spin past the safety ceiling, and a run that does
    finish under it never reports a ceiling hit."""
    ck = compile_kernel(workload.kernel())
    stats = run_simulation(FAST, ck, workload, lambda sm, sh: BaselineRF(),
                           max_cycles=ceiling)
    # bounded: the loop stops at the ceiling, modulo one fast-forward jump
    assert stats.cycles <= ceiling + 1024
    if stats.finished:
        assert stats.counter("cycle_ceiling") == 0
    else:
        assert stats.cycles >= ceiling
        assert stats.counter("cycle_ceiling") == 1


@given(fuzz_workload())
@settings(max_examples=10, deadline=None)
def test_fuzz_regalloc_preserves_dynamics(workload):
    """Register renaming must not change any dynamic count."""
    raw = compile_kernel(workload.kernel())
    allocated = Workload(
        name="fuzz", build=workload.build,
        pred_behaviors=workload.pred_behaviors, regalloc=True,
    )
    alloc = compile_kernel(allocated.kernel())
    a = run_simulation(FAST, raw, workload, lambda sm, sh: BaselineRF())
    b_ = run_simulation(FAST, alloc, allocated, lambda sm, sh: BaselineRF())
    assert a.instructions == b_.instructions
    assert a.counter("gmem_load_lines") == b_.counter("gmem_load_lines")
