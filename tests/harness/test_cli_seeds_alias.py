"""The deprecated ``robustness`` verb must be a *silent-on-stdout* alias.

Pipelines parse the seed-stability report from stdout, so the alias's
stdout must be byte-identical to the ``seeds`` verb's — the deprecation
note goes to stderr only.  The study itself is stubbed out: this test is
about stream discipline, not simulation.
"""

from __future__ import annotations

import pytest

import repro.harness.cli as cli


@pytest.fixture
def stubbed_study(monkeypatch):
    """Replace the seed study with a cheap deterministic stand-in."""
    calls = []

    def fake_seed_robustness(**kwargs):
        calls.append(kwargs)
        return ("stats-sentinel",)

    monkeypatch.setattr(cli, "seed_robustness", fake_seed_robustness)
    monkeypatch.setattr(cli, "render_robustness",
                        lambda stats: f"REPORT[{','.join(stats)}]")
    return calls


def test_alias_stdout_byte_identical_to_seeds(stubbed_study, capsys):
    assert cli.main(["seeds"]) == 0
    seeds_out = capsys.readouterr()

    assert cli.main(["robustness"]) == 0
    alias_out = capsys.readouterr()

    assert alias_out.out.encode() == seeds_out.out.encode()
    assert "REPORT[stats-sentinel]" in seeds_out.out


def test_deprecation_note_goes_to_stderr_only(stubbed_study, capsys):
    cli.main(["robustness"])
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert "deprecated" not in captured.out


def test_seeds_verb_emits_no_deprecation_note(stubbed_study, capsys):
    cli.main(["seeds"])
    captured = capsys.readouterr()
    assert captured.err == ""


def test_alias_forwards_names_like_seeds(stubbed_study, capsys):
    cli.main(["seeds", "--names", "bfs"])
    cli.main(["robustness", "--names", "bfs"])
    capsys.readouterr()
    assert stubbed_study == [{"names": ["bfs"]}, {"names": ["bfs"]}]
