import pytest

from repro.harness import SuiteRunner, render_claims, validate_claims
from repro.sim import GPUConfig


@pytest.fixture(scope="module")
def claims():
    runner = SuiteRunner(
        config=GPUConfig(warps_per_sm=16, schedulers_per_sm=2,
                         cta_size_warps=8)
    )
    return validate_claims(runner, names=["bfs", "streamcluster", "nw"])


class TestValidation:
    def test_produces_claims(self, claims):
        assert len(claims) >= 10

    def test_every_claim_cites_its_source(self, claims):
        for claim in claims:
            assert "Fig." in claim.source or "Table" in claim.source or \
                "Abstract" in claim.source

    def test_headline_claims_hold_on_subset(self, claims):
        by_statement = {c.statement: c for c in claims}
        runtime = next(c for c in claims if "run time matches" in c.statement)
        assert runtime.ok, runtime.render()
        rf = next(c for c in claims if "register-structure energy" in c.statement)
        assert rf.ok, rf.render()

    def test_render(self, claims):
        text = render_claims(claims)
        assert "PASS" in text
        assert "claims hold" in text
