"""``bench --json`` over a mixed grid of JIT-aware and JIT-less runs.

Regression: the grid JIT aggregate used to assume every
:class:`RunResult` carried a ``jit`` dict.  Results replayed from a
PR-5-era cache entry predate the field entirely, and ``REPRO_JIT=0``
runs record an empty dict — both must be skipped and counted, never
crash the payload build.
"""

from __future__ import annotations

import json
from types import SimpleNamespace

from repro.harness.bench import _bench_payload
from repro.harness.parallel import RunRequest


def fake_result(jit="absent", batch="absent"):
    stats = SimpleNamespace(
        cycles=1000, instructions=500, warps_done=8,
        stalls={"barrier": 10, "scoreboard": 5},
    )
    result = SimpleNamespace(stats=stats, timings={})
    if jit != "absent":  # "absent" models a pre-jit-era cache entry
        result.jit = jit
    if batch != "absent":  # "absent" models a pre-batch-era cache entry
        result.batch = batch
    return result


def build_payload(results):
    requests = [RunRequest.make("bfs", "baseline") for _ in results]
    return _bench_payload(
        names=["bfs"],
        backends=["baseline"],
        jobs=1,
        requests=requests,
        serial=results,
        serial_wall=[0.25] * len(results),
        t_serial=1.0,
        t_cold=0.5,
        t_warm=0.1,
        serial_parallel_ok=True,
        warm_ok=True,
    )


JIT = {"0.armed": 1, "0.compile_s": 0.125, "0.steps": 10,
       "0.issued": 100, "0.fallback_issued": 3}


def test_mixed_grid_does_not_crash_and_counts_missing():
    payload = build_payload([
        fake_result(jit=JIT),          # modern run with JIT telemetry
        fake_result(jit="absent"),     # PR-5-era cache entry: no field
        fake_result(jit={}),           # REPRO_JIT=0 run: empty dict
        fake_result(jit=None),         # defensive: explicit None
    ])
    agg = payload["jit"]
    assert agg["runs_with_jit"] == 1
    assert agg["runs_missing_jit"] == 3
    assert agg["shards"] == 1
    assert agg["armed_shards"] == 1
    assert agg["issued_via_jit"] == 100
    assert agg["fallback_issued"] == 3
    assert agg["compile_s"] == 0.125


def test_jitless_runs_serialize_with_empty_jit():
    payload = build_payload([fake_result(jit="absent")])
    assert payload["runs"][0]["jit"] == {}
    json.dumps(payload)  # the whole record must stay JSON-serializable


def test_all_jit_grid_counts_no_missing():
    payload = build_payload([fake_result(jit=JIT), fake_result(jit=JIT)])
    assert payload["jit"]["runs_missing_jit"] == 0
    assert payload["jit"]["runs_with_jit"] == 2
    assert payload["jit"]["shards"] == 2


# ---------------------------------------------------------------------------
# batch (cohort batching) aggregate — same tolerance contract as jit


BATCH = {
    "sm0.shard0.batch.armed": 1,
    "sm0.shard0.batch.cohorts": 7,
    "sm0.shard0.batch.batched_warps": 30,
    "sm0.shard0.batch.singleton_warps": 5,
    "sm0.shard0.batch.scalar_classified": 15,
    "sm0.shard0.batch.gate_shared": 12,
    "sm0.shard0.batch.cohort_size.4": 7,
}

#: an all-fallback run (e.g. rfv storage or REPRO_BATCH=0): every per-shard
#: entry carries only .armed and .reason — no counter keys at all.
BATCH_FALLBACK = {
    "sm0.shard0.batch.armed": 0,
    "sm0.shard0.batch.reason": "impure_storage",
}


def test_batch_aggregate_tolerates_fallback_and_missing():
    payload = build_payload([
        fake_result(jit=JIT, batch=BATCH),
        fake_result(jit=JIT, batch=BATCH_FALLBACK),  # armed=0, reason only
        fake_result(),                               # pre-batch-era entry
        fake_result(jit={}, batch={}),               # REPRO_BATCH=0 run
    ])
    agg = payload["batch"]
    assert agg["runs_with_batch"] == 2
    assert agg["runs_missing_batch"] == 2
    assert agg["shards"] == 2
    assert agg["armed_shards"] == 1
    assert agg["batched_warps"] == 30
    assert agg["singleton_warps"] == 5
    assert agg["gate_shared"] == 12
    assert agg["cohort_hit_rate"] == round(30 / (30 + 5 + 15), 4)
    json.dumps(payload)


def test_all_fallback_grid_has_zero_hit_rate():
    payload = build_payload([
        fake_result(jit={}, batch=BATCH_FALLBACK) for _ in range(3)
    ])
    agg = payload["batch"]
    assert agg["armed_shards"] == 0
    assert agg["cohort_hit_rate"] == 0.0
    assert payload["runs"][0]["batch"] == BATCH_FALLBACK
    json.dumps(payload)


def test_scaling_block_only_present_when_swept():
    without = build_payload([fake_result(jit=JIT)])
    assert "scaling" not in without
