"""Fault-injection suite: every failure class detected, retried or surfaced.

Injects the four failure classes the resilience layer exists for — worker
kills, run hangs, cache corruption, and wedged backends — and proves:

* the sweep completes with structured :class:`RunOutcome`\\ s (never a
  lost grid),
* retried/recovered runs produce **bit-identical** ``SimStats`` to a
  clean run (checked against ``tests/golden/simstats_bfs_nw.json``),
* wedged backends surface as :class:`SimulationHang` with the offending
  shard and stall bin named in the payload.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.compiler import compile_kernel
from repro.energy.model import EnergyModel
from repro.harness import (
    FaultPolicy,
    GridFailure,
    InjectedFault,
    ResultCache,
    RunOutcome,
    SuiteRunner,
    injected_faults,
)
from repro.harness.cache import CACHE_SCHEMA_VERSION
from repro.harness.faults import (
    FaultSpec,
    bitflip_file,
    drop_wakes,
    encode_plan,
    freeze_admission,
    maybe_fire,
    parse_plan,
    truncate_file,
)
from repro.harness.parallel import RunRequest, run_requests_resilient
from repro.obs.metrics import MetricsRegistry
from repro.regless import ReglessStorage
from repro.sim import (
    GPUConfig,
    SimulationHang,
    Watchdog,
    WatchdogConfig,
    run_simulation,
)
from repro.workloads import make_workload

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "simstats_bfs_nw.json"


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


def assert_matches_golden(stats, want) -> None:
    assert stats.finished
    assert stats.cycles == want["cycles"]
    assert stats.instructions == want["instructions"]
    assert stats.counters == want["counters"]
    assert stats.stalls == want["stalls"]


# -- fault-plan plumbing ------------------------------------------------------


class TestFaultPlan:
    def test_encode_parse_roundtrip(self):
        specs = [
            FaultSpec("kill", "bfs/regless", count=2),
            FaultSpec("hang", "*", count=1, delay=30.0),
            FaultSpec("raise", "nw/baseline"),
        ]
        assert parse_plan(encode_plan(specs)) == specs

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec("explode")

    def test_claims_fire_exactly_count_times(self, tmp_path):
        spec = FaultSpec("raise", "*", count=2)
        with injected_faults([spec], str(tmp_path / "claims")):
            with pytest.raises(InjectedFault):
                maybe_fire("a/b")
            with pytest.raises(InjectedFault):
                maybe_fire("a/b")
            maybe_fire("a/b")  # budget exhausted: silent

    def test_target_matching(self, tmp_path):
        spec = FaultSpec("raise", "bfs/regless", count=10)
        with injected_faults([spec], str(tmp_path / "claims")):
            maybe_fire("nw/baseline")  # no match, no fire
            with pytest.raises(InjectedFault):
                maybe_fire("bfs/regless")

    def test_backoff_deterministic_and_bounded(self):
        policy = FaultPolicy(backoff=0.25, backoff_cap=4.0)
        assert policy.delay("bfs/regless", 1) == policy.delay("bfs/regless", 1)
        for attempt in range(1, 10):
            assert 0.0 < policy.delay("k", attempt) <= 4.0 * 1.25
        # jitter de-synchronizes different requests at the same attempt
        delays = {policy.delay(f"req{i}", 3) for i in range(8)}
        assert len(delays) > 1


# -- worker death -------------------------------------------------------------


class TestWorkerDeath:
    def test_kill_recovered_bit_identical(self, tmp_path, golden):
        specs = [FaultSpec("kill", "bfs/regless", count=1)]
        with injected_faults(specs, str(tmp_path / "claims")):
            runner = SuiteRunner(
                cache=False,
                policy=FaultPolicy(retries=3, backoff=0.05),
            )
            outcomes = runner.run_grid_outcomes(
                [("bfs", "regless"), ("bfs", "baseline")], jobs=2
            )
        assert [o.status for o in outcomes] == [RunOutcome.OK, RunOutcome.OK]
        assert sum(o.retried for o in outcomes) >= 1
        assert_matches_golden(outcomes[0].result.stats, golden["bfs/regless"])
        assert_matches_golden(outcomes[1].result.stats, golden["bfs/baseline"])

    def test_poison_request_quarantined_with_partial_results(self, tmp_path):
        specs = [FaultSpec("raise", "bfs/regless", count=1000)]
        with injected_faults(specs, str(tmp_path / "claims")):
            runner = SuiteRunner(
                cache=False,
                policy=FaultPolicy(retries=6, quarantine_after=2,
                                   backoff=0.01),
            )
            outcomes = runner.run_grid_outcomes(
                [("bfs", "regless"), ("bfs", "baseline")], jobs=2
            )
        poisoned, healthy = outcomes
        assert poisoned.status == RunOutcome.QUARANTINED
        assert poisoned.attempts == 2  # stopped early, budget remained
        assert "InjectedFault" in poisoned.error
        assert healthy.status == RunOutcome.OK
        # the healthy result survived into the memo
        assert runner.run("bfs", "baseline") is healthy.result

    def test_exhausted_retries_surface_as_grid_failure(self, tmp_path):
        specs = [FaultSpec("raise", "bfs/regless", count=1000)]
        with injected_faults(specs, str(tmp_path / "claims")):
            runner = SuiteRunner(
                cache=False,
                policy=FaultPolicy(retries=1, quarantine_after=5,
                                   backoff=0.01),
            )
            with pytest.raises(GridFailure) as ei:
                runner.run_grid([("bfs", "regless"), ("bfs", "baseline")],
                                jobs=2)
        failure = ei.value
        assert [o.status for o in failure.outcomes] == [
            RunOutcome.CRASHED, RunOutcome.OK
        ]
        assert "bfs/regless=crashed" in str(failure)
        # partial results installed despite the failure
        assert failure.outcomes[1].result is runner.run("bfs", "baseline")


# -- run hangs ----------------------------------------------------------------


class TestHangs:
    def test_hang_detected_killed_and_retried(self, tmp_path, golden):
        specs = [FaultSpec("hang", "nw/baseline", count=1, delay=60.0)]
        registry = MetricsRegistry()
        with injected_faults(specs, str(tmp_path / "claims")):
            outcomes = run_requests_resilient(
                GPUConfig(),
                EnergyModel().params,
                [RunRequest.make("nw", "baseline")],
                jobs=1,
                policy=FaultPolicy(timeout=5.0, retries=2, backoff=0.05),
                metrics=registry.scope("harness"),
            )
        (outcome,) = outcomes
        assert outcome.status == RunOutcome.OK
        assert outcome.attempts == 2
        assert registry.get("harness.grid.failure_hung") == 1
        assert registry.get("harness.grid.pool_rebuilds") >= 1
        assert_matches_golden(outcome.result.stats, golden["nw/baseline"])


# -- wedged backends (watchdog payload) --------------------------------------


WEDGE_CFG = GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                      cta_size_warps=4, max_cycles=100_000)


class TestWedgedBackends:
    def _compiled_bfs(self):
        workload = make_workload("bfs")
        return workload, compile_kernel(workload.kernel())

    def test_frozen_admission_trips_with_shard_and_bin_named(self):
        workload, ck = self._compiled_bfs()
        factory = freeze_admission(lambda sm, sh: ReglessStorage(ck))
        watchdog = Watchdog(
            WatchdogConfig(no_progress_cycles=20_000, check_interval=512)
        )
        with pytest.raises(SimulationHang) as ei:
            run_simulation(WEDGE_CFG, ck, workload, factory,
                           watchdog=watchdog)
        exc = ei.value
        assert exc.reason == "no_progress"
        assert watchdog.trips == 1
        diag = exc.diagnostics
        # the payload names the offending shard and stall bin
        assert diag["dominant"]["stall"] == "cm_inactive"
        assert "cm_inactive" in str(exc)
        assert f"sm{diag['dominant']['sm']}.shard" in str(exc)
        # CM admission state — including the blocked-candidate memo — rides
        # along for post-mortems
        wedged = [s for s in diag["shards"] if s.get("cm") is not None]
        assert wedged
        assert all("memo_blocked" in s["cm"] for s in wedged)
        assert any(s["parked"] for s in diag["shards"])
        assert diag["warps_done"] == 0

    def test_dropped_wakes_surface_as_structured_hang(self):
        workload, ck = self._compiled_bfs()
        factory = drop_wakes(lambda sm, sh: ReglessStorage(ck))
        watchdog = Watchdog(
            WatchdogConfig(no_progress_cycles=20_000, check_interval=512)
        )
        with pytest.raises(SimulationHang) as ei:
            run_simulation(WEDGE_CFG, ck, workload, factory,
                           watchdog=watchdog)
        exc = ei.value
        assert exc.reason in ("wheel_empty", "no_progress")
        assert exc.diagnostics["shards"]
        # starved warps are visible in the parked sets
        assert any(s["parked"] for s in exc.diagnostics["shards"])


# -- CLI policy surface -------------------------------------------------------


class TestCLIResilience:
    def test_seeds_verb_and_deprecated_alias(self, monkeypatch, capsys):
        from repro.harness import cli

        monkeypatch.setattr(cli, "seed_robustness", lambda **kw: {"stub": 1})
        monkeypatch.setattr(cli, "render_robustness",
                            lambda stats: "SEEDS-OK")
        assert cli.main(["seeds"]) == 0
        captured = capsys.readouterr()
        assert "SEEDS-OK" in captured.out
        assert "deprecated" not in captured.err

        assert cli.main(["robustness"]) == 0
        captured = capsys.readouterr()
        assert "SEEDS-OK" in captured.out
        assert "deprecated" in captured.err

    def test_unrecoverable_sweep_exits_nonzero(self, tmp_path, capsys):
        from repro.harness import cli

        specs = [FaultSpec("raise", "bfs/baseline", count=1000)]
        with injected_faults(specs, str(tmp_path / "claims")):
            code = cli.main([
                "stalls", "bfs", "nw", "--backend", "baseline",
                "--retries", "0", "--jobs", "2", "--no-cache",
            ])
        assert code == 3
        err = capsys.readouterr().err
        assert "bfs/baseline" in err
        assert "crashed" in err


# -- cache corruption ---------------------------------------------------------


class TestCacheCorruption:
    DIGEST = "ab" * 32

    def _seeded(self, tmp_path, payload={"answer": 42}):
        cache = ResultCache(root=str(tmp_path))
        cache.put(self.DIGEST, payload)
        return cache, cache._path(self.DIGEST)

    def test_truncated_entry_is_miss_and_evicted(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        truncate_file(path, keep=8)
        assert cache.get(self.DIGEST) is None
        assert cache.corrupt_evictions == 1
        assert not os.path.exists(path)

    def test_bitflipped_payload_is_miss_and_evicted(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        bitflip_file(path, offset=-3)
        assert cache.get(self.DIGEST) is None
        assert cache.corrupt_evictions == 1
        assert not os.path.exists(path)

    def test_version_mismatch_is_miss_and_evicted(self, tmp_path):
        cache, path = self._seeded(tmp_path)
        with open(path, "r+b") as fh:
            data = bytearray(fh.read())
            data[4:6] = (CACHE_SCHEMA_VERSION + 1).to_bytes(2, "big")
            fh.seek(0)
            fh.write(data)
        assert cache.get(self.DIGEST) is None
        assert cache.corrupt_evictions == 1
        assert not os.path.exists(path)

    def test_legacy_unframed_pickle_is_miss_and_evicted(self, tmp_path):
        import pickle

        cache = ResultCache(root=str(tmp_path))
        path = cache._path(self.DIGEST)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as fh:
            pickle.dump({"old": "format"}, fh)
        assert cache.get(self.DIGEST) is None
        assert cache.corrupt_evictions == 1

    def test_eviction_metric_emitted(self, tmp_path):
        registry = MetricsRegistry()
        cache = ResultCache(root=str(tmp_path),
                            metrics=registry.scope("harness.cache"))
        cache.put(self.DIGEST, {"v": 1})
        truncate_file(cache._path(self.DIGEST))
        assert cache.get(self.DIGEST) is None
        assert registry.get("harness.cache.corrupt_evictions") == 1

    def test_concurrent_writers_last_wins_readable(self, tmp_path):
        a = ResultCache(root=str(tmp_path))
        b = ResultCache(root=str(tmp_path))
        a.put(self.DIGEST, {"writer": "a"})
        b.put(self.DIGEST, {"writer": "b"})
        assert a.get(self.DIGEST) == {"writer": "b"}

    def test_end_to_end_recovery_bit_identical(self, tmp_path, golden):
        runner = SuiteRunner(cache=ResultCache(root=str(tmp_path)))
        first = runner.run("bfs", "baseline")
        assert_matches_golden(first.stats, golden["bfs/baseline"])
        entries = list(Path(tmp_path).rglob("*.pkl"))
        assert len(entries) == 1
        bitflip_file(str(entries[0]))
        # A fresh runner re-simulates through the corruption and heals the
        # store.
        runner2 = SuiteRunner(cache=ResultCache(root=str(tmp_path)))
        second = runner2.run("bfs", "baseline")
        assert runner2.cache.corrupt_evictions == 1
        assert second.stats.cycles == first.stats.cycles
        assert second.stats.counters == first.stats.counters
        runner3 = SuiteRunner(cache=ResultCache(root=str(tmp_path)))
        third = runner3.run("bfs", "baseline")
        assert runner3.cache.hits == 1
        assert third.stats.counters == first.stats.counters
