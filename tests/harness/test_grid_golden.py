"""Grid equivalence against committed golden SimStats.

``tests/golden/simstats_bfs_nw.json`` snapshots the simulated results
(cycles, instructions, counters, stall bins) of bfs, nw and hotspot under
all five backends from before the event-driven issue-core and
demand-clocked component reworks.  Those reworks are pure wall-clock
optimizations: simulated results must stay **bit-identical**.
Any intentional change to simulated behavior must regenerate the golden
(see docs/performance.md) in the same commit and say why.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.harness.runner import SuiteRunner

GOLDEN = Path(__file__).resolve().parents[1] / "golden" / "simstats_bfs_nw.json"

_CELLS = [
    (name, backend)
    for name in ("bfs", "nw", "hotspot")
    for backend in ("baseline", "rfh", "rfv", "regless", "regless-nc")
]


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN.read_text())


@pytest.fixture(scope="module")
def runner():
    # One runner for the whole grid: the compiled kernels are shared
    # across backends, the disk cache is bypassed so the simulator
    # actually runs.
    return SuiteRunner(cache=False)


@pytest.mark.parametrize("name,backend", _CELLS)
def test_simstats_match_golden(runner, golden, name, backend):
    want = golden[f"{name}/{backend}"]
    stats = runner.run(name, backend).stats
    assert stats.finished
    assert stats.cycles == want["cycles"]
    assert stats.instructions == want["instructions"]
    assert stats.warps_done == want["warps_done"]
    assert stats.counters == want["counters"]
    assert stats.stalls == want["stalls"]
