"""Persistent result cache: round-trip identity and key invalidation."""

import multiprocessing
import pickle

import pytest

from repro.energy.model import EnergyParams
from repro.harness import ResultCache, SuiteRunner, run_digest
from repro.sim import GPUConfig


SMALL = dict(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)


def make_runner(cache_dir):
    return SuiteRunner(config=GPUConfig(**SMALL),
                       cache=ResultCache(str(cache_dir)))


class TestRoundTrip:
    def test_fresh_runner_hits_cache(self, tmp_path):
        first = make_runner(tmp_path)
        cold = first.run("bfs", "regless")
        assert first.cache.writes == 1

        second = make_runner(tmp_path)
        warm = second.run("bfs", "regless")
        assert second.cache.hits == 1
        assert second.cache.writes == 0
        assert "cache_load" in warm.timings

        assert warm.cycles == cold.cycles
        assert warm.stats.counters == cold.stats.counters
        assert warm.energy == cold.energy

    def test_memo_wins_over_disk(self, tmp_path):
        runner = make_runner(tmp_path)
        a = runner.run("bfs", "baseline")
        b = runner.run("bfs", "baseline")
        assert a is b
        assert runner.cache.hits == 0

    def test_run_grid_resolves_from_cache(self, tmp_path):
        make_runner(tmp_path).run_grid(
            [("bfs", "baseline"), ("nw", "baseline")], jobs=1
        )
        warm = make_runner(tmp_path)
        results = warm.run_grid(
            [("bfs", "baseline"), ("nw", "baseline")], jobs=1
        )
        assert warm.cache.hits == 2
        assert [r.benchmark for r in results] == ["bfs", "nw"]

    def test_cache_false_disables_store(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        runner = SuiteRunner(config=GPUConfig(**SMALL), cache=False)
        runner.run("bfs", "baseline")
        assert runner.cache is None
        assert len(ResultCache(str(tmp_path))) == 0

    def test_repro_cache_0_disables_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "0")
        assert SuiteRunner(config=GPUConfig(**SMALL)).cache is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        digest = "ab" + "0" * 62
        cache.put(digest, {"ok": True})
        path = cache._path(digest)
        with open(path, "wb") as fh:
            fh.write(b"not a pickle")
        assert cache.get(digest) is None
        assert cache.misses == 1

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("aa" + "0" * 62, 1)
        cache.put("bb" + "0" * 62, 2)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


def _racing_reader(root, digest, barrier, queue):
    """Child-process body for the eviction race: both processes hit the
    same corrupt entry at once."""
    cache = ResultCache(root)
    barrier.wait()
    result = cache.get(digest)
    queue.put((result is None, cache.misses, cache.corrupt_evictions))


class TestCorruptEvictionRace:
    """Regression: two workers racing to evict one corrupt entry must
    both read a miss, must not crash, and must count exactly one
    eviction between them."""

    DIGEST = "cc" + "0" * 62

    def corrupt_entry(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(self.DIGEST, {"ok": True})
        path = cache._path(self.DIGEST)
        with open(path, "wb") as fh:
            fh.write(b"garbage, not a framed pickle")
        return path

    def test_lost_race_is_not_counted_and_not_fatal(self, tmp_path):
        # Deterministic loser: the entry vanishes between this cache's
        # read and its unlink (another worker evicted it first).
        path = self.corrupt_entry(tmp_path)
        winner = ResultCache(str(tmp_path))
        loser = ResultCache(str(tmp_path))
        with open(path, "rb") as fh:
            fh.read()  # the loser "saw" the corrupt entry...
        assert winner.get(self.DIGEST) is None  # ...winner evicts it...
        loser._evict_corrupt(path, "corrupt entry")  # ...loser's unlink loses
        assert winner.corrupt_evictions == 1
        assert loser.corrupt_evictions == 0

    def test_two_process_race_counts_exactly_one_eviction(self, tmp_path):
        self.corrupt_entry(tmp_path)
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_racing_reader,
                        args=(str(tmp_path), self.DIGEST, barrier, queue))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        reports = [queue.get(timeout=30) for _ in procs]
        for p in procs:
            p.join(timeout=30)
            assert p.exitcode == 0  # FileNotFoundError must not escape
        assert all(missed for missed, _, _ in reports)
        assert [misses for _, misses, _ in reports] == [1, 1]
        # However the unlinks interleave, the entry is evicted once.
        assert sum(evictions for _, _, evictions in reports) == 1


class TestDigest:
    def digest(self, **kw):
        args = dict(
            config=GPUConfig(**SMALL),
            backend="regless",
            osu_entries=512,
            workload_name="bfs",
            workload_seed=1,
            kernel_bytes=b"kernel-v1",
            energy_params=EnergyParams(),
            salt="fixed-salt",
        )
        args.update(kw)
        return run_digest(**args)

    def test_deterministic(self):
        assert self.digest() == self.digest()

    def test_config_change_invalidates(self):
        assert self.digest() != self.digest(
            config=GPUConfig(**dict(SMALL, warps_per_sm=16))
        )

    def test_kernel_change_invalidates(self):
        assert self.digest() != self.digest(kernel_bytes=b"kernel-v2")

    def test_code_salt_change_invalidates(self):
        assert self.digest() != self.digest(salt="other-salt")

    def test_backend_capacity_and_seed_matter(self):
        base = self.digest()
        assert base != self.digest(backend="baseline")
        assert base != self.digest(osu_entries=256)
        assert base != self.digest(workload_seed=2)
        assert base != self.digest(window_series=("rf_read",))

    def test_energy_params_matter(self):
        assert self.digest() != self.digest(
            energy_params=EnergyParams(tag_access=0.5)
        )

    def test_runner_results_are_picklable(self, tmp_path):
        result = make_runner(tmp_path).run("bfs", "regless")
        clone = pickle.loads(pickle.dumps(result))
        assert clone.cycles == result.cycles
        assert clone.stats.counters == result.stats.counters
