import pytest

from repro.harness import SuiteRunner
from repro.sim import GPUConfig


@pytest.fixture(scope="module")
def runner():
    # Small configuration keeps the whole module fast.
    return SuiteRunner(config=GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                                        cta_size_warps=4))


class TestMemoization:
    def test_same_key_returns_same_object(self, runner):
        a = runner.run("bfs", "baseline")
        b = runner.run("bfs", "baseline")
        assert a is b

    def test_different_backend_differs(self, runner):
        a = runner.run("bfs", "baseline")
        b = runner.run("bfs", "regless")
        assert a is not b

    def test_overrides_are_part_of_key(self, runner):
        a = runner.run("bfs", "baseline")
        b = runner.run("bfs", "baseline", scheduler="two_level")
        assert a is not b

    def test_compiled_kernel_shared(self, runner):
        assert runner.compiled("bfs") is runner.compiled("bfs")


class TestBackends:
    @pytest.mark.parametrize("backend", ["baseline", "rfh", "rfv", "regless",
                                          "regless-nc"])
    def test_all_backends_run(self, runner, backend):
        result = runner.run("streamcluster", backend)
        assert result.stats.finished
        assert result.cycles > 0
        assert result.gpu_energy > 0

    def test_unknown_backend_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("bfs", "magic")

    def test_rfh_and_rfv_use_two_level(self, runner):
        assert runner.config_for("rfh").scheduler == "two_level"
        assert runner.config_for("rfv").scheduler == "two_level"
        assert runner.config_for("baseline").scheduler == "gto"

    def test_osu_capacity_passed_through(self, runner):
        small = runner.run("streamcluster", "regless", osu_entries=128)
        big = runner.run("streamcluster", "regless", osu_entries=512)
        assert small.osu_entries == 128
        assert big.osu_entries == 512


class TestEnergyAccounting:
    def test_no_rf_bound_below_baseline(self, runner):
        base = runner.run("bfs", "baseline")
        assert runner.no_rf_energy("bfs") < base.gpu_energy

    def test_regless_rf_energy_below_baseline(self, runner):
        base = runner.run("bfs", "baseline")
        rl = runner.run("bfs", "regless")
        assert rl.rf_energy < base.rf_energy
