"""The ``stalls``/``trace`` harness verbs and the golden bfs breakdown."""

import json

import pytest

from repro.harness.cli import main
from repro.harness.report import render_stalls
from repro.harness.runner import SuiteRunner
from repro.obs.perfetto import validate_chrome_trace
from repro.obs.stalls import check_conservation


@pytest.fixture(scope="module")
def bfs_runs():
    runner = SuiteRunner(cache=False)
    base = runner.run("bfs", "baseline")
    regless = runner.run("bfs", "regless")
    return base, regless


class TestGoldenBfsBreakdown:
    def test_both_backends_conserve(self, bfs_runs):
        for result in bfs_runs:
            stats = result.stats
            for report in stats.stall_shards:
                check_conservation(report)
            assert sum(stats.stalls.values()) == \
                stats.warps_total * stats.cycles

    def test_baseline_reasons_are_baseline_only(self, bfs_runs):
        base, _ = bfs_runs
        reasons = {k for k, v in base.stats.stalls.items() if v}
        assert not any(r.startswith("cm_") for r in reasons)
        assert "osu_port" not in reasons
        assert "demoted" not in reasons  # GTO, not two-level
        assert "rfv_pressure" not in reasons

    def test_regless_exposes_staging_states(self, bfs_runs):
        _, regless = bfs_runs
        stalls = regless.stats.stalls
        assert stalls.get("cm_inactive", 0) > 0

    def test_bfs_is_memory_bound_on_both(self, bfs_runs):
        # The load-dependent frontier walk keeps warps waiting on global
        # loads; that must dominate the breakdown for both designs.
        for result in bfs_runs:
            stalls = dict(result.stats.stalls)
            stalls.pop("issued", None)
            assert max(stalls, key=stalls.get) == "mem_pending"

    def test_stall_bins_surface_in_hierarchical_metrics(self, bfs_runs):
        base, _ = bfs_runs
        metrics = base.stats.metrics
        keys = [k for k in metrics if ".stall." in k]
        assert keys
        assert sum(metrics[k] for k in keys) == \
            base.stats.warps_total * base.stats.cycles

    def test_render(self, bfs_runs):
        base, regless = bfs_runs
        text = render_stalls({
            "bfs": {"baseline": base.stats.stalls,
                    "regless": regless.stats.stalls},
        })
        assert "bfs" in text and "baseline" in text and "regless" in text
        assert "mem_pending" in text and "%" in text


class TestCLI:
    def test_stalls_verb(self, capsys):
        rc = main(["stalls", "bfs", "--backend", "baseline", "--no-cache"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "bfs" in out and "mem_pending" in out

    def test_trace_verb_writes_valid_perfetto_json(self, tmp_path, capsys):
        rc = main(["trace", "bfs", "--perfetto", "--no-cache",
                   "--out", str(tmp_path)])
        assert rc == 0
        path = tmp_path / "trace_bfs_regless.json"
        assert path.exists()
        trace = json.loads(path.read_text())
        assert validate_chrome_trace(trace) == []
        assert any(e.get("cat") == "region" for e in trace["traceEvents"])
