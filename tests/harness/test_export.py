import json
import os

import pytest

from repro.harness import EXPORTABLE, SuiteRunner, export_all, rows_for, to_csv, to_json
from repro.sim import GPUConfig

SUBSET = ["bfs", "streamcluster"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(config=GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                                        cta_size_warps=4))


class TestRows:
    @pytest.mark.parametrize("experiment", ["fig2", "fig14", "fig16",
                                             "fig17", "table2"])
    def test_per_benchmark_experiments(self, runner, experiment):
        rows = rows_for(experiment, runner, SUBSET)
        assert rows
        assert all("benchmark" in r for r in rows)

    def test_fig11_rows_without_runner_cost(self, runner):
        rows = rows_for("fig11", runner)
        assert {r["capacity"] for r in rows} >= {128, 512, 2048}

    def test_fig5_rows(self, runner):
        rows = rows_for("fig5", runner)
        assert rows[0]["pc"] == 0

    def test_unknown_rejected(self, runner):
        with pytest.raises(ValueError):
            rows_for("fig99", runner)


class TestFormats:
    def test_csv_round_trip(self, runner):
        rows = rows_for("fig2", runner, SUBSET)
        text = to_csv(rows)
        lines = text.strip().splitlines()
        assert lines[0].startswith("benchmark")
        assert len(lines) == len(rows) + 1

    def test_csv_empty(self):
        assert to_csv([]) == ""

    def test_json_parses(self, runner):
        rows = rows_for("fig2", runner, SUBSET)
        parsed = json.loads(to_json(rows))
        assert len(parsed) == len(rows)


def test_export_all_writes_files(tmp_path, runner):
    paths = export_all(str(tmp_path), runner, SUBSET, fmt="csv")
    assert len(paths) == len(EXPORTABLE)
    for path in paths:
        assert os.path.exists(path)
        assert os.path.getsize(path) > 0
