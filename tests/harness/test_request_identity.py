"""``RunRequest.identity`` is the dedupe key — it must be content-stable.

The service's cross-client admission dedupe and the harness's in-grid
dedupe both assume: equal request fields ⟺ equal identity, and the
digest survives pickling and process boundaries (requests travel to
worker processes and back).  Hypothesis drives the equivalence; a
subprocess pins the cross-interpreter case; a real resilient grid pins
"equal keys dedupe to one execution".
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

from hypothesis import given, settings, strategies as st

from repro.energy.model import EnergyModel
from repro.harness.parallel import RunOutcome, RunRequest, \
    run_requests_resilient
from repro.obs.metrics import MetricsRegistry
from repro.sim import GPUConfig


SMALL = dict(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)

names = st.text(min_size=1, max_size=16)
# Ints and text only: cross-type equal values (1 == 1.0 == True) would
# make equal requests hash differently, which is exactly the bug class
# this suite exists to keep out of the dedupe key.
override_values = st.integers() | names

requests = st.builds(
    RunRequest.make,
    benchmark=names,
    backend=names,
    osu_entries=st.integers(min_value=1, max_value=1 << 16),
    window_series=st.lists(names, max_size=3),
    scheduler=override_values,
)


@given(requests)
@settings(max_examples=100)
def test_identity_survives_pickle(req):
    clone = pickle.loads(pickle.dumps(req))
    assert clone == req
    assert clone.identity == req.identity


@given(requests, requests)
@settings(max_examples=100)
def test_equal_fields_iff_equal_identity(a, b):
    assert (a == b) == (a.identity == b.identity)


@given(requests)
@settings(max_examples=50)
def test_identity_is_hex_digest(req):
    assert len(req.identity) == 64
    assert set(req.identity) <= set("0123456789abcdef")
    assert req.identity == req.identity  # pure function of the fields


def test_identity_stable_across_interpreters():
    req = RunRequest.make("bfs", "regless", 256, ("rf_read",),
                          scheduler="lrr")
    script = (
        "from repro.harness.parallel import RunRequest;"
        "print(RunRequest.make('bfs', 'regless', 256, ('rf_read',),"
        " scheduler='lrr').identity)"
    )
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True, text=True, check=True, env=dict(os.environ),
    )
    assert out.stdout.strip() == req.identity


def test_equal_requests_dedupe_to_one_execution():
    dup = RunRequest.make("bfs", "baseline")
    other = RunRequest.make("nw", "baseline")
    registry = MetricsRegistry()
    delivered = {}
    outcomes = run_requests_resilient(
        GPUConfig(**SMALL),
        EnergyModel().params,
        [dup, dup, other, dup],
        jobs=2,
        metrics=registry.scope("harness"),
        on_outcome=lambda i, o: delivered.setdefault(i, o),
    )
    assert [o.status for o in outcomes] == [RunOutcome.OK] * 4
    # One execution: duplicates share the primary's result object and
    # attempt accounting, and each dedupe is metered.
    assert outcomes[1].result is outcomes[0].result
    assert outcomes[3].result is outcomes[0].result
    assert outcomes[2].result is not outcomes[0].result
    assert outcomes[1].attempts == outcomes[0].attempts == 1
    assert registry.as_dict()["harness.grid.deduped"] == 2
    assert registry.as_dict()["harness.grid.ok"] == 2
    # The streaming hook fired exactly once per request index.
    assert sorted(delivered) == [0, 1, 2, 3]
    assert delivered[1].result is delivered[0].result
