"""Parallel grid execution must be indistinguishable from serial runs."""

import pytest

from repro.harness import RunRequest, SuiteRunner, resolve_jobs
from repro.sim import GPUConfig


SMALL = dict(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)
SUBSET = ("bfs", "nw", "streamcluster")


@pytest.fixture
def serial_runner():
    return SuiteRunner(config=GPUConfig(**SMALL), cache=False)


@pytest.fixture
def grid_runner():
    return SuiteRunner(config=GPUConfig(**SMALL), cache=False)


def assert_results_match(a, b):
    assert a.benchmark == b.benchmark
    assert a.backend == b.backend
    assert a.cycles == b.cycles
    assert a.stats.counters == b.stats.counters
    assert a.energy == b.energy


class TestGridEqualsSerial:
    def test_parallel_grid_matches_serial_runs(self, serial_runner,
                                               grid_runner):
        requests = [
            RunRequest.make(name, backend)
            for name in SUBSET
            for backend in ("baseline", "regless")
        ]
        parallel = grid_runner.run_grid(requests, jobs=2)
        serial = [
            serial_runner.run(r.benchmark, r.backend) for r in requests
        ]
        assert len(parallel) == len(serial) == len(requests)
        for p, s in zip(parallel, serial):
            assert_results_match(p, s)

    def test_grid_results_are_memoized(self, grid_runner):
        [result] = grid_runner.run_grid([("bfs", "baseline")], jobs=2)
        assert grid_runner.run("bfs", "baseline") is result

    def test_request_order_preserved(self, grid_runner):
        requests = [(n, "baseline") for n in SUBSET]
        results = grid_runner.run_grid(requests, jobs=2)
        assert [r.benchmark for r in results] == list(SUBSET)


class TestRequestForms:
    def test_tuple_dict_and_request_mix(self, grid_runner):
        results = grid_runner.run_grid(
            [
                ("bfs", "baseline"),
                {"benchmark": "bfs", "backend": "regless"},
                RunRequest.make("nw", "baseline"),
            ],
            jobs=1,
        )
        assert [(r.benchmark, r.backend) for r in results] == [
            ("bfs", "baseline"), ("bfs", "regless"), ("nw", "baseline"),
        ]

    def test_duplicate_requests_run_once(self, grid_runner):
        a, b = grid_runner.run_grid(
            [("bfs", "baseline"), ("bfs", "baseline")], jobs=2
        )
        assert a is b

    def test_unknown_backend_rejected_before_dispatch(self, grid_runner):
        with pytest.raises(ValueError):
            grid_runner.run_grid([("bfs", "magic")], jobs=2)

    def test_overrides_reach_workers(self, grid_runner):
        [two_level] = grid_runner.run_grid(
            [RunRequest.make("bfs", "baseline", scheduler="two_level")],
            jobs=2,
        )
        gto = grid_runner.run("bfs", "baseline")
        assert two_level is not gto


class TestResolveJobs:
    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "7")
        assert resolve_jobs(3) == 3

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "5")
        assert resolve_jobs() == 5

    def test_invalid_env_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "lots")
        assert resolve_jobs() >= 1

    def test_floor_is_one(self):
        assert resolve_jobs(0) == 1
        assert resolve_jobs(-4) == 1


class TestTimings:
    def test_executed_run_records_phases(self, grid_runner):
        result = grid_runner.run("bfs", "baseline")
        for phase in ("compile", "simulate", "energy", "total"):
            assert result.timings[phase] >= 0.0
        assert result.timings["total"] >= result.timings["simulate"]
