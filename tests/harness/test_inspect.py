import pytest

from repro.compiler import compile_kernel
from repro.harness.inspect import StateSampler
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim.gpu import GPU


def make_gpu(workload, config, regless=True):
    ck = compile_kernel(workload.kernel())
    if regless:
        return GPU(config, ck, workload, lambda sm, sh: ReglessStorage(ck))
    return GPU(config, ck, workload, lambda sm, sh: BaselineRF())


class TestStateSampler:
    def test_collects_samples(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sampler = StateSampler(period=50)
        sampler.attach(gpu)
        gpu.run()
        assert sampler.samples
        assert sampler.samples[0].capacity > 0

    def test_final_sample_everything_finished(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sampler = StateSampler(period=10)
        sampler.attach(gpu)
        gpu.run()
        last = sampler.samples[-1]
        total_warps = sum(last.states.values())
        assert total_warps == fast_config.warps_per_sm

    def test_mean_and_peak_views(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sampler = StateSampler(period=25)
        sampler.attach(gpu)
        gpu.run()
        assert sampler.mean_state("active") >= 0
        assert 0 <= sampler.peak_occupancy() <= 1.5
        assert "reserved" in sampler.render(limit=3)

    def test_rejects_non_regless_gpu(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config, regless=False)
        with pytest.raises(ValueError):
            StateSampler().attach(gpu)

    def test_double_attach_rejected(self, loop_workload, fast_config):
        gpu = make_gpu(loop_workload, fast_config)
        sampler = StateSampler()
        sampler.attach(gpu)
        with pytest.raises(RuntimeError):
            sampler.attach(gpu)

    def test_sampling_does_not_change_results(self, loop_workload, fast_config):
        plain = make_gpu(loop_workload, fast_config).run()
        gpu = make_gpu(loop_workload, fast_config)
        StateSampler(period=10).attach(gpu)
        sampled = gpu.run()
        assert plain.cycles == sampled.cycles
        assert plain.counters == sampled.counters
