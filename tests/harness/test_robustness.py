from repro.harness import SeedStats, render_robustness, seed_robustness
from repro.sim import GPUConfig


def test_seed_stats_math():
    s = SeedStats("x", [1.0, 2.0, 3.0])
    assert s.mean == 2.0
    assert s.lo == 1.0 and s.hi == 3.0
    assert s.spread == 2.0
    assert "x" in s.render()


def test_robustness_small_grid():
    cfg = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)
    stats = seed_robustness(seeds=(1, 42), names=("bfs", "streamcluster"),
                            config=cfg)
    by_name = {s.name: s for s in stats}
    runtime = by_name["runtime geomean (RL/base)"]
    assert len(runtime.values) == 2
    assert 0.5 < runtime.mean < 1.5
    # The staging contract holds for every seed.
    assert by_name["staging misses (must be 0)"].hi == 0
    text = render_robustness(stats, seeds=(1, 42))
    assert "Seed robustness" in text


def test_different_seeds_change_dynamics():
    cfg = GPUConfig(warps_per_sm=8, schedulers_per_sm=2, cta_size_warps=4)
    stats = seed_robustness(seeds=(1, 1), names=("heartwall",), config=cfg)
    runtime = stats[0]
    assert runtime.values[0] == runtime.values[1]  # same seed, same result
