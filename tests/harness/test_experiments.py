import pytest

from repro.harness import (
    SuiteRunner,
    fig2_working_set,
    fig3_backing_store,
    fig5_liveness_seams,
    fig11_area,
    fig12_power,
    fig13_pareto,
    fig14_rf_energy,
    fig15_gpu_energy,
    fig16_runtime,
    fig17_preload_location,
    fig18_l1_bandwidth,
    fig19_region_registers,
    geomean,
    table2_region_sizes,
)
from repro.harness import report
from repro.sim import GPUConfig

SUBSET = ["bfs", "streamcluster"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(config=GPUConfig(warps_per_sm=8, schedulers_per_sm=2,
                                        cta_size_warps=4))


def test_geomean():
    assert geomean([2.0, 8.0]) == pytest.approx(4.0)
    assert geomean([]) == 0.0


class TestStructuralExperiments:
    def test_fig5_counts(self, runner):
        counts = fig5_liveness_seams(runner, "particle_filter")
        assert len(counts) > 10
        assert min(counts) < max(counts)  # peaks and seams exist

    def test_fig11_capacities(self):
        data = fig11_area()
        assert data[512]["total"] < data[2048]["total"]
        assert set(data[128]) == {"logic", "storage", "compressor", "total"}

    def test_fig19_static_stats(self, runner):
        data = fig19_region_registers(runner, SUBSET)
        for row in data.values():
            assert row["mean_live"] > 0
            assert row["std_live"] >= 0


class TestSimulationExperiments:
    def test_fig2_two_level_reduces_working_set(self, runner):
        data = fig2_working_set(runner, ["kmeans"])
        gto, two = data["kmeans"]
        assert gto > 0 and two > 0

    def test_fig3_series_nonempty(self, runner):
        series = fig3_backing_store(runner, "streamcluster")
        assert series.baseline and series.regless
        # RegLess hits its backing store far less than the baseline RF.
        assert sum(series.regless) < sum(series.baseline)

    def test_fig12_power_monotone(self, runner):
        data = fig12_power(runner, capacities=(128, 512), reference="bfs")
        assert data[128]["total"] < data[512]["total"]

    def test_fig13_pareto(self, runner):
        data = fig13_pareto(runner, capacities=(128, 512), names=SUBSET)
        for cap, (rt, en) in data.items():
            assert rt > 0 and en > 0
        assert data[128][1] <= data[512][1]  # smaller OSU, less energy

    def test_fig14_savings(self, runner):
        data = fig14_rf_energy(runner, SUBSET)
        for name in SUBSET:
            assert data[name]["regless"] < 1.0
            assert data[name]["rfv"] < 1.0

    def test_fig15_no_rf_is_lower_bound(self, runner):
        data = fig15_gpu_energy(runner, SUBSET)
        for name, row in data.items():
            assert row["no_rf"] <= min(row["rfh"], row["rfv"], row["regless"])

    def test_fig16_runtime(self, runner):
        result = fig16_runtime(runner, SUBSET)
        assert set(result.per_benchmark) == set(SUBSET)
        assert 0.5 < result.geomean_regless < 1.5

    def test_fig17_fractions_sum_to_one(self, runner):
        data = fig17_preload_location(runner, SUBSET)
        for name, row in data.items():
            assert sum(row.values()) == pytest.approx(1.0)
            assert row["osu"] + row["compressor"] > 0.5

    def test_fig18_l1_traffic_small(self, runner):
        data = fig18_l1_bandwidth(runner, SUBSET)
        for row in data.values():
            assert sum(row.values()) < 1.0  # far below one request/cycle

    def test_table2(self, runner):
        data = table2_region_sizes(runner, SUBSET)
        for row in data.values():
            assert row["insns"] > 0
            assert row["cycles"] > 0


class TestRendering:
    def test_all_renderers_produce_text(self, runner):
        outputs = [
            report.render_fig2(fig2_working_set(runner, SUBSET)),
            report.render_fig3(fig3_backing_store(runner, "streamcluster")),
            report.render_fig5(fig5_liveness_seams(runner)),
            report.render_fig11(fig11_area()),
            report.render_fig12(fig12_power(runner, (128, 512), "bfs")),
            report.render_fig13(fig13_pareto(runner, (128,), SUBSET)),
            report.render_fig14(fig14_rf_energy(runner, SUBSET)),
            report.render_fig15(fig15_gpu_energy(runner, SUBSET)),
            report.render_fig16(fig16_runtime(runner, SUBSET)),
            report.render_fig17(fig17_preload_location(runner, SUBSET)),
            report.render_fig18(fig18_l1_bandwidth(runner, SUBSET)),
            report.render_fig19(fig19_region_registers(runner, SUBSET)),
            report.render_table2(table2_region_sizes(runner, SUBSET)),
        ]
        for text in outputs:
            assert isinstance(text, str) and len(text) > 20


class TestCLI:
    def test_cli_runs_fig11(self, capsys):
        from repro.harness.cli import main

        assert main(["fig11"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out


class TestEnergyBreakdown:
    def test_components_sum_to_one(self, runner):
        from repro.harness import energy_breakdown

        data = energy_breakdown(runner, SUBSET)
        for backend, shares in data.items():
            assert sum(shares.values()) == pytest.approx(1.0, abs=1e-6)

    def test_regless_rf_share_smallest(self, runner):
        from repro.harness import energy_breakdown

        data = energy_breakdown(runner, SUBSET)
        assert data["regless"]["rf"] < data["baseline"]["rf"]
        assert data["regless"]["metadata"] > 0

    def test_render(self, runner):
        from repro.harness import energy_breakdown
        from repro.harness.report import render_breakdown

        text = render_breakdown(energy_breakdown(runner, SUBSET))
        assert "baseline" in text and "regless" in text
