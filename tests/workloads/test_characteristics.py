"""Dynamic fidelity net: each benchmark exhibits its paper character.

These run the suite under a small configuration and assert the dynamic
signatures the paper attributes to each benchmark, so workload edits that
silently change a benchmark's nature fail here rather than skewing figures.
"""

import pytest

from repro.harness import SuiteRunner
from repro.sim import GPUConfig


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(config=GPUConfig(warps_per_sm=16, schedulers_per_sm=2,
                                        cta_size_warps=8))


class TestControlFlow:
    @pytest.mark.parametrize("name", ["heartwall", "bfs", "mummergpu",
                                       "hybridsort", "b+tree"])
    def test_divergent_benchmarks_diverge(self, runner, name):
        stats = runner.run(name, "baseline").stats
        assert stats.counter("divergent_branch") > 0

    @pytest.mark.parametrize("name", ["kmeans", "lud", "nw"])
    def test_uniform_benchmarks_do_not(self, runner, name):
        stats = runner.run(name, "baseline").stats
        assert stats.counter("divergent_branch") == 0


class TestMemoryProfile:
    def test_hybridsort_and_sradv2_store_heavy(self, runner):
        for name in ("hybridsort", "srad_v2"):
            stats = runner.run(name, "baseline").stats
            assert stats.counter("gmem_store_lines") > stats.counter(
                "gmem_load_lines"
            ), name

    def test_stencils_load_heavy(self, runner):
        for name in ("hotspot", "dwt2d", "leukocyte"):
            stats = runner.run(name, "baseline").stats
            assert stats.counter("gmem_load_lines") > stats.counter(
                "gmem_store_lines"
            ), name

    def test_myocyte_nearly_no_memory(self, runner):
        stats = runner.run("myocyte", "baseline").stats
        per_insn = stats.counter("gmem_load_lines") / stats.instructions
        assert per_insn < 0.01

    def test_bfs_memory_intensity_highest(self, runner):
        def intensity(name):
            s = runner.run(name, "baseline").stats
            return s.counter("gmem_load_lines") / s.instructions
        assert intensity("bfs") > intensity("lud")
        assert intensity("bfs") > intensity("myocyte")


class TestComputeProfile:
    def test_sfu_benchmarks_use_sfu(self, runner):
        from repro.isa import FuncUnit
        for name in ("leukocyte", "myocyte", "lavaMD"):
            ck = runner.compiled(name)
            sfu = [i for _, _, i in ck.kernel.iter_pcs()
                   if i.opcode.info.unit is FuncUnit.SFU]
            assert sfu, name

    def test_barrier_benchmarks_synchronize(self, runner):
        from repro.isa import Opcode
        for name in ("backprop", "pathfinder", "srad_v1"):
            ck = runner.compiled(name)
            bars = [i for _, _, i in ck.kernel.iter_pcs()
                    if i.opcode is Opcode.BAR]
            assert bars, name


class TestCompressibility:
    def test_hotspot_more_compressible_than_dwt2d(self, runner):
        def compress_rate(name):
            s = runner.run(name, "regless").stats
            stores = s.counter("compressor_store")
            total = stores + s.counter("l1_evict_store")
            return stores / total if total else None
        hotspot = compress_rate("hotspot")
        dwt2d = compress_rate("dwt2d")
        if hotspot is not None and dwt2d is not None:
            assert hotspot >= dwt2d


class TestWorkingSet:
    def test_small_vs_large_working_sets(self, runner):
        small = runner.run("b+tree", "baseline", track_working_set=True)
        large = runner.run("hotspot", "baseline", track_working_set=True)
        assert small.stats.working_set_kb() < large.stats.working_set_kb()
