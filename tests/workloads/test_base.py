from repro.sim import LaneValues, LoopExit
from repro.workloads import Workload, default_initial_regs
from tests.conftest import build_loop


class TestDefaultInitialRegs:
    def test_thread_id_affine(self):
        regs = default_initial_regs(warp_id=3)
        tid = regs[0]
        assert tid.is_affine and tid.stride == 1
        assert tid.base == 3 * 32

    def test_pointers_uniform_and_distinct_per_warp(self):
        a = default_initial_regs(0)
        b = default_initial_regs(1)
        assert a[1].is_uniform
        assert a[1] != b[1]

    def test_param_count(self):
        assert set(default_initial_regs(0)) == {0, 1, 2, 3}


class TestWorkload:
    def make(self, **kwargs):
        return Workload(name="w", build=build_loop,
                        pred_behaviors={"loop": LoopExit(trips=3)}, **kwargs)

    def test_kernel_cached(self):
        wl = self.make()
        assert wl.kernel() is wl.kernel()

    def test_regalloc_toggle(self):
        raw = self.make(regalloc=False).kernel()
        alloc = self.make(regalloc=True).kernel()
        assert alloc.num_regs <= raw.num_regs

    def test_oracle_carries_behaviors(self):
        wl = self.make()
        oracle = wl.oracle()
        # Tagged setp follows LoopExit(3): exits at count 2.
        assert oracle.pred_mask(0, 0, "loop") == 0
        assert oracle.pred_mask(0, 0, "loop") == 0
        assert oracle.pred_mask(0, 0, "loop") != 0

    def test_fresh_oracle_per_call(self):
        wl = self.make()
        a, b = wl.oracle(), wl.oracle()
        a.pred_mask(0, 0, "loop")
        # b has independent counts.
        assert b.pred_mask(0, 0, "loop") == 0

    def test_custom_init_regs(self):
        marker = {0: LaneValues.uniform(0xDEAD)}
        wl = self.make(init_regs=lambda wid: marker)
        assert wl.initial_regs(5) is marker

    def test_seed_flows_to_oracle(self):
        a = self.make(seed=1).oracle()
        b = self.make(seed=2).oracle()
        assert a.seed != b.seed
