import pytest

from repro.compiler import compile_kernel
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim import run_simulation
from repro.workloads import RODINIA, make_workload, workload_names

ALL_NAMES = workload_names()


class TestSuiteShape:
    def test_twenty_one_benchmarks(self):
        assert len(ALL_NAMES) == 21

    def test_names_match_paper(self):
        expected = {
            "b+tree", "backprop", "bfs", "dwt2d", "gaussian", "heartwall",
            "hotspot", "hybridsort", "kmeans", "lavaMD", "leukocyte", "lud",
            "mummergpu", "myocyte", "nn", "nw", "particle_filter",
            "pathfinder", "srad_v1", "srad_v2", "streamcluster",
        }
        assert set(ALL_NAMES) == expected

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError):
            make_workload("tango")


@pytest.mark.parametrize("name", ALL_NAMES)
class TestEveryBenchmark:
    def test_builds_and_compiles(self, name):
        wl = make_workload(name)
        ck = compile_kernel(wl.kernel())
        assert ck.n_regions >= 1
        assert ck.kernel.has_exit

    def test_regions_tile_kernel(self, name):
        wl = make_workload(name)
        ck = compile_kernel(wl.kernel())
        covered = sorted(
            pc for r in ck.regions for pc in range(r.start_pc, r.end_pc)
        )
        assert covered == list(range(ck.kernel.num_instructions))

    def test_regalloc_applied(self, name):
        wl = make_workload(name)
        assert wl.kernel().num_regs <= wl.build().num_regs


class TestCharacteristics:
    def test_register_heavy_benchmarks(self):
        for name in ("dwt2d", "myocyte", "hotspot"):
            ck = compile_kernel(make_workload(name).kernel())
            assert max(r.max_live for r in ck.regions) >= 15, name

    def test_compute_dense_benchmarks_have_large_regions(self):
        lud = compile_kernel(make_workload("lud").kernel())
        bfs = compile_kernel(make_workload("bfs").kernel())
        assert lud.mean_insns_per_region() > bfs.mean_insns_per_region()

    def test_soft_definitions_present_in_divergent_benchmarks(self):
        for name in ("streamcluster", "heartwall"):
            ck = compile_kernel(make_workload(name).kernel())
            assert ck.liveness.soft_defs, name

    def test_barrier_benchmarks_isolate_barriers(self):
        from repro.isa import Opcode

        for name in ("backprop", "pathfinder", "srad_v1"):
            ck = compile_kernel(make_workload(name).kernel())
            for region in ck.regions:
                has_bar = any(
                    ck.kernel.insn_at(pc).opcode is Opcode.BAR
                    for pc in range(region.start_pc, region.end_pc)
                )
                if has_bar:
                    assert region.num_insns == 1


@pytest.mark.parametrize("name", ["bfs", "kmeans", "heartwall", "lud"])
class TestExecution:
    def test_runs_under_both_backends(self, name, fast_config):
        wl = make_workload(name)
        ck = compile_kernel(wl.kernel())
        base = run_simulation(fast_config, ck, wl, lambda sm, sh: BaselineRF())
        rl = run_simulation(fast_config, ck, wl,
                            lambda sm, sh: ReglessStorage(ck))
        assert base.finished and rl.finished
        assert base.instructions == rl.instructions
        assert rl.counter("osu_read_miss") == 0
