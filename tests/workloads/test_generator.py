from repro.compiler import analyze_liveness
from repro.isa import KernelBuilder, Opcode
from repro.workloads import (
    compute_chain,
    consume_values,
    divergent_if,
    sfu_block,
    stencil_loads,
    uniform_loop,
    wide_expression,
)


def fresh_builder():
    b = KernelBuilder("frag")
    b.block("entry")
    return b


class TestComputeChain:
    def test_emits_requested_length(self):
        b = fresh_builder()
        compute_chain(b, b.reg(0), 10)
        b.exit()
        k = b.build()
        assert k.num_instructions == 11

    def test_ilp_creates_independent_adjacent_pairs(self):
        b = fresh_builder()
        compute_chain(b, b.reg(0), 12, ilp=2)
        b.exit()
        k = b.build()
        # Consecutive chain instructions write different accumulators, so
        # instruction i+1 never reads instruction i's destination.
        dependent_pairs = 0
        for pc in range(k.num_instructions - 2):
            dst = k.insn_at(pc).reg_dsts
            if dst and dst[0] in k.insn_at(pc + 1).reg_srcs:
                dependent_pairs += 1
        assert dependent_pairs <= 1  # only the final merge

    def test_serial_when_ilp_one(self):
        b = fresh_builder()
        out = compute_chain(b, b.reg(0), 5, ilp=1)
        b.stg(b.reg(0), out)
        b.exit()
        k = b.build()
        assert k.num_instructions == 7


class TestWideExpression:
    def test_peak_liveness_tracks_width(self):
        for width in (4, 12):
            b = fresh_builder()
            out = wide_expression(b, [b.reg(0)], width=width, depth=2)
            b.stg(b.reg(0), out)
            b.exit()
            lv = analyze_liveness(b.build())
            assert lv.max_live() >= width

    def test_reduces_to_single_value(self):
        b = fresh_builder()
        out = wide_expression(b, [b.reg(0)], width=7, depth=1)
        b.stg(b.reg(0), out)
        b.exit()
        lv = analyze_liveness(b.build())
        last_store = b.build().num_instructions  # smoke: builds fine
        assert lv.live_counts()[-2] <= 3


class TestStencilAndConsume:
    def test_stencil_emits_loads(self):
        b = fresh_builder()
        vals = stencil_loads(b, b.reg(0), [0, -1, 1], tag="grid")
        consume_values(b, vals)
        b.exit()
        k = b.build()
        loads = [i for _, i in [(pc, k.insn_at(pc)) for pc in range(k.num_instructions)]
                 if i.opcode is Opcode.LDG]
        assert len(loads) == 3
        assert all(ld.tag == "grid" for ld in loads)

    def test_consume_kills_all_inputs(self):
        b = fresh_builder()
        vals = stencil_loads(b, b.reg(0), [0, 1])
        out = consume_values(b, vals)
        b.stg(b.reg(0), out)
        b.exit()
        lv = analyze_liveness(b.build())
        # At the store, only out + the address register remain live.
        assert lv.live_counts()[-2] <= 3


class TestControlHelpers:
    def test_uniform_loop_shape(self):
        b = fresh_builder()
        header, exit_lbl, i, p = uniform_loop(b, "t")
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        k = b.build()
        assert header in [blk.label for blk in k.blocks]
        assert k.successors(header)  # branches to exit + falls through

    def test_divergent_if_shape(self):
        b = fresh_builder()
        join, p = divergent_if(b, b.reg(0), "cond")
        b.mov(b.fresh(), 1)
        b.block_named(join)
        b.exit()
        k = b.build()
        # The header block ends with a guarded branch to the join label.
        branches = [
            i for _, _, i in k.iter_pcs() if i.opcode is Opcode.BRA
        ]
        assert branches[0].target == join
        assert branches[0].guard is not None

    def test_sfu_block(self):
        b = fresh_builder()
        out = sfu_block(b, b.reg(0), 3)
        b.stg(b.reg(0), out)
        b.exit()
        k = b.build()
        sfu_ops = [i for _, _, i in k.iter_pcs()
                   if i.opcode in (Opcode.RSQ, Opcode.EX2)]
        assert len(sfu_ops) == 3
