"""Public API stability: the names documented in README/docs must exist.

This is the contract test for downstream users: renaming or dropping any
of these is a breaking change and should be a conscious decision.
"""

import importlib

import pytest

PUBLIC_API = {
    "repro": [
        "CompiledKernel", "compile_kernel", "SuiteRunner", "GPUConfig",
        "run_simulation", "Workload", "make_workload", "workload_names",
        "__version__",
    ],
    "repro.isa": [
        "Reg", "Pred", "Imm", "Instruction", "PredGuard", "Opcode",
        "FuncUnit", "BasicBlock", "Kernel", "KernelBuilder", "assemble",
        "disassemble", "AssemblerError", "validate_kernel", "check_kernel",
        "WARP_WIDTH", "REGISTER_BYTES",
    ],
    "repro.compiler": [
        "compile_kernel", "CompiledKernel", "analyze_liveness", "Liveness",
        "find_soft_definitions", "create_regions", "Region", "RegionConfig",
        "region_stats", "annotate_regions", "RegionAnnotations", "Preload",
        "dominator_tree", "postdominator_tree", "DomTree",
        "encode_region_metadata", "metadata_overhead", "allocate_registers",
        "build_interference",
    ],
    "repro.sim": [
        "GPUConfig", "GPU", "SimStats", "SimDeadlock", "run_simulation",
        "EventWheel", "Warp", "StackEntry", "LaneValues", "ValueKind",
        "THREAD_ID", "ZERO", "mix_hash", "Oracle", "LoopExit",
        "DivergentLoopExit", "BernoulliLanes", "BernoulliWarp",
        "AlwaysTaken", "NeverTaken", "LoadBehavior", "FULL_MASK",
        "GTOScheduler", "LRRScheduler", "TwoLevelScheduler",
        "make_scheduler", "Tracer", "TraceEvent", "RegionSpan",
    ],
    "repro.obs": [
        "MetricsRegistry", "MetricScope", "ShardStallTracker", "ISSUED",
        "STALL_REASONS", "check_conservation", "merge_stalls",
        "to_chrome_trace", "validate_chrome_trace", "write_chrome_trace",
    ],
    "repro.mem": [
        "SetAssocCache", "MSHRFile", "Eviction", "MemoryHierarchy",
        "L1RegCache",
    ],
    "repro.regfile": [
        "OperandStorage", "BaselineRF", "RFHStorage", "RFVStorage",
        "assign_levels", "LevelAssignment",
    ],
    "repro.regless": [
        "ReglessStorage", "ReglessConfig", "CapacityManager", "WarpState",
        "OperandStagingUnit", "Bank", "Compressor", "match_pattern",
        "COMPRESS_PATTERNS", "RegisterMapping", "REGS_PER_COMPRESSED_LINE",
    ],
    "repro.energy": [
        "Counters", "EnergyModel", "EnergyParams", "EnergyBreakdown",
        "AreaModel", "AreaBreakdown", "OSU_CAPACITY_SWEEP",
        "BASELINE_RF_ENTRIES",
    ],
    "repro.workloads": [
        "Workload", "RODINIA", "make_workload", "workload_names",
        "compute_chain", "wide_expression", "stencil_loads",
        "consume_values", "uniform_loop", "divergent_if", "sfu_block",
        "default_initial_regs",
    ],
    "repro.harness": [
        "SuiteRunner", "RunResult", "BACKENDS", "EXPERIMENTS", "geomean",
        "fig2_working_set", "fig3_backing_store", "fig5_liveness_seams",
        "fig11_area", "fig12_power", "fig13_pareto", "fig14_rf_energy",
        "fig15_gpu_energy", "fig16_runtime", "fig17_preload_location",
        "fig18_l1_bandwidth", "fig19_region_registers",
        "table2_region_sizes", "energy_breakdown", "validate_claims",
        "render_claims", "Claim", "seed_robustness", "render_robustness",
        "SeedStats", "export_all", "rows_for", "to_csv", "to_json",
        "EXPORTABLE",
    ],
}


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_module_exports(module_name):
    module = importlib.import_module(module_name)
    missing = [n for n in PUBLIC_API[module_name] if not hasattr(module, n)]
    assert not missing, f"{module_name} lost public names: {missing}"


@pytest.mark.parametrize("module_name", sorted(PUBLIC_API))
def test_all_lists_are_importable(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version_is_semver():
    import repro

    parts = repro.__version__.split(".")
    assert len(parts) == 3 and all(p.isdigit() for p in parts)
