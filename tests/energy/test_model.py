import pytest

from repro.energy import BASELINE_RF_ENTRIES, EnergyModel, EnergyParams


@pytest.fixture
def model():
    return EnergyModel()


def counters_for(reads=1000, writes=500, backend="baseline"):
    prefix = {"baseline": "rf", "rfv": "rfv"}.get(backend)
    c = {"insn_issued": 2000.0}
    if prefix:
        c[f"{prefix}_read"] = float(reads)
        c[f"{prefix}_write"] = float(writes)
    return c


class TestAccessScaling:
    def test_baseline_access_is_unit(self):
        p = EnergyParams()
        assert p.access_energy(BASELINE_RF_ENTRIES) == pytest.approx(1.0)

    def test_smaller_is_cheaper(self):
        p = EnergyParams()
        assert p.access_energy(512) < p.access_energy(1024) < p.access_energy(2048)

    def test_floor_bounds_tiny_structures(self):
        p = EnergyParams()
        assert p.access_energy(1) >= p.access_floor

    def test_roughly_linear(self):
        p = EnergyParams()
        # Figure 12's shape: power tracks capacity nearly linearly.
        assert p.access_energy(512) == pytest.approx(
            p.access_floor + (1 - p.access_floor) * 0.25
        )


class TestRFEnergy:
    def test_backend_ordering_at_same_activity(self, model):
        cycles = 10_000
        base = model.rf_energy(counters_for(backend="baseline"), cycles, "baseline")
        rfv = model.rf_energy(counters_for(backend="rfv"), cycles, "rfv")
        osu = model.rf_energy(
            {"osu_read": 1000.0, "osu_write": 500.0, "osu_tag": 200.0},
            cycles,
            "regless",
        )
        assert osu < rfv < base

    def test_regless_scales_with_capacity(self, model):
        counters = {"osu_read": 1000.0, "osu_write": 500.0}
        small = model.rf_energy(counters, 1000, "regless", osu_entries=128)
        big = model.rf_energy(counters, 1000, "regless", osu_entries=1024)
        assert small < big

    def test_rfh_charges_small_structures_less(self, model):
        all_mrf = {"rf_read": 1000.0, "rf_write": 500.0}
        all_small = {"rfh_lrf_read": 1000.0, "rfh_lrf_write": 500.0}
        e_mrf = model.rf_energy(all_mrf, 1000, "rfh")
        e_small = model.rf_energy(all_small, 1000, "rfh")
        assert e_small < e_mrf

    def test_none_backend_is_free(self, model):
        assert model.rf_energy({}, 1000, "none") == 0.0

    def test_unknown_backend_rejected(self, model):
        with pytest.raises(ValueError):
            model.rf_energy({}, 1000, "mystery")


class TestGPUEnergy:
    def test_breakdown_sums(self, model):
        br = model.gpu_energy(counters_for(), 5000, "baseline")
        assert br.total == pytest.approx(
            br.rf + br.exec + br.memory + br.static + br.metadata
        )

    def test_rf_share_near_paper_bound(self):
        """With typical per-instruction access mix, the baseline RF is in
        the neighbourhood of the paper's 16.7% of GPU energy."""
        model = EnergyModel()
        insns = 10_000
        counters = {
            "insn_issued": float(insns),
            "rf_read": insns * 1.7,
            "rf_write": insns * 0.6,
            "l2_access": insns * 0.15,
            "dram_read": insns * 0.1,
        }
        br = model.gpu_energy(counters, int(insns / 1.8), "baseline")
        share = br.rf / br.total
        assert 0.12 < share < 0.22

    def test_metadata_charged(self, model):
        with_meta = model.gpu_energy(
            {"insn_issued": 100.0, "metadata_issue": 50.0}, 100, "regless"
        )
        without = model.gpu_energy({"insn_issued": 100.0}, 100, "regless")
        assert with_meta.total > without.total

    def test_memory_traffic_charged(self, model):
        br = model.gpu_energy(
            {"l1_access": 10.0, "l2_access": 10.0, "dram_read": 10.0}, 10,
            "baseline",
        )
        assert br.memory > 0
