import pytest

from repro.energy import AreaModel, OSU_CAPACITY_SWEEP


@pytest.fixture
def model():
    return AreaModel()


class TestArea:
    def test_monotone_in_capacity(self, model):
        totals = [model.area(n).total for n in OSU_CAPACITY_SWEEP]
        assert totals == sorted(totals)

    def test_design_point_matches_paper_quarter(self, model):
        """512 entries is ~0.3x the baseline RF area (Figure 11)."""
        assert 0.25 < model.area(512).total < 0.35

    def test_full_capacity_slightly_over_unity(self, model):
        total = model.area(2048).total
        assert 1.0 < total < 1.1

    def test_compressor_constant(self, model):
        assert model.area(128).compressor == model.area(2048).compressor

    def test_breakdown_sums(self, model):
        a = model.area(384)
        assert a.total == pytest.approx(a.storage + a.logic + a.compressor)
        assert set(a.as_dict()) == {"storage", "logic", "compressor", "total"}

    def test_sweep_covers_requested_capacities(self, model):
        sweep = model.sweep((128, 512))
        assert set(sweep) == {128, 512}


class TestPower:
    def test_monotone_in_capacity(self, model):
        powers = [model.power(n)["total"] for n in OSU_CAPACITY_SWEEP]
        assert powers == sorted(powers)

    def test_design_point_fraction(self, model):
        """512 entries draws roughly a third of the baseline RF power
        (Figure 12)."""
        assert 0.2 < model.power(512)["total"] < 0.45

    def test_activity_scales_dynamic(self, model):
        quiet = model.power(512, accesses_per_cycle=0.5)["total"]
        busy = model.power(512, accesses_per_cycle=4.0)["total"]
        assert quiet != busy

    def test_components_present(self, model):
        p = model.power(256)
        assert set(p) == {"osu", "compressor", "total"}
        assert p["total"] == pytest.approx(p["osu"] + p["compressor"])
