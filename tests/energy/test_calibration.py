"""Calibration guards: the energy constants must keep the paper's anchors.

If someone retunes ``EnergyParams``, these tests pin the three calibration
points the reproduction depends on (EXPERIMENTS.md, "Reading guide").
"""

import pytest

from repro.energy import (
    AreaModel,
    BASELINE_RF_ENTRIES,
    EnergyModel,
    EnergyParams,
)
from repro.harness import SuiteRunner
from repro.sim import GPUConfig


class TestAnchors:
    def test_anchor_one_rf_share(self):
        """Baseline RF ~16.7% of GPU energy on a real run mix."""
        runner = SuiteRunner(
            config=GPUConfig(warps_per_sm=16, schedulers_per_sm=2,
                             cta_size_warps=8)
        )
        shares = []
        for name in ("bfs", "hotspot", "kmeans", "streamcluster"):
            res = runner.run(name, "baseline")
            shares.append(res.rf_energy / res.gpu_energy)
        mean = sum(shares) / len(shares)
        assert 0.10 < mean < 0.24

    def test_anchor_two_area_design_point(self):
        """RegLess-512 is ~0.3x baseline RF area (paper Figure 11)."""
        assert 0.25 < AreaModel().area(512).total < 0.35

    def test_anchor_three_access_scaling(self):
        """Per-access energy at quarter capacity is ~quarter cost
        (the paper's placed-and-routed Figure 12 shape)."""
        p = EnergyParams()
        ratio = p.access_energy(512) / p.access_energy(BASELINE_RF_ENTRIES)
        assert 0.20 < ratio < 0.35


class TestRelativeOrderings:
    def test_rfv_half_size_half_cost(self):
        p = EnergyParams()
        assert p.access_energy(1024) == pytest.approx(
            p.access_floor + (1 - p.access_floor) * 0.5
        )

    def test_static_power_linear(self):
        p = EnergyParams()
        assert p.static_power(1024) == pytest.approx(p.static_power(2048) / 2)

    def test_custom_params_flow_through(self):
        hot = EnergyModel(EnergyParams(rf_static_per_cycle=10.0))
        cold = EnergyModel(EnergyParams(rf_static_per_cycle=0.0))
        counters = {"rf_read": 10.0}
        assert hot.rf_energy(counters, 1000, "baseline") > cold.rf_energy(
            counters, 1000, "baseline"
        )

    def test_rfv_entries_parameter(self):
        model = EnergyModel()
        counters = {"rfv_read": 100.0}
        small = model.rf_energy(counters, 0, "rfv", rfv_entries=512)
        large = model.rf_energy(counters, 0, "rfv", rfv_entries=1024)
        assert small < large
