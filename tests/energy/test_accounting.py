from repro.energy import Counters


class TestCounters:
    def test_default_zero(self):
        c = Counters()
        assert c.get("anything") == 0.0
        assert c["anything"] == 0.0

    def test_increment(self):
        c = Counters()
        c.inc("x")
        c.inc("x", 2.5)
        assert c.get("x") == 3.5

    def test_contains(self):
        c = Counters()
        assert "x" not in c
        c.inc("x")
        assert "x" in c

    def test_merge(self):
        a, b = Counters(), Counters()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_as_dict_snapshot(self):
        c = Counters()
        c.inc("x")
        d = c.as_dict()
        c.inc("x")
        assert d["x"] == 1.0

    def test_items_sorted(self):
        c = Counters()
        c.inc("b")
        c.inc("a")
        assert [k for k, _ in c.items()] == ["a", "b"]

    def test_repr(self):
        c = Counters()
        c.inc("reads", 7)
        assert "reads=7" in repr(c)
