"""Memory-system corner cases not covered by the main mem tests."""

from repro.energy import Counters
from repro.mem import L1RegCache, MemoryHierarchy
from repro.sim import EventWheel, GPUConfig


def make(**overrides):
    cfg = GPUConfig(**overrides)
    counters = Counters()
    wheel = EventWheel()
    hier = MemoryHierarchy(cfg, counters, wheel)
    l1 = L1RegCache(0, cfg, counters, wheel, hier)
    return l1, hier, counters, wheel, cfg


def pump(l1, hier, wheel, cycles):
    for _ in range(cycles):
        wheel.tick()
        hier.cycle()
        l1.begin_cycle()


class TestMSHRPressure:
    def test_read_rejected_when_mshrs_full(self):
        l1, hier, counters, wheel, cfg = make(l1_mshrs=2)
        accepted = 0
        for i in range(4):
            l1.begin_cycle()
            if l1.read(0x10000 + i * 4096, lambda src: None):
                accepted += 1
        assert accepted == 2  # two distinct-line misses fill both MSHRs

    def test_merge_does_not_consume_extra_mshr(self):
        l1, hier, counters, wheel, cfg = make(l1_mshrs=1)
        l1.begin_cycle()
        assert l1.read(0x10000, lambda src: None)
        l1.begin_cycle()
        assert l1.read(0x10000, lambda src: None)  # merged
        l1.begin_cycle()
        assert not l1.read(0x20000, lambda src: None)  # full

    def test_mshrs_drain_after_fill(self):
        l1, hier, counters, wheel, cfg = make(l1_mshrs=1)
        done = []
        l1.begin_cycle()
        l1.read(0x10000, lambda src: done.append(src))
        pump(l1, hier, wheel, cfg.l2_latency + cfg.dram_latency + 10)
        assert done
        l1.begin_cycle()
        assert l1.read(0x20000, lambda src: done.append(src))


class TestWriteReadInteraction:
    def test_read_after_write_hits(self):
        l1, hier, counters, wheel, cfg = make()
        results = []
        l1.begin_cycle()
        l1.write(0x7000)
        l1.begin_cycle()
        l1.read(0x7000, lambda src: results.append(src))
        pump(l1, hier, wheel, cfg.l1_latency + 5)
        assert results == ["l1"]

    def test_invalidate_then_read_misses(self):
        l1, hier, counters, wheel, cfg = make()
        results = []
        l1.begin_cycle()
        l1.write(0x7000)
        l1.begin_cycle()
        l1.invalidate(0x7000)
        l1.begin_cycle()
        l1.read(0x7000, lambda src: results.append(src))
        pump(l1, hier, wheel, cfg.l2_latency + cfg.dram_latency + 10)
        assert results == ["l2dram"]


class TestHierarchyEdge:
    def test_zero_latency_callbackless_write(self):
        _, hier, counters, wheel, _ = make()
        hier.request(0, 0x100, True, None)
        wheel.tick()
        hier.cycle()
        assert counters.get("l2_access") == 1

    def test_kind_tags_counted_separately(self):
        l1, hier, counters, wheel, cfg = make()
        hier.request(0, 0x100, False, None, kind="data")
        l1.begin_cycle()
        l1.read(0x200, lambda src: None)  # reg kind
        pump(l1, hier, wheel, 5)
        assert counters.get("icnt_data") == 1
        assert counters.get("icnt_reg") == 1

    def test_bursty_writes_eventually_complete(self):
        _, hier, counters, wheel, cfg = make(dram_lines_per_cycle=0.5,
                                             l2_kb=2, l2_assoc=2)
        for i in range(30):
            hier.request(0, i * 128, True, None)
        pump_cycles = 0
        while hier.busy and pump_cycles < 500:
            wheel.tick()
            hier.cycle()
            pump_cycles += 1
        assert not hier.busy
