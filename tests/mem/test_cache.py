import pytest
from hypothesis import given, settings, strategies as st

from repro.mem import MSHRFile, SetAssocCache


def make(lines=8, assoc=2, line=128):
    return SetAssocCache(lines, assoc, line)


class TestLookupAndFill:
    def test_miss_then_hit(self):
        c = make()
        assert not c.lookup(0)
        c.fill(0)
        assert c.lookup(0)

    def test_alignment(self):
        c = make()
        c.fill(130)  # line 128
        assert c.lookup(128)
        assert c.lookup(255)
        assert not c.lookup(256)

    def test_lru_eviction(self):
        c = make(lines=4, assoc=2)  # 2 sets
        # Same set: line addresses differing by n_sets * line.
        a, b, d = 0, 2 * 128, 4 * 128
        c.fill(a)
        c.fill(b)
        c.lookup(a)  # a most-recent
        victim = c.fill(d)
        assert victim is not None
        assert victim.addr == b

    def test_fill_existing_keeps_occupancy(self):
        c = make()
        c.fill(0)
        c.fill(0)
        assert c.occupancy == 1

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            SetAssocCache(7, 2, 128)


class TestDirty:
    def test_mark_dirty(self):
        c = make()
        c.fill(0)
        assert not c.is_dirty(0)
        assert c.mark_dirty(0)
        assert c.is_dirty(0)

    def test_mark_dirty_missing_line(self):
        c = make()
        assert not c.mark_dirty(0)

    def test_dirty_eviction_reported(self):
        c = make(lines=2, assoc=2)
        c.fill(0, dirty=True)
        c.fill(2 * 128)
        victim = c.fill(4 * 128)
        assert victim is not None and victim.addr == 0 and victim.dirty

    def test_fill_dirty_merges(self):
        c = make()
        c.fill(0)
        c.fill(0, dirty=True)
        assert c.is_dirty(0)


class TestInvalidate:
    def test_invalidate_present(self):
        c = make()
        c.fill(0, dirty=True)
        assert c.invalidate(0)
        assert not c.lookup(0)

    def test_invalidate_absent(self):
        c = make()
        assert not c.invalidate(0)


class TestMSHR:
    def test_primary_and_merged(self):
        m = MSHRFile(2)
        assert m.allocate(0, "cb1") is True
        assert m.allocate(0, "cb2") is False
        assert m.complete(0) == ["cb1", "cb2"]
        assert m.occupancy == 0

    def test_capacity(self):
        m = MSHRFile(1)
        m.allocate(0, "a")
        assert not m.can_allocate(128)
        assert m.can_allocate(0)  # merge always allowed
        with pytest.raises(RuntimeError):
            m.allocate(128, "b")

    def test_complete_unknown(self):
        m = MSHRFile(2)
        assert m.complete(999) == []

    def test_contains(self):
        m = MSHRFile(2)
        m.allocate(0, "a")
        assert 0 in m and 128 not in m


class LRUReference:
    """Simple reference model for differential testing."""

    def __init__(self, n_lines, assoc, line):
        self.assoc = assoc
        self.line = line
        self.n_sets = n_lines // assoc
        self.sets = [[] for _ in range(self.n_sets)]

    def access(self, addr, fill):
        addr -= addr % self.line
        s = self.sets[(addr // self.line) % self.n_sets]
        hit = addr in s
        if hit:
            s.remove(addr)
            s.append(addr)
        elif fill:
            if len(s) >= self.assoc:
                s.pop(0)
            s.append(addr)
        return hit


@given(st.lists(st.tuples(st.integers(0, 40), st.booleans()), max_size=200))
@settings(max_examples=50, deadline=None)
def test_lru_matches_reference_model(ops):
    cache = make(lines=8, assoc=2)
    ref = LRUReference(8, 2, 128)
    for line_no, do_fill in ops:
        addr = line_no * 128
        hit_c = cache.lookup(addr)
        hit_r = ref.access(addr, fill=False)
        assert hit_c == hit_r
        if do_fill and not hit_c:
            cache.fill(addr)
            ref.access(addr, fill=True)
