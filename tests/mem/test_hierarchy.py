from repro.energy import Counters
from repro.mem import MemoryHierarchy
from repro.sim import EventWheel, GPUConfig


def make(**overrides):
    cfg = GPUConfig(**overrides)
    counters = Counters()
    wheel = EventWheel()
    return MemoryHierarchy(cfg, counters, wheel), counters, wheel, cfg


def pump(hier, wheel, cycles):
    for _ in range(cycles):
        wheel.tick()
        hier.cycle()


class TestReadTiming:
    def test_l2_miss_costs_dram_latency(self):
        hier, counters, wheel, cfg = make()
        done = []
        hier.request(0, 0x1000, False, lambda: done.append(wheel.now))
        pump(hier, wheel, cfg.l2_latency + cfg.dram_latency + 5)
        assert len(done) == 1
        assert done[0] >= cfg.l2_latency + cfg.dram_latency
        assert counters.get("l2_miss") == 1
        assert counters.get("dram_read") == 1

    def test_second_access_hits_l2(self):
        hier, counters, wheel, cfg = make()
        done = []
        hier.request(0, 0x1000, False, lambda: done.append(("a", wheel.now)))
        pump(hier, wheel, cfg.l2_latency + cfg.dram_latency + 5)
        start = wheel.now
        hier.request(0, 0x1000, False, lambda: done.append(("b", wheel.now)))
        pump(hier, wheel, cfg.l2_latency + 5)
        assert done[1][1] - start <= cfg.l2_latency + 3
        assert counters.get("l2_hit") == 1


class TestWrites:
    def test_write_is_posted(self):
        hier, counters, wheel, cfg = make()
        done = []
        hier.request(0, 0x2000, True, lambda: done.append(wheel.now))
        pump(hier, wheel, 5)
        assert done  # completes quickly
        assert counters.get("l2_access") == 1

    def test_dirty_eviction_writes_dram(self):
        hier, counters, wheel, cfg = make(l2_kb=2, l2_assoc=2)  # tiny L2: 16 lines
        for i in range(40):
            hier.request(0, i * 128, True, None)
        pump(hier, wheel, 120)
        assert counters.get("dram_write") > 0


class TestBandwidth:
    def test_dram_token_bucket_throttles(self):
        hier, counters, wheel, cfg = make(dram_lines_per_cycle=0.25)
        done = []
        for i in range(8):
            hier.request(0, 0x100000 + i * 4096, False,
                         lambda i=i: done.append((i, wheel.now)))
        pump(hier, wheel, 16)
        # At 0.25 lines/cycle only ~4 reads can have been *accepted*.
        assert counters.get("dram_read") <= 5

    def test_icnt_rate_limits_acceptance(self):
        hier, counters, wheel, cfg = make(icnt_per_sm=0.5)
        for i in range(10):
            hier.request(0, i * 128, True, None)
        pump(hier, wheel, 10)
        assert counters.get("l2_access") <= 7  # ~0.5/cycle plus burst credit

    def test_busy_flag(self):
        hier, _, wheel, _ = make(icnt_per_sm=0.1)
        hier.request(0, 0, True, None)
        assert hier.busy
        pump(hier, wheel, 30)
        assert not hier.busy


def test_per_sm_queues_independent():
    hier, counters, wheel, cfg = make(n_sms=2)
    hier.request(0, 0, True, None)
    hier.request(1, 128, True, None)
    assert hier.pending_requests(0) == 1
    assert hier.pending_requests(1) == 1
    pump(hier, wheel, 3)
    assert hier.pending_requests(0) == 0
    assert hier.pending_requests(1) == 0
