from repro.energy import Counters
from repro.mem import L1RegCache, MemoryHierarchy
from repro.sim import EventWheel, GPUConfig


def make(**overrides):
    cfg = GPUConfig(**overrides)
    counters = Counters()
    wheel = EventWheel()
    hier = MemoryHierarchy(cfg, counters, wheel)
    l1 = L1RegCache(0, cfg, counters, wheel, hier)
    return l1, hier, counters, wheel, cfg


def pump(l1, hier, wheel, cycles):
    for _ in range(cycles):
        wheel.tick()
        hier.cycle()
        l1.begin_cycle()


class TestPort:
    def test_one_request_per_cycle(self):
        l1, hier, counters, wheel, _ = make()
        l1.begin_cycle()
        assert l1.write(0)
        assert not l1.write(128)  # port used
        l1.begin_cycle()
        assert l1.write(128)

    def test_rejected_request_not_counted(self):
        l1, hier, counters, wheel, _ = make()
        l1.begin_cycle()
        l1.write(0)
        l1.write(128)
        assert counters.get("l1_access") == 1


class TestReads:
    def test_miss_goes_to_l2(self):
        l1, hier, counters, wheel, cfg = make()
        results = []
        l1.begin_cycle()
        assert l1.read(0x3000, lambda src: results.append(src))
        pump(l1, hier, wheel, cfg.l2_latency + cfg.dram_latency + 10)
        assert results == ["l2dram"]
        assert counters.get("l1_miss") == 1

    def test_hit_after_fill(self):
        l1, hier, counters, wheel, cfg = make()
        results = []
        l1.begin_cycle()
        l1.read(0x3000, lambda src: results.append(src))
        pump(l1, hier, wheel, cfg.l2_latency + cfg.dram_latency + 10)
        l1.begin_cycle()
        l1.read(0x3000, lambda src: results.append(src))
        pump(l1, hier, wheel, cfg.l1_latency + 5)
        assert results == ["l2dram", "l1"]
        assert counters.get("l1_hit") == 1

    def test_mshr_merging(self):
        l1, hier, counters, wheel, cfg = make()
        results = []
        l1.begin_cycle()
        l1.read(0x3000, lambda src: results.append("a"))
        l1.begin_cycle()
        l1.read(0x3000, lambda src: results.append("b"))
        pump(l1, hier, wheel, cfg.l2_latency + cfg.dram_latency + 10)
        assert sorted(results) == ["a", "b"]
        # Only one request went downstream.
        assert counters.get("l2_reg_access") == 1


class TestWrites:
    def test_write_allocates_without_fetch(self):
        l1, hier, counters, wheel, _ = make()
        l1.begin_cycle()
        assert l1.write(0x4000)
        assert l1.contains(0x4000)
        assert counters.get("l2_access") == 0  # no fetch

    def test_dirty_victim_written_back(self):
        l1, hier, counters, wheel, _ = make(l1_kb=1, l1_assoc=2)  # 8 lines
        for i in range(16):
            l1.begin_cycle()
            l1.write(i * 128)
        pump(l1, hier, wheel, 10)
        assert counters.get("l1_writeback") > 0


class TestInvalidate:
    def test_invalidate_drops_line(self):
        l1, hier, counters, wheel, _ = make()
        l1.begin_cycle()
        l1.write(0x5000)
        l1.begin_cycle()
        assert l1.invalidate(0x5000)
        assert not l1.contains(0x5000)
        # No writeback traffic for a dead line.
        assert counters.get("l1_writeback") == 0

    def test_invalidate_needs_port(self):
        l1, hier, counters, wheel, _ = make()
        l1.begin_cycle()
        l1.write(0)
        assert not l1.invalidate(0)
