"""Ablations of the design decisions called out in DESIGN.md section 6.

Each ablation toggles one mechanism and measures geomean run time across a
representative benchmark mix (one memory-bound, one control-heavy, two
compute/register-heavy, one balanced).
"""

import pytest
from conftest import run_once

from repro.compiler import RegionConfig, compile_kernel
from repro.harness import SuiteRunner, geomean
from repro.regless import ReglessConfig, ReglessStorage
from repro.sim import GPUConfig, run_simulation
from repro.workloads import make_workload

MIX = ("bfs", "heartwall", "hotspot", "lud", "kmeans")


def run_mix(region_config=None, regless_config=None):
    ratios = []
    base_cfg = GPUConfig()
    for name in MIX:
        wl = make_workload(name)
        ck = compile_kernel(wl.kernel(), region_config)
        rcfg = regless_config or ReglessConfig()
        from repro.regfile import BaselineRF

        base = run_simulation(base_cfg, ck, wl, lambda sm, sh: BaselineRF())
        rl = run_simulation(base_cfg, ck, wl,
                            lambda sm, sh: ReglessStorage(ck, rcfg))
        ratios.append(rl.cycles / base.cycles)
    return geomean(ratios)


def test_ablation_seam_splitting(benchmark):
    """Splitting at liveness seams vs at the latest valid point."""
    def experiment():
        seams = run_mix(RegionConfig(split_at_seams=True))
        naive = run_mix(RegionConfig(split_at_seams=False))
        return seams, naive

    seams, naive = run_once(benchmark, experiment)
    print(f"\nAblation seam-splitting: seams={seams:.3f} naive={naive:.3f}")
    benchmark.extra_info["seams"] = seams
    benchmark.extra_info["naive"] = naive
    # Seam splitting never hurts materially.
    assert seams <= naive * 1.05


def test_ablation_load_use_split(benchmark):
    """Forbidding a global load and its use in one region (IsValid rule)."""
    def experiment():
        split = run_mix(RegionConfig(split_load_use=True))
        fused = run_mix(RegionConfig(split_load_use=False))
        return split, fused

    split, fused = run_once(benchmark, experiment)
    print(f"\nAblation load/use split: split={split:.3f} fused={fused:.3f}")
    benchmark.extra_info["split"] = split
    benchmark.extra_info["fused"] = fused
    assert split <= fused * 1.10


def test_ablation_warp_stack(benchmark):
    """Most-recently-drained (LIFO) activation vs FIFO."""
    def experiment():
        lifo = run_mix(regless_config=ReglessConfig(warp_stack_lifo=True))
        fifo = run_mix(regless_config=ReglessConfig(warp_stack_lifo=False))
        return lifo, fifo

    lifo, fifo = run_once(benchmark, experiment)
    print(f"\nAblation warp stack: lifo={lifo:.3f} fifo={fifo:.3f}")
    benchmark.extra_info["lifo"] = lifo
    benchmark.extra_info["fifo"] = fifo
    assert lifo <= fifo * 1.10


def test_ablation_eviction_order(benchmark):
    """free -> clean -> dirty eviction priority vs ignoring cleanliness."""
    def experiment():
        ordered = run_mix(regless_config=ReglessConfig(ordered_eviction=True))
        unordered = run_mix(regless_config=ReglessConfig(ordered_eviction=False))
        return ordered, unordered

    ordered, unordered = run_once(benchmark, experiment)
    print(f"\nAblation eviction: ordered={ordered:.3f} unordered={unordered:.3f}")
    benchmark.extra_info["ordered"] = ordered
    benchmark.extra_info["unordered"] = unordered
    assert ordered <= unordered * 1.05


def test_ablation_compressor(benchmark):
    """The pattern compressor on vs off (also part of Figure 16)."""
    def experiment():
        on = run_mix(regless_config=ReglessConfig(compressor_enabled=True))
        off = run_mix(regless_config=ReglessConfig(compressor_enabled=False))
        return on, off

    on, off = run_once(benchmark, experiment)
    print(f"\nAblation compressor: on={on:.3f} off={off:.3f}")
    benchmark.extra_info["compressor_on"] = on
    benchmark.extra_info["compressor_off"] = off
    assert on <= off * 1.02
