"""Figure 3: backing-store accesses per 100 cycles during hotspot.

Paper shape: the baseline hits its register file hundreds of times per 100
cycles; the RF hierarchy filters most of that; RegLess makes almost no
backing-store (L1) accesses — on average 0.9% of preloads.
"""

from conftest import run_once

from repro.harness import fig3_backing_store
from repro.harness.report import render_fig3


def test_fig03_backing_store(benchmark, runner):
    series = run_once(benchmark, lambda: fig3_backing_store(runner, "hotspot"))
    print()
    print(render_fig3(series))

    base = sum(series.baseline)
    rfh = sum(series.rfh)
    regless = sum(series.regless)
    benchmark.extra_info["baseline_accesses"] = base
    benchmark.extra_info["rfh_accesses"] = rfh
    benchmark.extra_info["regless_accesses"] = regless

    # Ordering of the three series matches the paper.
    assert regless < rfh < base
    # RegLess accesses the backing store orders of magnitude less often.
    assert regless < base * 0.1
