"""Figure 11: area of RegLess configurations, normalized to the baseline RF.

Paper shape: area scales with capacity; the 512-entry design point is about
0.3x of the 2048-entry register file, and a 2048-entry RegLess is slightly
larger than the baseline (tags + compressor).
"""

from conftest import run_once

from repro.harness import fig11_area
from repro.harness.report import render_fig11


def test_fig11_area(benchmark):
    data = run_once(benchmark, fig11_area)
    print()
    print(render_fig11(data))

    benchmark.extra_info["area_512"] = data[512]["total"]
    benchmark.extra_info["area_2048"] = data[2048]["total"]

    assert 0.25 < data[512]["total"] < 0.35
    assert data[2048]["total"] > 1.0
    totals = [data[c]["total"] for c in sorted(data)]
    assert totals == sorted(totals)
