"""Table 2: average static instructions and dynamic cycles per region.

Paper shape: compute-dense kernels (lud, nw, particle_filter) have the
largest regions; memory/control-bound kernels (bfs, heartwall,
streamcluster) the smallest; dynamic cycles per region vary by orders of
magnitude across the suite.
"""

from conftest import run_once

from repro.harness import table2_region_sizes
from repro.harness.report import render_table2


def test_table2_region_sizes(benchmark, runner, names):
    data = run_once(benchmark, lambda: table2_region_sizes(runner, names))
    print()
    print(render_table2(data))

    mean_insns = sum(r["insns"] for r in data.values()) / len(data)
    benchmark.extra_info["mean_insns_per_region"] = mean_insns

    assert 2.0 < mean_insns < 25.0
    if "lud" in data and "bfs" in data:
        assert data["lud"]["insns"] > data["bfs"]["insns"]
    if "lud" in data and "heartwall" in data:
        assert data["lud"]["insns"] > data["heartwall"]["insns"]
