"""Shared state for the figure-regeneration benchmarks.

All benchmarks share one session-scoped :class:`SuiteRunner`, so simulation
runs are memoized across figures (Figure 14, 15 and 16 all reuse the same
grid of runs).  Each benchmark prints the regenerated table — run with
``pytest benchmarks/ --benchmark-only -s`` to see them — and records its
headline numbers in ``benchmark.extra_info``.

Set ``REPRO_BENCH_SUBSET=bfs,nw,...`` to restrict the benchmark set while
iterating; the default regenerates every figure over the full 21-benchmark
suite.  The session runner warms the common (benchmark x backend) grid
through :meth:`SuiteRunner.run_grid` first, so the cold part of a session
fans out over ``REPRO_JOBS`` workers (and later sessions hit the
persistent result cache).
"""

import os

import pytest

from repro.harness import SuiteRunner
from repro.workloads import workload_names


def bench_names():
    subset = os.environ.get("REPRO_BENCH_SUBSET")
    if subset:
        return [n.strip() for n in subset.split(",") if n.strip()]
    return workload_names()


@pytest.fixture(scope="session")
def runner():
    r = SuiteRunner()
    # Every figure draws on this grid; prefetching it in parallel up front
    # makes the per-figure benchmarks measure mostly render/aggregate time.
    r.prefetch(
        bench_names(),
        backends=("baseline", "rfh", "rfv", "regless", "regless-nc"),
    )
    return r


@pytest.fixture(scope="session")
def names():
    return bench_names()


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
