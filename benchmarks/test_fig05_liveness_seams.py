"""Figure 5: live registers per static instruction in particle_filter.

Paper shape: liveness rises while wide expressions are computed and
collapses at reductions — the low points are the natural region seams.
"""

from conftest import run_once

from repro.harness import fig5_liveness_seams
from repro.harness.report import render_fig5


def test_fig05_liveness_seams(benchmark, runner):
    counts = run_once(benchmark, lambda: fig5_liveness_seams(runner))
    print()
    print(render_fig5(counts, width=50))

    benchmark.extra_info["peak_live"] = max(counts)
    benchmark.extra_info["min_live"] = min(counts)

    # Clear peaks and seams exist (the sawtooth of the paper's figure).
    assert max(counts) >= 2 * max(1, min(counts))
    # There are multiple local minima (seams), not one monotone ramp.
    dips = sum(
        1
        for i in range(1, len(counts) - 1)
        if counts[i] < counts[i - 1] and counts[i] <= counts[i + 1]
    )
    assert dips >= 3
