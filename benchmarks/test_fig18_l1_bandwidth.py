"""Figure 18: RegLess L1 requests per cycle (preloads/stores/invalidations).

Paper shape: on average fewer than 0.02 of the single L1 request/cycle is
consumed by RegLess; benchmarks with no OSU misses consume none.
"""

from conftest import run_once

from repro.harness import fig18_l1_bandwidth
from repro.harness.report import render_fig18


def test_fig18_l1_bandwidth(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig18_l1_bandwidth(runner, names))
    print()
    print(render_fig18(data))

    totals = {n: sum(row.values()) for n, row in data.items()}
    benchmark.extra_info["mean_req_per_cycle"] = sum(totals.values()) / len(totals)
    benchmark.extra_info["max_req_per_cycle"] = max(totals.values())

    # Far below the 1 request/cycle L1 limit on average.
    assert sum(totals.values()) / len(totals) < 0.15
    # Every benchmark leaves most of the L1 port to (bypassed) data.
    assert max(totals.values()) < 0.8
