"""Figure 15: total GPU energy, including the "No RF" upper bound.

Paper numbers: RegLess saves 11% of total GPU energy against a 16.7% upper
bound; RFV saves 3.7% and RFH 2.9%.  Expected shape: RegLess saves the
most and approaches the bound; all designs stay above it.
"""

from conftest import run_once

from repro.harness import fig15_gpu_energy
from repro.harness.report import render_fig15


def test_fig15_gpu_energy(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig15_gpu_energy(runner, names))
    print()
    print(render_fig15(data))

    means = {
        key: sum(row[key] for row in data.values()) / len(data)
        for key in ("no_rf", "rfh", "rfv", "regless")
    }
    for key, v in means.items():
        benchmark.extra_info[f"gpu_energy_{key}"] = v

    # The No-RF bound is ~16.7% below baseline (paper Figure 15).
    assert 0.78 < means["no_rf"] < 0.88
    # RegLess saves the most total GPU energy and respects the bound.
    assert means["no_rf"] <= means["regless"] < means["rfv"]
    assert means["regless"] < means["rfh"]
    assert means["regless"] < 0.93  # >7% total GPU savings
