"""Figure 17: where preloaded registers are found.

Paper numbers: on average only 0.9% of preloads reach the L1 and 0.013%
go to L2/DRAM; everything else is served by the OSU or the compressor.
"""

from conftest import run_once

from repro.harness import fig17_preload_location
from repro.harness.report import render_fig17


def test_fig17_preload_location(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig17_preload_location(runner, names))
    print()
    print(render_fig17(data))

    mean = {
        k: sum(row[k] for row in data.values()) / len(data)
        for k in ("osu", "compressor", "l1", "l2dram")
    }
    for k, v in mean.items():
        benchmark.extra_info[f"preload_{k}"] = v

    # The overwhelming majority of preloads never touch the memory system.
    assert mean["osu"] + mean["compressor"] > 0.85
    assert mean["l1"] < 0.10
    assert mean["l2dram"] < 0.05
