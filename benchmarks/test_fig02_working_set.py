"""Figure 2: register working set per 100-cycle window, GTO vs two-level.

Paper shape: for most applications the window working set is 10% or less of
the baseline register file, and the two-level scheduler shrinks it further
by concentrating accesses on the active pool.
"""

from conftest import run_once

from repro.harness import fig2_working_set, geomean
from repro.harness.report import render_fig2


def test_fig02_working_set(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig2_working_set(runner, names))
    print()
    print(render_fig2(data))

    gto_kb = [g for g, _ in data.values()]
    two_kb = [t for _, t in data.values()]
    benchmark.extra_info["mean_gto_kb"] = sum(gto_kb) / len(gto_kb)
    benchmark.extra_info["mean_two_level_kb"] = sum(two_kb) / len(two_kb)

    # Working sets are a small fraction of the 256 KB per-SM register file.
    assert max(gto_kb) < 256
    # The two-level scheduler reduces the mean working set (paper Figure 2).
    assert geomean(two_kb) <= geomean(gto_kb) * 1.05
