"""Figure 16: run time normalized to the baseline with a full register file.

Paper shape: no average performance loss for RegLess-512 (geomean ~1.0)
with a handful of benchmarks over 5% in either direction; removing the
compressor costs performance; RFH/RFV pay for their two-level scheduler.
"""

from conftest import run_once

from repro.harness import fig16_runtime
from repro.harness.report import render_fig16


def test_fig16_runtime(benchmark, runner, names):
    result = run_once(benchmark, lambda: fig16_runtime(runner, names))
    print()
    print(render_fig16(result))

    benchmark.extra_info["geomean_regless"] = result.geomean_regless
    benchmark.extra_info["geomean_no_compressor"] = result.geomean_no_compressor
    benchmark.extra_info["geomean_rfv"] = result.geomean_rfv
    benchmark.extra_info["geomean_rfh"] = result.geomean_rfh

    # Headline claim: no average performance loss.
    assert 0.93 < result.geomean_regless < 1.07
    # The compressor never hurts on average.
    assert result.geomean_no_compressor >= result.geomean_regless - 0.01
