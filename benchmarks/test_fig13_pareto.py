"""Figure 13: run time vs GPU energy across OSU capacities.

Paper shape: smaller capacities are Pareto-optimal for energy but hurt
worst-case performance; 512 entries is the chosen tradeoff point with no
average performance loss.
"""

from conftest import run_once

from repro.harness import fig13_pareto
from repro.harness.report import render_fig13

CAPACITIES = (128, 192, 256, 384, 512, 1024)


def test_fig13_pareto(benchmark, runner, names):
    data = run_once(
        benchmark, lambda: fig13_pareto(runner, CAPACITIES, names)
    )
    print()
    print(render_fig13(data))

    for cap, (rt, en) in data.items():
        benchmark.extra_info[f"runtime_{cap}"] = rt
        benchmark.extra_info[f"energy_{cap}"] = en

    # The Pareto knee: runtime flattens by the 512-entry design point...
    assert data[512][0] < 1.1
    # ...small capacities cost performance...
    assert data[128][0] > data[512][0]
    # ...and the energy optimum is interior (tiny OSUs run so much longer
    # that static energy erases the capacity savings; Figure 13's frontier).
    best_energy = min(en for _, en in data.values())
    assert best_energy < data[1024][1]
    assert data[512][1] <= data[1024][1]
