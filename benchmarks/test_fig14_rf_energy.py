"""Figure 14: register-file energy for RFH, RFV and RegLess vs baseline.

Paper numbers: RegLess saves 75.3% of register-structure energy, vs 62.0%
(RFH) and 45.2% (RFV).  Expected shape here: RegLess saves the most by a
clear margin; both prior techniques save substantially.
"""

from conftest import run_once

from repro.harness import fig14_rf_energy, geomean
from repro.harness.report import render_fig14


def test_fig14_rf_energy(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig14_rf_energy(runner, names))
    print()
    print(render_fig14(data))

    means = {
        b: sum(row[b] for row in data.values()) / len(data)
        for b in ("rfh", "rfv", "regless")
    }
    for b, v in means.items():
        benchmark.extra_info[f"rf_energy_{b}"] = v

    # RegLess achieves the deepest savings (paper: 75.3% vs 62.0 / 45.2).
    assert means["regless"] < means["rfv"]
    assert means["regless"] < means["rfh"]
    assert means["regless"] < 0.35  # >65% savings
    assert means["rfv"] < 0.65
