"""Figure 12: combined static + dynamic power vs OSU capacity.

Paper shape: power tracks capacity; the 512-entry point draws roughly a
third of the baseline register file's power.
"""

from conftest import run_once

from repro.harness import fig12_power
from repro.harness.report import render_fig12


def test_fig12_power(benchmark, runner):
    data = run_once(benchmark, lambda: fig12_power(runner))
    print()
    print(render_fig12(data))

    benchmark.extra_info["power_512"] = data[512]["total"]

    totals = [data[c]["total"] for c in sorted(data)]
    assert totals == sorted(totals)
    assert 0.2 < data[512]["total"] < 0.5
