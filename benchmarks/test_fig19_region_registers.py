"""Figure 19: preloads vs concurrent live registers per region.

Paper shape: concurrent live registers consistently exceed the number of
preloads (each OSU entry is reused by several short-lived values), and
region sizes vary substantially within each benchmark.
"""

from conftest import run_once

from repro.harness import fig19_region_registers
from repro.harness.report import render_fig19


def test_fig19_region_registers(benchmark, runner, names):
    data = run_once(benchmark, lambda: fig19_region_registers(runner, names))
    print()
    print(render_fig19(data))

    mean_pre = sum(r["preloads"] for r in data.values()) / len(data)
    mean_live = sum(r["mean_live"] for r in data.values()) / len(data)
    benchmark.extra_info["mean_preloads"] = mean_pre
    benchmark.extra_info["mean_live"] = mean_live

    # Live registers exceed preloads on average (interior reuse).
    assert mean_live > mean_pre
    # Register-heavy benchmarks reach 15+ concurrent live registers.
    heavy = max(r["mean_live"] + 2 * r["std_live"] for r in data.values())
    assert heavy > 12
