#!/usr/bin/env python
"""Compiler explorer: write a kernel in assembly, inspect what RegLess sees.

Demonstrates the text assembler, divergence-aware liveness (including soft
definitions), region creation, and every annotation kind from Figure 6 of
the paper — rendered as an annotated listing.

Run:  python examples/compiler_explorer.py
"""

from repro.compiler import compile_kernel
from repro.isa import assemble

ASM = """
.kernel explorer
entry:
    mov   R4, #0            ; acc = 0
    mov   R5, #0            ; i = 0
header:
    setp  P0, R5, #64       ; exit condition
    @P0 bra done
body:
    shl   R6, R5, #7
    iadd  R6, R6, R1        ; &data[i]
    ldg   R7, R6            ; load element
    setp  P1, R7, #0        ; element < 0 ?
    @P1 bra skip
clamp:
    @!P1 mov R7, #0         ; guarded write: a SOFT definition
skip:
    iadd  R4, R4, R7
    iadd  R5, R5, #1
    bra   header
done:
    stg   R2, R4
    exit
"""


def main():
    kernel = assemble(ASM)
    compiled = compile_kernel(kernel)
    liveness = compiled.liveness

    print(compiled.summary())
    print("\nAnnotated listing "
          "(live = live registers before the instruction):\n")
    header = f"{'pc':>4} {'live':>4}  {'region':<8} instruction"
    print(header)
    print("-" * len(header))

    for pc, label, insn in kernel.iter_pcs():
        region = compiled.region_of_pc(pc)
        ann = compiled.annotations[region.rid]
        marks = []
        if region.start_pc == pc:
            preloads = ", ".join(
                f"{p.reg}{'!' if p.invalidate else ''}" for p in ann.preloads
            )
            marks.append(f"<-- region {region.rid} starts; preload [{preloads}]")
            if ann.cache_invalidates:
                inv = ", ".join(map(repr, ann.cache_invalidates))
                marks.append(f"cache-invalidate [{inv}]")
        for reg in ann.erase_at.get(pc, ()) + ann.erase_on_write.get(pc, ()):
            marks.append(f"erase {reg}")
        for reg in ann.evict_at.get(pc, ()) + ann.evict_on_write.get(pc, ()):
            marks.append(f"evict {reg}")
        soft = [r for r in insn.reg_dsts if liveness.is_soft_def(pc, r)]
        if soft:
            marks.append(f"soft-def {', '.join(map(repr, soft))}")
        live = len(liveness.live_before[pc])
        note = ("  ; " + "; ".join(marks)) if marks else ""
        print(f"{pc:>4} {live:>4}  {region.rid:<8} {insn!r}{note}")

    print("\nSoft definitions found:",
          sorted(compiled.liveness.soft_defs) or "none")
    print("Liveness profile:", liveness.live_counts())


if __name__ == "__main__":
    main()
