#!/usr/bin/env python
"""Oversubscription: running more warps than the register file could hold.

The paper's related-work section notes that RegLess "would be able to
oversubscribe the register file without any design changes".  The win
comes from kernels with *long-lived, rarely-touched* state: a conventional
register file must statically allocate every architectural register for a
warp's whole lifetime, so 70+ registers of per-thread context crush
occupancy — even though the hot loop touches six of them.

RegLess allocates staging capacity to *regions*: the context registers are
produced once, evicted (they are compressible constants) to the
compressor/L1, and the loop runs with tiny region footprints at full
occupancy.

Run:  python examples/oversubscription.py
"""

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim import GPUConfig, LoadBehavior, LoopExit, run_simulation
from repro.workloads import Workload, compute_chain

N_CONTEXT = 72  # long-lived per-thread context registers


def build():
    b = KernelBuilder("context_heavy")
    b.block("entry")
    tid, data = b.reg(0), b.reg(1)
    # Prologue: materialize the per-thread context (filter coefficients,
    # lookup constants...).  All of it stays live until the epilogue.
    context = []
    for k in range(N_CONTEXT):
        c = b.fresh()
        b.mov(c, 0x100 + 7 * k)
        context.append(c)
    ptr = b.fresh()
    b.imad(ptr, tid, 4, data)
    i = b.fresh()
    b.mov(i, 0)
    header, done = b.label(), b.label()
    b.block_named(header)
    p = b.fresh_pred()
    b.setp(p, i, 0, tag="iters")
    b.bra(done, pred=p)
    b.block("body")
    # Hot loop: touches a handful of context registers, streams data.
    v = b.fresh()
    b.ldg(v, ptr, tag="data")
    t = b.fresh()
    b.imad(t, v, 3, context[0])
    t2 = b.fresh()
    b.iadd(t2, t, context[1])
    out = compute_chain(b, t2, 4, float_ops=True)
    b.stg(ptr, out)
    b.iadd(ptr, ptr, 1024)
    b.iadd(i, i, 1)
    b.bra(header)
    b.block_named(done)
    # Epilogue: fold the whole context into a checksum (keeps it live).
    acc = context[0]
    for c in context[1:]:
        nxt = b.fresh()
        b.iadd(nxt, acc, c)
        acc = nxt
    b.stg(data, acc)
    b.exit()
    return b.build()


def main():
    workload = Workload(
        name="context_heavy",
        build=build,
        pred_behaviors={"iters": LoopExit(trips=32)},
        load_behaviors={"data": LoadBehavior(uniform_frac=0.1, affine_frac=0.3)},
    )
    compiled = compile_kernel(workload.kernel())
    regs = compiled.kernel.num_regs
    config = GPUConfig()
    rf_entries = 2048
    print(f"kernel uses {regs} registers/warp after allocation "
          f"({N_CONTEXT} of them long-lived context)")
    print(f"baseline residency: ~{min(64, rf_entries // regs)}/64 warps")
    loop_regions = compiled.regions_of_block("body")
    mean_loop = sum(r.max_live for r in loop_regions) / len(loop_regions)
    print(f"hot-loop region footprint: mean {mean_loop:.1f} registers\n")

    baseline = run_simulation(config, compiled, workload,
                              lambda sm, sh: BaselineRF(rf_entries))
    regless = run_simulation(config, compiled, workload,
                             lambda sm, sh: ReglessStorage(compiled))

    print(f"baseline (static allocation): {baseline.cycles} cycles, "
          f"IPC {baseline.ipc:.2f}")
    print(f"regless  (region staging)   : {regless.cycles} cycles, "
          f"IPC {regless.ipc:.2f}")
    print(f"speedup from oversubscription: "
          f"{baseline.cycles / regless.cycles:.2f}x")
    frac = regless.counter("compressor_store") / max(
        1, regless.counter("compressor_store") + regless.counter("l1_evict_store"))
    print(f"(context evictions compressed: {frac:.0%} — constants cost "
          f"8 bytes each in the compressor, not a 128-byte line)")


if __name__ == "__main__":
    main()
