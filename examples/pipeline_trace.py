#!/usr/bin/env python
"""Pipeline trace: watch a warp travel through RegLess region by region.

Attaches the execution tracer to a tiny RegLess run and prints one warp's
issue stream annotated with the region boundaries the capacity manager
enforces — you can see the warp stop at each region end and resume only
after the next region's preloads complete.

Run:  python examples/pipeline_trace.py
"""

from repro.compiler import compile_kernel
from repro.isa import KernelBuilder
from repro.regless import ReglessStorage
from repro.sim import GPUConfig, LoopExit, Tracer
from repro.sim.gpu import GPU
from repro.workloads import Workload


def build():
    b = KernelBuilder("traced")
    b.block("entry")
    tid, data = b.reg(0), b.reg(1)
    ptr = b.fresh()
    b.imad(ptr, tid, 4, data)
    acc = b.fresh()
    b.mov(acc, 0)
    header, done = b.label(), b.label()
    i = b.fresh()
    b.mov(i, 0)
    b.block_named(header)
    p = b.fresh_pred()
    b.setp(p, i, 3, tag="loop")
    b.bra(done, pred=p)
    b.block("body")
    v = b.fresh()
    b.ldg(v, ptr, tag="data")
    t = b.fresh()
    b.imad(t, v, 3, acc)
    b.mov(acc, t)
    b.iadd(ptr, ptr, 128)
    b.iadd(i, i, 1)
    b.bra(header)
    b.block_named(done)
    b.stg(data, acc)
    b.exit()
    return b.build()


def main():
    workload = Workload(
        name="traced", build=build,
        pred_behaviors={"loop": LoopExit(trips=3)},
    )
    compiled = compile_kernel(workload.kernel())
    print(compiled.summary(), "\n")

    config = GPUConfig(warps_per_sm=4, schedulers_per_sm=2, cta_size_warps=2)
    gpu = GPU(config, compiled, workload,
              lambda sm, sh: ReglessStorage(compiled))
    tracer = Tracer(capacity=50_000)
    tracer.attach(gpu)
    stats = gpu.run()

    print(f"run finished in {stats.cycles} cycles; "
          f"{len(tracer.issues())} instructions traced\n")
    print("warp 0's journey (region id in brackets):")
    for event in tracer.for_warp(0):
        if event.kind != "issue":
            continue
        region = compiled.region_of_pc(event.pc)
        boundary = " <-- region start" if region.start_pc == event.pc else ""
        print(f"  cycle {event.cycle:>5}  [rgn {region.rid}] "
              f"pc={event.pc:<3} {event.text}{boundary}")

    activations = stats.counter("region_activations")
    print(f"\n{int(activations)} region activations across all warps; the "
          f"gaps between a region's last\ninstruction and the next region's "
          f"first are drain + preload time.")


if __name__ == "__main__":
    main()
