#!/usr/bin/env python
"""Full paper run: regenerate every table and figure into one report file.

Equivalent to ``python -m repro.harness all`` plus claim validation and
CSV export, bundled for a one-command artifact-evaluation style run.

Run:  python examples/full_paper_run.py [report.txt]

The common run grid is prefetched in parallel over ``REPRO_JOBS`` worker
processes (default: CPU count), and every run persists in the on-disk
result cache — a warm re-run of this script is near-instant.
"""

import sys
import time

from repro.harness import SuiteRunner, render_claims, validate_claims
from repro.harness.cli import _RENDER, run_experiment
from repro.harness.export import export_all


def main():
    out_path = sys.argv[1] if len(sys.argv) > 1 else "paper_report.txt"
    runner = SuiteRunner()
    sections = []
    t0 = time.time()

    print("prefetching the (benchmark x backend) run grid ...")
    runner.prefetch(
        backends=("baseline", "rfh", "rfv", "regless", "regless-nc")
    )
    print(f"[{time.time() - t0:7.1f}s] grid ready")

    for target in sorted(_RENDER):
        print(f"[{time.time() - t0:7.1f}s] regenerating {target} ...")
        sections.append(run_experiment(target, runner))

    print(f"[{time.time() - t0:7.1f}s] validating claims ...")
    claims = validate_claims(runner)
    sections.append(render_claims(claims))

    print(f"[{time.time() - t0:7.1f}s] exporting CSVs ...")
    paths = export_all("results", runner)

    report = "\n\n".join(sections)
    with open(out_path, "w") as fh:
        fh.write(report + "\n")

    print(f"\nwrote {out_path} and {len(paths)} CSV files under results/")
    ok = sum(c.ok for c in claims)
    print(f"claims: {ok}/{len(claims)} hold")
    return 0 if ok == len(claims) else 1


if __name__ == "__main__":
    sys.exit(main())
