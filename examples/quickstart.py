#!/usr/bin/env python
"""Quickstart: compile a kernel for RegLess and compare it to a baseline GPU.

Builds a small SAXPY-like kernel, runs the RegLess compiler (liveness ->
regions -> annotations), then simulates it on a GPU with a full register
file and on one where the register file is replaced by a 512-entry operand
staging unit — the paper's headline configuration.

Run:  python examples/quickstart.py
"""

from repro.compiler import compile_kernel
from repro.energy import EnergyModel
from repro.isa import KernelBuilder
from repro.regfile import BaselineRF
from repro.regless import ReglessStorage
from repro.sim import GPUConfig, LoopExit, run_simulation
from repro.workloads import Workload


def build_saxpy():
    """y[i] = a * x[i] + y[i] over a strided loop."""
    b = KernelBuilder("saxpy")
    b.block("entry")
    tid, x_ptr, y_ptr = b.reg(0), b.reg(1), b.reg(2)
    xa = b.fresh()
    b.imad(xa, tid, 4, x_ptr)           # &x[tid]
    ya = b.fresh()
    b.imad(ya, tid, 4, y_ptr)           # &y[tid]
    i = b.fresh()
    b.mov(i, 0)
    header, done = b.label(), b.label()
    b.block_named(header)
    p = b.fresh_pred()
    b.setp(p, i, 0, tag="rows")
    b.bra(done, pred=p)
    b.block("body")
    x, y, out = b.fresh(3)
    b.ldg(x, xa, tag="x")
    b.ldg(y, ya, tag="y")
    b.ffma(out, x, 2, y)                # a = 2
    b.stg(ya, out)
    b.iadd(xa, xa, 4096)
    b.iadd(ya, ya, 4096)
    b.iadd(i, i, 1)
    b.bra(header)
    b.block_named(done)
    b.exit()
    return b.build()


def main():
    workload = Workload(
        name="saxpy",
        build=build_saxpy,
        pred_behaviors={"rows": LoopExit(trips=16)},
    )

    # 1. Compile: the RegLess compiler slices the kernel into regions.
    compiled = compile_kernel(workload.kernel())
    print(compiled.summary())
    print("\nRegions and their annotations:")
    for region, ann in zip(compiled.regions, compiled.annotations):
        preloads = ", ".join(
            f"{p.reg}{'!' if p.invalidate else ''}" for p in ann.preloads
        )
        print(f"  {region}")
        print(f"      preloads: [{preloads}]  metadata slots: "
              f"{ann.n_metadata_insns}")

    # 2. Simulate both register-storage designs.
    config = GPUConfig()  # one GTX-980-like SM: 64 warps, 4 schedulers
    baseline = run_simulation(config, compiled, workload,
                              lambda sm, sh: BaselineRF())
    regless = run_simulation(config, compiled, workload,
                             lambda sm, sh: ReglessStorage(compiled))

    # 3. Compare.
    model = EnergyModel()
    e_base = model.gpu_energy(baseline.counters, baseline.cycles, "baseline")
    e_rl = model.gpu_energy(regless.counters, regless.cycles, "regless")

    print(f"\nbaseline: {baseline.cycles} cycles, IPC {baseline.ipc:.2f}")
    print(f"regless : {regless.cycles} cycles, IPC {regless.ipc:.2f}")
    print(f"run time ratio      : {regless.cycles / baseline.cycles:.3f}")
    print(f"RF-structure energy : {e_rl.rf / e_base.rf:.3f} of baseline")
    print(f"total GPU energy    : {e_rl.total / e_base.total:.3f} of baseline")
    total = regless.counter("preloads")
    near = (regless.counter("preload_src_osu")
            + regless.counter("preload_src_const")
            + regless.counter("preload_src_compressor"))
    print(f"preloads staged without memory traffic: {near / total:.1%}")


if __name__ == "__main__":
    main()
