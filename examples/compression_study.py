#!/usr/bin/env python
"""Compression study: why simple patterns are enough.

The RegLess compressor (paper section 5.3) matches evicted registers
against a handful of fixed patterns: constants, stride-1/stride-4
sequences.  This example shows, per benchmark, how register *values*
decompose across those patterns at eviction time and what that does to
preload traffic — including the dwt2d pathology the paper calls out
(many live registers, few compressible).

Run:  python examples/compression_study.py
"""

from repro.harness import SuiteRunner

BENCHMARKS = ("hotspot", "pathfinder", "b+tree", "kmeans", "dwt2d")


def main():
    runner = SuiteRunner()
    header = (f"{'benchmark':<12} {'evictions':>10} {'compressed':>11} "
              f"{'const':>7} {'str1':>6} {'str4':>6} "
              f"{'runtime on':>11} {'runtime off':>12}")
    print(header)
    print("-" * len(header))

    for name in BENCHMARKS:
        on = runner.run(name, "regless")
        off = runner.run(name, "regless-nc")
        base = runner.run(name, "baseline")
        c = on.stats.counters
        stores = c.get("compressor_store", 0.0)
        incompressible = c.get("l1_evict_store", 0.0)
        total = stores + incompressible
        frac = stores / total if total else 0.0
        print(f"{name:<12} {int(total):>10} {frac:>11.1%} "
              f"{int(c.get('compress_constant', 0)):>7} "
              f"{int(c.get('compress_stride1', 0)):>6} "
              f"{int(c.get('compress_stride4', 0)):>6} "
              f"{on.cycles / base.cycles:>11.3f} "
              f"{off.cycles / base.cycles:>12.3f}")

    print("\nCompressible benchmarks (hotspot, pathfinder) keep their cold")
    print("registers in the compressor's small cache; dwt2d's random")
    print("wavelet data defeats the patterns and round-trips the L1 —")
    print("exactly the per-benchmark split the paper reports in Figure 17.")


if __name__ == "__main__":
    main()
