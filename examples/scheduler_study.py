#!/usr/bin/env python
"""Scheduler study: warp scheduling and the register working set.

Reproduces the insight behind Figure 2 of the paper: the register capacity
*touched in any 100-cycle window* is a small fraction of the register file,
and a two-level scheduler — by restricting issue to a small active pool —
shrinks it further.  RegLess generalizes the idea: only warps with staged
regions may issue, so allocated staging capacity is always useful.

Run:  python examples/scheduler_study.py
"""

from repro.harness import SuiteRunner

BENCHMARKS = ("bfs", "hotspot", "kmeans", "lud", "streamcluster")
SCHEDULERS = ("gto", "lrr", "two_level")


def main():
    runner = SuiteRunner()
    print(f"{'benchmark':<14}", end="")
    for sched in SCHEDULERS:
        print(f" {sched + ' cyc':>12} {sched + ' WS(KB)':>14}", end="")
    print()
    print("-" * (14 + len(SCHEDULERS) * 27))

    for name in BENCHMARKS:
        print(f"{name:<14}", end="")
        for sched in SCHEDULERS:
            res = runner.run(name, "baseline", scheduler=sched,
                             track_working_set=True)
            print(f" {res.cycles:>12} {res.stats.working_set_kb():>14.1f}",
                  end="")
        print()

    print("\nThe working set column is the mean distinct register capacity")
    print("accessed per 100-cycle window (per SM).  It is the paper's")
    print("motivation: a staging unit a quarter of the register file's size")
    print("can hold everything the SM touches in an interval, if something")
    print("anticipates *which* registers those are — RegLess's job.")


if __name__ == "__main__":
    main()
