#!/usr/bin/env python
"""Capacity sweep: how small can the operand staging unit get?

Replays Figure 13's experiment on a single benchmark: sweep the OSU from
128 to 2048 entries per SM and report run time, GPU energy, and where
preloads were served from.  The paper picks 512 entries (25% of the
baseline register file) as the point with no average performance loss.

Run:  python examples/capacity_sweep.py [benchmark]
"""

import sys

from repro.harness import SuiteRunner

CAPACITIES = (128, 192, 256, 384, 512, 1024, 2048)


def main():
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "hotspot"
    runner = SuiteRunner()
    base = runner.run(benchmark, "baseline")
    print(f"benchmark: {benchmark}  "
          f"(baseline: {base.cycles} cycles, "
          f"{base.gpu_energy:,.0f} energy units)\n")

    header = (f"{'entries':>8} {'runtime':>8} {'GPU energy':>11} "
              f"{'RF energy':>10} {'OSU+const':>10} {'L1':>7} {'L2/DRAM':>8}")
    print(header)
    print("-" * len(header))
    for cap in CAPACITIES:
        res = runner.run(benchmark, "regless", osu_entries=cap)
        c = res.stats.counters
        total = max(1.0, c.get("preloads", 0.0))
        near = (c.get("preload_src_osu", 0.0) + c.get("preload_src_const", 0.0)
                + c.get("preload_src_compressor", 0.0)) / total
        l1 = c.get("preload_src_l1", 0.0) / total
        far = c.get("preload_src_l2dram", 0.0) / total
        print(f"{cap:>8} {res.cycles / base.cycles:>8.3f} "
              f"{res.gpu_energy / base.gpu_energy:>11.3f} "
              f"{res.rf_energy / base.rf_energy:>10.3f} "
              f"{near:>10.1%} {l1:>7.1%} {far:>8.2%}")

    print("\nSmaller staging units save more energy until eviction traffic")
    print("through the single L1 port erases the gains — the paper's")
    print("Pareto frontier (Figure 13).")


if __name__ == "__main__":
    main()
