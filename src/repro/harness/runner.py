"""Suite runner: execute (benchmark x backend x configuration) and memoize.

Every evaluation figure draws on the same grid of simulation runs, so the
runner caches results within a process.  Backends:

* ``baseline`` — full 2048-entry RF, GTO scheduler.
* ``rfh``      — register-file hierarchy, two-level scheduler (required by
  the technique, and the source of its slowdown).
* ``rfv``      — register-file virtualization, half-size physical RF.
* ``regless``  — the paper's design (512 OSU entries by default).
* ``regless-nc`` — RegLess without the compressor (Figure 16 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from ..compiler.pipeline import CompiledKernel, compile_kernel
from ..energy.model import EnergyBreakdown, EnergyModel
from ..regfile import BaselineRF, RFHStorage, RFVStorage
from ..regfile.base import OperandStorage
from ..regless import ReglessConfig, ReglessStorage
from ..sim.config import GPUConfig
from ..sim.gpu import SimStats, run_simulation
from ..workloads import Workload, make_workload

__all__ = ["BACKENDS", "RunResult", "SuiteRunner"]

BACKENDS = ("baseline", "rfh", "rfv", "regless")


@dataclass
class RunResult:
    """One simulation run plus its energy accounting."""

    benchmark: str
    backend: str
    osu_entries: int
    stats: SimStats
    compiled: CompiledKernel = field(repr=False)
    energy: EnergyBreakdown = field(repr=False)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def rf_energy(self) -> float:
        return self.energy.rf

    @property
    def gpu_energy(self) -> float:
        return self.energy.total


class SuiteRunner:
    """Runs and memoizes the benchmark/backend grid."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        energy_model: Optional[EnergyModel] = None,
    ):
        self.base_config = config or GPUConfig()
        self.energy_model = energy_model or EnergyModel()
        self._workloads: Dict[str, Workload] = {}
        self._compiled: Dict[str, CompiledKernel] = {}
        self._runs: Dict[Tuple, RunResult] = {}

    # -- building blocks -------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = make_workload(name)
        return self._workloads[name]

    def compiled(self, name: str) -> CompiledKernel:
        if name not in self._compiled:
            self._compiled[name] = compile_kernel(self.workload(name).kernel())
        return self._compiled[name]

    def config_for(self, backend: str, **overrides) -> GPUConfig:
        cfg = self.base_config
        if backend in ("rfh", "rfv"):
            # Both prior techniques are evaluated with the two-level warp
            # scheduler they were designed around (paper section 6.4).
            cfg = cfg.with_(scheduler="two_level")
        if overrides:
            cfg = cfg.with_(**overrides)
        return cfg

    def storage_factory(
        self,
        backend: str,
        compiled: CompiledKernel,
        osu_entries: int = 512,
    ) -> Callable[[int, int], OperandStorage]:
        if backend == "baseline":
            return lambda sm, sh: BaselineRF()
        if backend == "rfh":
            return lambda sm, sh: RFHStorage(compiled)
        if backend == "rfv":
            return lambda sm, sh: RFVStorage(compiled)
        if backend == "regless":
            rcfg = ReglessConfig(osu_entries_per_sm=osu_entries)
            return lambda sm, sh: ReglessStorage(compiled, rcfg)
        if backend == "regless-nc":
            rcfg = ReglessConfig(
                osu_entries_per_sm=osu_entries, compressor_enabled=False
            )
            return lambda sm, sh: ReglessStorage(compiled, rcfg)
        raise ValueError(f"unknown backend {backend!r}")

    # -- main entry point ----------------------------------------------------------

    def run(
        self,
        benchmark: str,
        backend: str,
        osu_entries: int = 512,
        window_series: Tuple[str, ...] = (),
        **config_overrides,
    ) -> RunResult:
        key = (
            benchmark,
            backend,
            osu_entries,
            tuple(window_series),
            tuple(sorted(config_overrides.items())),
        )
        if key in self._runs:
            return self._runs[key]

        workload = self.workload(benchmark)
        compiled = self.compiled(benchmark)
        cfg = self.config_for(backend, **config_overrides)
        factory = self.storage_factory(backend, compiled, osu_entries)
        stats = run_simulation(
            cfg, compiled, workload, factory, window_series=window_series
        )
        model_backend = "regless" if backend == "regless-nc" else backend
        energy = self.energy_model.gpu_energy(
            stats.counters, stats.cycles, model_backend, osu_entries=osu_entries
        )
        result = RunResult(
            benchmark=benchmark,
            backend=backend,
            osu_entries=osu_entries,
            stats=stats,
            compiled=compiled,
            energy=energy,
        )
        self._runs[key] = result
        return result

    def no_rf_energy(self, benchmark: str) -> float:
        """The "No RF" upper bound (Figure 15): baseline timing with a
        register file that consumes no energy."""
        base = self.run(benchmark, "baseline")
        return base.gpu_energy - base.rf_energy
