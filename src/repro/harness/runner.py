"""Suite runner: execute (benchmark x backend x configuration) and memoize.

Every evaluation figure draws on the same grid of simulation runs, so the
runner memoizes results in-process, persists them in a content-addressed
on-disk cache (:mod:`repro.harness.cache` — a warm re-run of the full
figure suite is near-instant), and can fan independent runs out over worker
processes (:mod:`repro.harness.parallel`, via :meth:`SuiteRunner.run_grid`).
Backends:

* ``baseline`` — full 2048-entry RF, GTO scheduler.
* ``rfh``      — register-file hierarchy, two-level scheduler (required by
  the technique, and the source of its slowdown).
* ``rfv``      — register-file virtualization, half-size physical RF.
* ``regless``  — the paper's design (512 OSU entries by default).
* ``regless-nc`` — RegLess without the compressor (Figure 16 ablation).
"""

from __future__ import annotations

import gc
import pickle
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..compiler.pipeline import CompiledKernel, compile_kernel
from ..energy.model import EnergyBreakdown, EnergyModel
from ..obs.metrics import MetricsRegistry
from ..regfile import BaselineRF, RFHStorage, RFVStorage
from ..regfile.base import OperandStorage
from ..regless import ReglessConfig, ReglessStorage
from ..sim.config import GPUConfig
from ..sim.gpu import SimStats, run_simulation
from ..sim.watchdog import SimulationHang, Watchdog, WatchdogConfig
from ..workloads import Workload, make_workload, workload_names
from .cache import ResultCache, cache_enabled, run_digest
from .parallel import (
    FaultPolicy,
    GridFailure,
    RunOutcome,
    RunRequest,
    resolve_jobs,
    run_requests,
    run_requests_resilient,
)

__all__ = ["BACKENDS", "RunResult", "RunRequest", "SuiteRunner"]

BACKENDS = ("baseline", "rfh", "rfv", "regless")

#: anything :meth:`SuiteRunner.run_grid` accepts as one grid cell.
RequestLike = Union[RunRequest, Tuple, Dict]


@dataclass
class RunResult:
    """One simulation run plus its energy accounting."""

    benchmark: str
    backend: str
    osu_entries: int
    stats: SimStats
    compiled: CompiledKernel = field(repr=False)
    energy: EnergyBreakdown = field(repr=False)
    #: per-phase wall-clock seconds: ``compile`` / ``simulate`` / ``energy``
    #: / ``total`` (and ``cache_load`` when served from the disk cache).
    timings: Dict[str, float] = field(default_factory=dict, repr=False)
    #: region-JIT observability (``sm0.shard1.jit.*`` paths; empty when the
    #: run predates the JIT or came from an old cache entry — read with
    #: ``getattr(result, "jit", {})`` when the result may be unpickled).
    jit: Dict[str, object] = field(default_factory=dict, repr=False)
    #: cohort-batching observability (``sm0.shard1.batch.*`` paths; same
    #: caveats as ``jit`` — read with ``getattr(result, "batch", {})``).
    batch: Dict[str, object] = field(default_factory=dict, repr=False)

    @property
    def cycles(self) -> int:
        return self.stats.cycles

    @property
    def rf_energy(self) -> float:
        return self.energy.rf

    @property
    def gpu_energy(self) -> float:
        return self.energy.total


class SuiteRunner:
    """Runs and memoizes the benchmark/backend grid.

    ``cache`` selects the persistent result store: ``None`` uses the
    default location unless ``REPRO_CACHE=0``; ``False`` disables it; a
    :class:`~repro.harness.cache.ResultCache` uses that store.  ``jobs``
    is the default worker count for :meth:`run_grid` (``None`` defers to
    ``REPRO_JOBS`` / CPU count at call time).

    ``watchdog`` (a :class:`~repro.sim.watchdog.WatchdogConfig`) attaches
    a fresh forward-progress monitor to every simulation this runner
    executes — in-process and in workers alike.  ``policy`` (a
    :class:`~repro.harness.parallel.FaultPolicy`) makes :meth:`run_grid`
    resilient: per-run timeouts, retries with backoff, dead-worker
    recovery, quarantine.  Harness-level events (cache evictions, grid
    retries/failures) land in ``self.metrics`` under ``harness.*``.
    """

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        energy_model: Optional[EnergyModel] = None,
        cache: Union[ResultCache, bool, None] = None,
        jobs: Optional[int] = None,
        watchdog: Optional[WatchdogConfig] = None,
        policy: Optional[FaultPolicy] = None,
    ):
        self.base_config = config or GPUConfig()
        self.energy_model = energy_model or EnergyModel()
        if cache is None:
            self.cache: Optional[ResultCache] = (
                ResultCache() if cache_enabled() else None
            )
        elif cache is False:
            self.cache = None
        elif cache is True:
            self.cache = ResultCache()
        else:
            self.cache = cache
        self.jobs = jobs
        self.watchdog = watchdog
        self.policy = policy
        #: harness-level observability (``harness.cache.*``,
        #: ``harness.grid.*``) — distinct from per-run simulation metrics.
        self.metrics = MetricsRegistry()
        self._metrics_scope = self.metrics.scope("harness")
        if self.cache is not None:
            self.cache.metrics = self._metrics_scope.scope("cache")
        self._workloads: Dict[str, Workload] = {}
        self._compiled: Dict[str, CompiledKernel] = {}
        self._kernel_bytes: Dict[str, bytes] = {}
        self._runs: Dict[Tuple, RunResult] = {}

    # -- building blocks -------------------------------------------------------

    def workload(self, name: str) -> Workload:
        if name not in self._workloads:
            self._workloads[name] = make_workload(name)
        return self._workloads[name]

    def compiled(self, name: str) -> CompiledKernel:
        if name not in self._compiled:
            self._compiled[name] = compile_kernel(self.workload(name).kernel())
        return self._compiled[name]

    def kernel_bytes(self, name: str) -> bytes:
        """Serialized compiled kernel: the cache-key ingredient that makes
        compiler changes invalidate stored results."""
        if name not in self._kernel_bytes:
            self._kernel_bytes[name] = pickle.dumps(
                self.compiled(name), protocol=pickle.HIGHEST_PROTOCOL
            )
        return self._kernel_bytes[name]

    def config_for(self, backend: str, **overrides) -> GPUConfig:
        cfg = self.base_config
        if backend in ("rfh", "rfv"):
            # Both prior techniques are evaluated with the two-level warp
            # scheduler they were designed around (paper section 6.4).
            cfg = cfg.with_(scheduler="two_level")
        if overrides:
            cfg = cfg.with_(**overrides)
        return cfg

    def storage_factory(
        self,
        backend: str,
        compiled: CompiledKernel,
        osu_entries: int = 512,
    ) -> Callable[[int, int], OperandStorage]:
        if backend == "baseline":
            return lambda sm, sh: BaselineRF()
        if backend == "rfh":
            return lambda sm, sh: RFHStorage(compiled)
        if backend == "rfv":
            return lambda sm, sh: RFVStorage(compiled)
        if backend == "regless":
            rcfg = ReglessConfig(osu_entries_per_sm=osu_entries)
            return lambda sm, sh: ReglessStorage(compiled, rcfg)
        if backend == "regless-nc":
            rcfg = ReglessConfig(
                osu_entries_per_sm=osu_entries, compressor_enabled=False
            )
            return lambda sm, sh: ReglessStorage(compiled, rcfg)
        raise ValueError(f"unknown backend {backend!r}")

    # -- keys ------------------------------------------------------------------

    @staticmethod
    def _memo_key(request: RunRequest) -> Tuple:
        return (
            request.benchmark,
            request.backend,
            request.osu_entries,
            request.window_series,
            request.overrides,
        )

    def _digest(self, request: RunRequest) -> str:
        cfg = self.config_for(request.backend, **dict(request.overrides))
        workload = self.workload(request.benchmark)
        return run_digest(
            config=cfg,
            backend=request.backend,
            osu_entries=request.osu_entries,
            workload_name=request.benchmark,
            workload_seed=workload.seed,
            kernel_bytes=self.kernel_bytes(request.benchmark),
            energy_params=self.energy_model.params,
            window_series=request.window_series,
        )

    def _install(self, request: RunRequest, result: RunResult,
                 store: bool = True) -> RunResult:
        self._runs[self._memo_key(request)] = result
        self._compiled.setdefault(request.benchmark, result.compiled)
        if store and self.cache is not None:
            self.cache.put(self._digest(request), result)
        return result

    # -- main entry points ----------------------------------------------------

    def run(
        self,
        benchmark: str,
        backend: str,
        osu_entries: int = 512,
        window_series: Tuple[str, ...] = (),
        **config_overrides,
    ) -> RunResult:
        request = RunRequest.make(
            benchmark, backend, osu_entries, window_series, **config_overrides
        )
        key = self._memo_key(request)
        if key in self._runs:
            return self._runs[key]
        if backend not in BACKENDS + ("regless-nc",):
            raise ValueError(f"unknown backend {backend!r}")
        if self.cache is not None:
            t0 = time.perf_counter()
            cached = self.cache.get(self._digest(request))
            if cached is not None:
                cached.timings["cache_load"] = time.perf_counter() - t0
                return self._install(request, cached, store=False)
        return self._install(request, self._execute(request))

    def _execute(self, request: RunRequest) -> RunResult:
        """Compile + simulate + account energy, with per-phase timings."""
        t_start = time.perf_counter()
        workload = self.workload(request.benchmark)
        compiled = self.compiled(request.benchmark)
        t_compiled = time.perf_counter()
        cfg = self.config_for(request.backend, **dict(request.overrides))
        factory = self.storage_factory(
            request.backend, compiled, request.osu_entries
        )
        # The simulator allocates millions of short-lived objects and keeps
        # no reference cycles; pausing the cyclic GC for the run avoids
        # collector sweeps interrupting the hot loop.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        # A watchdog holds per-run progress state, so every run gets a
        # fresh one built from the runner's config.
        watchdog = Watchdog(self.watchdog) if self.watchdog else None
        jit_out: Dict[str, object] = {}
        batch_out: Dict[str, object] = {}
        try:
            stats = run_simulation(
                cfg, compiled, workload, factory,
                window_series=request.window_series,
                watchdog=watchdog,
                jit_out=jit_out,
                batch_out=batch_out,
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        t_simulated = time.perf_counter()
        model_backend = (
            "regless" if request.backend == "regless-nc" else request.backend
        )
        energy = self.energy_model.gpu_energy(
            stats.counters, stats.cycles, model_backend,
            osu_entries=request.osu_entries,
        )
        t_done = time.perf_counter()
        return RunResult(
            benchmark=request.benchmark,
            backend=request.backend,
            osu_entries=request.osu_entries,
            stats=stats,
            compiled=compiled,
            energy=energy,
            timings={
                "compile": t_compiled - t_start,
                "simulate": t_simulated - t_compiled,
                "energy": t_done - t_simulated,
                "total": t_done - t_start,
            },
            jit=jit_out,
            batch=batch_out,
        )

    # -- grid execution --------------------------------------------------------

    @staticmethod
    def _normalize(request: RequestLike) -> RunRequest:
        if isinstance(request, RunRequest):
            return request
        if isinstance(request, dict):
            return RunRequest.make(**request)
        return RunRequest.make(*request)

    def run_grid(
        self,
        requests: Iterable[RequestLike],
        jobs: Optional[int] = None,
    ) -> List[RunResult]:
        """Run every grid cell, fanning cache misses out over workers.

        ``requests`` may mix :class:`RunRequest` objects,
        ``(benchmark, backend[, osu_entries])`` tuples, and keyword dicts.
        Results come back in request order and are memoized exactly as if
        produced by :meth:`run`, so follow-up serial :meth:`run` calls are
        hits.  With one effective worker (or one miss) execution stays
        in-process.

        When the runner has a ``policy`` or ``watchdog``, execution goes
        through :meth:`run_grid_outcomes`; completed runs are installed in
        the memo/cache even when others fail, and a
        :class:`~repro.harness.parallel.GridFailure` carrying every
        per-run :class:`~repro.harness.parallel.RunOutcome` is raised if
        any request could not complete.
        """
        if self.policy is not None or self.watchdog is not None:
            outcomes = self.run_grid_outcomes(requests, jobs=jobs)
            if any(not o.ok for o in outcomes):
                raise GridFailure(outcomes)
            return [o.result for o in outcomes]  # type: ignore[misc]
        reqs = [self._normalize(r) for r in requests]
        for req in reqs:  # validate backends before any dispatch
            if req.backend not in BACKENDS + ("regless-nc",):
                raise ValueError(f"unknown backend {req.backend!r}")
        results: Dict[int, RunResult] = {}
        pending: List[Tuple[int, RunRequest]] = []
        seen: Dict[RunRequest, int] = {}
        for i, req in enumerate(reqs):
            key = self._memo_key(req)
            if key in self._runs:
                results[i] = self._runs[key]
                continue
            if self.cache is not None:
                t0 = time.perf_counter()
                cached = self.cache.get(self._digest(req))
                if cached is not None:
                    cached.timings["cache_load"] = time.perf_counter() - t0
                    results[i] = self._install(req, cached, store=False)
                    continue
            if req in seen:  # duplicate miss: run once
                pending.append((i, req))
                continue
            seen[req] = i
            pending.append((i, req))

        unique = [(i, req) for i, req in pending if seen.get(req) == i]
        jobs = resolve_jobs(jobs if jobs is not None else self.jobs)
        if unique:
            if jobs <= 1 or len(unique) == 1:
                for _, req in unique:
                    self._install(req, self._execute(req))
            else:
                outs = run_requests(
                    self.base_config,
                    self.energy_model.params,
                    [req for _, req in unique],
                    jobs=jobs,
                )
                for (_, req), result in zip(unique, outs):
                    self._install(req, result)
        for i, req in pending:
            results[i] = self._runs[self._memo_key(req)]
        return [results[i] for i in range(len(reqs))]

    def run_grid_outcomes(
        self,
        requests: Iterable[RequestLike],
        jobs: Optional[int] = None,
        on_outcome: Optional[Callable[[int, RunOutcome], None]] = None,
    ) -> List[RunOutcome]:
        """Resilient grid execution: one terminal
        :class:`~repro.harness.parallel.RunOutcome` per request, never an
        exception for per-run failures.

        Memo/cache hits come back as ``ok`` outcomes with zero attempts;
        misses run under the runner's fault policy (timeouts, retries,
        quarantine — see :func:`~repro.harness.parallel.run_requests_resilient`)
        and the runner's watchdog config.  Successful runs are installed
        in the memo and disk cache regardless of how the rest of the grid
        fared, so partial results always survive.

        ``on_outcome(index, outcome)`` fires the moment each request
        reaches its terminal outcome — hits immediately, executed runs as
        they complete (out of request order), duplicates when their
        primary resolves.  Successful results are already installed in
        the memo/disk cache by the time the callback sees them, so a
        streaming consumer observes the same state a later ``run`` would.
        """
        reqs = [self._normalize(r) for r in requests]
        for req in reqs:
            if req.backend not in BACKENDS + ("regless-nc",):
                raise ValueError(f"unknown backend {req.backend!r}")
        deliver = on_outcome if on_outcome is not None else (lambda i, o: None)
        outcomes: Dict[int, RunOutcome] = {}
        pending: List[Tuple[int, RunRequest]] = []
        seen: Dict[RunRequest, int] = {}
        pending_by_req: Dict[RunRequest, List[int]] = {}
        for i, req in enumerate(reqs):
            key = self._memo_key(req)
            if key in self._runs:
                outcomes[i] = RunOutcome(req, RunOutcome.OK, self._runs[key])
                deliver(i, outcomes[i])
                continue
            if self.cache is not None:
                t0 = time.perf_counter()
                cached = self.cache.get(self._digest(req))
                if cached is not None:
                    cached.timings["cache_load"] = time.perf_counter() - t0
                    result = self._install(req, cached, store=False)
                    outcomes[i] = RunOutcome(req, RunOutcome.OK, result)
                    deliver(i, outcomes[i])
                    continue
            if req not in seen:
                seen[req] = i
            pending.append((i, req))
            pending_by_req.setdefault(req, []).append(i)

        unique = [(i, req) for i, req in pending if seen.get(req) == i]
        jobs_n = resolve_jobs(jobs if jobs is not None else self.jobs)
        by_req: Dict[RunRequest, RunOutcome] = {}

        def resolve(req: RunRequest, out: RunOutcome) -> None:
            if out.ok and out.result is not None:
                self._install(req, out.result)
            by_req[req] = out
            for i in pending_by_req[req]:
                deliver(i, out)

        if unique:
            if jobs_n <= 1 or len(unique) == 1:
                for _, req in unique:
                    resolve(req, self._execute_resilient(req))
            else:
                unique_reqs = [req for _, req in unique]
                run_requests_resilient(
                    self.base_config,
                    self.energy_model.params,
                    unique_reqs,
                    jobs=jobs_n,
                    policy=self.policy,
                    watchdog=self.watchdog,
                    metrics=self._metrics_scope,
                    on_outcome=lambda pos, out: resolve(unique_reqs[pos], out),
                )
        for i, req in pending:
            outcomes[i] = by_req[req]
        return [outcomes[i] for i in range(len(reqs))]

    def _execute_resilient(self, request: RunRequest) -> RunOutcome:
        """In-process counterpart of the resilient worker loop (used when
        the grid stays serial).  A hang is only catchable here if the
        watchdog converts it into :class:`SimulationHang`; worker kills
        obviously can't be survived in-process."""
        policy = self.policy or FaultPolicy()
        scope = self._metrics_scope
        attempts = 0
        last_error = ""
        last_diagnostics = None
        while True:
            attempts += 1
            try:
                result = self._execute(request)
            except SimulationHang as exc:
                kind, last_error = RunOutcome.HUNG, str(exc)
                last_diagnostics = exc.diagnostics
            except Exception as exc:  # noqa: BLE001
                kind = RunOutcome.CRASHED
                last_error = f"{type(exc).__name__}: {exc}"
            else:
                scope.inc("grid.ok")
                return RunOutcome(
                    request, RunOutcome.OK, result, attempts, attempts - 1
                )
            scope.inc(f"grid.failure_{kind}")
            if attempts > policy.retries:
                scope.inc(f"grid.{kind}")
                return RunOutcome(
                    request, kind, None, attempts, attempts - 1, last_error,
                    diagnostics=last_diagnostics,
                )
            if attempts >= policy.quarantine_after:
                scope.inc("grid.quarantined")
                return RunOutcome(
                    request, RunOutcome.QUARANTINED, None, attempts,
                    attempts - 1, last_error, diagnostics=last_diagnostics,
                )
            scope.inc("grid.retries")
            time.sleep(policy.delay(request.key, attempts))

    def prefetch(
        self,
        names: Optional[Sequence[str]] = None,
        backends: Sequence[str] = BACKENDS,
        osu_entries: Sequence[int] = (512,),
        window_series: Tuple[str, ...] = (),
        jobs: Optional[int] = None,
        **config_overrides,
    ) -> List[RunResult]:
        """Warm the (benchmark x backend x capacity) grid in parallel."""
        requests = [
            RunRequest.make(
                name, backend, entries, window_series, **config_overrides
            )
            for name in (list(names) if names else workload_names())
            for backend in backends
            for entries in osu_entries
        ]
        return self.run_grid(requests, jobs=jobs)

    def no_rf_energy(self, benchmark: str) -> float:
        """The "No RF" upper bound (Figure 15): baseline timing with a
        register file that consumes no energy."""
        base = self.run(benchmark, "baseline")
        return base.gpu_energy - base.rf_energy
