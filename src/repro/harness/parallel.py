"""Parallel fan-out of simulation-grid runs over worker processes.

The evaluation grid — (benchmark x backend x OSU capacity) — is
embarrassingly parallel: every run is an independent cycle-level
simulation.  :func:`run_requests` executes a batch of
:class:`RunRequest`\\ s on a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns :class:`~repro.harness.runner.RunResult`\\ s in request order.

Each worker process holds one private
:class:`~repro.harness.runner.SuiteRunner` (disk cache off — the parent
coordinates the cache), so compiled kernels and workloads are reused across
the runs a worker receives.

Worker count resolution order: explicit argument, then ``REPRO_JOBS``, then
``os.cpu_count()``.

Fault tolerance
---------------

:func:`run_requests_resilient` is the hardened entry point.  It survives
the three failure classes a long sweep actually hits:

* **Worker death** (OOM kill, segfault, injected ``kill``) — the pool
  raises :class:`~concurrent.futures.process.BrokenProcessPool` on *every*
  in-flight future, so the culprit is unattributable; each in-flight run
  is charged one crashed attempt (documented over-charging beats losing
  the sweep) and the pool is rebuilt.
* **Run hangs** (livelock, injected ``hang``) — a per-run deadline; on
  expiry the whole pool is killed (a future can't be cancelled once
  running), expired runs are charged a hung attempt, and *innocent*
  in-flight runs are requeued uncharged.
* **Ordinary crashes** (exceptions, incl. :class:`SimulationHang` from an
  in-worker watchdog) — retried in place; the pool survives.

Retries back off exponentially with deterministic jitter (hash of the
request key and attempt number — reproducible, yet de-synchronized across
requests).  A request whose failures reach ``quarantine_after`` while
budget remains is **quarantined** — stops burning retries on a run that
keeps killing workers.  The sweep always completes: every request ends in
exactly one :class:`RunOutcome` (``ok`` / ``hung`` / ``crashed`` /
``quarantined``) and partial results survive.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as futures_wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    TYPE_CHECKING,
)

from ..sim.watchdog import SimulationHang, WatchdogConfig

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.model import EnergyParams
    from ..obs.metrics import MetricScope
    from ..sim.config import GPUConfig
    from .runner import RunResult, SuiteRunner

__all__ = [
    "FaultPolicy",
    "GridFailure",
    "RunOutcome",
    "RunRequest",
    "resolve_jobs",
    "run_requests",
    "run_requests_resilient",
]


@dataclass(frozen=True)
class RunRequest:
    """One cell of the simulation grid, in picklable/hashable form."""

    benchmark: str
    backend: str
    osu_entries: int = 512
    window_series: Tuple[str, ...] = ()
    #: sorted ``GPUConfig`` override items (e.g. ``(("scheduler", "lrr"),)``).
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        benchmark: str,
        backend: str,
        osu_entries: int = 512,
        window_series: Sequence[str] = (),
        **overrides: Any,
    ) -> "RunRequest":
        return cls(
            benchmark=benchmark,
            backend=backend,
            osu_entries=osu_entries,
            window_series=tuple(window_series),
            overrides=tuple(sorted(overrides.items())),
        )

    @property
    def key(self) -> str:
        """The ``benchmark/backend`` form fault specs match against.

        This is a *grouping* key (several grid cells share it); the full
        per-cell identity is :attr:`identity`.
        """
        return f"{self.benchmark}/{self.backend}"

    @property
    def identity(self) -> str:
        """Content digest over every request field.

        Two requests are the same run iff their identities match, and the
        digest is stable across pickling and process boundaries — the
        invariant the service's cross-client admission dedupe relies on
        (equal identities collapse to one execution)."""
        h = hashlib.sha256()
        h.update(repr((
            self.benchmark,
            self.backend,
            int(self.osu_entries),
            tuple(self.window_series),
            tuple(self.overrides),
        )).encode())
        return h.hexdigest()


@dataclass(frozen=True)
class FaultPolicy:
    """Retry/timeout budget for one resilient grid sweep.

    ``retries`` counts *re*-tries: a request runs at most ``retries + 1``
    times.  ``quarantine_after`` failures stop a request early even with
    retry budget left (a poison run that keeps killing workers must not
    stall the whole sweep).  ``timeout`` is the per-run wall-clock
    deadline in seconds (``None`` disables hang detection).
    """

    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.25
    backoff_cap: float = 4.0
    quarantine_after: int = 3

    def delay(self, key: str, attempt: int) -> float:
        """Exponential backoff with deterministic per-request jitter."""
        base = min(self.backoff_cap, self.backoff * (2 ** max(0, attempt - 1)))
        digest = hashlib.sha256(f"{key}:{attempt}".encode()).digest()
        jitter = digest[0] / 255.0 * 0.25  # up to +25%
        return base * (1.0 + jitter)


@dataclass
class RunOutcome:
    """Terminal fate of one grid request under the resilient runner."""

    OK = "ok"
    HUNG = "hung"
    CRASHED = "crashed"
    QUARANTINED = "quarantined"

    request: RunRequest
    status: str
    result: Optional["RunResult"] = None
    attempts: int = 0
    retried: int = 0
    error: str = ""
    #: the watchdog's JSON-safe hang snapshot (dominant shard, stall
    #: bins, CM admission state) for ``hung`` outcomes; ``None`` otherwise.
    diagnostics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.status == self.OK


class GridFailure(RuntimeError):
    """A resilient sweep finished with at least one non-``ok`` outcome.

    Partial results are preserved: ``outcomes`` holds every request's
    :class:`RunOutcome` in request order.
    """

    def __init__(self, outcomes: Sequence[RunOutcome]):
        self.outcomes = list(outcomes)
        self.failed = [o for o in self.outcomes if not o.ok]
        parts = ", ".join(
            f"{o.request.key}={o.status}" for o in self.failed[:6]
        )
        more = "" if len(self.failed) <= 6 else f" (+{len(self.failed) - 6} more)"
        super().__init__(
            f"{len(self.failed)}/{len(self.outcomes)} grid runs failed: "
            f"{parts}{more}"
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > CPU count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# -- worker side ------------------------------------------------------------

_WORKER_RUNNER: Optional["SuiteRunner"] = None


def _init_worker(
    config: "GPUConfig",
    energy_params: "EnergyParams",
    watchdog: Optional[WatchdogConfig] = None,
) -> None:
    global _WORKER_RUNNER
    from ..energy.model import EnergyModel
    from .runner import SuiteRunner

    _WORKER_RUNNER = SuiteRunner(
        config=config,
        energy_model=EnergyModel(energy_params),
        cache=False,
        watchdog=watchdog,
    )


def _run_request(request: RunRequest) -> "RunResult":
    assert _WORKER_RUNNER is not None, "worker not initialized"
    if os.environ.get("REPRO_FAULTS"):
        from .faults import maybe_fire

        maybe_fire(request.key)
    return _WORKER_RUNNER.run(
        request.benchmark,
        request.backend,
        osu_entries=request.osu_entries,
        window_series=request.window_series,
        **dict(request.overrides),
    )


# -- parent side ------------------------------------------------------------


def run_requests(
    config: "GPUConfig",
    energy_params: "EnergyParams",
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    policy: Optional[FaultPolicy] = None,
    watchdog: Optional[WatchdogConfig] = None,
) -> List["RunResult"]:
    """Run every request in worker processes; results in request order.

    Without a ``policy`` this is the bare fast path (any failure
    propagates).  With one, failures are retried per the policy and a
    :class:`GridFailure` carrying partial results is raised if any request
    still can't complete.
    """
    if not requests:
        return []
    if policy is None and watchdog is None:
        jobs = min(resolve_jobs(jobs), len(requests))
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(config, energy_params),
        ) as pool:
            return list(pool.map(_run_request, requests))
    outcomes = run_requests_resilient(
        config, energy_params, requests, jobs=jobs, policy=policy,
        watchdog=watchdog,
    )
    if any(not o.ok for o in outcomes):
        raise GridFailure(outcomes)
    return [o.result for o in outcomes]  # type: ignore[misc]


@dataclass
class _Tracked:
    request: RunRequest
    attempts: int = 0
    failures: int = 0
    last_error: str = ""
    last_diagnostics: Optional[Dict[str, Any]] = None
    outcome: Optional[RunOutcome] = None


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Terminate every worker and abandon the pool (its in-flight futures
    will resolve to :class:`BrokenProcessPool`; we no longer hold them)."""
    processes = getattr(pool, "_processes", None) or {}
    for proc in list(processes.values()):
        proc.terminate()
    pool.shutdown(wait=False, cancel_futures=True)


def run_requests_resilient(
    config: "GPUConfig",
    energy_params: "EnergyParams",
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
    policy: Optional[FaultPolicy] = None,
    watchdog: Optional[WatchdogConfig] = None,
    metrics: Optional["MetricScope"] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_outcome: Optional[Callable[[int, RunOutcome], None]] = None,
) -> List[RunOutcome]:
    """Run the grid with timeouts, retries, and dead-worker recovery.

    Never raises for per-run failures: every request terminates in a
    :class:`RunOutcome` (request order).  ``metrics`` (a
    :class:`~repro.obs.metrics.MetricScope`) receives ``grid.*`` failure
    events.  ``sleep``/``clock`` are injectable for tests.

    Identical requests (equal :class:`RunRequest` fields, hence equal
    :attr:`RunRequest.identity`) **dedupe to one execution**: only the
    first occurrence is submitted, and every duplicate receives its own
    :class:`RunOutcome` sharing the executed result (``grid.deduped`` is
    emitted per duplicate).

    ``on_outcome`` is called as ``on_outcome(index, outcome)`` the moment
    a request reaches its terminal outcome — out of request order, from
    the calling thread.  This is the streaming hook the async service
    layer bridges onto an event loop; callbacks must not block.
    """
    policy = policy or FaultPolicy()
    n = len(requests)
    if n == 0:
        return []
    tracked = [_Tracked(req) for req in requests]
    # Dedupe identical requests: the first occurrence is the primary and
    # the only one executed; duplicates fan in at finalize time.
    primary_of: Dict[RunRequest, int] = {}
    duplicates: Dict[int, List[int]] = {}
    primaries: List[int] = []
    for i, req in enumerate(requests):
        first = primary_of.setdefault(req, i)
        if first == i:
            primaries.append(i)
        else:
            duplicates.setdefault(first, []).append(i)
    jobs = min(resolve_jobs(jobs), len(primaries))
    queue: deque = deque(primaries)  # indices ready to submit now
    waiting: List[Tuple[float, int]] = []  # (eligible_at, index) backoff heap
    inflight: Dict[Any, Tuple[int, Optional[float]]] = {}  # fut -> (idx, deadline)
    done_count = 0

    def emit(name: str, amount: float = 1.0) -> None:
        if metrics is not None:
            metrics.inc(name, amount)

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_init_worker,
            initargs=(config, energy_params, watchdog),
        )

    def finalize(idx: int, status: str, result=None) -> None:
        nonlocal done_count
        t = tracked[idx]
        diagnostics = t.last_diagnostics if status != RunOutcome.OK else None
        t.outcome = RunOutcome(
            request=t.request,
            status=status,
            result=result,
            attempts=t.attempts,
            retried=max(0, t.attempts - 1),
            error=t.last_error,
            diagnostics=diagnostics,
        )
        done_count += 1
        emit(f"grid.{status}")
        if on_outcome is not None:
            on_outcome(idx, t.outcome)
        for dup in duplicates.get(idx, ()):
            d = tracked[dup]
            d.outcome = RunOutcome(
                request=d.request,
                status=status,
                result=result,
                attempts=t.attempts,
                retried=max(0, t.attempts - 1),
                error=t.last_error,
                diagnostics=diagnostics,
            )
            done_count += 1
            emit("grid.deduped")
            if on_outcome is not None:
                on_outcome(dup, d.outcome)

    def record_failure(idx: int, kind: str, error: str, now: float,
                       diagnostics: Optional[Dict[str, Any]] = None) -> None:
        t = tracked[idx]
        t.failures += 1
        t.last_error = error
        if diagnostics is not None:
            t.last_diagnostics = diagnostics
        emit(f"grid.failure_{kind}")
        if t.attempts > policy.retries:
            finalize(idx, kind)
        elif t.failures >= policy.quarantine_after:
            finalize(idx, RunOutcome.QUARANTINED)
        else:
            emit("grid.retries")
            eligible = now + policy.delay(t.request.key, t.attempts)
            heapq.heappush(waiting, (eligible, idx))

    pool = make_pool()
    try:
        while done_count < n:
            now = clock()
            while waiting and waiting[0][0] <= now:
                queue.append(heapq.heappop(waiting)[1])
            # Keep in-flight <= jobs so the submit timestamp approximates
            # the start timestamp — the per-run deadline then measures run
            # time, not queue time.
            while queue and len(inflight) < jobs:
                idx = queue.popleft()
                tracked[idx].attempts += 1
                fut = pool.submit(_run_request, requests[idx])
                deadline = (now + policy.timeout) if policy.timeout else None
                inflight[fut] = (idx, deadline)
            if not inflight:
                if waiting:
                    sleep(max(0.0, waiting[0][0] - clock()))
                    continue
                break  # defensive: nothing running, nothing waiting
            wait_for: List[float] = []
            deadlines = [d for (_, d) in inflight.values() if d is not None]
            if deadlines:
                wait_for.append(min(deadlines) - now)
            if waiting:
                wait_for.append(waiting[0][0] - now)
            timeout = max(0.0, min(wait_for)) if wait_for else None
            done, _ = futures_wait(
                set(inflight), timeout=timeout, return_when=FIRST_COMPLETED
            )
            now = clock()
            if done:
                broken = False
                for fut in done:
                    idx, _ = inflight.pop(fut)
                    try:
                        result = fut.result()
                    except BrokenProcessPool:
                        broken = True
                        record_failure(
                            idx, RunOutcome.CRASHED, "worker died (pool broken)",
                            now,
                        )
                    except SimulationHang as exc:
                        record_failure(idx, RunOutcome.HUNG, str(exc), now,
                                       diagnostics=exc.diagnostics)
                    except Exception as exc:  # noqa: BLE001
                        record_failure(
                            idx, RunOutcome.CRASHED,
                            f"{type(exc).__name__}: {exc}", now,
                        )
                    else:
                        finalize(idx, RunOutcome.OK, result)
                if broken:
                    # A dead worker poisons every in-flight future and the
                    # culprit is unattributable — charge them all rather
                    # than retry a possibly-poisonous run for free.
                    for doomed, (idx, _) in list(inflight.items()):
                        record_failure(
                            idx, RunOutcome.CRASHED,
                            "worker died (pool broken)", now,
                        )
                    inflight.clear()
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = make_pool()
                    emit("grid.pool_rebuilds")
                continue
            # No future finished before the wait timeout: check deadlines.
            expired = [
                (fut, idx)
                for fut, (idx, d) in inflight.items()
                if d is not None and d <= now and not fut.done()
            ]
            if not expired:
                continue
            expired_set = {fut for fut, _ in expired}
            # A running future can't be cancelled — kill the pool.  The
            # expired runs are charged; innocent in-flight runs requeue
            # with their attempt refunded.
            for fut, (idx, _) in list(inflight.items()):
                if fut in expired_set:
                    record_failure(
                        idx, RunOutcome.HUNG,
                        f"run exceeded {policy.timeout}s deadline", now,
                    )
                else:
                    tracked[idx].attempts -= 1
                    queue.append(idx)
            inflight.clear()
            _kill_pool(pool)
            pool = make_pool()
            emit("grid.pool_rebuilds")
            emit("grid.pool_kills")
    finally:
        pool.shutdown(wait=False, cancel_futures=True)
    outcomes = [t.outcome for t in tracked]
    assert all(o is not None for o in outcomes)
    return outcomes  # type: ignore[return-value]
