"""Parallel fan-out of simulation-grid runs over worker processes.

The evaluation grid — (benchmark x backend x OSU capacity) — is
embarrassingly parallel: every run is an independent cycle-level
simulation.  :func:`run_requests` executes a batch of
:class:`RunRequest`\\ s on a :class:`~concurrent.futures.ProcessPoolExecutor`
and returns :class:`~repro.harness.runner.RunResult`\\ s in request order.

Each worker process holds one private
:class:`~repro.harness.runner.SuiteRunner` (disk cache off — the parent
coordinates the cache), so compiled kernels and workloads are reused across
the runs a worker receives.

Worker count resolution order: explicit argument, then ``REPRO_JOBS``, then
``os.cpu_count()``.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.model import EnergyParams
    from ..sim.config import GPUConfig
    from .runner import RunResult, SuiteRunner

__all__ = ["RunRequest", "resolve_jobs", "run_requests"]


@dataclass(frozen=True)
class RunRequest:
    """One cell of the simulation grid, in picklable/hashable form."""

    benchmark: str
    backend: str
    osu_entries: int = 512
    window_series: Tuple[str, ...] = ()
    #: sorted ``GPUConfig`` override items (e.g. ``(("scheduler", "lrr"),)``).
    overrides: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        benchmark: str,
        backend: str,
        osu_entries: int = 512,
        window_series: Sequence[str] = (),
        **overrides: Any,
    ) -> "RunRequest":
        return cls(
            benchmark=benchmark,
            backend=backend,
            osu_entries=osu_entries,
            window_series=tuple(window_series),
            overrides=tuple(sorted(overrides.items())),
        )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Worker count: explicit argument > ``REPRO_JOBS`` > CPU count."""
    if jobs is not None:
        return max(1, int(jobs))
    env = os.environ.get("REPRO_JOBS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return os.cpu_count() or 1


# -- worker side ------------------------------------------------------------

_WORKER_RUNNER: Optional["SuiteRunner"] = None


def _init_worker(config: "GPUConfig", energy_params: "EnergyParams") -> None:
    global _WORKER_RUNNER
    from ..energy.model import EnergyModel
    from .runner import SuiteRunner

    _WORKER_RUNNER = SuiteRunner(
        config=config, energy_model=EnergyModel(energy_params), cache=False
    )


def _run_request(request: RunRequest) -> "RunResult":
    assert _WORKER_RUNNER is not None, "worker not initialized"
    return _WORKER_RUNNER.run(
        request.benchmark,
        request.backend,
        osu_entries=request.osu_entries,
        window_series=request.window_series,
        **dict(request.overrides),
    )


# -- parent side ------------------------------------------------------------


def run_requests(
    config: "GPUConfig",
    energy_params: "EnergyParams",
    requests: Sequence[RunRequest],
    jobs: Optional[int] = None,
) -> List["RunResult"]:
    """Run every request in worker processes; results in request order."""
    if not requests:
        return []
    jobs = min(resolve_jobs(jobs), len(requests))
    with ProcessPoolExecutor(
        max_workers=jobs,
        initializer=_init_worker,
        initargs=(config, energy_params),
    ) as pool:
        return list(pool.map(_run_request, requests))
