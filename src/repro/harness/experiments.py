"""One function per evaluation table/figure of the paper.

Every function takes a :class:`~repro.harness.runner.SuiteRunner` (runs are
memoized across experiments) and returns plain data structures; rendering
lives in :mod:`repro.harness.report`.  The experiment ids match the paper:

======== ==========================================================
fig2     register working set per 100-cycle window, GTO vs 2-level
fig3     backing-store accesses over time (hotspot)
fig5     live registers per static instruction (particle_filter)
fig11    area vs OSU capacity
fig12    power vs OSU capacity
fig13    run time vs GPU energy Pareto across capacities
fig14    register-file energy: RFH / RFV / RegLess vs baseline
fig15    total GPU energy (incl. the "No RF" bound)
fig16    run time vs baseline (+ no-compressor / RFV / RFH geomeans)
fig17    preload service location (OSU/compressor/L1/L2-DRAM)
fig18    RegLess L1 requests per cycle by type
fig19    per-region preloads and concurrent-live statistics
table2   static instructions and dynamic cycles per region
======== ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..energy.area import AreaModel, OSU_CAPACITY_SWEEP
from ..workloads import workload_names
from .parallel import RunRequest
from .runner import SuiteRunner

__all__ = [
    "fig2_working_set",
    "fig3_backing_store",
    "fig5_liveness_seams",
    "fig11_area",
    "fig12_power",
    "fig13_pareto",
    "fig14_rf_energy",
    "fig15_gpu_energy",
    "fig16_runtime",
    "fig17_preload_location",
    "fig18_l1_bandwidth",
    "fig19_region_registers",
    "table2_region_sizes",
    "energy_breakdown",
    "geomean",
    "EXPERIMENTS",
]


def geomean(values: Sequence[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return math.exp(sum(math.log(v) for v in vals) / len(vals))


def _names(names: Optional[Sequence[str]]) -> List[str]:
    return list(names) if names else workload_names()


# ---------------------------------------------------------------------------
# Figure 2 — register working set, GTO vs two-level
# ---------------------------------------------------------------------------


def fig2_working_set(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Tuple[float, float]]:
    """benchmark -> (GTO KB, two-level KB) mean working set per window."""
    names = _names(names)
    runner.run_grid(
        [RunRequest.make(n, "baseline", track_working_set=True)
         for n in names]
        + [RunRequest.make(n, "baseline", track_working_set=True,
                           scheduler="two_level")
           for n in names]
    )
    result: Dict[str, Tuple[float, float]] = {}
    for name in names:
        gto = runner.run(name, "baseline", track_working_set=True)
        two = runner.run(
            name, "baseline", track_working_set=True, scheduler="two_level"
        )
        result[name] = (
            gto.stats.working_set_kb(),
            two.stats.working_set_kb(),
        )
    return result


# ---------------------------------------------------------------------------
# Figure 3 — backing-store accesses per 100 cycles over time (hotspot)
# ---------------------------------------------------------------------------


@dataclass
class BackingStoreSeries:
    baseline: List[float]
    rfh: List[float]
    regless: List[float]


def fig3_backing_store(
    runner: SuiteRunner, benchmark: str = "hotspot"
) -> BackingStoreSeries:
    """Accesses to each design's register backing store per 100-cycle
    window: main RF for baseline, MRF for RFH, L1 for RegLess."""
    rf_series = ("rf_read", "rf_write")
    runner.run_grid([
        RunRequest.make(benchmark, "baseline", window_series=rf_series),
        RunRequest.make(benchmark, "rfh", window_series=rf_series),
        RunRequest.make(benchmark, "regless", window_series=("l1_access",)),
    ])
    base = runner.run(benchmark, "baseline", window_series=rf_series)
    rfh = runner.run(benchmark, "rfh", window_series=rf_series)
    regless = runner.run(benchmark, "regless", window_series=("l1_access",))

    def combine(stats, keys):
        seqs = [stats.window_series[k] for k in keys]
        return [sum(vals) for vals in zip(*seqs)] if len(seqs) > 1 else seqs[0]

    return BackingStoreSeries(
        baseline=combine(base.stats, rf_series),
        rfh=combine(rfh.stats, rf_series),
        regless=list(regless.stats.window_series["l1_access"]),
    )


# ---------------------------------------------------------------------------
# Figure 5 — live-register seams
# ---------------------------------------------------------------------------


def fig5_liveness_seams(
    runner: SuiteRunner, benchmark: str = "particle_filter"
) -> List[int]:
    """Live-register count before each static instruction; local minima are
    the natural region seams."""
    return runner.compiled(benchmark).liveness.live_counts()


# ---------------------------------------------------------------------------
# Figures 11/12 — area and power vs capacity
# ---------------------------------------------------------------------------


def fig11_area(
    capacities: Sequence[int] = OSU_CAPACITY_SWEEP,
) -> Dict[int, Dict[str, float]]:
    model = AreaModel()
    return {n: model.area(n).as_dict() for n in capacities}


def fig12_power(
    runner: SuiteRunner,
    capacities: Sequence[int] = OSU_CAPACITY_SWEEP,
    reference: str = "hotspot",
) -> Dict[int, Dict[str, float]]:
    """Normalized combined power per capacity, driven by the measured OSU
    activity of a reference run (the paper drove its netlist with
    simulation traces)."""
    ref = runner.run(reference, "regless")
    accesses = (
        ref.stats.counter("osu_read") + ref.stats.counter("osu_write")
    ) / max(1, ref.cycles)
    model = AreaModel()
    return {
        n: model.power(n, accesses_per_cycle=accesses, params=runner.energy_model.params)
        for n in capacities
    }


# ---------------------------------------------------------------------------
# Figure 13 — run time vs GPU energy Pareto
# ---------------------------------------------------------------------------


def fig13_pareto(
    runner: SuiteRunner,
    capacities: Sequence[int] = (128, 192, 256, 384, 512, 1024),
    names: Optional[Sequence[str]] = None,
) -> Dict[int, Tuple[float, float]]:
    """capacity -> (normalized run time, normalized GPU energy), geomean
    across benchmarks."""
    names = _names(names)
    runner.run_grid(
        [RunRequest.make(n, "baseline") for n in names]
        + [RunRequest.make(n, "regless", osu_entries=cap)
           for cap in capacities for n in names]
    )
    result: Dict[int, Tuple[float, float]] = {}
    for cap in capacities:
        runtimes, energies = [], []
        for name in names:
            base = runner.run(name, "baseline")
            res = runner.run(name, "regless", osu_entries=cap)
            runtimes.append(res.cycles / base.cycles)
            energies.append(res.gpu_energy / base.gpu_energy)
        result[cap] = (geomean(runtimes), geomean(energies))
    return result


# ---------------------------------------------------------------------------
# Figures 14/15 — energy comparisons
# ---------------------------------------------------------------------------


def fig14_rf_energy(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> {rfh, rfv, regless}: RF energy normalized to baseline."""
    names = _names(names)
    runner.prefetch(names)
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = runner.run(name, "baseline")
        result[name] = {
            b: runner.run(name, b).rf_energy / base.rf_energy
            for b in ("rfh", "rfv", "regless")
        }
    return result


def fig15_gpu_energy(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> {no_rf, rfh, rfv, regless}: total GPU energy normalized
    to baseline ("no_rf" is the upper bound: a free register file)."""
    names = _names(names)
    runner.prefetch(names)
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        base = runner.run(name, "baseline")
        row = {
            b: runner.run(name, b).gpu_energy / base.gpu_energy
            for b in ("rfh", "rfv", "regless")
        }
        row["no_rf"] = runner.no_rf_energy(name) / base.gpu_energy
        result[name] = row
    return result


# ---------------------------------------------------------------------------
# Figure 16 — run time
# ---------------------------------------------------------------------------


@dataclass
class RuntimeResult:
    per_benchmark: Dict[str, float]  # regless vs baseline
    geomean_regless: float
    geomean_no_compressor: float
    geomean_rfv: float
    geomean_rfh: float


def fig16_runtime(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> RuntimeResult:
    names = _names(names)
    runner.prefetch(
        names, backends=("baseline", "regless", "regless-nc", "rfv", "rfh")
    )
    per: Dict[str, float] = {}
    ratios = {b: [] for b in ("regless", "regless-nc", "rfv", "rfh")}
    for name in names:
        base = runner.run(name, "baseline")
        for b in ratios:
            res = runner.run(name, b)
            ratios[b].append(res.cycles / base.cycles)
        per[name] = ratios["regless"][-1]
    return RuntimeResult(
        per_benchmark=per,
        geomean_regless=geomean(ratios["regless"]),
        geomean_no_compressor=geomean(ratios["regless-nc"]),
        geomean_rfv=geomean(ratios["rfv"]),
        geomean_rfh=geomean(ratios["rfh"]),
    )


# ---------------------------------------------------------------------------
# Figure 17 — preload service location
# ---------------------------------------------------------------------------


def fig17_preload_location(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> fraction of preloads served from each location.

    Launch-constant preloads (values synthesized by the launch mechanism)
    are folded into the compressor column, as they are pattern-served."""
    names = _names(names)
    runner.prefetch(names, backends=("regless",))
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        res = runner.run(name, "regless")
        c = res.stats.counters
        total = max(1.0, c.get("preloads", 0.0))
        result[name] = {
            "osu": c.get("preload_src_osu", 0.0) / total,
            "compressor": (
                c.get("preload_src_compressor", 0.0)
                + c.get("preload_src_const", 0.0)
            )
            / total,
            "l1": c.get("preload_src_l1", 0.0) / total,
            "l2dram": c.get("preload_src_l2dram", 0.0) / total,
        }
    return result


# ---------------------------------------------------------------------------
# Figure 18 — RegLess L1 bandwidth
# ---------------------------------------------------------------------------


def fig18_l1_bandwidth(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> L1 requests/cycle split into preloads / stores /
    invalidations."""
    names = _names(names)
    runner.prefetch(names, backends=("regless",))
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        res = runner.run(name, "regless")
        c = res.stats.counters
        cycles = max(1, res.cycles)
        result[name] = {
            "preloads": c.get("l1_preload_req", 0.0) / cycles,
            "stores": (
                c.get("l1_reg_store", 0.0)
            )
            / cycles,
            "invalidations": c.get("l1_inval_req", 0.0) / cycles,
        }
    return result


# ---------------------------------------------------------------------------
# Figure 19 — per-region register statistics
# ---------------------------------------------------------------------------


def fig19_region_registers(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> mean preloads / mean concurrent live / stddev live."""
    result: Dict[str, Dict[str, float]] = {}
    for name in _names(names):
        ck = runner.compiled(name)
        result[name] = {
            "preloads": ck.mean_preloads_per_region(),
            "mean_live": ck.mean_live_per_region(),
            "std_live": ck.std_live_per_region(),
        }
    return result


# ---------------------------------------------------------------------------
# Table 2 — region sizes
# ---------------------------------------------------------------------------


def table2_region_sizes(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """benchmark -> static instructions per region, dynamic cycles per
    region execution (measured on the RegLess run)."""
    names = _names(names)
    runner.prefetch(names, backends=("regless",))
    result: Dict[str, Dict[str, float]] = {}
    for name in names:
        ck = runner.compiled(name)
        res = runner.run(name, "regless")
        c = res.stats.counters
        executions = max(1.0, c.get("region_executions", 0.0))
        result[name] = {
            "insns": ck.mean_insns_per_region(),
            "cycles": c.get("region_cycles_total", 0.0) / executions,
        }
    return result


# ---------------------------------------------------------------------------
# Extra: per-component GPU energy breakdown (not a numbered paper figure,
# but the decomposition behind Figures 14/15)
# ---------------------------------------------------------------------------


def energy_breakdown(
    runner: SuiteRunner, names: Optional[Sequence[str]] = None
) -> Dict[str, Dict[str, float]]:
    """backend -> mean energy component shares (fractions of that backend's
    own total), averaged across benchmarks."""
    names = _names(names)
    runner.prefetch(names)
    result: Dict[str, Dict[str, float]] = {}
    for backend in ("baseline", "rfh", "rfv", "regless"):
        acc: Dict[str, float] = {}
        for name in names:
            br = runner.run(name, backend).energy
            total = br.total
            for key, value in br.as_dict().items():
                if key == "total":
                    continue
                acc[key] = acc.get(key, 0.0) + value / total
        result[backend] = {k: v / len(names) for k, v in acc.items()}
    return result


#: registry used by the CLI.
EXPERIMENTS = {
    "fig2": fig2_working_set,
    "fig3": fig3_backing_store,
    "fig5": fig5_liveness_seams,
    "fig12": fig12_power,
    "fig13": fig13_pareto,
    "fig14": fig14_rf_energy,
    "fig15": fig15_gpu_energy,
    "fig16": fig16_runtime,
    "fig17": fig17_preload_location,
    "fig18": fig18_l1_bandwidth,
    "fig19": fig19_region_registers,
    "table2": table2_region_sizes,
    "breakdown": energy_breakdown,
}
