"""Claim validation: check the paper's headline results against this build.

Runs the evaluation grid and scores each transferable claim of the paper as
PASS / FAIL with the measured value next to the paper's.  This is the
programmatic form of EXPERIMENTS.md — run it with::

    python -m repro.harness validate
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..workloads import workload_names
from . import experiments as ex
from .runner import SuiteRunner

__all__ = ["Claim", "validate_claims", "render_claims"]


@dataclass
class Claim:
    """One checkable statement from the paper."""

    source: str  # where the paper states it
    statement: str
    paper_value: str
    measured: float
    ok: bool

    def render(self) -> str:
        status = "PASS" if self.ok else "FAIL"
        return (
            f"[{status}] {self.source}: {self.statement}\n"
            f"       paper: {self.paper_value}   measured: {self.measured:.3f}"
        )


def validate_claims(
    runner: Optional[SuiteRunner] = None,
    names: Optional[Sequence[str]] = None,
) -> List[Claim]:
    runner = runner or SuiteRunner()
    names = list(names) if names else workload_names()
    claims: List[Claim] = []

    def add(source, statement, paper_value, measured, ok):
        claims.append(Claim(source, statement, paper_value, measured, ok))

    # -- Figure 16 / abstract: no average performance loss -----------------
    runtime = ex.fig16_runtime(runner, names)
    add(
        "Abstract / Fig. 16",
        "RegLess-512 run time matches the baseline (geomean)",
        "1.00x",
        runtime.geomean_regless,
        0.93 <= runtime.geomean_regless <= 1.07,
    )
    add(
        "Fig. 16",
        "Removing the compressor does not help (paper: costs 10.2%)",
        ">= regless",
        runtime.geomean_no_compressor,
        runtime.geomean_no_compressor >= runtime.geomean_regless - 0.01,
    )

    # -- Figures 14/15: energy ------------------------------------------------
    rf = ex.fig14_rf_energy(runner, names)
    mean_rf = {
        b: sum(row[b] for row in rf.values()) / len(rf)
        for b in ("rfh", "rfv", "regless")
    }
    add(
        "Abstract / Fig. 14",
        "RegLess saves most of the register-structure energy",
        "75.3% saved",
        1 - mean_rf["regless"],
        (1 - mean_rf["regless"]) > 0.60,
    )
    add(
        "Fig. 14",
        "RegLess saves more RF energy than both RFH and RFV",
        "75.3 > 62.0 > 45.2",
        mean_rf["regless"],
        mean_rf["regless"] < min(mean_rf["rfh"], mean_rf["rfv"]),
    )

    gpu = ex.fig15_gpu_energy(runner, names)
    mean_gpu = {
        k: sum(row[k] for row in gpu.values()) / len(gpu)
        for k in ("no_rf", "rfh", "rfv", "regless")
    }
    add(
        "Abstract / Fig. 15",
        "RegLess saves ~11% of total GPU energy",
        "11%",
        1 - mean_gpu["regless"],
        0.07 <= (1 - mean_gpu["regless"]) <= 0.15,
    )
    add(
        "Fig. 15",
        "The No-RF upper bound is ~16.7% and RegLess approaches it",
        "16.7%",
        1 - mean_gpu["no_rf"],
        0.13 <= (1 - mean_gpu["no_rf"]) <= 0.21
        and mean_gpu["regless"] >= mean_gpu["no_rf"],
    )

    # -- Figure 17: preload locations ---------------------------------------------
    preloads = ex.fig17_preload_location(runner, names)
    mean_l1 = sum(r["l1"] for r in preloads.values()) / len(preloads)
    mean_far = sum(r["l2dram"] for r in preloads.values()) / len(preloads)
    add(
        "Fig. 17",
        "Preloads rarely reach the L1 (paper: 0.9% on average)",
        "0.9%",
        mean_l1,
        mean_l1 < 0.05,
    )
    add(
        "Fig. 17",
        "Preloads almost never reach L2/DRAM (paper: 0.013%)",
        "0.013%",
        mean_far,
        mean_far < 0.02,
    )

    # -- Figure 18: L1 bandwidth ------------------------------------------------------
    l1bw = ex.fig18_l1_bandwidth(runner, names)
    mean_bw = sum(sum(r.values()) for r in l1bw.values()) / len(l1bw)
    add(
        "Fig. 18",
        "RegLess uses a tiny fraction of the 1-request/cycle L1 port",
        "<0.02 req/cycle",
        mean_bw,
        mean_bw < 0.15,
    )

    # -- Figure 19 / Table 2: region structure ------------------------------------------
    regions = ex.fig19_region_registers(runner, names)
    live_gt_preloads = sum(
        1 for r in regions.values() if r["mean_live"] >= r["preloads"]
    )
    add(
        "Fig. 19",
        "Concurrent live registers exceed preloads (entry reuse) in most "
        "benchmarks",
        "all benchmarks",
        live_gt_preloads / len(regions),
        live_gt_preloads >= 0.8 * len(regions),
    )

    table2 = ex.table2_region_sizes(runner, names)
    if "lud" in table2 and "bfs" in table2:
        add(
            "Table 2",
            "Compute-dense lud has larger regions than memory-bound bfs",
            "16.0 vs 3.3 insns",
            table2["lud"]["insns"] / max(0.1, table2["bfs"]["insns"]),
            table2["lud"]["insns"] > table2["bfs"]["insns"],
        )

    # -- Figure 2: scheduler working sets ----------------------------------------------------
    ws = ex.fig2_working_set(runner, names[:8])
    mean_gto = sum(g for g, _ in ws.values()) / len(ws)
    add(
        "Fig. 2",
        "Per-window register working set is a small fraction of the RF",
        "<10% of capacity for most",
        mean_gto / 256.0,
        mean_gto < 128.0,
    )

    return claims


def render_claims(claims: List[Claim]) -> str:
    lines = [c.render() for c in claims]
    passed = sum(c.ok for c in claims)
    lines.append(f"\n{passed}/{len(claims)} claims hold")
    return "\n".join(lines)
