"""Command-line entry point: ``python -m repro.harness <experiment>``.

Examples::

    python -m repro.harness fig16                 # run-time comparison
    python -m repro.harness fig17 --names bfs nw  # subset of benchmarks
    python -m repro.harness all                   # every experiment
    python -m repro.harness all --jobs 8          # fan runs over 8 workers
    python -m repro.harness bench                 # time serial/parallel/warm
    python -m repro.harness fig16 --profile       # cProfile hotspots
    python -m repro.harness stalls bfs nw         # warp-cycle stall breakdown
    python -m repro.harness trace bfs --perfetto  # Chrome-trace JSON export
    python -m repro.harness seeds                 # seed-stability study
    python -m repro.harness all --timeout 300 --retries 2   # resilient sweep

Worker count defaults to ``REPRO_JOBS`` or the CPU count; results persist
in the cache described in :mod:`repro.harness.cache` unless ``--no-cache``
(or ``REPRO_CACHE=0``) is given.

``--timeout``/``--retries`` turn on the resilience layer
(docs/robustness.md): per-run watchdog + wall-clock deadline, retries with
backoff, dead-worker recovery.  A sweep that still cannot complete prints
the per-run outcome summary and exits with status 3 — completed runs stay
cached, so the re-run only repeats the failures.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from . import experiments as ex
from . import report
from ..sim.watchdog import WatchdogConfig
from .bench import run_bench
from .parallel import FaultPolicy, GridFailure
from .runner import BACKENDS, SuiteRunner
from .export import export_all
from .robustness import render_robustness, seed_robustness
from .validate import render_claims, validate_claims

__all__ = ["main"]

_RENDER = {
    "fig2": (ex.fig2_working_set, report.render_fig2),
    "fig3": (ex.fig3_backing_store, report.render_fig3),
    "fig5": (ex.fig5_liveness_seams, report.render_fig5),
    "fig11": (None, None),  # special-cased: no runner needed
    "fig12": (ex.fig12_power, report.render_fig12),
    "fig13": (ex.fig13_pareto, report.render_fig13),
    "fig14": (ex.fig14_rf_energy, report.render_fig14),
    "fig15": (ex.fig15_gpu_energy, report.render_fig15),
    "fig16": (ex.fig16_runtime, report.render_fig16),
    "fig17": (ex.fig17_preload_location, report.render_fig17),
    "fig18": (ex.fig18_l1_bandwidth, report.render_fig18),
    "fig19": (ex.fig19_region_registers, report.render_fig19),
    "table2": (ex.table2_region_sizes, report.render_table2),
    "breakdown": (ex.energy_breakdown, report.render_breakdown),
}

_NAMED = ("fig2", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
          "table2", "breakdown")


def run_experiment(name: str, runner: SuiteRunner,
                   names: Optional[List[str]] = None) -> str:
    if name == "fig11":
        return report.render_fig11(ex.fig11_area())
    fn, render = _RENDER[name]
    if name in _NAMED:
        # Keyword, not positional: some experiments (fig13) take other
        # parameters before ``names``.
        return render(fn(runner, names=names))
    return render(fn(runner))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.harness",
        description="Regenerate the RegLess paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(_RENDER) + ["all", "validate", "seeds", "robustness",
                                   "export", "bench", "stalls", "trace",
                                   "serve"],
        help="which table/figure to regenerate ('validate' checks the "
             "paper's claims; 'bench' times the execution layer; 'stalls' "
             "prints the warp-cycle stall breakdown; 'trace' records a "
             "pipeline trace; 'seeds' runs the seed-stability study — "
             "'robustness' is its deprecated alias; 'serve' starts the "
             "simulation-service daemon, see docs/service.md)",
    )
    parser.add_argument(
        "benchmarks",
        nargs="*",
        help="positional benchmark subset (same as --names)",
    )
    parser.add_argument(
        "--names",
        nargs="*",
        default=None,
        help="benchmark subset (default: all 21)",
    )
    parser.add_argument(
        "--out",
        default="results",
        help="output directory for 'export' and 'trace' (default: results/)",
    )
    parser.add_argument(
        "--backend",
        choices=BACKENDS + ("regless-nc",),
        default=None,
        help="restrict 'stalls' to one backend (default: all four) / "
             "pick the 'trace' backend (default: regless)",
    )
    parser.add_argument(
        "--perfetto",
        action="store_true",
        help="for 'trace': write Chrome-trace JSON (open in "
             "https://ui.perfetto.dev) instead of printing text",
    )
    parser.add_argument(
        "--format",
        choices=("csv", "json"),
        default="csv",
        help="export format (default: csv)",
    )
    parser.add_argument(
        "--backends",
        nargs="*",
        choices=BACKENDS + ("regless-nc", "all"),
        default=None,
        help="for 'bench': backend subset (default: the four paper "
             "backends; 'all' expands to all five including regless-nc)",
    )
    parser.add_argument(
        "--json",
        dest="json_path",
        default=None,
        metavar="PATH",
        help="for 'bench': also write the machine-readable measurement "
             "(per-run wall-clock, simulated cycles, cycles/sec) as JSON",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for the run grid "
             "(default: $REPRO_JOBS or CPU count)",
    )
    parser.add_argument(
        "--scaling",
        action="store_true",
        help="for 'bench': additionally sweep the cold parallel leg over "
             "--jobs in {1,2,4,8} and report runs-vs-jobs-vs-wall-clock "
             "rows (included in the --json payload as 'scaling')",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="skip the persistent result cache for this invocation",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-run wall-clock deadline; enables the resilient grid "
             "(hung runs are killed and retried) and the in-run watchdog",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="retries per failing run before it is reported (default 2 "
             "when --timeout is given); enables the resilient grid",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="for 'serve': bind address (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=8787,
        help="for 'serve': TCP port; 0 picks a free port and prints it "
             "(default 8787)",
    )
    parser.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help="for 'serve': directory for the persisted job queue — "
             "enables graceful drain/restart (default: in-memory only)",
    )
    parser.add_argument(
        "--batch-runs",
        type=int,
        default=32,
        metavar="N",
        help="for 'serve': max unique runs per scheduler batch "
             "(default 32)",
    )
    parser.add_argument(
        "--compact-every",
        type=int,
        default=256,
        metavar="N",
        help="for 'serve': journal records between snapshot compactions "
             "(default 256)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="for 'serve': default per-job deadline; overdue jobs keep "
             "finished runs and mark the rest 'expired' (default: none)",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=4096,
        metavar="N",
        help="for 'serve': backpressure bound on queued runs; beyond it "
             "submissions are shed with 503 (default 4096)",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        metavar="N",
        help="for 'serve': consecutive broken batches that open the "
             "executor circuit breaker (default 3)",
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="for 'serve': seconds the breaker stays open before a "
             "half-open recovery probe (default 30)",
    )
    args = parser.parse_args(argv)

    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            return _dispatch(args)
        finally:
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(25)
    return _dispatch(args)


def _dispatch(args: argparse.Namespace) -> int:
    if args.experiment == "bench":
        names = args.names if args.names is not None else (args.benchmarks or None)
        backends = args.backends or BACKENDS
        if "all" in backends:
            backends = BACKENDS + ("regless-nc",)
        print(run_bench(
            names=names,
            backends=backends,
            jobs=args.jobs,
            json_path=args.json_path,
            scaling=args.scaling,
        ))
        return 0

    names = args.names if args.names is not None else (args.benchmarks or None)
    policy = None
    watchdog = None
    if args.timeout is not None or args.retries is not None:
        policy = FaultPolicy(
            timeout=args.timeout,
            retries=args.retries if args.retries is not None else 2,
        )
        if args.timeout is not None:
            watchdog = WatchdogConfig(max_wall_seconds=args.timeout)

    if args.experiment == "serve":
        return _serve(args, policy, watchdog)
    runner = SuiteRunner(
        cache=False if args.no_cache else None, jobs=args.jobs,
        policy=policy, watchdog=watchdog,
    )
    try:
        return _dispatch_runner(args, runner, names)
    except GridFailure as failure:
        print(f"error: {failure}", file=sys.stderr)
        for outcome in failure.failed:
            print(
                f"  {outcome.request.key}: {outcome.status} after "
                f"{outcome.attempts} attempt(s) — {outcome.error}",
                file=sys.stderr,
            )
        print("completed runs are cached; re-run to retry only the "
              "failures", file=sys.stderr)
        return 3


def _dispatch_runner(args: argparse.Namespace, runner: SuiteRunner,
                     names: Optional[List[str]]) -> int:
    if args.experiment == "stalls":
        backends = [args.backend] if args.backend else list(BACKENDS)
        targets = names or ["bfs", "nw"]
        results = runner.run_grid(
            [(n, b) for n in targets for b in backends]
        )
        data: dict = {}
        for res in results:
            data.setdefault(res.benchmark, {})[res.backend] = res.stats.stalls
        print(report.render_stalls(data))
        return 0
    if args.experiment == "trace":
        return _trace(runner, names or ["bfs"], args.backend or "regless",
                      args.out, args.perfetto)
    if args.experiment == "validate":
        claims = validate_claims(runner, args.names)
        print(render_claims(claims))
        return 0 if all(c.ok for c in claims) else 1
    if args.experiment in ("seeds", "robustness"):
        if args.experiment == "robustness":
            # stdout is machine-parsed by pipelines; the deprecation note
            # must go to stderr so the alias's stdout stays byte-identical
            # to the `seeds` verb (regression: tests/harness/test_cli_seeds_alias.py).
            print(
                "note: the 'robustness' verb is deprecated (it now names "
                "the resilience layer, see docs/robustness.md); use "
                "'seeds' for the seed-stability study",
                file=sys.stderr,
            )
        kwargs = {"names": args.names} if args.names else {}
        print(render_robustness(seed_robustness(**kwargs)))
        return 0
    if args.experiment == "export":
        paths = export_all(args.out, runner, args.names, fmt=args.format)
        for path in paths:
            print(f"wrote {path}")
        return 0
    targets = sorted(_RENDER) if args.experiment == "all" else [args.experiment]
    for target in targets:
        print(run_experiment(target, runner, names))
        print()
    return 0


def _serve(args: argparse.Namespace, policy, watchdog) -> int:
    """The ``serve`` verb: run the simulation-service daemon until a
    SIGTERM/SIGINT-triggered graceful drain completes."""
    from ..service import BreakerConfig, ServiceConfig
    from ..service.app import serve as serve_daemon
    from .parallel import resolve_jobs

    state_path = None
    if args.state_dir:
        os.makedirs(args.state_dir, exist_ok=True)
        state_path = os.path.join(args.state_dir, "service-state.json")
    config = ServiceConfig(
        jobs=resolve_jobs(args.jobs),
        max_batch_runs=max(1, args.batch_runs),
        policy=policy,
        watchdog=watchdog,
        state_path=state_path,
        cache=False if args.no_cache else None,
        compact_every=max(1, args.compact_every),
        breaker=BreakerConfig(
            failure_threshold=max(1, args.breaker_threshold),
            reset_timeout=max(0.0, args.breaker_reset),
        ),
        max_queued_runs=max(1, args.max_queued),
        default_deadline=args.deadline,
    )
    return serve_daemon(host=args.host, port=args.port, config=config)


def _trace(runner: SuiteRunner, names: List[str], backend: str,
           out_dir: str, perfetto: bool) -> int:
    """Run each benchmark once with a Tracer attached; print the pipeline
    view or export Chrome-trace JSON for https://ui.perfetto.dev."""
    from ..obs.perfetto import write_chrome_trace
    from ..sim.gpu import GPU
    from ..sim.trace import Tracer

    for name in names:
        compiled = runner.compiled(name)
        cfg = runner.config_for(backend)
        factory = runner.storage_factory(backend, compiled)
        gpu = GPU(cfg, compiled, runner.workload(name), factory)
        tracer = Tracer()
        tracer.attach(gpu)
        gpu.run()
        if perfetto:
            os.makedirs(out_dir, exist_ok=True)
            path = os.path.join(out_dir, f"trace_{name}_{backend}.json")
            write_chrome_trace(path, tracer)
            print(f"wrote {path} ({len(tracer.events)} events, "
                  f"{len(tracer.region_spans)} region spans)")
        else:
            print(f"== {name} ({backend}) ==")
            print(tracer.render())
            for span in list(tracer.region_spans)[:50]:
                print(span.render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
