"""Deterministic fault injection for the resilient harness.

Two families of injectors:

* **Cross-process faults** — specs encoded into ``REPRO_FAULTS`` (with a
  claim directory in ``REPRO_FAULT_DIR``) that worker processes consult at
  the top of every run.  A spec fires at most ``count`` times *across all
  workers*: each firing is claimed by exclusively creating a marker file
  (``O_CREAT | O_EXCL``), so "kill the worker once" means exactly once no
  matter how the pool schedules or rebuilds.  Kinds:

  - ``kill``  — hard-exit the worker mid-run (``os._exit``), the way an
    OOM kill or segfault looks to the parent pool.
  - ``hang``  — sleep past any reasonable per-run timeout.
  - ``raise`` — raise :class:`InjectedFault` (an ordinary in-process
    crash; the pool survives).

* **In-process backend wedges** — storage-factory wrappers that produce a
  deliberately buggy backend: :func:`freeze_admission` (a capacity manager
  that never admits another warp — the livelock the watchdog's
  no-progress window exists to catch) and :func:`drop_wakes` (admission
  progress that never re-readies parked warps — the lost-wake bug that
  drains the event wheel into a structured hang).

* **Service (daemon) faults** — specs encoded into
  ``REPRO_SERVICE_FAULTS`` that the *daemon itself* consults at named
  points (``journal.submit.pre``, ``dispatch.pre``, ``compact.post``,
  ...).  Same exactly-``count`` claim discipline via the shared
  ``REPRO_FAULT_DIR``, so a restarted daemon with the plan still armed
  does not re-fire an exhausted fault.  Kinds:

  - ``kill``    — ``os._exit`` the daemon at the point (crash test).
  - ``torn``    — write a partial journal frame, fsync, then die (the
    torn tail replay must truncate-and-continue past).
  - ``bitflip`` — write a corrupted journal frame, fsync, then die (a
    checksum-mismatching record replay must drop).

Both families are deterministic: no randomness, no timing dependence
beyond the injected sleep itself.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator, List, Optional, Sequence

__all__ = [
    "FAULTS_ENV",
    "FAULT_DIR_ENV",
    "SERVICE_FAULTS_ENV",
    "FaultSpec",
    "InjectedFault",
    "ServiceFaultSpec",
    "drop_wakes",
    "encode_plan",
    "encode_service_plan",
    "freeze_admission",
    "injected_faults",
    "injected_service_faults",
    "maybe_fire",
    "parse_plan",
    "parse_service_plan",
    "service_fault",
    "service_kill_point",
]

FAULTS_ENV = "REPRO_FAULTS"
FAULT_DIR_ENV = "REPRO_FAULT_DIR"
SERVICE_FAULTS_ENV = "REPRO_SERVICE_FAULTS"

_KINDS = ("kill", "hang", "raise")
_SERVICE_KINDS = ("kill", "torn", "bitflip")

#: exit status a ``kill`` fault dies with — distinctive in worker logs.
KILL_EXIT_CODE = 64


class InjectedFault(RuntimeError):
    """The in-process crash raised by a ``raise`` fault spec."""


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: ``kind`` fired on runs matching ``target``.

    ``target`` is ``"benchmark/backend"`` or ``"*"`` (any run).  ``count``
    bounds total firings across every process sharing the claim directory.
    ``delay`` is the ``hang`` sleep in seconds (0 means "practically
    forever").
    """

    kind: str
    target: str = "*"
    count: int = 1
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, key: str) -> bool:
        return self.target == "*" or self.target == key


def encode_plan(specs: Sequence[FaultSpec]) -> str:
    return ";".join(
        f"{s.kind}:{s.target}:{s.count}:{s.delay}" for s in specs
    )


def parse_plan(text: str) -> List[FaultSpec]:
    specs: List[FaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, target, count, delay = part.split(":")
        specs.append(
            FaultSpec(kind=kind, target=target, count=int(count),
                      delay=float(delay))
        )
    return specs


@contextmanager
def injected_faults(specs: Sequence[FaultSpec], claim_dir: str) -> Iterator[None]:
    """Arm ``specs`` for every process spawned while the context is open.

    The plan travels via environment variables, so it must be armed
    *before* the worker pool is created.
    """
    os.makedirs(claim_dir, exist_ok=True)
    old_plan = os.environ.get(FAULTS_ENV)
    old_dir = os.environ.get(FAULT_DIR_ENV)
    os.environ[FAULTS_ENV] = encode_plan(specs)
    os.environ[FAULT_DIR_ENV] = claim_dir
    try:
        yield
    finally:
        for env, old in ((FAULTS_ENV, old_plan), (FAULT_DIR_ENV, old_dir)):
            if old is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = old


def _claim(claim_dir: str, tag: str, count: int) -> bool:
    """Atomically claim one of ``count`` firings of the spec ``tag``."""
    for seq in range(count):
        path = os.path.join(claim_dir, f"{tag}.{seq}")
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            continue
        os.close(fd)
        return True
    return False


def maybe_fire(key: str) -> None:
    """Fire any armed fault matching ``key`` (``"benchmark/backend"``).

    Called by the worker at the top of every run; a no-op unless
    ``REPRO_FAULTS`` is set.
    """
    text = os.environ.get(FAULTS_ENV)
    if not text:
        return
    claim_dir = os.environ.get(FAULT_DIR_ENV)
    for idx, spec in enumerate(parse_plan(text)):
        if not spec.matches(key):
            continue
        if claim_dir is not None and \
                not _claim(claim_dir, f"fault{idx}", spec.count):
            continue
        if spec.kind == "kill":
            os._exit(KILL_EXIT_CODE)
        elif spec.kind == "hang":
            time.sleep(spec.delay or 3600.0)
        else:  # raise
            raise InjectedFault(f"injected fault on {key}")


# -- service (daemon) faults --------------------------------------------------


@dataclass(frozen=True)
class ServiceFaultSpec:
    """One daemon-side fault: ``kind`` fired at the named ``point``.

    Points are exact strings the service consults at its crash-critical
    moments (``journal.<record-type>.pre/.post``, ``dispatch.pre``,
    ``compact.pre/.post``).  ``count`` bounds firings across daemon
    restarts sharing the claim directory.
    """

    kind: str
    point: str
    count: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _SERVICE_KINDS:
            raise ValueError(f"unknown service fault kind {self.kind!r}")


def encode_service_plan(specs: Sequence[ServiceFaultSpec]) -> str:
    return ";".join(f"{s.kind}@{s.point}:{s.count}" for s in specs)


def parse_service_plan(text: str) -> List[ServiceFaultSpec]:
    specs: List[ServiceFaultSpec] = []
    for part in text.split(";"):
        part = part.strip()
        if not part:
            continue
        kind, _, rest = part.partition("@")
        point, _, count = rest.rpartition(":")
        specs.append(ServiceFaultSpec(kind=kind, point=point,
                                      count=int(count)))
    return specs


@contextmanager
def injected_service_faults(specs: Sequence[ServiceFaultSpec],
                            claim_dir: str) -> Iterator[None]:
    """Arm daemon faults for every process spawned while open."""
    os.makedirs(claim_dir, exist_ok=True)
    old_plan = os.environ.get(SERVICE_FAULTS_ENV)
    old_dir = os.environ.get(FAULT_DIR_ENV)
    os.environ[SERVICE_FAULTS_ENV] = encode_service_plan(specs)
    os.environ[FAULT_DIR_ENV] = claim_dir
    try:
        yield
    finally:
        for env, old in ((SERVICE_FAULTS_ENV, old_plan),
                         (FAULT_DIR_ENV, old_dir)):
            if old is None:
                os.environ.pop(env, None)
            else:
                os.environ[env] = old


def service_fault(point: str) -> Optional[str]:
    """The armed fault kind for a named daemon point, claiming one firing.

    Returns ``None`` (the overwhelmingly common case) unless
    ``REPRO_SERVICE_FAULTS`` names this exact point with budget left."""
    text = os.environ.get(SERVICE_FAULTS_ENV)
    if not text:
        return None
    claim_dir = os.environ.get(FAULT_DIR_ENV)
    for idx, spec in enumerate(parse_service_plan(text)):
        if spec.point != point:
            continue
        if claim_dir is not None and \
                not _claim(claim_dir, f"svc{idx}", spec.count):
            continue
        return spec.kind
    return None


def service_kill_point(point: str) -> None:
    """Die hard (``os._exit``) if a ``kill`` fault is armed at ``point``.

    Any other kind armed at the point is consumed but ignored — only the
    journal's write path knows how to produce torn/bitflipped frames."""
    if service_fault(point) == "kill":
        os._exit(KILL_EXIT_CODE)


# -- in-process backend wedges ------------------------------------------------


def _swap_class(obj, name: str, namespace: dict):
    """Shadow data descriptors (``property``) and slotted methods by
    swapping the instance onto a throwaway subclass — instance attributes
    can't override either."""
    namespace.setdefault("__slots__", ())
    obj.__class__ = type(name, (obj.__class__,), namespace)
    return obj


def freeze_admission(
    factory: Callable, opaque: bool = True
) -> Callable:
    """Wrap a RegLess storage factory so the CM never admits another warp.

    The frozen CM still *claims* it needs cycles (its activation stack is
    non-empty), so the demand clock keeps pumping it and the event wheel
    never drains: warps parked on ``cm_inactive`` spin forever with zero
    retirement — a true livelock, invisible to the wheel-empty deadlock
    check.  With ``opaque`` the storage also reports ``idle == False`` so
    fast-forward can't leap the run to its cycle ceiling before the
    watchdog's no-progress window fills.
    """

    def wrapped(sm: int, shard: int):
        storage = factory(sm, shard)
        cls = storage.__class__

        def attach(self, shard_obj) -> None:
            cls.attach(self, shard_obj)
            cm = getattr(self, "cm", None)
            if cm is not None:
                _swap_class(cm, "FrozenCM", {"cycle": lambda self, now: None})

        namespace = {"attach": attach}
        if opaque:
            namespace["idle"] = property(lambda self: False)
            namespace["has_work"] = lambda self, now: True
        return _swap_class(storage, "FrozenAdmission", namespace)

    return wrapped


def drop_wakes(factory: Callable) -> Callable:
    """Wrap a RegLess storage factory so CM admission progress never
    re-readies parked warps (a lost ``notify_wake``).  Starved warps stay
    parked with no pending wake; once every live warp is starved the run
    stops retiring and surfaces as a structured hang.
    """

    def wrapped(sm: int, shard: int):
        storage = factory(sm, shard)
        cls = storage.__class__

        def attach(self, shard_obj) -> None:
            cls.attach(self, shard_obj)
            cm = getattr(self, "cm", None)
            if cm is not None:
                cm.wake = None
        return _swap_class(storage, "DroppedWakes", {"attach": attach})

    return wrapped


# -- cache corruption helpers -------------------------------------------------


def truncate_file(path: str, keep: int = 16) -> None:
    """Truncate a cache entry to ``keep`` bytes (simulated crash mid-write)."""
    with open(path, "r+b") as fh:
        fh.truncate(keep)


def bitflip_file(path: str, offset: int = -1) -> None:
    """Flip one bit of a cache entry (simulated on-disk corruption).

    ``offset`` indexes the byte to damage; negative offsets index from the
    end (the payload, past the header).
    """
    with open(path, "r+b") as fh:
        data = bytearray(fh.read())
        data[offset] ^= 0x40
        fh.seek(0)
        fh.write(data)
