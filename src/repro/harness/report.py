"""Text rendering of experiment results (the rows the paper's plots show)."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..obs.stalls import ISSUED, STALL_REASONS
from .experiments import BackingStoreSeries, RuntimeResult

__all__ = [
    "render_stalls",
    "render_fig2",
    "render_fig3",
    "render_fig5",
    "render_fig11",
    "render_fig12",
    "render_fig13",
    "render_fig14",
    "render_fig15",
    "render_fig16",
    "render_fig17",
    "render_fig18",
    "render_fig19",
    "render_table2",
    "render_breakdown",
]


def _table(header: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row):
        return "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(r) for r in rows)
    return "\n".join(lines)


def render_stalls(data: Dict[str, Dict[str, Dict[str, int]]]) -> str:
    """Per-benchmark stall breakdown; ``data[benchmark][backend]`` maps
    reason -> warp-cycles (:attr:`repro.sim.gpu.SimStats.stalls`)."""
    blocks = []
    for name, per_backend in data.items():
        backends = list(per_backend)
        totals = {b: sum(per_backend[b].values()) or 1 for b in backends}
        rows = []
        for reason in (ISSUED,) + STALL_REASONS:
            counts = [per_backend[b].get(reason, 0) for b in backends]
            if not any(counts):
                continue
            rows.append((
                reason,
                *[f"{100.0 * c / totals[b]:6.2f}%"
                  for b, c in zip(backends, counts)],
            ))
        blocks.append(
            f"{name}: where warp-cycles went (% of warps x cycles)\n"
            + _table(("reason", *backends), rows)
        )
    return "\n\n".join(blocks)


def render_fig2(data: Dict[str, Tuple[float, float]]) -> str:
    rows = [
        (name, f"{gto:.1f}", f"{two:.1f}")
        for name, (gto, two) in data.items()
    ]
    return "Figure 2: register working set per 100-cycle window (KB)\n" + _table(
        ("benchmark", "GTO", "2-level"), rows
    )


def render_fig3(series: BackingStoreSeries, points: int = 20) -> str:
    def head(xs):
        return " ".join(f"{x:5.0f}" for x in xs[:points])
    return (
        "Figure 3: backing-store accesses per 100 cycles (hotspot)\n"
        f"baseline: {head(series.baseline)}\n"
        f"rfh     : {head(series.rfh)}\n"
        f"regless : {head(series.regless)}"
    )


def render_fig5(counts: List[int], width: int = 60) -> str:
    lines = ["Figure 5: live registers per static instruction (particle_filter)"]
    peak = max(counts) if counts else 1
    for pc, n in enumerate(counts[:width]):
        bar = "#" * n
        lines.append(f"{pc:4d} {n:3d} {bar}")
    lines.append(f"(peak {peak}, {len(counts)} instructions total)")
    return "\n".join(lines)


def render_fig11(data: Dict[int, Dict[str, float]]) -> str:
    rows = [
        (
            str(cap),
            f"{d['logic']:.3f}",
            f"{d['storage']:.3f}",
            f"{d['compressor']:.3f}",
            f"{d['total']:.3f}",
        )
        for cap, d in data.items()
    ]
    return "Figure 11: area (normalized to 2048-entry baseline RF)\n" + _table(
        ("capacity", "logic", "storage", "compressor", "total"), rows
    )


def render_fig12(data: Dict[int, Dict[str, float]]) -> str:
    rows = [
        (str(cap), f"{d['osu']:.3f}", f"{d['compressor']:.3f}", f"{d['total']:.3f}")
        for cap, d in data.items()
    ]
    return "Figure 12: power (normalized to baseline RF)\n" + _table(
        ("capacity", "OSU", "compressor", "total"), rows
    )


def render_fig13(data: Dict[int, Tuple[float, float]]) -> str:
    rows = [
        (str(cap), f"{rt:.3f}", f"{en:.3f}") for cap, (rt, en) in data.items()
    ]
    return "Figure 13: run time vs GPU energy (normalized geomeans)\n" + _table(
        ("capacity", "run time", "GPU energy"), rows
    )


def _per_benchmark(data: Dict[str, Dict[str, float]], cols: Sequence[str],
                   title: str, scale: float = 1.0, fmt: str = "{:.3f}") -> str:
    rows = []
    for name, row in data.items():
        rows.append((name, *[fmt.format(row[c] * scale) for c in cols]))
    if rows:
        means = [
            sum(data[n][c] for n in data) / len(data) for c in cols
        ]
        rows.append(("MEAN", *[fmt.format(m * scale) for m in means]))
    return title + "\n" + _table(("benchmark", *cols), rows)


def render_fig14(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("rfh", "rfv", "regless"),
        "Figure 14: RF energy normalized to baseline",
    )


def render_fig15(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("no_rf", "rfh", "rfv", "regless"),
        "Figure 15: total GPU energy normalized to baseline",
    )


def render_fig16(result: RuntimeResult) -> str:
    rows = [(n, f"{v:.3f}") for n, v in result.per_benchmark.items()]
    rows.append(("GEOMEAN", f"{result.geomean_regless:.3f}"))
    table = _table(("benchmark", "regless/baseline"), rows)
    return (
        "Figure 16: run time normalized to baseline\n"
        + table
        + "\ngeomeans: regless "
        + f"{result.geomean_regless:.3f}, no-compressor "
        + f"{result.geomean_no_compressor:.3f}, rfv {result.geomean_rfv:.3f}, "
        + f"rfh {result.geomean_rfh:.3f}"
    )


def render_fig17(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("osu", "compressor", "l1", "l2dram"),
        "Figure 17: preload service location (fraction of preloads)",
        scale=100.0, fmt="{:.2f}%",
    )


def render_fig18(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("preloads", "stores", "invalidations"),
        "Figure 18: RegLess L1 requests per cycle",
        fmt="{:.4f}",
    )


def render_fig19(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("preloads", "mean_live", "std_live"),
        "Figure 19: per-region registers (preloads / mean live / std live)",
        fmt="{:.2f}",
    )


def render_breakdown(data: Dict[str, Dict[str, float]]) -> str:
    rows = []
    components = ("rf", "exec", "memory", "static", "metadata")
    for backend, shares in data.items():
        rows.append((backend, *[f"{shares.get(c, 0.0):.1%}" for c in components]))
    return (
        "Energy breakdown: mean component share of each design's own total\n"
        + _table(("backend", *components), rows)
    )


def render_table2(data: Dict[str, Dict[str, float]]) -> str:
    return _per_benchmark(
        data, ("insns", "cycles"),
        "Table 2: static instructions and dynamic cycles per region",
        fmt="{:.1f}",
    )
