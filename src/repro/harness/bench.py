"""``python -m repro.harness bench``: wall-clock benchmark of the harness.

Times the full (benchmark x backend) grid three ways —

1. **serial**   — one process, no disk cache (the seed baseline),
2. **cold**     — parallel ``run_grid`` into an empty result cache,
3. **warm**     — a fresh runner re-reading the now-populated cache,

verifies that the serial and parallel grids produce identical ``cycles``
and counter values per run, and reports per-phase (compile / simulate /
energy) timing aggregates collected in :attr:`RunResult.timings`.

``--json PATH`` additionally writes the machine-readable measurement
(per-run wall-clock, simulated cycles, cycles/sec; see
``docs/performance.md``) — the format committed as ``BENCH_*.json``
snapshots and consumed by the CI perf-smoke step.
"""

from __future__ import annotations

import json
import platform
import tempfile
import time
from typing import Dict, List, Optional, Sequence

from ..workloads import workload_names
from .cache import ResultCache
from .parallel import RunRequest, resolve_jobs
from .runner import BACKENDS, RunResult, SuiteRunner

__all__ = ["run_bench", "render_bench"]


def _fmt_rate(seconds: float, n: int) -> str:
    return f"{seconds:7.1f}s ({seconds / max(1, n):5.2f}s/run)"


#: jobs values swept by ``--scaling`` (each gets its own cold cache so
#: every sweep point re-executes the full grid).
SCALING_JOBS = (1, 2, 4, 8)


def run_bench(
    names: Optional[Sequence[str]] = None,
    backends: Sequence[str] = BACKENDS,
    jobs: Optional[int] = None,
    cache_dir: Optional[str] = None,
    json_path: Optional[str] = None,
    scaling: bool = False,
) -> str:
    """Run the three-legged benchmark and return the report text.

    ``json_path`` writes the structured measurement next to the report:
    per-run wall-clock and simulated throughput from the serial leg (the
    leg that actually simulates every run in-process, so its timings are
    comparable across commits) plus the three leg totals.

    ``scaling`` additionally sweeps the parallel cold leg over
    ``SCALING_JOBS`` worker counts and reports runs-vs-jobs-vs-wall-clock
    rows (also emitted into the JSON payload as ``scaling``).
    """
    names = list(names) if names else workload_names()
    backends = list(backends)
    requests = [
        RunRequest.make(name, backend) for name in names for backend in backends
    ]
    n = len(requests)
    jobs = resolve_jobs(jobs)
    cache_dir = cache_dir or tempfile.mkdtemp(prefix="repro-bench-cache-")

    lines = [
        f"harness bench: {len(names)} benchmarks x {len(backends)} backends "
        f"= {n} runs, {jobs} job(s)",
        f"cache: {cache_dir}",
        "",
    ]

    # Leg 1: serial, no cache (the seed execution model), timed per run.
    serial_runner = SuiteRunner(cache=False)
    serial: List[RunResult] = []
    serial_wall: List[float] = []
    t0 = time.perf_counter()
    for r in requests:
        t_run = time.perf_counter()
        serial.append(
            serial_runner.run(r.benchmark, r.backend, osu_entries=r.osu_entries)
        )
        serial_wall.append(time.perf_counter() - t_run)
    t_serial = time.perf_counter() - t0

    # Leg 2: parallel into a cold cache.
    cold_runner = SuiteRunner(cache=ResultCache(cache_dir), jobs=jobs)
    t0 = time.perf_counter()
    parallel = cold_runner.run_grid(requests)
    t_cold = time.perf_counter() - t0

    # Leg 3: fresh runner, warm cache.
    warm_runner = SuiteRunner(cache=ResultCache(cache_dir), jobs=jobs)
    t0 = time.perf_counter()
    warm = warm_runner.run_grid(requests)
    t_warm = time.perf_counter() - t0

    mismatches = [
        f"  {r.benchmark}/{r.backend}"
        for r, s, p in zip(requests, serial, parallel)
        if s.cycles != p.cycles or s.stats.counters != p.stats.counters
    ]
    warm_mismatches = sum(
        1 for s, w in zip(serial, warm)
        if s.cycles != w.cycles or s.stats.counters != w.stats.counters
    )

    lines.append(f"serial (no cache):   {_fmt_rate(t_serial, n)}")
    lines.append(
        f"parallel cold:       {_fmt_rate(t_cold, n)}"
        f"   {t_serial / max(t_cold, 1e-9):5.2f}x vs serial"
    )
    lines.append(
        f"warm (cached):       {_fmt_rate(t_warm, n)}"
        f"   {t_serial / max(t_warm, 1e-9):5.2f}x vs serial"
    )
    lines.append("")
    if mismatches:
        lines.append(f"MISMATCH: {len(mismatches)} run(s) differ serial vs parallel:")
        lines.extend(mismatches[:10])
    else:
        lines.append(
            "parallel == serial: identical cycles and counters for "
            f"all {n} runs"
        )
    lines.append(
        "warm == serial: "
        + ("identical" if warm_mismatches == 0
           else f"{warm_mismatches} MISMATCH(ES)")
    )

    # Per-phase timing aggregate over the cold leg's fresh executions.
    timed = [r.timings for r in parallel if "simulate" in r.timings]
    if timed:
        lines.append("")
        lines.append(f"per-run phase means over {len(timed)} executed run(s):")
        for phase in ("compile", "simulate", "energy", "total"):
            vals = [t.get(phase, 0.0) for t in timed]
            lines.append(
                f"  {phase:9s} {sum(vals) / len(vals):7.3f}s "
                f"(max {max(vals):6.3f}s)"
            )
    loads = [r.timings["cache_load"] for r in warm if "cache_load" in r.timings]
    if loads:
        lines.append(
            f"  cache_load {sum(loads) / len(loads):6.4f}s mean over "
            f"{len(loads)} warm hit(s)"
        )

    scaling_rows: Optional[List[Dict[str, object]]] = None
    if scaling:
        scaling_rows = []
        lines.append("")
        lines.append(f"scaling sweep ({n} runs per point, cold cache each):")
        base_wall = None
        for j in SCALING_JOBS:
            sweep_runner = SuiteRunner(
                cache=ResultCache(tempfile.mkdtemp(prefix="repro-bench-scale-")),
                jobs=j,
            )
            t0 = time.perf_counter()
            sweep_runner.run_grid(requests)
            dt = time.perf_counter() - t0
            if base_wall is None:
                base_wall = dt
            speedup = base_wall / max(dt, 1e-9)
            scaling_rows.append({
                "jobs": j,
                "runs": n,
                "wall_s": round(dt, 3),
                "runs_per_sec": round(n / max(dt, 1e-9), 3),
                "speedup_vs_jobs1": round(speedup, 2),
            })
            lines.append(
                f"  jobs={j}: {_fmt_rate(dt, n)}   {speedup:5.2f}x vs jobs=1"
            )

    if json_path:
        payload = _bench_payload(
            names, backends, jobs, requests, serial, serial_wall,
            t_serial, t_cold, t_warm,
            serial_parallel_ok=not mismatches,
            warm_ok=warm_mismatches == 0,
            scaling_rows=scaling_rows,
        )
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=1, sort_keys=True)
            f.write("\n")
        lines.append("")
        lines.append(f"wrote {json_path}")
    return "\n".join(lines)


#: per-shard ``batch.*`` counters summed into the grid aggregate.
_BATCH_SUM_KEYS = (
    "cohorts", "batched_warps", "singleton_warps", "scalar_classified",
    "reused_commits", "fresh_passes", "gate_shared", "matrix_warps",
)


def _bench_payload(
    names: Sequence[str],
    backends: Sequence[str],
    jobs: int,
    requests: Sequence[RunRequest],
    serial: Sequence[RunResult],
    serial_wall: Sequence[float],
    t_serial: float,
    t_cold: float,
    t_warm: float,
    serial_parallel_ok: bool,
    warm_ok: bool,
    scaling_rows: Optional[Sequence[Dict[str, object]]] = None,
) -> Dict[str, object]:
    """The ``--json`` measurement record (``BENCH_*.json`` format)."""
    runs = []
    jit_agg = {"armed_shards": 0, "shards": 0, "compile_s": 0.0,
               "steps": 0, "issued_via_jit": 0, "fallback_issued": 0,
               "runs_with_jit": 0, "runs_missing_jit": 0}
    batch_agg: Dict[str, object] = {
        "armed_shards": 0, "shards": 0,
        "runs_with_batch": 0, "runs_missing_batch": 0,
    }
    for k in _BATCH_SUM_KEYS:
        batch_agg[k] = 0
    for req, res, wall in zip(requests, serial, serial_wall):
        # A run replayed from a PR-5-era cache entry predates the ``jit``
        # field entirely, and a ``REPRO_JIT=0`` run records an empty dict;
        # neither may crash the grid aggregate — skip it and count it.
        # An all-fallback run's per-shard entries carry only ``.armed`` and
        # ``.reason`` keys, so every other counter must go through ``get``.
        raw = getattr(res, "jit", None)
        jit = dict(raw) if isinstance(raw, dict) else {}
        if jit:
            jit_agg["runs_with_jit"] += 1
        else:
            jit_agg["runs_missing_jit"] += 1
        for key, val in jit.items():
            if not key.endswith(".armed"):
                continue
            prefix = key[: -len("armed")]
            jit_agg["shards"] += 1
            jit_agg["armed_shards"] += int(bool(val))
            jit_agg["compile_s"] += float(jit.get(prefix + "compile_s", 0.0))
            jit_agg["steps"] += int(jit.get(prefix + "steps", 0))
            jit_agg["issued_via_jit"] += int(jit.get(prefix + "issued", 0))
            jit_agg["fallback_issued"] += int(
                jit.get(prefix + "fallback_issued", 0))
        # Cohort-batching aggregate: same tolerance rules (the field is
        # newer still, and REPRO_BATCH=0 / refused shards record only
        # armed + reason).
        braw = getattr(res, "batch", None)
        batch = dict(braw) if isinstance(braw, dict) else {}
        if batch:
            batch_agg["runs_with_batch"] += 1
        else:
            batch_agg["runs_missing_batch"] += 1
        for key, val in batch.items():
            if not key.endswith(".armed"):
                continue
            prefix = key[: -len("armed")]
            batch_agg["shards"] += 1
            batch_agg["armed_shards"] += int(bool(val))
            for k in _BATCH_SUM_KEYS:
                batch_agg[k] += int(batch.get(prefix + k, 0))
        runs.append({
            "benchmark": req.benchmark,
            "backend": req.backend,
            "wall_s": round(wall, 4),
            "cycles": res.stats.cycles,
            "instructions": res.stats.instructions,
            "warps_done": res.stats.warps_done,
            "cycles_per_sec": round(res.stats.cycles / max(wall, 1e-9), 1),
            "stall_warp_cycles": sum(res.stats.stalls.values()),
            "jit": jit,
            "batch": batch,
        })
    jit_agg["compile_s"] = round(jit_agg["compile_s"], 4)
    # Cohort hit rate: fraction of account-pass warp classifications that
    # landed in a >=2-warp cohort (vs singleton cohorts and warps classified
    # scalar because their stall class isn't coverable).
    denom = (batch_agg["batched_warps"] + batch_agg["singleton_warps"]
             + batch_agg["scalar_classified"])
    batch_agg["cohort_hit_rate"] = (
        round(batch_agg["batched_warps"] / denom, 4) if denom else 0.0
    )
    payload: Dict[str, object] = {
        "benchmarks": list(names),
        "backends": list(backends),
        "jobs": jobs,
        "python": platform.python_version(),
        "legs": {
            "serial_s": round(t_serial, 3),
            "parallel_cold_s": round(t_cold, 3),
            "warm_s": round(t_warm, 3),
        },
        "serial_equals_parallel": serial_parallel_ok,
        "warm_equals_serial": warm_ok,
        "jit": jit_agg,
        "batch": batch_agg,
        "runs": runs,
    }
    if scaling_rows is not None:
        payload["scaling"] = list(scaling_rows)
    return payload


def render_bench(report: str) -> str:
    return report
