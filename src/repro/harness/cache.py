"""Persistent, content-addressed result cache for the evaluation harness.

Every simulation run is keyed by a digest over everything that can change
its outcome:

* the full :class:`~repro.sim.config.GPUConfig` (overrides already applied),
* the backend name and OSU capacity,
* the workload name and oracle seed,
* the compiled-kernel bytes (so compiler changes invalidate results),
* the energy-model parameters,
* the requested window series, and
* a **code-version salt**: a hash over every ``repro`` source file, so any
  simulator change self-invalidates the whole store.

Results are pickled :class:`~repro.harness.runner.RunResult` objects stored
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-regless``).  Set
``REPRO_CACHE=0`` to disable caching entirely.

Crash safety
------------

Entries are framed — magic, schema version, payload SHA-256, payload —
and every read verifies the frame before unpickling.  Writes go through a
temp file + atomic rename, so a crash mid-write leaves at worst a stray
``.tmp`` file, never a half-written entry served as truth; concurrent
writers — e.g. several ``run_grid`` worker collections — can share one
store safely.  A truncated, bit-flipped, wrong-version, or otherwise
unreadable entry reads as a **miss** and is deleted on sight
(``corrupt_evictions``), so one bad sector can't wedge a sweep.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict
from typing import Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.model import EnergyParams
    from ..obs.metrics import MetricScope
    from ..sim.config import GPUConfig
    from .runner import RunResult

__all__ = ["CACHE_SCHEMA_VERSION", "CacheCorruption", "ResultCache",
           "cache_enabled", "cache_root", "code_salt", "run_digest"]


def cache_enabled() -> bool:
    """Disk caching is on unless ``REPRO_CACHE=0``."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_root() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-regless``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-regless")


_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Editing any simulator/compiler/harness source therefore invalidates all
    previously cached results — stale entries are never served.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        pkg_root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                h.update(os.path.relpath(path, pkg_root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _CODE_SALT = h.hexdigest()
    return _CODE_SALT


def run_digest(
    config: "GPUConfig",
    backend: str,
    osu_entries: int,
    workload_name: str,
    workload_seed: int,
    kernel_bytes: bytes,
    energy_params: "EnergyParams",
    window_series: Sequence[str] = (),
    salt: Optional[str] = None,
) -> str:
    """Content digest identifying one simulation run."""
    h = hashlib.sha256()
    h.update((salt if salt is not None else code_salt()).encode())
    descriptor = repr((
        sorted(asdict(config).items()),
        backend,
        int(osu_entries),
        workload_name,
        int(workload_seed),
        tuple(window_series),
        sorted(asdict(energy_params).items()),
    ))
    h.update(descriptor.encode())
    h.update(kernel_bytes)
    return h.hexdigest()


#: bumped whenever the on-disk entry layout changes; older entries read
#: as misses and are evicted.
CACHE_SCHEMA_VERSION = 2

_MAGIC = b"RGC\x01"
_HEADER_LEN = len(_MAGIC) + 2 + 32  # magic + version (u16 BE) + sha256


class CacheCorruption(ValueError):
    """An entry failed frame validation (internal to :meth:`ResultCache.get`)."""


def _frame(payload: bytes) -> bytes:
    return (
        _MAGIC
        + CACHE_SCHEMA_VERSION.to_bytes(2, "big")
        + hashlib.sha256(payload).digest()
        + payload
    )


def _unframe(data: bytes) -> bytes:
    if len(data) < _HEADER_LEN:
        raise CacheCorruption("truncated header")
    if data[: len(_MAGIC)] != _MAGIC:
        raise CacheCorruption("bad magic")
    version = int.from_bytes(data[len(_MAGIC) : len(_MAGIC) + 2], "big")
    if version != CACHE_SCHEMA_VERSION:
        raise CacheCorruption(f"schema version {version}")
    checksum = data[len(_MAGIC) + 2 : _HEADER_LEN]
    payload = data[_HEADER_LEN:]
    if hashlib.sha256(payload).digest() != checksum:
        raise CacheCorruption("checksum mismatch")
    return payload


class ResultCache:
    """On-disk pickle store addressed by :func:`run_digest` keys.

    ``metrics`` may be set to a :class:`~repro.obs.metrics.MetricScope`;
    corrupt-entry evictions are then counted under ``corrupt_evictions``.
    """

    def __init__(self, root: Optional[str] = None,
                 metrics: Optional["MetricScope"] = None):
        self.root = str(root) if root is not None else cache_root()
        self.metrics = metrics
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_evictions = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.pkl")

    def _evict_corrupt(self, path: str, reason: str) -> None:
        """Remove a corrupt entry, tolerating a concurrent eviction.

        Several workers can read the same corrupt entry and race to
        unlink it; only the one whose unlink actually removed the file
        counts the eviction, so ``corrupt_evictions`` summed across
        processes is exactly one per corrupt entry — and the losers'
        ``FileNotFoundError`` never escapes to kill the run (both still
        record a miss in :meth:`get`)."""
        try:
            os.unlink(path)
        except FileNotFoundError:
            return  # a concurrent worker evicted it first
        except OSError:
            pass  # unwritable store: still a miss, and we did see it
        self.corrupt_evictions += 1
        if self.metrics is not None:
            self.metrics.inc("corrupt_evictions")

    def get(self, digest: str) -> Optional["RunResult"]:
        """The cached result, or ``None``.

        Corrupt, truncated, or version-mismatched entries read as misses
        and are deleted so they are never re-examined."""
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                data = fh.read()
        except OSError:
            self.misses += 1
            return None
        try:
            result = pickle.loads(_unframe(data))
        except (CacheCorruption, pickle.UnpicklingError, EOFError,
                AttributeError, ImportError, IndexError, ValueError):
            # Unpickling failures are corruption too: the checksum only
            # guards bit rot, not entries written by incompatible code.
            self._evict_corrupt(path, "corrupt entry")
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: "RunResult") -> None:
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(_frame(
                    pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                ))
            os.replace(tmp, path)  # atomic on POSIX
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.writes += 1

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".pkl"))
        return count

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for dirpath, _, files in os.walk(self.root):
            for fname in files:
                if fname.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed
