"""Persistent, content-addressed result cache for the evaluation harness.

Every simulation run is keyed by a digest over everything that can change
its outcome:

* the full :class:`~repro.sim.config.GPUConfig` (overrides already applied),
* the backend name and OSU capacity,
* the workload name and oracle seed,
* the compiled-kernel bytes (so compiler changes invalidate results),
* the energy-model parameters,
* the requested window series, and
* a **code-version salt**: a hash over every ``repro`` source file, so any
  simulator change self-invalidates the whole store.

Results are pickled :class:`~repro.harness.runner.RunResult` objects stored
under ``$REPRO_CACHE_DIR`` (default ``~/.cache/repro-regless``).  Set
``REPRO_CACHE=0`` to disable caching entirely.  Writes are atomic
(temp file + rename), so concurrent writers — e.g. several ``run_grid``
worker collections — can share one store safely.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import asdict
from typing import Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..energy.model import EnergyParams
    from ..sim.config import GPUConfig
    from .runner import RunResult

__all__ = ["ResultCache", "cache_enabled", "cache_root", "code_salt",
           "run_digest"]


def cache_enabled() -> bool:
    """Disk caching is on unless ``REPRO_CACHE=0``."""
    return os.environ.get("REPRO_CACHE", "1") != "0"


def cache_root() -> str:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-regless``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return env
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-regless")


_CODE_SALT: Optional[str] = None


def code_salt() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Editing any simulator/compiler/harness source therefore invalidates all
    previously cached results — stale entries are never served.
    """
    global _CODE_SALT
    if _CODE_SALT is None:
        import repro

        pkg_root = os.path.dirname(os.path.abspath(repro.__file__))
        h = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(pkg_root)):
            dirnames.sort()
            for fname in sorted(filenames):
                if not fname.endswith(".py"):
                    continue
                path = os.path.join(dirpath, fname)
                h.update(os.path.relpath(path, pkg_root).encode())
                with open(path, "rb") as fh:
                    h.update(fh.read())
        _CODE_SALT = h.hexdigest()
    return _CODE_SALT


def run_digest(
    config: "GPUConfig",
    backend: str,
    osu_entries: int,
    workload_name: str,
    workload_seed: int,
    kernel_bytes: bytes,
    energy_params: "EnergyParams",
    window_series: Sequence[str] = (),
    salt: Optional[str] = None,
) -> str:
    """Content digest identifying one simulation run."""
    h = hashlib.sha256()
    h.update((salt if salt is not None else code_salt()).encode())
    descriptor = repr((
        sorted(asdict(config).items()),
        backend,
        int(osu_entries),
        workload_name,
        int(workload_seed),
        tuple(window_series),
        sorted(asdict(energy_params).items()),
    ))
    h.update(descriptor.encode())
    h.update(kernel_bytes)
    return h.hexdigest()


class ResultCache:
    """On-disk pickle store addressed by :func:`run_digest` keys."""

    def __init__(self, root: Optional[str] = None):
        self.root = str(root) if root is not None else cache_root()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    def _path(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], f"{digest}.pkl")

    def get(self, digest: str) -> Optional["RunResult"]:
        """The cached result, or ``None`` (corrupt entries read as misses)."""
        try:
            with open(self._path(digest), "rb") as fh:
                result = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, digest: str, result: "RunResult") -> None:
        path = self._path(digest)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(path), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)  # atomic on POSIX
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.writes += 1

    def __len__(self) -> int:
        count = 0
        for _, _, files in os.walk(self.root):
            count += sum(1 for f in files if f.endswith(".pkl"))
        return count

    def clear(self) -> int:
        """Delete every cached result; returns the number removed."""
        removed = 0
        for dirpath, _, files in os.walk(self.root):
            for fname in files:
                if fname.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(dirpath, fname))
                        removed += 1
                    except OSError:
                        pass
        return removed
