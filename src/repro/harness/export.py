"""Export experiment results to CSV / JSON for external plotting.

The paper's figures are bar charts and scatter plots; this module flattens
every experiment's result into rows so any plotting tool can regenerate
them::

    python -m repro.harness export --out results/
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict, List, Mapping, Optional, Sequence, Union

from . import experiments as ex
from .runner import SuiteRunner

__all__ = ["rows_for", "to_csv", "to_json", "export_all", "EXPORTABLE"]

Row = Dict[str, Union[str, float, int]]


def _per_benchmark_rows(data: Mapping[str, Mapping[str, float]]) -> List[Row]:
    rows: List[Row] = []
    for benchmark, series in data.items():
        row: Row = {"benchmark": benchmark}
        row.update(series)
        rows.append(row)
    return rows


def rows_for(experiment: str, runner: SuiteRunner,
             names: Optional[Sequence[str]] = None) -> List[Row]:
    """Flatten one experiment into a list of dict rows."""
    if experiment == "fig2":
        return [
            {"benchmark": n, "gto_kb": g, "two_level_kb": t}
            for n, (g, t) in ex.fig2_working_set(runner, names).items()
        ]
    if experiment == "fig3":
        series = ex.fig3_backing_store(runner)
        return [
            {"window": i, "baseline": b, "rfh": h, "regless": r}
            for i, (b, h, r) in enumerate(
                zip(series.baseline, series.rfh, series.regless)
            )
        ]
    if experiment == "fig5":
        return [
            {"pc": pc, "live": n}
            for pc, n in enumerate(ex.fig5_liveness_seams(runner))
        ]
    if experiment == "fig11":
        return [
            {"capacity": cap, **values}
            for cap, values in ex.fig11_area().items()
        ]
    if experiment == "fig12":
        return [
            {"capacity": cap, **values}
            for cap, values in ex.fig12_power(runner).items()
        ]
    if experiment == "fig13":
        return [
            {"capacity": cap, "runtime": rt, "gpu_energy": en}
            for cap, (rt, en) in ex.fig13_pareto(runner, names=names).items()
        ]
    if experiment == "fig14":
        return _per_benchmark_rows(ex.fig14_rf_energy(runner, names))
    if experiment == "fig15":
        return _per_benchmark_rows(ex.fig15_gpu_energy(runner, names))
    if experiment == "fig16":
        result = ex.fig16_runtime(runner, names)
        rows = [
            {"benchmark": n, "regless_runtime": v}
            for n, v in result.per_benchmark.items()
        ]
        rows.append({
            "benchmark": "GEOMEAN",
            "regless_runtime": result.geomean_regless,
            "no_compressor": result.geomean_no_compressor,
            "rfv": result.geomean_rfv,
            "rfh": result.geomean_rfh,
        })
        return rows
    if experiment == "fig17":
        return _per_benchmark_rows(ex.fig17_preload_location(runner, names))
    if experiment == "fig18":
        return _per_benchmark_rows(ex.fig18_l1_bandwidth(runner, names))
    if experiment == "fig19":
        return _per_benchmark_rows(ex.fig19_region_registers(runner, names))
    if experiment == "table2":
        return _per_benchmark_rows(ex.table2_region_sizes(runner, names))
    raise ValueError(f"unknown experiment {experiment!r}")


EXPORTABLE = (
    "fig2", "fig3", "fig5", "fig11", "fig12", "fig13", "fig14", "fig15",
    "fig16", "fig17", "fig18", "fig19", "table2",
)


def to_csv(rows: List[Row]) -> str:
    if not rows:
        return ""
    fields: List[str] = []
    for row in rows:
        for key in row:
            if key not in fields:
                fields.append(key)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=fields, restval="")
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def to_json(rows: List[Row]) -> str:
    return json.dumps(rows, indent=2, sort_keys=True)


def export_all(
    out_dir: str,
    runner: Optional[SuiteRunner] = None,
    names: Optional[Sequence[str]] = None,
    fmt: str = "csv",
    jobs: Optional[int] = None,
) -> List[str]:
    """Write every experiment to ``out_dir``; returns the file paths.

    Each experiment prefetches its run grid through
    :meth:`SuiteRunner.run_grid`, so a fresh export parallelizes across
    ``jobs`` workers (default: ``REPRO_JOBS`` / CPU count)."""
    import os

    runner = runner or SuiteRunner(jobs=jobs)
    os.makedirs(out_dir, exist_ok=True)
    written = []
    for experiment in EXPORTABLE:
        rows = rows_for(experiment, runner, names)
        text = to_csv(rows) if fmt == "csv" else to_json(rows)
        path = os.path.join(out_dir, f"{experiment}.{fmt}")
        with open(path, "w") as fh:
            fh.write(text)
        written.append(path)
    return written
