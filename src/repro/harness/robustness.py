"""Seed robustness: are the headline numbers stable across workload seeds?

The synthetic benchmarks draw their dynamic behaviour (divergence patterns,
loaded-value structure) from a seeded RNG.  A reproduction is only credible
if its conclusions do not hinge on one lucky seed, so this module re-runs
the key comparisons across several seeds and reports mean, min and max of
each headline ratio.

    python -m repro.harness robustness
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Dict, List, Optional, Sequence

from ..compiler.pipeline import compile_kernel
from ..regfile import BaselineRF
from ..regless import ReglessStorage
from ..sim.config import GPUConfig
from ..sim.gpu import run_simulation
from ..workloads import make_workload
from .experiments import geomean

__all__ = ["SeedStats", "seed_robustness", "render_robustness"]

DEFAULT_SEEDS = (1, 7, 23, 51, 97)
DEFAULT_MIX = ("bfs", "heartwall", "hotspot", "kmeans", "lud", "streamcluster")


@dataclass
class SeedStats:
    """Distribution of one metric across seeds."""

    name: str
    values: List[float]

    @property
    def mean(self) -> float:
        return sum(self.values) / len(self.values)

    @property
    def lo(self) -> float:
        return min(self.values)

    @property
    def hi(self) -> float:
        return max(self.values)

    @property
    def spread(self) -> float:
        return self.hi - self.lo

    def render(self) -> str:
        return (
            f"{self.name:<28} mean {self.mean:6.3f}   "
            f"range [{self.lo:6.3f}, {self.hi:6.3f}]   "
            f"spread {self.spread:5.3f}"
        )


def _run_pair(name: str, seed: int, config: GPUConfig):
    workload = make_workload(name)
    workload.seed = seed
    compiled = compile_kernel(workload.kernel())
    base = run_simulation(config, compiled, workload,
                          lambda sm, sh: BaselineRF())
    regless = run_simulation(config, compiled, workload,
                             lambda sm, sh: ReglessStorage(compiled))
    return base, regless


def seed_robustness(
    seeds: Sequence[int] = DEFAULT_SEEDS,
    names: Sequence[str] = DEFAULT_MIX,
    config: Optional[GPUConfig] = None,
) -> List[SeedStats]:
    """Headline metrics, one sample per seed (geomean over ``names``)."""
    config = config or GPUConfig()
    runtime_samples: List[float] = []
    osu_read_samples: List[float] = []
    near_preload_samples: List[float] = []
    l1_rate_samples: List[float] = []

    for seed in seeds:
        runtimes, reads_ok, near, l1_rate = [], [], [], []
        for name in names:
            base, rl = _run_pair(name, seed, config)
            runtimes.append(rl.cycles / base.cycles)
            reads_ok.append(rl.counter("osu_read_miss"))
            total = max(1.0, rl.counter("preloads"))
            near.append(
                (rl.counter("preload_src_osu")
                 + rl.counter("preload_src_const")
                 + rl.counter("preload_src_compressor")) / total
            )
            l1_rate.append(
                (rl.counter("l1_preload_req") + rl.counter("l1_reg_store"))
                / max(1, rl.cycles)
            )
        runtime_samples.append(geomean(runtimes))
        osu_read_samples.append(sum(reads_ok))
        near_preload_samples.append(sum(near) / len(near))
        l1_rate_samples.append(sum(l1_rate) / len(l1_rate))

    return [
        SeedStats("runtime geomean (RL/base)", runtime_samples),
        SeedStats("staging misses (must be 0)", osu_read_samples),
        SeedStats("preloads w/o memory trip", near_preload_samples),
        SeedStats("L1 preload+store req/cycle", l1_rate_samples),
    ]


def render_robustness(stats: List[SeedStats],
                      seeds: Sequence[int] = DEFAULT_SEEDS) -> str:
    lines = [
        f"Seed robustness over seeds {tuple(seeds)}:",
        "",
    ]
    lines.extend(s.render() for s in stats)
    lines.append("")
    runtime = stats[0]
    verdict = (
        "conclusion stable: RegLess matches baseline run time for every seed"
        if runtime.hi < 1.1
        else "WARNING: some seed shows >10% slowdown"
    )
    lines.append(verdict)
    return "\n".join(lines)
