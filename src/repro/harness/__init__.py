"""Experiment harness: suite runner, per-figure experiments, reports."""

from .experiments import (
    EXPERIMENTS,
    fig2_working_set,
    fig3_backing_store,
    fig5_liveness_seams,
    fig11_area,
    fig12_power,
    fig13_pareto,
    fig14_rf_energy,
    fig15_gpu_energy,
    fig16_runtime,
    fig17_preload_location,
    fig18_l1_bandwidth,
    fig19_region_registers,
    geomean,
    energy_breakdown,
    table2_region_sizes,
)
from .bench import run_bench
from .cache import ResultCache, cache_root, code_salt, run_digest
from .parallel import RunRequest, resolve_jobs
from .runner import BACKENDS, RunResult, SuiteRunner
from .export import EXPORTABLE, export_all, rows_for, to_csv, to_json
from .robustness import SeedStats, render_robustness, seed_robustness
from .validate import Claim, render_claims, validate_claims

__all__ = [
    "EXPERIMENTS",
    "fig2_working_set",
    "fig3_backing_store",
    "fig5_liveness_seams",
    "fig11_area",
    "fig12_power",
    "fig13_pareto",
    "fig14_rf_energy",
    "fig15_gpu_energy",
    "fig16_runtime",
    "fig17_preload_location",
    "fig18_l1_bandwidth",
    "fig19_region_registers",
    "geomean",
    "energy_breakdown",
    "table2_region_sizes",
    "BACKENDS",
    "RunResult",
    "RunRequest",
    "SuiteRunner",
    "ResultCache",
    "cache_root",
    "code_salt",
    "run_digest",
    "resolve_jobs",
    "run_bench",
    "Claim",
    "render_claims",
    "validate_claims",
    "EXPORTABLE",
    "export_all",
    "rows_for",
    "to_csv",
    "to_json",
    "SeedStats",
    "render_robustness",
    "seed_robustness",
]
