"""Run inspection: sample RegLess warp states and OSU occupancy over time.

The questions one asks when a RegLess run misbehaves are always the same:
how many warps were ACTIVE / PRELOADING / DRAINING, how full were the
reservations, how deep was the warp stack?  :class:`StateSampler` attaches
to a GPU before ``run()`` and records those once per ``period`` cycles.

    gpu = GPU(config, compiled, workload, factory)
    sampler = StateSampler(period=100)
    sampler.attach(gpu)
    gpu.run()
    print(sampler.render())
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..regless.backend import ReglessStorage
from ..regless.capacity import WarpState

__all__ = ["StateSample", "StateSampler"]


@dataclass(frozen=True)
class StateSample:
    """One snapshot across all RegLess shards of a GPU."""

    cycle: int
    #: warps per state (summed over shards).
    states: Dict[str, int]
    #: total reserved OSU entries / total capacity.
    reserved: int
    capacity: int
    #: inactive warps waiting for activation.
    stack_depth: int

    @property
    def occupancy(self) -> float:
        return self.reserved / self.capacity if self.capacity else 0.0

    def render(self) -> str:
        parts = " ".join(f"{k}={v}" for k, v in sorted(self.states.items()))
        return (
            f"cycle {self.cycle:>7}: {parts}  "
            f"reserved {self.reserved}/{self.capacity} "
            f"({self.occupancy:.0%})  stack {self.stack_depth}"
        )


class StateSampler:
    """Periodic sampler of RegLess capacity-manager state."""

    def __init__(self, period: int = 100):
        self.period = period
        self.samples: List[StateSample] = []
        self._attached = False

    def attach(self, gpu) -> None:
        if self._attached:
            raise RuntimeError("sampler already attached")
        storages = [
            shard.storage
            for sm in gpu.sms
            for shard in sm.shards
            if isinstance(shard.storage, ReglessStorage)
        ]
        if not storages:
            raise ValueError("no RegLess shards to sample on this GPU")
        self._attached = True
        first_sm = gpu.sms[0]
        orig_cycle = first_sm.cycle
        period = self.period

        def sampled_cycle():
            if gpu.wheel.now % period == 0:
                self.samples.append(self._snapshot(gpu.wheel.now, storages))
            return orig_cycle()

        first_sm.cycle = sampled_cycle

    @staticmethod
    def _snapshot(cycle: int, storages) -> StateSample:
        states: Dict[str, int] = {s.value: 0 for s in WarpState}
        reserved = 0
        capacity = 0
        stack_depth = 0
        for storage in storages:
            cm = storage.cm
            for ctx in cm.ctx.values():
                states[ctx.state.value] += 1
            reserved += sum(cm.reserved)
            capacity += sum(b.capacity for b in storage.osu.banks)
            stack_depth += len(cm.stack)
        return StateSample(
            cycle=cycle,
            states=states,
            reserved=reserved,
            capacity=capacity,
            stack_depth=stack_depth,
        )

    # -- aggregate views ---------------------------------------------------------

    def mean_state(self, state: str) -> float:
        if not self.samples:
            return 0.0
        return sum(s.states.get(state, 0) for s in self.samples) / len(
            self.samples
        )

    def peak_occupancy(self) -> float:
        return max((s.occupancy for s in self.samples), default=0.0)

    def render(self, limit: int = 50) -> str:
        return "\n".join(s.render() for s in self.samples[:limit])
