"""Memory hierarchy: caches, MSHRs, L1 register cache, L2 + DRAM."""

from .cache import Eviction, MSHRFile, SetAssocCache
from .hierarchy import MemoryHierarchy
from .l1 import L1RegCache

__all__ = [
    "Eviction",
    "MSHRFile",
    "SetAssocCache",
    "MemoryHierarchy",
    "L1RegCache",
]
