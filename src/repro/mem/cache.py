"""Set-associative cache state (tags only) with LRU replacement and MSHRs.

This models cache *contents*; timing lives in :mod:`repro.mem.hierarchy`.
Lines are identified by their line-aligned byte address.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["SetAssocCache", "MSHRFile", "Eviction"]


@dataclass(frozen=True)
class Eviction:
    """A line pushed out of the cache by a fill."""

    addr: int
    dirty: bool


class SetAssocCache:
    """LRU set-associative tag array.

    Each set is an ``OrderedDict`` mapping line address -> dirty flag, with
    most-recently-used entries at the end.
    """

    def __init__(self, n_lines: int, assoc: int, line_bytes: int):
        if n_lines % assoc != 0:
            raise ValueError("n_lines must be a multiple of assoc")
        self.n_lines = n_lines
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.n_sets = n_lines // assoc
        self._sets: List["OrderedDict[int, bool]"] = [
            OrderedDict() for _ in range(self.n_sets)
        ]

    def _set_of(self, addr: int) -> "OrderedDict[int, bool]":
        return self._sets[(addr // self.line_bytes) % self.n_sets]

    def align(self, addr: int) -> int:
        return addr - addr % self.line_bytes

    def lookup(self, addr: int, touch: bool = True) -> bool:
        """True when the line is present; optionally updates LRU order."""
        addr = self.align(addr)
        s = self._set_of(addr)
        if addr not in s:
            return False
        if touch:
            s.move_to_end(addr)
        return True

    def fill(self, addr: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert a line, returning the evicted victim if the set was full."""
        addr = self.align(addr)
        s = self._set_of(addr)
        if addr in s:
            s[addr] = s[addr] or dirty
            s.move_to_end(addr)
            return None
        victim: Optional[Eviction] = None
        if len(s) >= self.assoc:
            v_addr, v_dirty = s.popitem(last=False)
            victim = Eviction(v_addr, v_dirty)
        s[addr] = dirty
        return victim

    def mark_dirty(self, addr: int) -> bool:
        addr = self.align(addr)
        s = self._set_of(addr)
        if addr not in s:
            return False
        s[addr] = True
        s.move_to_end(addr)
        return True

    def invalidate(self, addr: int) -> bool:
        """Drop a line without writing it back; True if it was present."""
        addr = self.align(addr)
        s = self._set_of(addr)
        return s.pop(addr, None) is not None

    def is_dirty(self, addr: int) -> bool:
        addr = self.align(addr)
        return self._set_of(addr).get(addr, False)

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)


class MSHRFile:
    """Miss-status holding registers: merge misses to the same line."""

    def __init__(self, n_entries: int):
        self.n_entries = n_entries
        self._pending: Dict[int, List] = {}

    def can_allocate(self, addr: int) -> bool:
        return addr in self._pending or len(self._pending) < self.n_entries

    def allocate(self, addr: int, callback) -> bool:
        """Register a miss; returns True when this is the *primary* miss
        (the caller must send the request downstream), False when merged."""
        if addr in self._pending:
            self._pending[addr].append(callback)
            return False
        if len(self._pending) >= self.n_entries:
            raise RuntimeError("MSHR file full; call can_allocate first")
        self._pending[addr] = [callback]
        return True

    def complete(self, addr: int) -> List:
        """Resolve a miss, returning the callbacks to run."""
        return self._pending.pop(addr, [])

    @property
    def occupancy(self) -> int:
        return len(self._pending)

    def __contains__(self, addr: int) -> bool:
        return addr in self._pending
