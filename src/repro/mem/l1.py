"""Per-SM L1 cache used as the register backing store.

Per the paper: the L1 services **one request per cycle** (the key bandwidth
constraint motivating region creation), data accesses bypass it entirely
(Table 1), and for register lines it is write-back with a no-fetch-on-write
optimization — an evicted register always overwrites a whole line, so a
write miss allocates without reading memory (section 5.2.3).

Misses go through an MSHR file to the shared L2/DRAM hierarchy.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.config import GPUConfig
from ..sim.events import EventWheel
from .cache import MSHRFile, SetAssocCache
from .hierarchy import MemoryHierarchy

__all__ = ["L1RegCache"]


class L1RegCache:
    """One SM's L1, serving register fills/write-backs/invalidations."""

    def __init__(
        self,
        sm_id: int,
        config: GPUConfig,
        counters,  # Counters or a repro.obs.metrics.MetricScope
        wheel: EventWheel,
        hierarchy: MemoryHierarchy,
    ):
        self.sm_id = sm_id
        self.config = config
        self.counters = counters
        self.wheel = wheel
        self.hierarchy = hierarchy
        self.cache = SetAssocCache(config.l1_lines, config.l1_assoc, config.line_bytes)
        self.mshrs = MSHRFile(config.l1_mshrs)
        self._port_used = 0
        self._port_cycle = -1

    # -- port management: one request per cycle --------------------------------
    #
    # The port is cycle-stamped rather than reset by a per-cycle call: the
    # use count only counts against the limit while the stamp matches
    # ``wheel.now``, so an idle L1 costs nothing per cycle (component
    # clocking contract, docs/performance.md).

    def begin_cycle(self) -> None:
        """Explicit port reset for external drivers that do not advance the
        wheel between cycles (unit tests); the simulator relies on the
        cycle stamp instead."""
        self._port_cycle = self.wheel.now
        self._port_used = 0

    @property
    def port_free(self) -> bool:
        return (
            self._port_used < self.config.l1_ports
            or self._port_cycle != self.wheel.now
        )

    def _take_port(self) -> None:
        now = self.wheel.now
        if self._port_cycle != now:
            self._port_cycle = now
            self._port_used = 1
        else:
            self._port_used += 1

    # -- register-space operations ------------------------------------------------

    def read(self, addr: int, callback: Callable[[str], None]) -> bool:
        """Fetch a register line; ``callback(source)`` runs when data is
        ready, with ``source`` in {"l1", "l2dram"}.  Returns False when the
        port or MSHRs are busy (caller retries next cycle)."""
        if not self.port_free:
            self.counters.inc("l1_port_reject")
            return False
        addr = self.cache.align(addr)
        self.counters.inc("l1_access")
        if self.cache.lookup(addr):
            self._take_port()
            self.counters.inc("l1_hit")
            self.wheel.after(self.config.l1_latency, lambda: callback("l1"))
            return True
        if not self.mshrs.can_allocate(addr):
            self.counters.inc("l1_mshr_reject")
            return False
        self._take_port()
        self.counters.inc("l1_miss")
        primary = self.mshrs.allocate(addr, callback)
        if primary:
            self.hierarchy.request(
                self.sm_id, addr, False, lambda: self._fill(addr), kind="reg"
            )
        return True

    def _fill(self, addr: int) -> None:
        victim = self.cache.fill(addr, dirty=False)
        if victim is not None and victim.dirty:
            self.counters.inc("l1_writeback")
            self.hierarchy.request(self.sm_id, victim.addr, True, None, kind="reg")
        for cb in self.mshrs.complete(addr):
            cb("l2dram")

    def write(self, addr: int, callback: Optional[Callable[[], None]] = None) -> bool:
        """Write a full register line (OSU eviction).  No fetch on miss."""
        if not self.port_free:
            self.counters.inc("l1_port_reject")
            return False
        self._take_port()
        addr = self.cache.align(addr)
        self.counters.inc("l1_access")
        self.counters.inc("l1_reg_store")
        victim = self.cache.fill(addr, dirty=True)
        if victim is not None and victim.dirty:
            self.counters.inc("l1_writeback")
            self.hierarchy.request(self.sm_id, victim.addr, True, None, kind="reg")
        if callback is not None:
            self.wheel.after(1, callback)
        return True

    def invalidate(self, addr: int) -> bool:
        """Drop a dead register line (compiler cache-invalidate annotation)."""
        if not self.port_free:
            self.counters.inc("l1_port_reject")
            return False
        self._take_port()
        self.counters.inc("l1_access")
        self.counters.inc("l1_reg_inval")
        self.cache.invalidate(self.cache.align(addr))
        return True

    def contains(self, addr: int) -> bool:
        return self.cache.lookup(addr, touch=False)
