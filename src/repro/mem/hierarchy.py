"""Shared L2 + DRAM timing model.

Data accesses bypass the L1 (paper Table 1) and travel: per-SM interconnect
queue -> L2 lookup -> (on miss) DRAM.  Bandwidth limits:

* each SM may inject ``icnt_per_sm`` requests per cycle;
* DRAM transfers ``dram_lines_per_cycle`` 128-byte lines per cycle
  (224 GB/s at 1 GHz), modeled with a token bucket.

Register traffic from the RegLess L1 (fills, write-backs) uses the same L2
path, so registers and data contend for L2/DRAM bandwidth exactly as the
paper worries about in section 2.3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, Tuple

from ..energy.accounting import Counters
from ..sim.config import GPUConfig
from ..sim.events import EventWheel
from .cache import SetAssocCache

__all__ = ["MemoryHierarchy"]

Callback = Optional[Callable[[], None]]


class MemoryHierarchy:
    """L2 cache + DRAM shared by all SMs."""

    #: request kinds (pre-resolving the per-kind counter names keeps
    #: f-string formatting off the per-request hot path).
    KINDS = ("data", "reg")

    def __init__(self, config: GPUConfig, counters: Counters, wheel: EventWheel):
        self.config = config
        self.counters = counters
        self.wheel = wheel
        self.l2 = SetAssocCache(config.l2_lines, config.l2_assoc, config.line_bytes)
        self._queues: Tuple[Deque, ...] = tuple(
            deque() for _ in range(config.n_sms)
        )
        self._dram_tokens = 0.0
        self._icnt_budget = [0.0] * config.n_sms
        #: total queued requests across all SMs — the demand clock: the run
        #: loop only calls :meth:`cycle` while this is non-zero and banks
        #: the skipped cycles for :meth:`credit_idle`.
        self.pending_total = 0
        #: idle-regen clamp: the smallest k at which *both* token buckets
        #: are guaranteed saturated from empty (cap / rate, rounded up).
        #: Crediting more than this is a no-op thanks to the caps, so
        #: credit_idle may clamp without changing any observable.
        self._regen_sat = max(
            -(-8 * 4 // max(1, int(config.dram_lines_per_cycle * 4))),
            -(-4 * 4 // max(1, int(config.icnt_per_sm * 4))),
        )
        self._c_icnt = {k: f"icnt_{k}" for k in self.KINDS}
        self._c_l2_access = {k: f"l2_{k}_access" for k in self.KINDS}
        self._c_dram_read = {k: f"dram_{k}_read" for k in self.KINDS}

    # -- request entry points -------------------------------------------------

    def request(
        self,
        sm_id: int,
        addr: int,
        is_write: bool,
        callback: Callback = None,
        kind: str = "data",
    ) -> None:
        """Queue one line request from an SM (data or register traffic)."""
        self._queues[sm_id].append((addr, is_write, callback, kind))
        self.pending_total += 1
        self.counters.inc(self._c_icnt[kind])

    def pending_requests(self, sm_id: int) -> int:
        return len(self._queues[sm_id])

    @property
    def busy(self) -> bool:
        return self.pending_total > 0

    # -- per-cycle pump -----------------------------------------------------------

    def credit_idle(self, idle_cycles: int) -> None:
        """Regenerate token budgets for ``idle_cycles`` elided pump cycles.

        While every queue is empty no tokens can be consumed, so the
        per-cycle saturating regeneration has the closed form
        ``min(x + rate * k, cap)`` — bit-identical to ``k`` individual
        pumps because every quantity is a multiple of 0.25 (exact in
        binary floating point) and the caps clamp identically.  ``k`` is
        clamped at the configured saturation point (``cap / rate`` of the
        slower bucket): past it both buckets are pinned at their caps, so
        any larger credit is a no-op.
        """
        sat = self._regen_sat
        k = idle_cycles if idle_cycles < sat else sat
        cfg = self.config
        self._dram_tokens = min(
            self._dram_tokens + cfg.dram_lines_per_cycle * k, 8.0
        )
        icnt = self._icnt_budget
        regen = cfg.icnt_per_sm * k
        for sm_id in range(len(icnt)):
            icnt[sm_id] = min(icnt[sm_id] + regen, 4.0)

    def cycle(self) -> None:
        self._dram_tokens = min(
            self._dram_tokens + self.config.dram_lines_per_cycle, 8.0
        )
        for sm_id, queue in enumerate(self._queues):
            self._icnt_budget[sm_id] = min(
                self._icnt_budget[sm_id] + self.config.icnt_per_sm, 4.0
            )
            while queue and self._icnt_budget[sm_id] >= 1.0:
                if not self._service(queue[0]):
                    break  # head-of-line blocked on DRAM bandwidth
                queue.popleft()
                self.pending_total -= 1
                self._icnt_budget[sm_id] -= 1.0

    def _service(self, request) -> bool:
        addr, is_write, callback, kind = request
        cfg = self.config
        hit = self.l2.lookup(addr)
        self.counters.inc("l2_access")
        self.counters.inc(self._c_l2_access[kind])

        if is_write:
            # Posted full-line write: allocate dirty without fetching.
            if not hit and self._dram_tokens < 1.0:
                return False
            victim = self.l2.fill(addr, dirty=True)
            if victim is not None and victim.dirty:
                self.counters.inc("dram_write")
                self._dram_tokens -= 1.0
            if callback is not None:
                self.wheel.after(1, callback)
            return True

        if hit:
            self.counters.inc("l2_hit")
            if callback is not None:
                self.wheel.after(cfg.l2_latency, callback)
            return True

        # Read miss: needs a DRAM transfer.
        if self._dram_tokens < 1.0:
            return False
        self._dram_tokens -= 1.0
        self.counters.inc("l2_miss")
        self.counters.inc("dram_read")
        self.counters.inc(self._c_dram_read[kind])
        victim = self.l2.fill(addr, dirty=False)
        if victim is not None and victim.dirty:
            self.counters.inc("dram_write")
        if callback is not None:
            self.wheel.after(cfg.l2_latency + cfg.dram_latency, callback)
        return True
