"""RegLess: Just-in-Time Operand Staging for GPUs (MICRO 2017) — reproduction.

Public API tour:

* :mod:`repro.isa`      — the virtual GPU ISA and kernel builder.
* :mod:`repro.compiler` — RegLess compilation: liveness, regions, annotations.
* :mod:`repro.sim`      — the cycle-level GPU simulator.
* :mod:`repro.regless`  — the RegLess hardware model (OSU, CM, compressor).
* :mod:`repro.regfile`  — baseline / RFH / RFV operand-storage backends.
* :mod:`repro.energy`   — energy, power and area models.
* :mod:`repro.obs`      — stall attribution, metrics registry, trace export.
* :mod:`repro.workloads`— the 21 synthetic Rodinia benchmarks.
* :mod:`repro.harness`  — per-figure experiments (``python -m repro.harness``).

Quick start::

    from repro.compiler import compile_kernel
    from repro.harness import SuiteRunner
    from repro.workloads import make_workload

    runner = SuiteRunner()
    baseline = runner.run("hotspot", "baseline")
    regless = runner.run("hotspot", "regless")
    print(regless.cycles / baseline.cycles)
"""

__version__ = "1.0.0"

from .compiler import CompiledKernel, compile_kernel
from .harness import SuiteRunner
from .sim import GPUConfig, run_simulation
from .workloads import Workload, make_workload, workload_names

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "SuiteRunner",
    "GPUConfig",
    "run_simulation",
    "Workload",
    "make_workload",
    "workload_names",
    "__version__",
]
