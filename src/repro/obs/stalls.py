"""Per-cycle stall attribution (the GPGPU-sim-style breakdown).

Every simulated cycle, every warp of a shard is binned into **exactly
one** reason: either it issued at least one instruction (``issued``) or
the first condition that blocked it, checked in a fixed priority order:

=================  ==========================================================
``exited``         the warp has exited (or ran off the program end and will
                   synthesize its exit at the next issue attempt)
``barrier``        waiting at a CTA barrier
``pipeline``       structural stall (``stall_until``: two-level promotion
                   refill penalty)
``mem_pending``    scoreboard-blocked on a source with an in-flight global
                   load
``scoreboard``     scoreboard-blocked on an ALU-latency dependence
``occupancy``      the storage holds the warp's CTA non-resident
                   (baseline/RFH register-pressure occupancy gating)
``rfv_pressure``   RFV has no free physical register for the allocation
``cm_inactive``    RegLess: the warp's region is not staged (INACTIVE or
                   DRAINING in the capacity manager)
``cm_preloading``  RegLess: region admitted, preloads still in flight
``osu_port``       RegLess: preload head-of-line blocked at the L1 request
                   port
``mem_slot``       ready memory instruction, but the SM's one LDST issue
                   slot per cycle is taken
``demoted``        ready, but sitting in the two-level scheduler's pending
                   pool
``issue_width``    ready and eligible, but the scheduler's issue budget ran
                   out (or greedy ordering never reached it)
=================  ==========================================================

The accounting is *conservative by construction*: per shard,
``sum(bins) == warps x cycles`` — enforced by
:func:`check_conservation` and asserted at the end of every run.

Cycles elided by the simulator's fast-forward optimization are replayed
from the immediately preceding dead cycle's bins (nothing can change
during a skipped span by definition of fast-forward), so conservation
holds over the *full* cycle count, not just the simulated cycles.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = [
    "ISSUED",
    "STALL_REASONS",
    "ShardStallTracker",
    "check_conservation",
    "merge_stalls",
]

ISSUED = "issued"

#: Every stall bin, in classification priority order.
STALL_REASONS = (
    "exited",
    "barrier",
    "pipeline",
    "mem_pending",
    "scoreboard",
    "occupancy",
    "rfv_pressure",
    "cm_inactive",
    "cm_preloading",
    "osu_port",
    "mem_slot",
    "demoted",
    "issue_width",
)


class ShardStallTracker:
    """Accumulates one shard's per-cycle stall bins.

    ``bins`` maps reason -> warp-cycles.  ``occupancy`` maps reason ->
    ``{n: cycles}``: the number of cycles during which exactly ``n`` of
    the shard's warps were in that bin (the per-warp-state occupancy
    histogram).
    """

    __slots__ = ("n_warps", "_cycles", "_bins", "_occupancy", "_last", "_repeat")

    def __init__(self, n_warps: int):
        self.n_warps = n_warps
        self._cycles = 0
        self._bins: Dict[str, int] = {}
        self._occupancy: Dict[str, Dict[int, int]] = {}
        self._last: Optional[Dict[str, int]] = None
        #: pending repetitions of ``_last`` not yet folded into the
        #: accumulators (run-length encoding: long stretches of cycles
        #: classify identically, so commit batches them and ``_flush``
        #: applies the whole run at once).
        self._repeat = 0

    # -- per-cycle feed -------------------------------------------------------

    def commit(self, cycle_bins: Dict[str, int]) -> None:
        """Record one simulated cycle's classification.  ``cycle_bins``
        must be a fresh dict the caller will not mutate afterwards."""
        if cycle_bins == self._last:
            self._repeat += 1
            return
        self._flush()
        self._last = cycle_bins
        self._repeat = 1

    def extend(self) -> None:
        """Record one cycle proven equal to the last committed one.

        The cohort-batched account pass tracks bin-changing events
        itself; when none occurred it skips rebuilding the histogram
        *and* the dict comparison :meth:`commit` would pay, extending
        the run-length encoding directly.  Caller contract: at least
        one cycle has been committed since construction."""
        self._repeat += 1

    def replay(self, cycles: int) -> None:
        """Account ``cycles`` fast-forwarded cycles as copies of the last
        simulated (dead) cycle — no simulator state changes while the
        event wheel spins over empty buckets, so the classification is
        exact."""
        if cycles <= 0:
            return
        if self._last is None:
            # Defensive: fast-forward before any simulated cycle cannot
            # happen (the dead-cycle test requires a committed cycle), but
            # never silently drop warp-cycles if it somehow does.
            self._last = {"issue_width": self.n_warps}
        self._repeat += cycles

    def _flush(self) -> None:
        last = self._last
        n = self._repeat
        if last is None or n == 0:
            return
        self._repeat = 0
        self._cycles += n
        bins = self._bins
        occupancy = self._occupancy
        for reason, count in last.items():
            bins[reason] = bins.get(reason, 0) + count * n
            hist = occupancy.get(reason)
            if hist is None:
                occupancy[reason] = {count: n}
            else:
                hist[count] = hist.get(count, 0) + n

    # -- queries --------------------------------------------------------------

    @property
    def cycles(self) -> int:
        """Simulated + replayed cycles accounted so far."""
        self._flush()
        return self._cycles

    @property
    def bins(self) -> Dict[str, int]:
        """reason -> accumulated warp-cycles."""
        self._flush()
        return self._bins

    @property
    def occupancy(self) -> Dict[str, Dict[int, int]]:
        """reason -> {warps-in-bin: cycles at that count}."""
        self._flush()
        return self._occupancy

    @property
    def total(self) -> int:
        self._flush()
        return sum(self._bins.values())

    def report(self, sm: int, shard: int) -> Dict[str, object]:
        """A plain-dict snapshot (pickles into cached results)."""
        self._flush()
        return {
            "sm": sm,
            "shard": shard,
            "warps": self.n_warps,
            "cycles": self._cycles,
            "bins": dict(self._bins),
            "occupancy": {r: dict(h) for r, h in self._occupancy.items()},
        }


def check_conservation(report: Dict[str, object]) -> None:
    """Raise AssertionError unless ``sum(bins) == warps x cycles``."""
    total = sum(report["bins"].values())  # type: ignore[union-attr]
    expect = report["warps"] * report["cycles"]  # type: ignore[operator]
    assert total == expect, (
        f"stall attribution not conservative on sm{report['sm']}."
        f"shard{report['shard']}: {total} attributed warp-cycles != "
        f"{report['warps']} warps x {report['cycles']} cycles = {expect}"
    )


def merge_stalls(reports: List[Dict[str, object]]) -> Dict[str, int]:
    """Aggregate per-shard reports into one reason -> warp-cycles map."""
    merged: Dict[str, int] = {}
    for report in reports:
        for reason, count in report["bins"].items():  # type: ignore[union-attr]
            merged[reason] = merged.get(reason, 0) + count
    return merged
