"""Chrome-trace (Perfetto) export of simulator pipeline events.

Converts a :class:`~repro.sim.trace.Tracer`'s event ring into the Chrome
Trace Event JSON format (the ``traceEvents`` array form), which both
``chrome://tracing`` and https://ui.perfetto.dev load directly:

* one **process** per SM, one **thread** per warp (named tracks);
* ``issue`` events become 1-cycle complete (``ph:"X"``) slices;
* ``writeback`` events become instant (``ph:"i"``) events;
* RegLess **region spans** (activate -> drain, recorded by the capacity
  manager when a tracer is attached) become complete slices on the same
  warp track under the ``region`` category.

One simulated cycle maps to one microsecond of trace time (Perfetto's
native unit), so the timeline reads in cycles.

:func:`validate_chrome_trace` checks the minimal schema contract the CI
job enforces on exported files.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

__all__ = ["to_chrome_trace", "write_chrome_trace", "validate_chrome_trace"]

#: JSON keys every trace event must carry.
_REQUIRED_EVENT_KEYS = ("name", "ph", "ts", "pid", "tid")


def _meta(pid: int, tid: Optional[int], name: str, what: str) -> Dict:
    event: Dict = {
        "name": what,
        "ph": "M",
        "ts": 0,
        "pid": pid,
        "tid": tid if tid is not None else 0,
        "args": {"name": name},
    }
    return event


def to_chrome_trace(tracer) -> Dict[str, object]:
    """Build a Chrome-trace dict from a Tracer's recorded events."""
    events: List[Dict] = []
    seen_pids: Dict[int, None] = {}
    seen_tids: Dict[tuple, None] = {}

    def track(sm: int, warp: int) -> None:
        if sm not in seen_pids:
            seen_pids[sm] = None
            events.append(_meta(sm, None, f"SM{sm}", "process_name"))
        if (sm, warp) not in seen_tids:
            seen_tids[(sm, warp)] = None
            events.append(_meta(sm, warp, f"warp {warp}", "thread_name"))

    for ev in tracer.events:
        track(ev.sm, ev.warp)
        base = {
            "ts": ev.cycle,
            "pid": ev.sm,
            "tid": ev.warp,
            "args": {"pc": ev.pc, "shard": ev.shard},
        }
        if ev.kind == "issue":
            events.append({
                "name": ev.text, "ph": "X", "dur": 1, "cat": "issue", **base,
            })
        elif ev.kind == "writeback":
            events.append({
                "name": f"wb pc={ev.pc}", "ph": "i", "s": "t",
                "cat": "writeback", **base,
            })

    for span in getattr(tracer, "region_spans", ()):
        track(span.sm, span.warp)
        events.append({
            "name": f"region {span.rid}",
            "ph": "X",
            "ts": span.start,
            "dur": max(1, span.end - span.start),
            "pid": span.sm,
            "tid": span.warp,
            "cat": "region",
            "args": {"rid": span.rid, "shard": span.shard,
                     "preload_cycles": span.active - span.start,
                     "drain_cycles": span.end - span.drain},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "repro.obs.perfetto",
                      "time_unit": "1us == 1 simulated cycle"},
    }


def write_chrome_trace(path: str, tracer) -> str:
    """Export, validate, and write a tracer's events; returns ``path``."""
    trace = to_chrome_trace(tracer)
    errors = validate_chrome_trace(trace)
    if errors:
        raise ValueError(f"invalid chrome trace: {errors[:3]}")
    with open(path, "w") as fh:
        json.dump(trace, fh)
    return path


def validate_chrome_trace(trace: object) -> List[str]:
    """Schema errors in a chrome-trace object (empty list == valid).

    Checks the minimal contract Perfetto's JSON importer needs: a
    ``traceEvents`` list whose entries carry ``name``/``ph``/``ts``/
    ``pid``/``tid``, numeric timestamps, a positive ``dur`` on complete
    (``X``) events, and monotone-safe (non-negative) times.
    """
    errors: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a dict, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            errors.append(f"event {i}: not an object")
            continue
        for key in _REQUIRED_EVENT_KEYS:
            if key not in ev:
                errors.append(f"event {i}: missing {key!r}")
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"event {i}: bad ts {ts!r}")
        if ev.get("ph") == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur <= 0:
                errors.append(f"event {i}: X event needs positive dur")
        if len(errors) >= 20:
            errors.append("... (truncated)")
            break
    return errors
