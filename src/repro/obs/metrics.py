"""Hierarchical metrics registry with legacy-counter aliasing.

Hardware components emit events into a :class:`MetricScope` whose path
names the component instance (``sm0.shard1.cm``, ``sm0.l1``, ...).  The
scope records the event twice:

* under its **hierarchical path** in the owning :class:`MetricsRegistry`
  (``sm0.shard1.cm.region_activations``), which is what the ``stalls``
  CLI, the Perfetto exporter, and per-component reports read; and
* under the **legacy flat name** (``region_activations``) in the
  :class:`~repro.energy.accounting.Counters` the registry bridges, so the
  energy model, the figure experiments, and previously cached results see
  exactly the counter names they always did.

A scope is duck-type-compatible with ``Counters`` (it has ``inc`` and
``get``), so every component that used to take a ``Counters`` can take a
scope without code changes at its call sites.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

__all__ = ["MetricsRegistry", "MetricScope", "bucket_125"]


def bucket_125(value: float) -> float:
    """Round ``value`` up to the next 1-2-5 bucket bound.

    The classic latency-histogram series (… 0.5, 1, 2, 5, 10, 20, 50 …):
    call it at the observe site so a histogram holds a handful of stable
    bucket keys instead of one key per distinct measured value.
    """
    if not value > 0 or value != value or value == float("inf"):
        return 0.0
    bound = 1.0
    while bound < value:
        bound *= 10.0
    while bound * 0.1 >= value:
        bound *= 0.1
    for mult in (0.1, 0.2, 0.5, 1.0):
        if value <= bound * mult:
            return bound * mult
    return bound


class MetricScope:
    """A component-path view onto a :class:`MetricsRegistry`.

    ``inc``/``get`` mirror the legacy ``Counters`` API; ``gauge`` and
    ``observe`` add the richer metric kinds.
    """

    __slots__ = ("registry", "path", "_full_names", "_legacy_counts")

    def __init__(self, registry: "MetricsRegistry", path: str):
        self.registry = registry
        self.path = path
        #: name -> full path, built lazily (inc is a hot path; the f-string
        #: must not run on every event).
        self._full_names: Dict[str, str] = {}
        #: the legacy Counters' backing defaultdict, or None — inc mirrors
        #: into it directly rather than through a method call per event.
        legacy = registry.legacy
        self._legacy_counts = legacy._counts if legacy is not None else None

    def _full(self, name: str) -> str:
        full = self._full_names.get(name)
        if full is None:
            full = f"{self.path}.{name}" if self.path else name
            self._full_names[name] = full
        return full

    # -- Counters-compatible surface ----------------------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Count an event under this component (and its legacy alias)."""
        full = self._full_names.get(name)
        if full is None:
            full = self._full(name)
        counters = self.registry.counters
        counters[full] = counters.get(full, 0.0) + amount
        legacy = self._legacy_counts
        if legacy is not None:
            legacy[name] += amount

    def get(self, name: str) -> float:
        """This component's count (NOT the legacy aggregate)."""
        return self.registry.counters.get(self._full(name), 0.0)

    # -- richer metric kinds -------------------------------------------------

    def gauge(self, name: str, value: float) -> None:
        self.registry.gauge(self._full(name), value)

    def observe(self, name: str, value: float) -> None:
        self.registry.observe(self._full(name), value)

    def scope(self, name: str) -> "MetricScope":
        """A child scope (``sm0.shard1`` -> ``sm0.shard1.cm``)."""
        return MetricScope(self.registry, self._full(name))

    def __repr__(self) -> str:
        return f"MetricScope({self.path!r})"


class MetricsRegistry:
    """Process-wide store of hierarchical counters, gauges and histograms.

    ``legacy`` is the flat :class:`~repro.energy.accounting.Counters`
    instance that scope increments are mirrored into (under the metric's
    un-prefixed name); pass ``None`` to run without the bridge.
    """

    def __init__(self, legacy=None):
        self.legacy = legacy
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        #: histogram: path -> {observed value -> occurrences}.
        self.histograms: Dict[str, Dict[float, int]] = {}

    # -- emission -------------------------------------------------------------

    def inc(self, path: str, amount: float = 1.0,
            legacy: Optional[str] = None) -> None:
        self.counters[path] = self.counters.get(path, 0.0) + amount
        if legacy is not None and self.legacy is not None:
            self.legacy.inc(legacy, amount)

    def gauge(self, path: str, value: float) -> None:
        self.gauges[path] = value

    def observe(self, path: str, value: float) -> None:
        hist = self.histograms.setdefault(path, {})
        hist[value] = hist.get(value, 0) + 1

    def scope(self, path: str) -> MetricScope:
        return MetricScope(self, path)

    # -- queries --------------------------------------------------------------

    def get(self, path: str) -> float:
        return self.counters.get(path, 0.0)

    def collect(self, prefix: str) -> Dict[str, float]:
        """Every counter under ``prefix`` (path-component match)."""
        dotted = prefix + "."
        return {
            path: value
            for path, value in self.counters.items()
            if path == prefix or path.startswith(dotted)
        }

    def total(self, prefix: str) -> float:
        return sum(self.collect(prefix).values())

    def leaf_totals(self, depth: int = -1) -> Dict[str, float]:
        """Counters aggregated by the path with the first ``depth``
        components dropped — e.g. ``depth=2`` folds ``sm0.shard1.cm.x``
        and ``sm0.shard0.cm.x`` into ``cm.x``."""
        out: Dict[str, float] = {}
        for path, value in self.counters.items():
            parts = path.split(".")
            key = ".".join(parts[depth:]) if depth >= 0 else parts[-1]
            out[key] = out.get(key, 0.0) + value
        return out

    def as_dict(self) -> Dict[str, float]:
        """Flat path -> value snapshot of every counter, gauge and
        histogram (a histogram flattens to ``path.bucket.{bound}``
        occurrence counts plus a ``path.count`` total, so ``/metrics``
        and ``/metrics.json`` serve it without a schema change)."""
        out = dict(self.counters)
        out.update(self.gauges)
        for path, hist in self.histograms.items():
            count = 0
            for value, n in hist.items():
                key = f"{path}.bucket.{value:g}"
                out[key] = out.get(key, 0.0) + n
                count += n
            out[f"{path}.count"] = float(count)
        return out

    def tree(self) -> Dict[str, object]:
        """Counters as a nested dict keyed by path components."""
        root: Dict[str, object] = {}
        for path, value in sorted(self.counters.items()):
            node = root
            parts = path.split(".")
            for part in parts[:-1]:
                nxt = node.setdefault(part, {})
                if not isinstance(nxt, dict):  # leaf/branch name collision
                    nxt = node[part] = {"": nxt}
                node = nxt
            leaf = parts[-1]
            if isinstance(node.get(leaf), dict):
                node[leaf][""] = value  # type: ignore[index]
            else:
                node[leaf] = value
        return root

    def render_text(self, prefix: str = "") -> str:
        """Counters and gauges as sorted ``path value`` lines.

        The service's ``GET /metrics`` endpoint serves this (optionally
        restricted to one subtree, e.g. ``service``) — a flat, stable,
        line-oriented format that survives piping and diffing."""
        dotted = prefix + "." if prefix else ""
        lines = []
        for path, value in sorted(self.as_dict().items()):
            if prefix and not (path == prefix or path.startswith(dotted)):
                continue
            if isinstance(value, float) and value.is_integer():
                lines.append(f"{path} {int(value)}")
            else:
                lines.append(f"{path} {value}")
        return "\n".join(lines)

    def merge(self, other: "MetricsRegistry") -> None:
        for path, value in other.counters.items():
            self.counters[path] = self.counters.get(path, 0.0) + value
        self.gauges.update(other.gauges)
        for path, hist in other.histograms.items():
            mine = self.histograms.setdefault(path, {})
            for value, n in hist.items():
                mine[value] = mine.get(value, 0) + n

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({len(self.counters)} counters, "
            f"{len(self.gauges)} gauges, {len(self.histograms)} histograms)"
        )
