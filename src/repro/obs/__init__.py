"""``repro.obs`` — structured observability for the simulator.

Three layers, all opt-out-free (they ride along with every run):

* :mod:`repro.obs.metrics` — a hierarchical metrics registry
  (counter/gauge/histogram addressed by component paths such as
  ``sm0.shard1.cm.region_activations``).  Component scopes forward every
  increment to the legacy flat :class:`~repro.energy.accounting.Counters`
  under the old name, so energy accounting and cached results keep
  working unchanged.
* :mod:`repro.obs.stalls` — per-cycle stall attribution: every warp-cycle
  that does not issue is binned into exactly one stall reason, and the
  bins are conservative (reasons + issued == ``warps x cycles``).
* :mod:`repro.obs.perfetto` — a Chrome-trace (Perfetto) exporter for
  :class:`~repro.sim.trace.Tracer` events and RegLess region spans.
"""

from .metrics import MetricScope, MetricsRegistry, bucket_125
from .stalls import (
    ISSUED,
    STALL_REASONS,
    ShardStallTracker,
    check_conservation,
    merge_stalls,
)
from .perfetto import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "MetricScope",
    "MetricsRegistry",
    "bucket_125",
    "ISSUED",
    "STALL_REASONS",
    "ShardStallTracker",
    "check_conservation",
    "merge_stalls",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
