"""A small blocking client for the simulation service.

Stdlib-only (``http.client``), usable from scripts, tests, and CI::

    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", 8787, tenant="ci")
    job = client.submit([{"benchmark": "bfs", "backend": "regless"}])
    for event in client.events(job["id"]):      # streams NDJSON live
        print(event["status"], event.get("request"))
    result = client.result(job["id"])           # full SimStats bundle

Robustness: idempotent GETs retry with exponential backoff across
connection errors (a restarting daemon looks like a refused connect for
a moment), and :meth:`events` reconnects a dropped NDJSON stream,
resuming from the last-seen event sequence number via ``?after=`` so no
event is missed or duplicated across a daemon restart.  Mutating
requests (``POST``/``DELETE``) are never retried automatically.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, \
    Sequence, Union

from ..harness.parallel import RunRequest
from .schemas import request_to_wire

__all__ = ["ServiceClient", "ServiceError"]

#: a run spec the client accepts: a wire dict or a RunRequest.
RunSpec = Union[Dict[str, Any], RunRequest]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """One service endpoint + tenant identity."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 tenant: str = "anon", timeout: float = 300.0,
                 retries: int = 4, backoff: float = 0.25,
                 sleep: Callable[[float], None] = time.sleep):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout
        #: connection-error retries for idempotent GETs and streams.
        self.retries = retries
        #: base delay for exponential backoff (doubles per retry, capped).
        self.backoff = backoff
        self._sleep = sleep

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _backoff_delay(self, attempt: int) -> float:
        return min(4.0, self.backoff * (2 ** attempt))

    def _request(self, method: str, path: str,
                 body: Optional[Any] = None) -> Any:
        # Only GETs are safe to replay blindly: a resent POST could
        # double-submit a job across an ambiguous failure.
        attempts = 1 + (self.retries if method == "GET" else 0)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            if attempt:
                self._sleep(self._backoff_delay(attempt - 1))
            conn = self._connect()
            try:
                payload = None if body is None else json.dumps(body)
                conn.request(method, path, body=payload, headers={
                    "Content-Type": "application/json",
                    "X-Tenant": self.tenant,
                })
                response = conn.getresponse()
                data = response.read()
                if response.status >= 400:
                    raise self._error(response, data)
                return json.loads(data) if data else None
            except (OSError, http.client.HTTPException) as exc:
                last_error = exc
            finally:
                conn.close()
        raise ServiceError(
            503,
            f"{method} {path} failed after {attempts} attempt(s): "
            f"{type(last_error).__name__}: {last_error}",
        )

    @staticmethod
    def _error(response, data: bytes) -> ServiceError:
        try:
            message = json.loads(data).get("error", data.decode())
        except ValueError:
            message = data.decode(errors="replace")
        retry_after = response.getheader("Retry-After")
        return ServiceError(
            response.status, message,
            retry_after=float(retry_after) if retry_after else None,
        )

    # -- API ---------------------------------------------------------------

    def submit(self, runs: Sequence[RunSpec], priority: str = "batch",
               tags: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """POST /jobs; returns the job summary (``job["id"]``...)."""
        wire_runs: List[Dict[str, Any]] = [
            request_to_wire(r) if isinstance(r, RunRequest) else dict(r)
            for r in runs
        ]
        spec: Dict[str, Any] = {"runs": wire_runs, "priority": priority}
        if tags:
            spec["tags"] = tags
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """GET /jobs/<id>/result — raises :class:`ServiceError` 409 while
        the job is still running."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def _stream_once(self, job_id: str,
                     after: int) -> Iterator[Dict[str, Any]]:
        """One connection's worth of the NDJSON event stream."""
        path = f"/jobs/{job_id}/events"
        if after >= 0:
            path += f"?after={after}"
        conn = self._connect()
        try:
            conn.request("GET", path, headers={"X-Tenant": self.tenant})
            response = conn.getresponse()
            if response.status >= 400:
                raise self._error(response, response.read())
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def events(self, job_id: str, after: int = -1,
               reconnect: bool = True) -> Iterator[Dict[str, Any]]:
        """GET /jobs/<id>/events — yields NDJSON events until the stream
        ends with the terminal ``{"event": "job", ...}`` record.

        With ``reconnect`` (the default), a dropped connection, a daemon
        restart, or a ``{"event": "service", "status": "draining"}``
        marker triggers reconnect-with-backoff, resuming from the last
        seen event sequence number — the caller observes one gapless,
        duplicate-free stream across daemon lives."""
        last = after
        failures = 0
        while True:
            got_event = False
            try:
                for event in self._stream_once(job_id, last):
                    if event.get("event") == "service":
                        # drain marker: daemon is going down mid-stream
                        if not reconnect:
                            yield event
                            return
                        break
                    seq = event.get("seq")
                    if isinstance(seq, int):
                        last = max(last, seq)
                    got_event = True
                    yield event
                    if event.get("event") == "job":
                        return
                else:
                    # stream ended without a terminal event (connection
                    # torn down mid-flight) — reconnect below
                    pass
            except (OSError, http.client.HTTPException):
                pass
            except ServiceError as err:
                if err.status == 404 or not reconnect:
                    raise
                # 503 while the daemon drains/restarts: retry below
            if not reconnect:
                return
            if got_event:
                failures = 0  # progress resets the backoff budget
            failures += 1
            if failures > self.retries:
                raise ServiceError(
                    503,
                    f"event stream for job {job_id} died "
                    f"{failures} time(s) without completing",
                )
            self._sleep(self._backoff_delay(failures - 1))

    def wait(self, job_id: str) -> Dict[str, Any]:
        """Stream events until the job is terminal, then fetch the result."""
        for event in self.events(job_id):
            if event.get("event") == "job":
                break
        return self.result(job_id)

    def metrics(self, prefix: str = "") -> Dict[str, float]:
        path = "/metrics.json" + (f"?prefix={prefix}" if prefix else "")
        return self._request("GET", path)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")
