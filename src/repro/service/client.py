"""A small blocking client for the simulation service.

Stdlib-only (``http.client``), usable from scripts, tests, and CI::

    from repro.service import ServiceClient

    client = ServiceClient("127.0.0.1", 8787, tenant="ci")
    job = client.submit([{"benchmark": "bfs", "backend": "regless"}])
    for event in client.events(job["id"]):      # streams NDJSON live
        print(event["status"], event.get("request"))
    result = client.result(job["id"])           # full SimStats bundle
"""

from __future__ import annotations

import http.client
import json
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from ..harness.parallel import RunRequest
from .schemas import request_to_wire

__all__ = ["ServiceClient", "ServiceError"]

#: a run spec the client accepts: a wire dict or a RunRequest.
RunSpec = Union[Dict[str, Any], RunRequest]


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status: int, message: str,
                 retry_after: Optional[float] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.retry_after = retry_after


class ServiceClient:
    """One service endpoint + tenant identity."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8787,
                 tenant: str = "anon", timeout: float = 300.0):
        self.host = host
        self.port = port
        self.tenant = tenant
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(self, method: str, path: str,
                 body: Optional[Any] = None) -> Any:
        conn = self._connect()
        try:
            payload = None if body is None else json.dumps(body)
            conn.request(method, path, body=payload, headers={
                "Content-Type": "application/json",
                "X-Tenant": self.tenant,
            })
            response = conn.getresponse()
            data = response.read()
            if response.status >= 400:
                raise self._error(response, data)
            return json.loads(data) if data else None
        finally:
            conn.close()

    @staticmethod
    def _error(response, data: bytes) -> ServiceError:
        try:
            message = json.loads(data).get("error", data.decode())
        except ValueError:
            message = data.decode(errors="replace")
        retry_after = response.getheader("Retry-After")
        return ServiceError(
            response.status, message,
            retry_after=float(retry_after) if retry_after else None,
        )

    # -- API ---------------------------------------------------------------

    def submit(self, runs: Sequence[RunSpec], priority: str = "batch",
               tags: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        """POST /jobs; returns the job summary (``job["id"]``...)."""
        wire_runs: List[Dict[str, Any]] = [
            request_to_wire(r) if isinstance(r, RunRequest) else dict(r)
            for r in runs
        ]
        spec: Dict[str, Any] = {"runs": wire_runs, "priority": priority}
        if tags:
            spec["tags"] = tags
        return self._request("POST", "/jobs", spec)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/jobs")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._request("DELETE", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, Any]:
        """GET /jobs/<id>/result — raises :class:`ServiceError` 409 while
        the job is still running."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def events(self, job_id: str) -> Iterator[Dict[str, Any]]:
        """GET /jobs/<id>/events — yields NDJSON events until the stream
        ends with the terminal ``{"event": "job", ...}`` record."""
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/events",
                         headers={"X-Tenant": self.tenant})
            response = conn.getresponse()
            if response.status >= 400:
                raise self._error(response, response.read())
            for raw in response:
                line = raw.strip()
                if line:
                    yield json.loads(line)
        finally:
            conn.close()

    def wait(self, job_id: str) -> Dict[str, Any]:
        """Stream events until the job is terminal, then fetch the result."""
        for event in self.events(job_id):
            if event.get("event") == "job":
                break
        return self.result(job_id)

    def metrics(self, prefix: str = "") -> Dict[str, float]:
        path = "/metrics.json" + (f"?prefix={prefix}" if prefix else "")
        return self._request("GET", path)

    def health(self) -> Dict[str, Any]:
        return self._request("GET", "/healthz")
