"""Per-tenant quotas and rate limits for the simulation service.

Two independent gates, both deterministic and clock-injectable:

* :class:`TokenBucket` — submissions per second with a burst allowance.
  Refill is computed lazily from elapsed time, so there is no background
  task to leak and tests can drive it with a fake clock.
* :class:`TenantQuota` — standing limits: how many runs a tenant may
  have queued or executing at once, and how many unfinished jobs.

:class:`QuotaGate` owns one bucket + usage record per tenant and is the
only thing the engine talks to: ``admit`` at submission (raises
:class:`RateLimited` / :class:`QuotaError`, which the HTTP layer maps to
429), ``release`` as runs and jobs finish.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict

__all__ = [
    "QuotaError",
    "QuotaGate",
    "RateLimited",
    "TenantQuota",
    "TokenBucket",
]


class QuotaError(RuntimeError):
    """A standing per-tenant limit would be exceeded (HTTP 429)."""


class RateLimited(QuotaError):
    """The tenant's submission rate limit is exhausted (HTTP 429 +
    ``Retry-After``)."""

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = retry_after


@dataclass(frozen=True)
class TenantQuota:
    """Standing limits for one tenant (or the default for all)."""

    #: runs queued or executing at once; <= 0 disables the check.
    max_active_runs: int = 2048
    #: unfinished jobs at once; <= 0 disables the check.
    max_active_jobs: int = 64
    #: job submissions per second (token-bucket refill rate).
    submit_rate: float = 10.0
    #: burst allowance on top of the steady rate.
    submit_burst: int = 20


class TokenBucket:
    """Classic token bucket; ``clock`` is injectable for tests."""

    def __init__(self, rate: float, burst: int,
                 clock: Callable[[], float] = time.monotonic):
        self.rate = float(rate)
        self.burst = max(1, int(burst))
        self.clock = clock
        self.tokens = float(self.burst)
        self._last = clock()

    def _refill(self) -> None:
        now = self.clock()
        self.tokens = min(
            float(self.burst), self.tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        self._refill()
        if self.tokens >= n:
            self.tokens -= n
            return True
        return False

    def wait_time(self, n: float = 1.0) -> float:
        """Seconds until ``n`` tokens will be available (0 if now)."""
        self._refill()
        if self.tokens >= n:
            return 0.0
        if self.rate <= 0:
            return float("inf")
        return (n - self.tokens) / self.rate


@dataclass
class _TenantUsage:
    active_runs: int = 0
    active_jobs: int = 0
    bucket: TokenBucket = field(default=None)  # type: ignore[assignment]


class QuotaGate:
    """Admission gate: one usage record + token bucket per tenant."""

    def __init__(self, default: TenantQuota = TenantQuota(),
                 per_tenant: Dict[str, TenantQuota] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.default = default
        self.per_tenant = dict(per_tenant or {})
        self.clock = clock
        self._usage: Dict[str, _TenantUsage] = {}

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.per_tenant.get(tenant, self.default)

    def _usage_for(self, tenant: str) -> _TenantUsage:
        usage = self._usage.get(tenant)
        if usage is None:
            quota = self.quota_for(tenant)
            usage = _TenantUsage(bucket=TokenBucket(
                quota.submit_rate, quota.submit_burst, self.clock
            ))
            self._usage[tenant] = usage
        return usage

    def admit(self, tenant: str, runs: int) -> None:
        """Gate one job submission of ``runs`` runs; raises or charges."""
        quota = self.quota_for(tenant)
        usage = self._usage_for(tenant)
        if not usage.bucket.try_take():
            raise RateLimited(
                f"tenant {tenant!r} exceeded {quota.submit_rate}/s "
                f"submission rate",
                retry_after=usage.bucket.wait_time(),
            )
        if 0 < quota.max_active_jobs <= usage.active_jobs:
            raise QuotaError(
                f"tenant {tenant!r} already has {usage.active_jobs} active "
                f"job(s) (limit {quota.max_active_jobs})"
            )
        if quota.max_active_runs > 0 and \
                usage.active_runs + runs > quota.max_active_runs:
            raise QuotaError(
                f"tenant {tenant!r} would have {usage.active_runs + runs} "
                f"active run(s) (limit {quota.max_active_runs})"
            )
        usage.active_jobs += 1
        usage.active_runs += runs

    def charge(self, tenant: str, runs: int, jobs: int = 1) -> None:
        """Re-charge usage without the rate/limit checks (restart resume:
        the job was admitted before the daemon went down)."""
        usage = self._usage_for(tenant)
        usage.active_jobs += jobs
        usage.active_runs += runs

    def release(self, tenant: str, runs: int, jobs: int = 1) -> None:
        """Return capacity as a job (and its runs) finishes."""
        usage = self._usage_for(tenant)
        usage.active_jobs = max(0, usage.active_jobs - jobs)
        usage.active_runs = max(0, usage.active_runs - runs)

    def active(self, tenant: str) -> Dict[str, int]:
        usage = self._usage_for(tenant)
        return {"jobs": usage.active_jobs, "runs": usage.active_runs}
