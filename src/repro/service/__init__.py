"""Simulation-as-a-service: an async job API over the resilient harness.

The batch harness (:mod:`repro.harness.parallel`, PR 1/5) already
survives worker death, hangs, and cache corruption; this package wraps it
in a long-running daemon so many clients can share one simulation fleet:

* :mod:`repro.service.schemas`   — wire formats (grid specs, outcomes,
  results) and spec validation.
* :mod:`repro.service.quotas`    — per-tenant quotas and token-bucket
  rate limits.
* :mod:`repro.service.admission` — cache-aware admission: identical
  in-flight requests across clients collapse to one execution.
* :mod:`repro.service.queue`     — the job store, priority scheduler,
  and drain/restart persistence (the engine).
* :mod:`repro.service.journal`   — the fsynced write-ahead journal the
  engine persists through (crash consistency, exactly-once replay).
* :mod:`repro.service.supervisor`— batch health probes and the executor
  circuit breaker (load shedding while the pool is broken).
* :mod:`repro.service.app`       — the asyncio HTTP/JSON front end
  (``POST /jobs``, ``GET /jobs/<id>``, ``GET /jobs/<id>/events``,
  ``GET /jobs/<id>/result``, ``GET /metrics``, ``GET /healthz``).
* :mod:`repro.service.client`    — a small blocking client for scripts,
  tests, and CI.

Start one with ``python -m repro.harness serve``; the API and
operational contract are documented in ``docs/service.md``.
"""

from .admission import AdmissionController
from .app import ServiceApp, serve
from .client import ServiceClient, ServiceError
from .journal import JournalStore
from .queue import DrainingError, Job, JobStore, Priority, ServiceConfig, \
    ServiceEngine
from .quotas import QuotaError, QuotaGate, RateLimited, TenantQuota, TokenBucket
from .schemas import SpecError, job_to_wire, outcome_to_wire, parse_job_spec, \
    request_from_wire, request_to_wire, result_to_wire
from .supervisor import BreakerConfig, BreakerOpen, CircuitBreaker, \
    OverloadedError, Supervisor

__all__ = [
    "AdmissionController",
    "BreakerConfig",
    "BreakerOpen",
    "CircuitBreaker",
    "DrainingError",
    "Job",
    "JobStore",
    "JournalStore",
    "OverloadedError",
    "Priority",
    "Supervisor",
    "QuotaError",
    "QuotaGate",
    "RateLimited",
    "ServiceApp",
    "ServiceClient",
    "ServiceConfig",
    "ServiceEngine",
    "ServiceError",
    "SpecError",
    "TenantQuota",
    "TokenBucket",
    "job_to_wire",
    "outcome_to_wire",
    "parse_job_spec",
    "request_from_wire",
    "request_to_wire",
    "result_to_wire",
    "serve",
]
