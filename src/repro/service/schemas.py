"""Wire schemas for the simulation service.

Everything that crosses the HTTP boundary goes through this module, in
both directions: grid specs are parsed and validated here
(:func:`parse_job_spec`), and jobs / outcomes / results are rendered to
JSON-safe dicts here (:func:`job_to_wire`, :func:`outcome_to_wire`,
:func:`result_to_wire`).  The service core and the HTTP layer therefore
never hand-roll JSON shapes, and the client can round-trip a request
exactly (:func:`request_from_wire` inverts :func:`request_to_wire`).

A job spec looks like::

    {
      "runs": [
        {"benchmark": "bfs", "backend": "regless", "osu_entries": 512,
         "overrides": {"scheduler": "lrr"}},
        ...
      ],
      "priority": "batch",          # interactive | batch | bulk
      "tags": {"note": "sweep 7"},  # optional, echoed back verbatim
      "deadline_s": 3600            # optional per-job deadline (seconds)
    }
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from ..harness.parallel import RunOutcome, RunRequest
from ..harness.runner import BACKENDS

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.runner import RunResult
    from .queue import Job

__all__ = [
    "SpecError",
    "job_to_wire",
    "outcome_to_wire",
    "parse_job_spec",
    "request_from_wire",
    "request_to_wire",
    "result_to_wire",
]

#: every backend name the service accepts in a run spec.
WIRE_BACKENDS = BACKENDS + ("regless-nc",)

#: hard cap on runs per submitted job — one grid spec cannot starve the
#: queue regardless of tenant quotas.
MAX_RUNS_PER_JOB = 4096


class SpecError(ValueError):
    """A submitted job spec failed validation (maps to HTTP 400)."""


# -- requests ---------------------------------------------------------------


def request_to_wire(request: RunRequest) -> Dict[str, Any]:
    wire: Dict[str, Any] = {
        "benchmark": request.benchmark,
        "backend": request.backend,
        "osu_entries": request.osu_entries,
    }
    if request.window_series:
        wire["window_series"] = list(request.window_series)
    if request.overrides:
        wire["overrides"] = dict(request.overrides)
    return wire


def request_from_wire(wire: Mapping[str, Any]) -> RunRequest:
    """Validate and build one :class:`RunRequest` from its wire form."""
    if not isinstance(wire, Mapping):
        raise SpecError(f"run spec must be an object, got {type(wire).__name__}")
    unknown = set(wire) - {"benchmark", "backend", "osu_entries",
                           "window_series", "overrides"}
    if unknown:
        raise SpecError(f"unknown run-spec field(s): {sorted(unknown)}")
    benchmark = wire.get("benchmark")
    backend = wire.get("backend")
    if not isinstance(benchmark, str) or not benchmark:
        raise SpecError("run spec needs a 'benchmark' string")
    from ..workloads import workload_names

    if benchmark not in workload_names():
        raise SpecError(
            f"unknown benchmark {benchmark!r} — a typo here would burn "
            f"retry budget in the workers; rejected at admission"
        )
    if backend not in WIRE_BACKENDS:
        raise SpecError(
            f"unknown backend {backend!r} (expected one of {list(WIRE_BACKENDS)})"
        )
    osu_entries = wire.get("osu_entries", 512)
    if not isinstance(osu_entries, int) or isinstance(osu_entries, bool) \
            or osu_entries <= 0:
        raise SpecError(f"osu_entries must be a positive int, got {osu_entries!r}")
    window_series = wire.get("window_series", ())
    if not isinstance(window_series, (list, tuple)) or not all(
        isinstance(w, str) for w in window_series
    ):
        raise SpecError("window_series must be a list of strings")
    overrides = wire.get("overrides", {})
    if not isinstance(overrides, Mapping) or not all(
        isinstance(k, str) for k in overrides
    ):
        raise SpecError("overrides must be an object with string keys")
    return RunRequest.make(
        benchmark, backend, osu_entries, tuple(window_series), **dict(overrides)
    )


def parse_job_spec(
    body: Any,
) -> Tuple[List[RunRequest], str, Dict[str, Any], Optional[float]]:
    """Validate a ``POST /jobs`` body -> (requests, priority, tags,
    deadline seconds or ``None``)."""
    from .queue import Priority

    if not isinstance(body, Mapping):
        raise SpecError("job spec must be a JSON object")
    unknown = set(body) - {"runs", "priority", "tags", "deadline_s"}
    if unknown:
        raise SpecError(f"unknown job-spec field(s): {sorted(unknown)}")
    runs = body.get("runs")
    if not isinstance(runs, Sequence) or isinstance(runs, (str, bytes)) \
            or not runs:
        raise SpecError("job spec needs a non-empty 'runs' array")
    if len(runs) > MAX_RUNS_PER_JOB:
        raise SpecError(
            f"job spec has {len(runs)} runs; the cap is {MAX_RUNS_PER_JOB}"
        )
    requests = [request_from_wire(r) for r in runs]
    priority = body.get("priority", Priority.BATCH)
    if priority not in Priority.NAMES:
        raise SpecError(
            f"unknown priority {priority!r} "
            f"(expected one of {sorted(Priority.NAMES)})"
        )
    tags = body.get("tags", {})
    if not isinstance(tags, Mapping):
        raise SpecError("tags must be an object")
    deadline_s = body.get("deadline_s")
    if deadline_s is not None and (
        not isinstance(deadline_s, (int, float))
        or isinstance(deadline_s, bool) or deadline_s <= 0
    ):
        raise SpecError(
            f"deadline_s must be a positive number, got {deadline_s!r}"
        )
    return requests, priority, dict(tags), deadline_s


# -- outcomes and results ---------------------------------------------------


def stats_to_wire(stats) -> Dict[str, Any]:
    """A :class:`~repro.sim.gpu.SimStats` as a JSON-safe dict.

    Field names intentionally match the committed golden-grid format
    (``tests/golden/simstats_bfs_nw.json``) so service results diff
    cleanly against goldens."""
    return {
        "cycles": stats.cycles,
        "instructions": stats.instructions,
        "warps_done": stats.warps_done,
        "warps_total": stats.warps_total,
        "finished": stats.finished,
        "counters": dict(stats.counters),
        "stalls": dict(stats.stalls),
    }


def result_to_wire(result: "RunResult") -> Dict[str, Any]:
    """One finished run's full stats bundle (the ``/result`` payload)."""
    return {
        "benchmark": result.benchmark,
        "backend": result.backend,
        "osu_entries": result.osu_entries,
        "stats": stats_to_wire(result.stats),
        "energy": result.energy.as_dict(),
        "timings": {k: round(v, 6) for k, v in result.timings.items()},
        "jit": dict(getattr(result, "jit", None) or {}),
    }


def outcome_to_wire(index: int, outcome: RunOutcome,
                    deduped: bool = False) -> Dict[str, Any]:
    """One run's terminal outcome as an event line (the ``/events`` unit)."""
    wire: Dict[str, Any] = {
        "event": "outcome",
        "index": index,
        "request": request_to_wire(outcome.request),
        "status": outcome.status,
        "attempts": outcome.attempts,
    }
    if deduped:
        wire["deduped"] = True
    if outcome.error:
        wire["error"] = outcome.error
    if getattr(outcome, "diagnostics", None):
        # the watchdog's hang snapshot (JSON-safe by construction) rides
        # the event so hung runs are diagnosable from the client side
        wire["diagnostics"] = outcome.diagnostics
    if outcome.ok and outcome.result is not None:
        wire["run"] = result_to_wire(outcome.result)
    return wire


def job_to_wire(job: "Job", runs: bool = False) -> Dict[str, Any]:
    """Job status summary (``GET /jobs/<id>``); ``runs=True`` adds the
    per-run outcome records collected so far."""
    wire: Dict[str, Any] = {
        "id": job.id,
        "tenant": job.tenant,
        "priority": job.priority,
        "status": job.status,
        "runs_total": len(job.requests),
        "runs_done": len(job.outcomes),
        "runs_ok": sum(1 for o in job.outcomes.values()
                       if o.get("status") == RunOutcome.OK),
        "created": job.created,
        "tags": dict(job.tags),
    }
    if getattr(job, "deadline_s", None):
        wire["deadline_s"] = job.deadline_s
    if job.error:
        wire["error"] = job.error
    if runs:
        wire["runs"] = [job.outcomes.get(i) for i in range(len(job.requests))]
    return wire
