"""Executor supervision: batch health probes and a circuit breaker.

The engine's executor can get into pathological states the per-run
resilience layer (PR 5) cannot see: a worker pool that breaks on *every*
batch (bad node, OOM death spiral), or a backend bug hanging every run.
Retrying into that storm burns the retry budget of every queued job.

:class:`Supervisor` watches per-batch health — a batch counts as a
failure when the pool raised out of the batch call, or when every run in
it came back ``crashed``/``hung``/``quarantined`` — and trips a
:class:`CircuitBreaker`:

* ``closed`` — normal operation; consecutive failures are counted.
* ``open``   — after ``failure_threshold`` consecutive bad batches.  New
  submissions are shed with :class:`BreakerOpen` (HTTP 503 +
  ``Retry-After``), and no batch dispatches until ``reset_timeout``
  elapses.
* ``half_open`` — the first dispatch after the timeout is the recovery
  probe (the engine runs one batch at a time, so the probe is naturally
  singular).  A healthy probe closes the breaker; a bad one reopens it
  and restarts the timeout.

State transitions are counted under ``service.breaker.*`` and the clock
is injectable, so tests drive the whole state machine deterministically.
:class:`OverloadedError` is also the admission-backpressure signal: the
engine raises it when the queued-run bound would be exceeded.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricScope

__all__ = [
    "BreakerConfig",
    "BreakerOpen",
    "CircuitBreaker",
    "OverloadedError",
    "Supervisor",
]


class OverloadedError(RuntimeError):
    """The service is shedding load (HTTP 503 + ``Retry-After``)."""

    def __init__(self, message: str, retry_after: float = 5.0):
        super().__init__(message)
        self.retry_after = retry_after


class BreakerOpen(OverloadedError):
    """The circuit breaker is open; resubmit after ``retry_after``."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"executor circuit breaker is open; "
            f"retry in {retry_after:.1f}s",
            retry_after=retry_after,
        )


@dataclass(frozen=True)
class BreakerConfig:
    """Trip/recovery policy for the executor circuit breaker."""

    #: consecutive failed batches that open the breaker.
    failure_threshold: int = 3
    #: seconds the breaker stays open before a half-open probe.
    reset_timeout: float = 30.0


class CircuitBreaker:
    """Closed / open / half-open breaker with an injectable clock."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(self, config: Optional[BreakerConfig] = None,
                 metrics: Optional["MetricScope"] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.config = config or BreakerConfig()
        self.metrics = metrics
        self._clock = clock
        self.state = self.CLOSED
        #: consecutive failures observed while closed.
        self.failures = 0
        self._opened_at = 0.0

    def _transition(self, state: str) -> None:
        if state == self.state:
            return
        self.state = state
        if self.metrics is not None:
            # closed -> breaker.closed, open -> breaker.opened, ...
            name = {self.CLOSED: "closed", self.OPEN: "opened",
                    self.HALF_OPEN: "half_open"}[state]
            self.metrics.inc(f"breaker.{name}")

    def allow_dispatch(self) -> bool:
        """True when a batch may launch now.

        While open, flips to half-open once the reset timeout elapses —
        the caller's next batch is the recovery probe."""
        if self.state == self.OPEN:
            if self._clock() - self._opened_at >= self.config.reset_timeout:
                self._transition(self.HALF_OPEN)
                return True
            return False
        return True

    def retry_after(self) -> float:
        """Seconds until the next half-open probe (0 unless open)."""
        if self.state != self.OPEN:
            return 0.0
        return max(
            0.0,
            self.config.reset_timeout - (self._clock() - self._opened_at),
        )

    def record_success(self) -> None:
        self.failures = 0
        self._transition(self.CLOSED)

    def record_failure(self) -> None:
        self.failures += 1
        if self.state == self.HALF_OPEN \
                or self.failures >= self.config.failure_threshold:
            self._opened_at = self._clock()
            self._transition(self.OPEN)


class Supervisor:
    """Health supervision the engine consults at admission and dispatch."""

    #: run statuses that indicate executor damage rather than a bad spec.
    BROKEN_STATUSES = frozenset({"crashed", "hung", "quarantined"})

    def __init__(self, breaker: Optional[BreakerConfig] = None,
                 metrics: Optional["MetricScope"] = None,
                 clock: Callable[[], float] = time.monotonic):
        self.metrics = metrics
        self.breaker = CircuitBreaker(breaker, metrics=metrics, clock=clock)

    def admit(self) -> None:
        """Admission gate: shed new submissions while the breaker is open."""
        if self.breaker.state == CircuitBreaker.OPEN:
            retry_after = self.breaker.retry_after()
            if retry_after > 0:
                if self.metrics is not None:
                    self.metrics.inc("breaker.rejected")
                raise BreakerOpen(retry_after)

    def allow_dispatch(self) -> bool:
        return self.breaker.allow_dispatch()

    def observe_batch(self, statuses: Sequence[str],
                      broke: bool = False) -> None:
        """Per-batch health probe.

        ``broke`` means the batch call itself raised (e.g. the executor
        died under it); a batch where *every* run came back broken is
        equally damning — one bad run in an otherwise-healthy batch is
        the resilience layer's business, not the breaker's."""
        unhealthy = broke or (
            len(statuses) > 0
            and all(s in self.BROKEN_STATUSES for s in statuses)
        )
        if unhealthy:
            if self.metrics is not None:
                self.metrics.inc("breaker.batch_failures")
            self.breaker.record_failure()
        else:
            self.breaker.record_success()
