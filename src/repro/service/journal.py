"""Write-ahead job journal: crash-consistent persistence for the engine.

The engine used to rewrite one JSON snapshot on every mutation — cheap
to read, but a crash landing mid-rewrite (or between an outcome landing
and the rewrite) lost or duplicated work.  This module replaces that
with the classic WAL discipline:

* Every mutation (``submit`` / ``start`` / ``outcome`` / ``finish`` /
  ``cancel``) is appended to ``<state>.wal`` as a **framed record**
  — ``<u32 payload length> <sha256(payload)> <payload JSON>`` — flushed
  and ``fsync``\\ ed *before* the engine applies it to memory or
  publishes it to clients.  Whatever a client observed is durable.
* Boot replays the snapshot, then the journal.  A torn tail (crash
  mid-append) or a corrupt record (checksum mismatch, absurd length) is
  **truncated and survived**, never fatal: everything up to the last
  good frame is kept, the damage is counted under
  ``service.journal.torn_tails`` / ``service.journal.truncated_bytes``,
  and appends continue at the truncation point.
* Every ``compact_every`` records the journal is folded into the
  snapshot (the same atomic tmp+rename JSON the old store wrote, so old
  state files load unchanged) and the journal restarts empty.  The
  snapshot is replaced *before* the journal is rotated, and replaying a
  journal on top of a snapshot that already contains its records is
  idempotent — a crash between the two steps double-applies nothing.

The store works at the *record* (dict) level — ``Job.to_record()``
shapes in, the same shapes out — so it has no import cycle with the
engine.  Fault hooks (:func:`~repro.harness.faults.service_fault`) sit
on the append and compaction paths for the kill-anywhere chaos suite.
"""

from __future__ import annotations

import hashlib
import json
import os
import struct
import tempfile
import time
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..harness.faults import KILL_EXIT_CODE, service_fault, service_kill_point

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricScope

__all__ = ["JournalStore", "SNAPSHOT_VERSION", "WAL_HEADER"]

#: journal file magic + format version; bumped on frame-layout changes.
WAL_HEADER = b"RGWL\x01"

#: snapshot schema — identical to the legacy ``JobStore`` layout so
#: state files written before the journal existed still load.
SNAPSHOT_VERSION = 1

_LEN = struct.Struct("<I")
_DIGEST_BYTES = 32

#: a frame claiming a payload larger than this is corruption, not data
#: (the largest real job record is a few MB of SimStats JSON).
MAX_RECORD_BYTES = 64 * 1024 * 1024


class JournalStore:
    """Append-only journal + periodic snapshot for the job table."""

    def __init__(self, path: str, fsync: bool = True,
                 compact_every: int = 256,
                 metrics: Optional["MetricScope"] = None):
        #: snapshot path (the legacy ``service-state.json`` location).
        self.path = path
        self.wal_path = path + ".wal"
        self.fsync = fsync
        self.compact_every = max(1, int(compact_every))
        self.metrics = metrics
        self._fh: Optional[Any] = None
        #: records appended since the last compaction.
        self._pending = 0

    # -- metrics -----------------------------------------------------------

    def _count(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.inc(name, amount)

    # -- boot / replay -----------------------------------------------------

    def load(self) -> Tuple[List[Dict[str, Any]], int]:
        """(job records in submission order, last engine seq).

        Replays the snapshot, then every intact journal record on top of
        it.  Opens the journal for appending at the recovered tail."""
        records, seq = self._load_snapshot()
        jobs: Dict[str, Dict[str, Any]] = {r["id"]: r for r in records}
        order: List[str] = [r["id"] for r in records]
        entries = self._replay_wal()
        for entry in entries:
            try:
                seq = max(seq, int(entry.get("seq", 0)))
                self._apply(jobs, order, entry)
            except (KeyError, TypeError, ValueError):
                self._count("bad_records")
        self._pending = len(entries)
        self._open_wal()
        return [jobs[job_id] for job_id in order], seq

    def _load_snapshot(self) -> Tuple[List[Dict[str, Any]], int]:
        try:
            with open(self.path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return [], 0
        if payload.get("version") != SNAPSHOT_VERSION:
            return [], 0
        return list(payload.get("jobs", [])), int(payload.get("seq", 0))

    @staticmethod
    def _apply(jobs: Dict[str, Dict[str, Any]], order: List[str],
               entry: Dict[str, Any]) -> None:
        """Fold one journal entry into the record table.

        Idempotent by construction (see compaction crash-consistency in
        the module docstring); unknown types are skipped for forward
        compatibility."""
        kind = entry.get("type")
        if kind == "submit":
            record = entry["job"]
            job_id = record["id"]
            if job_id not in jobs:
                jobs[job_id] = record
                order.append(job_id)
        elif kind == "outcome":
            job = jobs.get(entry["job"])
            if job is not None:
                job.setdefault("outcomes", {})[str(entry["index"])] = \
                    entry["record"]
        elif kind == "finish":
            job = jobs.get(entry["job"])
            if job is not None:
                job["status"] = entry["status"]
                job["finished_at"] = entry.get("finished_at", 0.0)
                job["error"] = entry.get("error", "")
        elif kind == "cancel":
            job = jobs.get(entry["job"])
            if job is not None:
                job["status"] = "cancelled"
                job["finished_at"] = entry.get("finished_at", 0.0)
        # "start" records are informational (dispatch audit trail): a
        # non-terminal replayed job resumes from its outcomes regardless
        # of whether its batch had launched.

    def _replay_wal(self) -> List[Dict[str, Any]]:
        """Decode every intact frame; truncate-and-continue past damage."""
        try:
            with open(self.wal_path, "rb") as fh:
                data = fh.read()
        except OSError:
            return []
        entries: List[Dict[str, Any]] = []
        header_ok = data.startswith(WAL_HEADER)
        good = len(WAL_HEADER) if header_ok else 0
        damaged = bool(data) and not header_ok
        if header_ok:
            offset = good
            size = len(data)
            while offset < size:
                end = self._frame_end(data, offset)
                if end is None:
                    damaged = True
                    break
                payload = data[offset + _LEN.size + _DIGEST_BYTES:end]
                try:
                    entries.append(json.loads(payload.decode()))
                except (ValueError, UnicodeDecodeError):
                    damaged = True
                    break
                offset = end
                good = offset
        if damaged:
            dropped = len(data) - good
            self._count("torn_tails")
            self._count("truncated_bytes", dropped)
            with open(self.wal_path, "r+b") as fh:
                if not header_ok:
                    fh.write(WAL_HEADER)
                    good = len(WAL_HEADER)
                fh.truncate(good)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
        if entries:
            self._count("replayed", len(entries))
        return entries

    @staticmethod
    def _frame_end(data: bytes, offset: int) -> Optional[int]:
        """End offset of the frame at ``offset``, or ``None`` if torn or
        checksum-corrupt."""
        start = offset + _LEN.size + _DIGEST_BYTES
        if start > len(data):
            return None
        (length,) = _LEN.unpack_from(data, offset)
        if length > MAX_RECORD_BYTES:
            return None
        end = start + length
        if end > len(data):
            return None
        digest = data[offset + _LEN.size:start]
        if hashlib.sha256(data[start:end]).digest() != digest:
            return None
        return end

    # -- append ------------------------------------------------------------

    def _open_wal(self) -> None:
        directory = os.path.dirname(os.path.abspath(self.wal_path))
        os.makedirs(directory, exist_ok=True)
        fresh = not os.path.exists(self.wal_path)
        self._fh = open(self.wal_path, "ab")
        if fresh or self._fh.tell() == 0:
            self._fh.write(WAL_HEADER)
            self._flush()

    def _flush(self) -> None:
        assert self._fh is not None
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append(self, entry: Dict[str, Any]) -> None:
        """Durably journal one entry; returns only once it is on disk.

        The engine calls this *before* applying the mutation — the
        journal-before-apply ordering is the exactly-once guarantee."""
        if self._fh is None:
            self._open_wal()
        payload = json.dumps(entry, sort_keys=True).encode()
        frame = _LEN.pack(len(payload)) + \
            hashlib.sha256(payload).digest() + payload
        point = f"journal.{entry.get('type', 'record')}"
        fault = service_fault(point + ".pre")
        if fault == "kill":
            os._exit(KILL_EXIT_CODE)
        elif fault == "torn":
            # crash mid-append: half a frame reaches the disk
            self._fh.write(frame[:max(1, len(frame) // 2)])
            self._flush()
            os._exit(KILL_EXIT_CODE)
        elif fault == "bitflip":
            corrupt = bytearray(frame)
            corrupt[-1] ^= 0x40
            self._fh.write(bytes(corrupt))
            self._flush()
            os._exit(KILL_EXIT_CODE)
        self._fh.write(frame)
        self._flush()
        self._pending += 1
        self._count("records")
        service_kill_point(point + ".post")

    def should_compact(self) -> bool:
        return self._pending >= self.compact_every

    # -- compaction --------------------------------------------------------

    def compact(self, records: List[Dict[str, Any]], seq: int) -> None:
        """Fold state into the snapshot atomically, then rotate the
        journal.  Snapshot first: a crash between the steps replays the
        old journal onto the new snapshot, which is idempotent."""
        service_kill_point("compact.pre")
        payload = {
            "version": SNAPSHOT_VERSION,
            "seq": seq,
            "saved_at": time.time(),
            "jobs": records,
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.fsync:
            dir_fd = os.open(directory, os.O_RDONLY)
            try:
                os.fsync(dir_fd)
            finally:
                os.close(dir_fd)
        if self._fh is not None:
            self._fh.close()
        self._fh = open(self.wal_path, "wb")
        self._fh.write(WAL_HEADER)
        self._flush()
        self._pending = 0
        self._count("compactions")
        service_kill_point("compact.post")

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None
