"""The asyncio HTTP/JSON front end of the simulation service.

A deliberately small HTTP/1.1 implementation over ``asyncio.start_server``
— the container ships no web framework, and the API surface is five
routes:

* ``POST /jobs``                — submit a grid spec, returns the job.
* ``GET  /jobs``                — list jobs (summaries).
* ``GET  /jobs/<id>``           — one job's status and per-run progress.
* ``GET  /jobs/<id>/events``    — NDJSON stream: completed outcomes are
  replayed, live ones arrive as they land, a terminal ``job`` event ends
  the stream.
* ``GET  /jobs/<id>/result``    — the finished job's full ``SimStats``
  bundle (409 until it is terminal).
* ``DELETE /jobs/<id>``         — cancel a queued/running job.
* ``GET  /metrics``             — the ``repro.obs`` registry as text
  (``?prefix=service`` restricts the subtree); ``/metrics.json`` for the
  raw dict.
* ``GET  /healthz``             — liveness + queue snapshot.

Tenancy is taken from the ``X-Tenant`` header (default ``anon``).
Error mapping: spec errors → 400, unknown job → 404, quota/rate → 429
(with ``Retry-After``), draining / breaker open / queue full → 503
(with ``Retry-After``).  ``/events?after=<seq>`` resumes a stream from
a per-job event sequence number (reconnect support).

``SIGTERM``/``SIGINT`` trigger graceful drain: in-flight runs finish and
are cached, the queue is persisted, and a daemon restarted with the same
``--state-dir`` resumes the remainder from the crash-safe result cache.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from .queue import DrainingError, ServiceConfig, ServiceEngine
from .quotas import QuotaError, RateLimited
from .schemas import SpecError, parse_job_spec, request_to_wire
from .supervisor import OverloadedError

__all__ = ["ServiceApp", "serve"]

_MAX_BODY = 8 * 1024 * 1024
_MAX_HEADER = 64 * 1024


class _HTTPError(Exception):
    def __init__(self, status: int, message: str,
                 headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {
    200: "OK", 201: "Created", 204: "No Content", 400: "Bad Request",
    404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _json_bytes(payload: Any) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode()


class ServiceApp:
    """HTTP façade over one :class:`ServiceEngine`."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 engine: Optional[ServiceEngine] = None):
        self.engine = engine or ServiceEngine(config)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = asyncio.Event()

    # -- lifecycle ---------------------------------------------------------

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> Tuple[str, int]:
        """Start the engine and listen; returns the bound (host, port)."""
        await self.engine.start()
        self._server = await asyncio.start_server(self._handle, host, port)
        sock = self._server.sockets[0]
        bound = sock.getsockname()
        return bound[0], bound[1]

    async def shutdown(self, drain: bool = True) -> None:
        if self._server is not None:
            self._server.close()  # stop accepting; in-flight streams live on
        if drain:
            # Ends every live /events stream with a drain marker — must
            # happen before wait_closed(), which on newer asyncio waits
            # for those connection handlers to finish.
            await self.engine.drain()
        if self._server is not None:
            try:
                await asyncio.wait_for(self._server.wait_closed(), timeout=5.0)
            except asyncio.TimeoutError:  # pragma: no cover — safety net
                pass
        await self.engine.stop()

    def request_drain(self) -> None:
        """Signal-handler entry: flip the drain flag; the serve loop
        notices and performs the orderly shutdown."""
        self.engine.draining = True  # reject submits immediately
        self._draining.set()

    # -- request plumbing --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, query, headers, body = await self._read_request(
                    reader
                )
            except _HTTPError as err:
                await self._send_error(writer, err)
                return
            except (asyncio.IncompleteReadError, ConnectionError):
                return
            try:
                await self._route(writer, method, path, query, headers, body)
            except _HTTPError as err:
                await self._send_error(writer, err)
            except (ConnectionError, asyncio.CancelledError):
                raise
            except Exception as exc:  # noqa: BLE001 — daemon must not die
                self.engine.metrics.inc("http.errors")
                await self._send_error(
                    writer,
                    _HTTPError(500, f"{type(exc).__name__}: {exc}"),
                )
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(self, reader) -> Tuple[str, str, Dict[str, list],
                                                   Dict[str, str], bytes]:
        request_line = await reader.readline()
        if not request_line:
            raise ConnectionError("closed")
        try:
            method, target, _version = request_line.decode().split(None, 2)
        except ValueError:
            raise _HTTPError(400, "malformed request line")
        headers: Dict[str, str] = {}
        total = 0
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER:
                raise _HTTPError(400, "header section too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HTTPError(413, f"body exceeds {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        parts = urlsplit(target)
        return method.upper(), parts.path, parse_qs(parts.query), headers, body

    async def _send(self, writer: asyncio.StreamWriter, status: int,
                    body: bytes, content_type: str = "application/json",
                    extra: Optional[Dict[str, str]] = None) -> None:
        headers = {
            "Content-Type": content_type,
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        headers.update(extra or {})
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n" + \
            "".join(f"{k}: {v}\r\n" for k, v in headers.items()) + "\r\n"
        writer.write(head.encode() + body)
        await writer.drain()

    async def _send_error(self, writer, err: _HTTPError) -> None:
        try:
            await self._send(
                writer, err.status,
                _json_bytes({"error": str(err), "status": err.status}),
                extra=err.headers,
            )
        except (ConnectionError, OSError):
            pass

    # -- routing -----------------------------------------------------------

    async def _route(self, writer, method: str, path: str, query, headers,
                     body: bytes) -> None:
        self.engine.metrics.inc("http.requests")
        parts = [p for p in path.split("/") if p]
        if path == "/healthz" and method == "GET":
            payload = self.engine.stats()
            return await self._send(writer, 200, _json_bytes(payload))
        if path in ("/metrics", "/metrics.json") and method == "GET":
            prefix = (query.get("prefix") or [""])[0]
            if path.endswith(".json"):
                snapshot = self.engine.registry.as_dict()
                if prefix:
                    dotted = prefix + "."
                    snapshot = {k: v for k, v in snapshot.items()
                                if k == prefix or k.startswith(dotted)}
                return await self._send(writer, 200, _json_bytes(snapshot))
            text = self.engine.registry.render_text(prefix) + "\n"
            return await self._send(writer, 200, text.encode(),
                                    content_type="text/plain")
        if parts[:1] == ["jobs"]:
            if len(parts) == 1:
                if method == "POST":
                    return await self._submit(writer, headers, body)
                if method == "GET":
                    payload = [self.engine.describe(j.id)
                               for j in self.engine.list_jobs()]
                    return await self._send(writer, 200, _json_bytes(payload))
                raise _HTTPError(405, f"{method} not allowed on /jobs")
            job_id = parts[1]
            if job_id not in self.engine.jobs:
                raise _HTTPError(404, f"no such job {job_id!r}")
            if len(parts) == 2:
                if method == "GET":
                    return await self._send(
                        writer, 200,
                        _json_bytes(self.engine.describe(job_id, runs=True)),
                    )
                if method == "DELETE":
                    job = self.engine.cancel(job_id)
                    return await self._send(
                        writer, 200, _json_bytes(self.engine.describe(job.id))
                    )
                raise _HTTPError(405, f"{method} not allowed on /jobs/<id>")
            if len(parts) == 3 and method == "GET":
                if parts[2] == "events":
                    after = -1
                    raw_after = (query.get("after") or [""])[0]
                    if raw_after:
                        try:
                            after = int(raw_after)
                        except ValueError:
                            raise _HTTPError(
                                400, f"after must be an integer, "
                                     f"got {raw_after!r}"
                            )
                    return await self._stream_events(writer, job_id, after)
                if parts[2] == "result":
                    return await self._result(writer, job_id)
        raise _HTTPError(404, f"no route for {method} {path}")

    async def _submit(self, writer, headers, body: bytes) -> None:
        try:
            spec = json.loads(body.decode() or "null")
        except ValueError:
            raise _HTTPError(400, "body is not valid JSON")
        try:
            requests, priority, tags, deadline_s = parse_job_spec(spec)
        except SpecError as err:
            raise _HTTPError(400, str(err))
        tenant = headers.get("x-tenant", "anon")
        try:
            job = self.engine.submit(requests, tenant=tenant,
                                     priority=priority, tags=tags,
                                     deadline_s=deadline_s)
        except DrainingError as err:
            raise _HTTPError(503, str(err), {"Retry-After": "5"})
        except OverloadedError as err:
            # breaker open or queue full: shed with an explicit retry hint
            raise _HTTPError(
                503, str(err),
                {"Retry-After": f"{max(0.1, err.retry_after):.1f}"},
            )
        except RateLimited as err:
            raise _HTTPError(
                429, str(err),
                {"Retry-After": f"{max(0.1, err.retry_after):.1f}"},
            )
        except QuotaError as err:
            raise _HTTPError(429, str(err))
        await self._send(writer, 201,
                         _json_bytes(self.engine.describe(job.id)))

    async def _result(self, writer, job_id: str) -> None:
        job = self.engine.job(job_id)
        if not job.terminal:
            raise _HTTPError(
                409,
                f"job {job_id} is {job.status} "
                f"({len(job.outcomes)}/{len(job.requests)} runs done)",
            )
        payload = {
            "job": self.engine.describe(job_id),
            "runs": [
                {
                    "request": request_to_wire(job.requests[i]),
                    **{k: v for k, v in (job.outcomes.get(i) or {}).items()
                       if k not in ("event", "request")},
                }
                for i in range(len(job.requests))
            ],
        }
        await self._send(writer, 200, _json_bytes(payload))

    async def _stream_events(self, writer, job_id: str,
                             after: int = -1) -> None:
        """NDJSON event stream: replay, then live until terminal.

        ``?after=<seq>`` skips events a reconnecting client already saw
        (events carry per-job sequence numbers for exactly this)."""
        replay, queue = self.engine.subscribe(job_id, after=after)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode())
        try:
            for event in replay:
                writer.write(_json_bytes(event))
            await writer.drain()
            while queue is not None:
                event = await queue.get()
                if event is None:
                    break
                writer.write(_json_bytes(event))
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            if queue is not None:
                self.engine.unsubscribe_queue(job_id, queue)


def serve(host: str = "127.0.0.1", port: int = 8787,
          config: Optional[ServiceConfig] = None,
          announce=print) -> int:
    """Blocking entry point used by ``python -m repro.harness serve``.

    Prints the bound address (``port=0`` picks a free port), then runs
    until SIGTERM/SIGINT completes a graceful drain."""

    async def _main() -> None:
        app = ServiceApp(config)
        bound = await app.start(host, port)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, app.request_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        announce(f"repro-service listening on http://{bound[0]}:{bound[1]}",
                 flush=True)
        await app._draining.wait()
        announce("repro-service draining: finishing in-flight runs, "
                 "persisting queue", flush=True)
        await app.shutdown(drain=True)
        announce("repro-service stopped", flush=True)

    asyncio.run(_main())
    return 0
