"""Job store, priority scheduler, and crash-consistent persistence.

:class:`ServiceEngine` is the daemon's core and is HTTP-free: the app
layer (:mod:`repro.service.app`) translates requests into these calls,
and the whole engine is testable in-process on a plain event loop.

Execution model
---------------

All engine state lives on the event-loop thread.  Simulation happens in
**batches**: the scheduler drains the priority heap of (job, run) work
items, dedupes them through the :class:`AdmissionController`, and hands
the unique requests to one executor thread running
:meth:`SuiteRunner.run_grid_outcomes` — cache hits return instantly,
misses fan out over the resilient process pool, and every per-run
outcome is marshalled back onto the loop via ``call_soon_threadsafe``
the moment it lands (the ``on_outcome`` hook added to the harness for
exactly this).  One batch runs at a time, so the :class:`SuiteRunner`
never sees concurrent mutation; requests submitted while a batch is in
flight either attach to its in-flight executions (admission dedupe) or
queue for the next batch.

The PR-5 resilience machinery is the service's SLO layer: the engine's
``FaultPolicy``/``WatchdogConfig`` bound per-run wall-clock and retries,
and quarantined/hung/crashed runs surface as per-run outcome events
rather than wedging the daemon.  Above it, the :class:`Supervisor`
watches *batch* health: repeated pool breakage opens a circuit breaker
that sheds new submissions (503 + ``Retry-After``) and pauses dispatch
until a half-open probe proves recovery.  Per-job deadlines degrade
gracefully — finished runs keep their outcomes, the remainder is marked
``expired`` — and admission is backpressure-bounded.

Crash consistency
-----------------

With a ``state_path``, every mutation is journaled through
:class:`~repro.service.journal.JournalStore` **before** it is applied in
memory or published to clients (write-ahead ordering).  A killed daemon
restarts from snapshot + journal replay: outcomes that were journaled
are served verbatim (never re-executed — exactly-once accounting), runs
that never produced a journaled outcome are re-dispatched through the
``jobs/runs.resumed`` path, where the content-addressed disk cache
makes any re-dispatch of work that *simulated* but didn't *journal* a
cheap, deterministic cache hit.  ``drain()`` additionally compacts the
journal into the snapshot so a graceful shutdown leaves a plain JSON
state file.
"""

from __future__ import annotations

import asyncio
import heapq
import json
import os
import tempfile
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, TYPE_CHECKING

from ..harness.faults import service_kill_point
from ..harness.parallel import FaultPolicy, RunOutcome, RunRequest
from ..harness.runner import SuiteRunner
from ..obs.metrics import MetricsRegistry, bucket_125
from ..sim.watchdog import WatchdogConfig
from .admission import AdmissionController
from .journal import JournalStore
from .quotas import QuotaGate, TenantQuota
from .schemas import job_to_wire, outcome_to_wire, request_from_wire, \
    request_to_wire
from .supervisor import BreakerConfig, OverloadedError, Supervisor

if TYPE_CHECKING:  # pragma: no cover
    from ..harness.cache import ResultCache
    from ..sim.config import GPUConfig

__all__ = [
    "DrainingError",
    "Job",
    "JobStore",
    "Priority",
    "ServiceConfig",
    "ServiceEngine",
]

#: persisted job-store schema; bumped on layout changes.
STORE_VERSION = 1


class Priority:
    """Priority classes, most urgent first."""

    INTERACTIVE = "interactive"
    BATCH = "batch"
    BULK = "bulk"

    ORDER = {INTERACTIVE: 0, BATCH: 1, BULK: 2}
    NAMES = frozenset(ORDER)


class DrainingError(RuntimeError):
    """The daemon is draining and accepts no new jobs (HTTP 503)."""


@dataclass
class Job:
    """One submitted grid spec and everything recorded about it."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    id: str
    tenant: str
    priority: str
    requests: List[RunRequest]
    tags: Dict[str, Any] = field(default_factory=dict)
    status: str = QUEUED
    created: float = 0.0
    finished_at: float = 0.0
    #: run index -> wire-form outcome record (see ``outcome_to_wire``) —
    #: JSON-safe by construction, so persistence is a plain dump.
    outcomes: Dict[int, Dict[str, Any]] = field(default_factory=dict)
    error: str = ""
    #: per-job deadline in seconds from ``created`` (``None`` = never).
    deadline_s: Optional[float] = None
    #: monotonic submission timestamp for queue-wait metrics — transient
    #: (not persisted); ``created``/``finished_at`` stay wall-clock for
    #: display, but a wall step must not skew ``queue.wait_ms``.
    submitted_mono: float = field(default=0.0, repr=False, compare=False)

    @property
    def terminal(self) -> bool:
        return self.status in (self.DONE, self.FAILED, self.CANCELLED)

    def missing_indices(self) -> List[int]:
        return [i for i in range(len(self.requests)) if i not in self.outcomes]

    def to_record(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "priority": self.priority,
            "status": self.status,
            "created": self.created,
            "finished_at": self.finished_at,
            "tags": dict(self.tags),
            "error": self.error,
            "deadline_s": self.deadline_s,
            "requests": [request_to_wire(r) for r in self.requests],
            "outcomes": {str(i): o for i, o in self.outcomes.items()},
        }

    @classmethod
    def from_record(cls, record: Dict[str, Any]) -> "Job":
        return cls(
            id=record["id"],
            tenant=record["tenant"],
            priority=record["priority"],
            requests=[request_from_wire(r) for r in record["requests"]],
            tags=dict(record.get("tags", {})),
            status=record["status"],
            created=record.get("created", 0.0),
            finished_at=record.get("finished_at", 0.0),
            outcomes={int(i): o for i, o in record.get("outcomes", {}).items()},
            error=record.get("error", ""),
            deadline_s=record.get("deadline_s"),
        )


class JobStore:
    """Atomic JSON snapshot of the job table.

    This is the legacy one-shot persistence layer (rewrite-on-save); the
    engine now persists through :class:`~repro.service.journal.JournalStore`,
    which writes the *same* snapshot format at compaction time, so files
    produced by either load in both."""

    def __init__(self, path: str):
        self.path = path

    def save(self, jobs: List[Job], seq: int) -> None:
        payload = {
            "version": STORE_VERSION,
            "seq": seq,
            "saved_at": time.time(),
            "jobs": [job.to_record() for job in jobs],
        }
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, self.path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def load(self) -> Tuple[List[Job], int]:
        try:
            with open(self.path) as fh:
                payload = json.load(fh)
        except (OSError, ValueError):
            return [], 0
        if payload.get("version") != STORE_VERSION:
            return [], 0
        jobs = [Job.from_record(r) for r in payload.get("jobs", [])]
        return jobs, int(payload.get("seq", 0))


@dataclass
class ServiceConfig:
    """Everything the engine needs besides an event loop."""

    #: worker processes per batch (the harness process pool).
    jobs: int = 1
    #: unique runs handed to one executor batch at a time.
    max_batch_runs: int = 32
    #: default per-tenant limits (override per tenant via ``per_tenant``).
    quota: TenantQuota = field(default_factory=TenantQuota)
    per_tenant: Dict[str, TenantQuota] = field(default_factory=dict)
    #: per-run SLO: wall-clock deadline, retries, quarantine (PR 5).
    policy: Optional[FaultPolicy] = None
    watchdog: Optional[WatchdogConfig] = None
    #: job-store path for drain/restart; ``None`` = in-memory only.
    state_path: Optional[str] = None
    #: forwarded to :class:`SuiteRunner` (``None`` = default disk cache).
    cache: Any = None
    config: Optional["GPUConfig"] = None
    #: journal records between snapshot compactions.
    compact_every: int = 256
    #: fsync every journal append (disable only for throwaway tests).
    journal_fsync: bool = True
    #: executor circuit breaker policy (``None`` = defaults).
    breaker: Optional[BreakerConfig] = None
    #: admission backpressure: max runs queued (not yet dispatched).
    max_queued_runs: int = 4096
    #: default per-job deadline in seconds; a spec's ``deadline_s``
    #: overrides it (``None`` = jobs never expire).
    default_deadline: Optional[float] = None
    #: deadline sweeper poll interval in seconds.
    deadline_poll: float = 0.25


class ServiceEngine:
    """The daemon core: submit/track/stream jobs, drain, restart."""

    def __init__(self, config: Optional[ServiceConfig] = None,
                 runner: Optional[SuiteRunner] = None):
        self.config = config or ServiceConfig()
        self.runner = runner or SuiteRunner(
            config=self.config.config,
            cache=self.config.cache,
            policy=self.config.policy,
            watchdog=self.config.watchdog,
        )
        self.registry = MetricsRegistry()
        self.metrics = self.registry.scope("service")
        self.quotas = QuotaGate(self.config.quota, self.config.per_tenant)
        self.admission = AdmissionController(self.metrics)
        self.supervisor = Supervisor(self.config.breaker,
                                     metrics=self.metrics)
        self.store = JournalStore(
            self.config.state_path,
            fsync=self.config.journal_fsync,
            compact_every=self.config.compact_every,
            metrics=self.metrics.scope("journal"),
        ) if self.config.state_path else None
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []  # submission order, for listings
        self._seq = 0
        #: priority heap of (class order, seq, request identity).
        self._work: List[Tuple[int, int, str]] = []
        self._wake = asyncio.Event()
        self._subscribers: Dict[str, List[asyncio.Queue]] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-service-batch"
        )
        self._scheduler_task: Optional[asyncio.Task] = None
        self._deadline_task: Optional[asyncio.Task] = None
        self._batch_busy = False
        self._idle = asyncio.Event()
        self._idle.set()
        self.draining = False
        self._stopped = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Replay persisted state and start the scheduler task."""
        if self.store is not None:
            records, seq = self.store.load()
            self._seq = seq
            resumed_runs = 0
            for record in records:
                job = Job.from_record(record)
                self.jobs[job.id] = job
                self._order.append(job.id)
                if job.terminal:
                    continue
                job.status = Job.QUEUED
                job.submitted_mono = time.monotonic()
                missing = job.missing_indices()
                if not missing:
                    # every outcome was journaled before the crash; only
                    # the finish record is missing — close the job out
                    # without dispatching anything (exactly-once).
                    self._finalize(job)
                    continue
                self.quotas.charge(job.tenant, len(missing))
                for index in missing:
                    self._admit_work(job, index)
                resumed_runs += len(missing)
                self.metrics.inc("jobs.resumed")
            if resumed_runs:
                self.metrics.inc("runs.resumed", resumed_runs)
        self._scheduler_task = asyncio.ensure_future(self._scheduler())
        self._deadline_task = asyncio.ensure_future(self._deadline_sweeper())
        self._wake.set()

    async def stop(self) -> None:
        """Stop without draining (tests; prefer :meth:`drain` + stop)."""
        self._stopped = True
        self._wake.set()
        for task in (self._scheduler_task, self._deadline_task):
            if task is None:
                continue
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._executor.shutdown(wait=False)
        if self.store is not None:
            self.store.close()

    async def drain(self) -> None:
        """Graceful shutdown step 1: refuse new jobs, finish the in-flight
        batch, compact the journal into the snapshot.  Queued-but-unstarted
        work survives in the store for the next life of the daemon."""
        if not self.draining:
            self.metrics.inc("drains")
        self.draining = True  # the app's signal handler may have set it
        self._wake.set()
        await self._idle.wait()
        self.persist()
        self._close_streams()

    def persist(self) -> None:
        """Compact journaled state into the snapshot (atomic rewrite)."""
        if self.store is not None:
            self.store.compact(
                [self.jobs[j].to_record() for j in self._order], self._seq
            )

    def _journal(self, entry: Dict[str, Any]) -> None:
        """Durably journal one mutation *before* the caller applies it."""
        if self.store is None:
            return
        entry.setdefault("seq", self._seq)
        self.store.append(entry)

    def _maybe_compact(self) -> None:
        """Fold the journal into the snapshot once it has grown enough.

        Called only at points where the in-memory table reflects every
        journaled record (never between a journal append and its apply)."""
        if self.store is not None and self.store.should_compact():
            self.persist()

    # -- submission and queries --------------------------------------------

    def submit(self, requests: List[RunRequest], tenant: str = "anon",
               priority: str = Priority.BATCH,
               tags: Optional[Dict[str, Any]] = None,
               deadline_s: Optional[float] = None) -> Job:
        if self.draining or self._stopped:
            raise DrainingError("service is draining; resubmit after restart")
        if priority not in Priority.NAMES:
            raise ValueError(f"unknown priority {priority!r}")
        self.supervisor.admit()  # raises BreakerOpen while shedding
        queued = len(self._work)
        if queued + len(requests) > self.config.max_queued_runs:
            self.metrics.inc("backpressure.shed")
            raise OverloadedError(
                f"queue is full ({queued} run(s) queued, "
                f"bound {self.config.max_queued_runs}); retry later",
            )
        self.quotas.admit(tenant, len(requests))  # raises QuotaError/RateLimited
        self._seq += 1
        job = Job(
            id=uuid.uuid4().hex[:12],
            tenant=tenant,
            priority=priority,
            requests=list(requests),
            tags=dict(tags or {}),
            created=time.time(),
            deadline_s=deadline_s if deadline_s is not None
            else self.config.default_deadline,
            submitted_mono=time.monotonic(),
        )
        # Write-ahead: the job is durable before any client can see it.
        self._journal({"type": "submit", "seq": self._seq,
                       "job": job.to_record()})
        self.jobs[job.id] = job
        self._order.append(job.id)
        for index in range(len(job.requests)):
            self._admit_work(job, index)
        self.metrics.inc("jobs.submitted")
        self.metrics.inc("runs.submitted", len(job.requests))
        self._maybe_compact()
        self._wake.set()
        return job

    def cancel(self, job_id: str) -> Job:
        job = self.jobs[job_id]
        if job.terminal:
            return job
        finished_at = time.time()
        self._journal({"type": "cancel", "job": job.id,
                       "finished_at": finished_at})
        job.status = Job.CANCELLED
        job.finished_at = finished_at
        self.admission.unsubscribe(job_id)
        self.quotas.release(job.tenant, len(job.requests))
        self.metrics.inc("jobs.cancelled")
        self._publish(job, self._terminal_event(job), final=True)
        self._maybe_compact()
        return job

    def job(self, job_id: str) -> Job:
        return self.jobs[job_id]

    def list_jobs(self) -> List[Job]:
        return [self.jobs[j] for j in self._order]

    # -- event streams -----------------------------------------------------

    def subscribe(self, job_id: str, after: int = -1) -> Tuple[
            List[Dict[str, Any]], Optional[asyncio.Queue]]:
        """(replay of events so far, live queue or ``None`` if terminal).

        The live queue yields event dicts and finally ``None``.  Events
        carry a per-job ``seq``; ``after`` skips the replay up to and
        including that sequence number, so a reconnecting client resumes
        exactly where its stream died."""
        job = self.jobs[job_id]
        records = [job.outcomes[i] for i in sorted(job.outcomes)]
        for position, record in enumerate(records):
            record.setdefault("seq", position)  # pre-journal records
        records.sort(key=lambda r: r["seq"])
        replay = [r for r in records if r["seq"] > after]
        if job.terminal:
            terminal = self._terminal_event(job)
            if terminal["seq"] > after:
                replay = replay + [terminal]
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        self._subscribers.setdefault(job_id, []).append(queue)
        return replay, queue

    def unsubscribe_queue(self, job_id: str, queue: asyncio.Queue) -> None:
        queues = self._subscribers.get(job_id, [])
        if queue in queues:
            queues.remove(queue)

    def _terminal_event(self, job: Job) -> Dict[str, Any]:
        return {"event": "job", "id": job.id, "status": job.status,
                "seq": len(job.outcomes)}

    def _publish(self, job: Job, event: Dict[str, Any],
                 final: bool = False) -> None:
        for queue in self._subscribers.get(job.id, []):
            queue.put_nowait(event)
            if final:
                queue.put_nowait(None)
        if final:
            self._subscribers.pop(job.id, None)

    def _close_streams(self) -> None:
        """Drain: end every live stream with a service marker so clients
        know to reconnect (``?after=<seq>``) once the daemon restarts."""
        for job_id, queues in list(self._subscribers.items()):
            for queue in queues:
                queue.put_nowait({"event": "service", "status": "draining",
                                  "job": job_id})
                queue.put_nowait(None)
        self._subscribers.clear()

    # -- scheduling --------------------------------------------------------

    def _admit_work(self, job: Job, index: int) -> None:
        """Admission-dedupe one (job, run) at submit/resume time.

        Only the subscriber that *creates* the execution enqueues a work
        item — a request identical to one already queued or executing
        (even mid-batch, submitted by another client) attaches to it and
        receives the same outcome when it resolves."""
        if self.admission.acquire(job.requests[index], (job.id, index)):
            heapq.heappush(
                self._work,
                (Priority.ORDER[job.priority], self._seq,
                 job.requests[index].identity),
            )

    def _collect_batch(self) -> List[RunRequest]:
        """Drain queued executions (most urgent first) into a batch."""
        batch: List[RunRequest] = []
        while self._work and len(batch) < self.config.max_batch_runs:
            _, _, identity = heapq.heappop(self._work)
            execution = self.admission.execution(identity)
            # Gone (cancelled away), already batched, or orphaned: skip.
            if execution is None or execution.started \
                    or not execution.subscribers:
                continue
            batch.append(execution.request)
            for job_id, _ in execution.subscribers:
                job = self.jobs.get(job_id)
                if job is not None and job.status == Job.QUEUED:
                    job.status = Job.RUNNING
                    # Queue-wait latency: submit -> first dispatch, into a
                    # 1-2-5 bucketed histogram (``service.queue.wait_ms``).
                    # Monotonic on both ends: a wall-clock step must not
                    # produce negative or inflated samples.
                    wait_ms = max(
                        0.0, (time.monotonic() - job.submitted_mono) * 1000.0
                    )
                    self.metrics.observe("queue.wait_ms", bucket_125(wait_ms))
        return batch

    async def _scheduler(self) -> None:
        while not self._stopped:
            await self._wake.wait()
            self._wake.clear()
            while not self._stopped and not self.draining:
                if not self.supervisor.allow_dispatch():
                    if not self._work:
                        break
                    # Breaker open with queued work: wait out the reset
                    # timeout in small slices so drain/stop stay prompt.
                    await asyncio.sleep(min(
                        0.05,
                        max(0.005, self.supervisor.breaker.retry_after()),
                    ))
                    continue
                batch = self._collect_batch()
                if not batch:
                    break
                self._idle.clear()
                self._batch_busy = True
                try:
                    await self._run_batch(batch)
                finally:
                    self._batch_busy = False
                    if not self._work or self.draining:
                        self._idle.set()
            if self.draining:
                self._idle.set()
                return

    async def _run_batch(self, batch: List[RunRequest]) -> None:
        loop = asyncio.get_running_loop()
        service_kill_point("dispatch.pre")
        self._journal({"type": "start",
                       "runs": [request.identity for request in batch]})
        for request in batch:
            self.admission.mark_started(request)
        self.metrics.inc("batches")
        self.metrics.inc("runs.dispatched", len(batch))

        t_dispatch = time.perf_counter()
        statuses: List[str] = []  # batch health probe for the supervisor

        def callback(index: int, outcome: RunOutcome) -> None:
            # Executor-thread side: marshal onto the loop and return.
            # Exec latency = dispatch -> outcome arrival (cache hits land
            # in the lowest buckets, real simulations in the upper ones).
            exec_ms = (time.perf_counter() - t_dispatch) * 1000.0
            statuses.append(outcome.status)
            loop.call_soon_threadsafe(
                self._on_outcome, batch[index], outcome, exec_ms
            )

        def run() -> None:
            self.runner.run_grid_outcomes(
                batch, jobs=self.config.jobs, on_outcome=callback
            )

        broke = False
        try:
            await loop.run_in_executor(self._executor, run)
        except Exception as exc:  # noqa: BLE001 — engine must not die
            broke = True
            self.metrics.inc("batches.broken")
            error = f"batch execution failed: {type(exc).__name__}: {exc}"
            for request in batch:
                if self.admission.is_inflight(request):
                    statuses.append(RunOutcome.CRASHED)
                    self._on_outcome(
                        request,
                        RunOutcome(request, RunOutcome.CRASHED, error=error),
                    )
        self.supervisor.observe_batch(statuses, broke=broke)

    def _on_outcome(self, request: RunRequest, outcome: RunOutcome,
                    exec_ms: Optional[float] = None) -> None:
        """Loop-thread side of the streaming hook: fan the outcome out to
        every (job, index) subscribed to this execution."""
        self.metrics.inc(f"runs.{outcome.status}")
        if exec_ms is not None:
            self.metrics.observe("run.exec_ms", bucket_125(exec_ms))
        finished: List[Job] = []
        for position, (job_id, index) in enumerate(
            self.admission.resolve(request, outcome)
        ):
            job = self.jobs.get(job_id)
            if job is None or job.terminal or index in job.outcomes:
                continue
            record = outcome_to_wire(index, outcome, deduped=position > 0)
            self._record_outcome(job, index, record)
            if not job.missing_indices():
                finished.append(job)
        for job in finished:
            self._finalize(job)
        self._maybe_compact()

    def _record_outcome(self, job: Job, index: int,
                        record: Dict[str, Any]) -> None:
        """Journal one outcome, apply it, publish it — in that order."""
        record["job"] = job.id
        record["seq"] = len(job.outcomes)
        self._journal({"type": "outcome", "job": job.id, "index": index,
                       "record": record})
        job.outcomes[index] = record
        self._publish(job, record)

    def _finalize(self, job: Job) -> None:
        failed = [o for o in job.outcomes.values()
                  if o.get("status") != RunOutcome.OK]
        status = Job.FAILED if failed else Job.DONE
        finished_at = time.time()
        error = ""
        if failed:
            error = (
                f"{len(failed)}/{len(job.requests)} run(s) failed: "
                + ", ".join(sorted({o.get("status", "?") for o in failed}))
            )
        self._journal({"type": "finish", "job": job.id, "status": status,
                       "finished_at": finished_at, "error": error})
        job.status = status
        job.finished_at = finished_at
        job.error = error
        self.quotas.release(job.tenant, len(job.requests))
        self.metrics.inc(f"jobs.{job.status}")
        self._publish(job, self._terminal_event(job), final=True)

    # -- deadlines ---------------------------------------------------------

    async def _deadline_sweeper(self) -> None:
        while not self._stopped:
            self.expire_overdue()
            await asyncio.sleep(self.config.deadline_poll)

    def expire_overdue(self, now: Optional[float] = None) -> List[Job]:
        """Expire jobs past their deadline (graceful degradation).

        Finished runs keep their recorded outcomes; the remainder is
        journaled and published as ``expired`` outcome records, and the
        job finalizes ``failed``.  In-flight executions are left to
        resolve — their results still land in the disk cache — but their
        late outcomes are ignored (the job is terminal by then)."""
        now = time.time() if now is None else now
        expired: List[Job] = []
        for job_id in self._order:
            job = self.jobs[job_id]
            if job.terminal or not job.deadline_s:
                continue
            if now - job.created < job.deadline_s:
                continue
            expired.append(job)
            self.metrics.inc("jobs.expired")
            self.admission.unsubscribe(job.id)
            for index in job.missing_indices():
                record = {
                    "event": "outcome",
                    "index": index,
                    "request": request_to_wire(job.requests[index]),
                    "status": "expired",
                    "attempts": 0,
                    "error": f"job deadline of {job.deadline_s:g}s exceeded",
                }
                self._record_outcome(job, index, record)
                self.metrics.inc("runs.expired")
            self._finalize(job)
        if expired:
            self._maybe_compact()
        return expired

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Operational snapshot for ``GET /healthz``."""
        by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "status": "draining" if self.draining else "ok",
            "jobs": by_status,
            "queued_work": len(self._work),
            "inflight_executions": len(self.admission),
            "deduped": self.admission.deduped,
            "batch_busy": self._batch_busy,
            "breaker": self.supervisor.breaker.state,
        }

    def describe(self, job_id: str, runs: bool = False) -> Dict[str, Any]:
        return job_to_wire(self.jobs[job_id], runs=runs)
