"""Cache-aware admission: collapse identical in-flight work across clients.

The harness already dedupes identical requests *within* one grid call
(:func:`~repro.harness.parallel.run_requests_resilient`) and serves
repeats *after* completion from the content-addressed disk cache.  The
service closes the remaining window: two clients submitting the same
:class:`~repro.harness.parallel.RunRequest` while it is queued or
executing must share one execution, not race two.

:class:`AdmissionController` keys in-flight executions by
:attr:`RunRequest.identity` (the full-field content digest — stable
across pickling and process boundaries, see the Hypothesis suite in
``tests/harness/test_request_identity.py``).  Every (job, run-index) pair
interested in a request subscribes to its execution; the first
subscriber creates it, later ones attach (``service.admission.deduped``).
When the engine resolves the execution, every subscriber receives the
same outcome.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, TYPE_CHECKING

from ..harness.parallel import RunOutcome, RunRequest

if TYPE_CHECKING:  # pragma: no cover
    from ..obs.metrics import MetricScope

__all__ = ["AdmissionController", "Execution"]

#: one interested party: (job id, run index within the job).
Subscriber = Tuple[str, int]


@dataclass
class Execution:
    """One scheduled execution of a unique request, with its audience."""

    request: RunRequest
    subscribers: List[Subscriber] = field(default_factory=list)
    #: set once the engine has put the request into a running batch —
    #: a draining engine persists unstarted work, not running work.
    started: bool = False


class AdmissionController:
    """In-flight execution registry keyed by request identity."""

    def __init__(self, metrics: Optional["MetricScope"] = None):
        self._inflight: Dict[str, Execution] = {}
        self.metrics = metrics
        self.deduped = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def pending(self) -> List[Execution]:
        """Executions not yet handed to a batch, in insertion order."""
        return [e for e in self._inflight.values() if not e.started]

    def acquire(self, request: RunRequest, subscriber: Subscriber) -> bool:
        """Subscribe to ``request``; True iff this created the execution
        (the caller is then responsible for getting it scheduled)."""
        identity = request.identity
        execution = self._inflight.get(identity)
        if execution is None:
            self._inflight[identity] = Execution(request, [subscriber])
            return True
        execution.subscribers.append(subscriber)
        self.deduped += 1
        if self.metrics is not None:
            self.metrics.inc("admission.deduped")
        return False

    def unsubscribe(self, job_id: str) -> None:
        """Drop a cancelled job's interest; executions nobody wants and
        that have not started are discarded."""
        for identity in list(self._inflight):
            execution = self._inflight[identity]
            execution.subscribers = [
                s for s in execution.subscribers if s[0] != job_id
            ]
            if not execution.subscribers and not execution.started:
                del self._inflight[identity]

    def is_inflight(self, request: RunRequest) -> bool:
        return request.identity in self._inflight

    def execution(self, identity: str) -> Optional[Execution]:
        """The in-flight execution for an identity, if any."""
        return self._inflight.get(identity)

    def mark_started(self, request: RunRequest) -> None:
        execution = self._inflight.get(request.identity)
        if execution is not None:
            execution.started = True

    def resolve(self, request: RunRequest,
                outcome: RunOutcome) -> List[Subscriber]:
        """Retire the execution; returns every subscriber to notify."""
        execution = self._inflight.pop(request.identity, None)
        if execution is None:
            return []
        return list(execution.subscribers)
