"""Benchmark workloads: the synthetic Rodinia suite and its building blocks."""

from .base import Workload, default_initial_regs
from .generator import (
    compute_chain,
    consume_values,
    divergent_if,
    sfu_block,
    stencil_loads,
    uniform_loop,
    wide_expression,
)
from .rodinia import RODINIA, make_workload, workload_names

__all__ = [
    "Workload",
    "default_initial_regs",
    "compute_chain",
    "consume_values",
    "divergent_if",
    "sfu_block",
    "stencil_loads",
    "uniform_loop",
    "wide_expression",
    "RODINIA",
    "make_workload",
    "workload_names",
]
