"""Workload definition: a kernel plus its dynamic behaviour.

A :class:`Workload` couples a kernel-building function with the oracles that
drive its branches and loads, the initial register environment (thread ids,
base pointers), and memory-divergence characteristics.  Workloads are
registered in :mod:`repro.workloads.registry`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from ..compiler.regalloc import allocate_registers
from ..isa.kernel import Kernel
from ..sim.oracle import LoadBehavior, Oracle, PredBehavior
from ..sim.values import LaneValues, THREAD_ID

__all__ = ["Workload", "default_initial_regs"]


def default_initial_regs(warp_id: int) -> Dict[int, LaneValues]:
    """R0 = global thread id (affine), R1..R3 = uniform base pointers."""
    return {
        0: LaneValues.affine(warp_id * 32, 1),
        1: LaneValues.uniform(0x1000_0000 + warp_id * 4096),
        2: LaneValues.uniform(0x2000_0000 + warp_id * 4096),
        3: LaneValues.uniform(0x3000_0000 + warp_id * 4096),
    }


@dataclass
class Workload:
    """A benchmark: structure (kernel) + dynamics (oracles)."""

    name: str
    build: Callable[[], Kernel]
    pred_behaviors: Dict[str, PredBehavior] = field(default_factory=dict)
    load_behaviors: Dict[str, LoadBehavior] = field(default_factory=dict)
    default_load: Optional[LoadBehavior] = None
    #: distinct cache lines touched by an uncoalesced (RANDOM-address) access.
    divergent_lines: int = 8
    seed: int = 1
    #: optional override of the initial register environment.
    init_regs: Optional[Callable[[int], Dict[int, LaneValues]]] = None
    #: short description used in reports.
    description: str = ""
    #: apply ptxas-style register allocation to the built kernel (the
    #: paper's kernels are register-allocated before RegLess compilation).
    regalloc: bool = True

    _kernel_cache: Optional[Kernel] = field(default=None, repr=False)

    def kernel(self) -> Kernel:
        if self._kernel_cache is None:
            k = self.build()
            if self.regalloc:
                k = allocate_registers(k)
            self._kernel_cache = k
        return self._kernel_cache

    def oracle(self) -> Oracle:
        return Oracle(
            seed=self.seed,
            pred_behaviors=self.pred_behaviors,
            load_behaviors=self.load_behaviors,
            default_load=self.default_load,
        )

    def initial_regs(self, warp_id: int) -> Dict[int, LaneValues]:
        if self.init_regs is not None:
            return self.init_regs(warp_id)
        return default_initial_regs(warp_id)
