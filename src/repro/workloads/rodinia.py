"""Synthetic Rodinia suite: 21 kernels, one per benchmark in the paper.

Each kernel is hand-built to match the structural character the paper
reports for its namesake (Figures 2, 16-19, Table 2):

=================  ==========================================================
b+tree             pointer-chasing tree descent; small regions, compressible
backprop           layered stencil + barrier per layer
bfs                memory-bound frontier loop, tiny regions, divergent loads
dwt2d              register-heavy wavelet; 20+ live regs, incompressible data
gaussian           values held live across global loads (paper: slowdown)
heartwall          deeply divergent control flow, small regions (slowdown)
hotspot            5-point stencil, register-heavy but compressible
hybridsort         divergent loop + store-heavy (stores > loads; slowdown)
kmeans             long uniform loop, small body (paper: speedup)
lavaMD             long compute regions (longest cycles/region in Table 2)
leukocyte          SFU-heavy loop (paper: speedup)
lud                largest regions (16 insns/region in Table 2)
mummergpu          divergent string matching with random loads
myocyte            huge straight-line expressions, few loads, 20+ live regs
nn                 streaming nearest-neighbour (paper: speedup)
nw                 compute-dense dynamic programming, large regions
particle_filter    alternating wide/narrow phases (the Figure 5 sawtooth)
pathfinder         compressible stencil + per-iteration barrier
srad_v1            stencil + boundary divergence + barrier
srad_v2            store-heavy stencil variant (stores > loads)
streamcluster      tiny regions, guarded (soft-definition) updates
=================  ==========================================================

Loop trip counts are scaled so one simulated run is a few thousand cycles —
large enough for steady-state behaviour, small enough for a pure-Python
cycle simulator.
"""

from __future__ import annotations

from typing import Dict

from ..isa.builder import KernelBuilder
from ..isa.kernel import Kernel
from ..sim.oracle import (
    BernoulliLanes,
    BernoulliWarp,
    DivergentLoopExit,
    LoadBehavior,
    LoopExit,
)
from .base import Workload
from .generator import (
    compute_chain,
    consume_values,
    divergent_if,
    sfu_block,
    stencil_loads,
    uniform_loop,
    wide_expression,
)

__all__ = ["RODINIA", "make_workload", "workload_names"]


# ---------------------------------------------------------------------------
# individual benchmarks
# ---------------------------------------------------------------------------


def _btree() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("b+tree")
        b.block("entry")
        tid, keys = b.reg(0), b.reg(1)
        node = b.fresh()
        b.mov(node, keys)
        key = b.fresh()
        b.iadd(key, tid, 17)
        header, exit_lbl, level, _ = uniform_loop(b, "descend")
        # body: load node entry, compare, pick child (pointer chase)
        entry_val = b.fresh()
        b.ldg(entry_val, node, tag="node")
        cmp_t = b.fresh()
        b.isub(cmp_t, entry_val, key)
        join, p = divergent_if(b, cmp_t, "go_right")
        b.iadd(node, node, 128, guard=b.guard(p, negate=True))
        b.block_named(join)
        nxt = b.fresh()
        b.imad(nxt, entry_val, 128, node)
        b.mov(node, nxt)
        b.iadd(level, level, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(keys, node)
        b.exit()
        return b.build()

    return Workload(
        name="b+tree",
        build=build,
        pred_behaviors={
            "descend": LoopExit(trips=14),
            "go_right": BernoulliLanes(0.5),
        },
        load_behaviors={"node": LoadBehavior(uniform_frac=0.30, affine_frac=0.45)},
        divergent_lines=4,
        description="pointer-chasing tree descent",
    )


def _backprop() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("backprop")
        b.block("entry")
        tid, weights, deltas = b.reg(0), b.reg(1), b.reg(2)
        base = b.fresh()
        b.imad(base, tid, 4, weights)
        header, exit_lbl, layer, _ = uniform_loop(b, "layers")
        vals = stencil_loads(b, base, [0, 1, 2, 3], tag="weights")
        acc = wide_expression(b, vals, width=8, depth=2)
        out = compute_chain(b, acc, 4, float_ops=True)
        b.stg(deltas, out)
        b.bar()
        b.iadd(layer, layer, 1)
        b.iadd(base, base, 512)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="backprop",
        build=build,
        pred_behaviors={"layers": LoopExit(trips=8)},
        load_behaviors={"weights": LoadBehavior(uniform_frac=0.20, affine_frac=0.45)},
        divergent_lines=2,
        description="layered stencil with barriers",
    )


def _bfs() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("bfs")
        b.block("entry")
        tid, nodes, frontier = b.reg(0), b.reg(1), b.reg(2)
        cursor = b.fresh()
        b.imad(cursor, tid, 4, frontier)
        header, exit_lbl, i, _ = uniform_loop(b, "frontier")
        node = b.fresh()
        b.ldg(node, cursor, tag="graph")
        join, p = divergent_if(b, node, "visited")
        edge = b.fresh()
        b.ldg(edge, node, tag="graph", guard=b.guard(p, negate=True))
        b.stg(frontier, edge, guard=b.guard(p, negate=True))
        b.block_named(join)
        b.iadd(cursor, cursor, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="bfs",
        build=build,
        pred_behaviors={
            "frontier": LoopExit(trips=12),
            "visited": BernoulliLanes(0.45),
        },
        load_behaviors={"graph": LoadBehavior(uniform_frac=0.05, affine_frac=0.15)},
        divergent_lines=16,
        description="memory-bound graph frontier loop",
    )


def _dwt2d() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("dwt2d")
        b.block("entry")
        tid, image, coeffs = b.reg(0), b.reg(1), b.reg(2)
        row = b.fresh()
        b.imad(row, tid, 4, image)
        header, exit_lbl, i, _ = uniform_loop(b, "rows")
        taps = stencil_loads(b, row, [0, 1, 2, 3, 4, 5], tag="pixels")
        lo = wide_expression(b, taps[:3], width=10, depth=2)
        hi = wide_expression(b, taps[3:], width=10, depth=2)
        both = consume_values(b, [lo, hi])
        out = compute_chain(b, both, 6, float_ops=True)
        b.stg(coeffs, out)
        b.stg(coeffs, both)
        b.iadd(row, row, 1024)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="dwt2d",
        build=build,
        pred_behaviors={"rows": LoopExit(trips=6)},
        load_behaviors={"pixels": LoadBehavior(uniform_frac=0.03, affine_frac=0.07)},
        divergent_lines=4,
        description="register-heavy wavelet, incompressible data",
    )


def _gaussian() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("gaussian")
        b.block("entry")
        tid, matrix, pivot = b.reg(0), b.reg(1), b.reg(2)
        rowp = b.fresh()
        b.imad(rowp, tid, 4, matrix)
        header, exit_lbl, i, _ = uniform_loop(b, "eliminate")
        # Values stay live across subsequent global loads (the paper's noted
        # pathology: fewer chances to schedule consecutive regions, since
        # every region boundary sits on a load with a fat live set).
        partials = []
        addr = rowp
        for step in range(4):
            v = b.fresh()
            b.ldg(v, addr, tag="mat")
            psum = b.fresh()
            b.imad(psum, v, 3 + step, partials[-1] if partials else v)
            partials.append(psum)  # all partials stay live across the
            nxt = b.fresh()        # remaining loads of this iteration
            b.iadd(nxt, addr, 256 * (step + 1))
            addr = nxt
        out = consume_values(b, partials)
        res = compute_chain(b, out, 5, float_ops=True)
        b.stg(pivot, res)
        b.iadd(rowp, rowp, 2048)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="gaussian",
        build=build,
        pred_behaviors={"eliminate": LoopExit(trips=16)},
        load_behaviors={"mat": LoadBehavior(uniform_frac=0.10, affine_frac=0.25)},
        divergent_lines=2,
        description="registers live across chained global loads",
    )


def _heartwall() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("heartwall")
        b.block("entry")
        tid, frames = b.reg(0), b.reg(1)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, frames)
        acc = b.fresh()
        b.mov(acc, 0)
        header, exit_lbl, i, _ = uniform_loop(b, "track")
        sample = b.fresh()
        b.ldg(sample, ptr, tag="frame")
        join1, p1 = divergent_if(b, sample, "edge")
        t1 = b.fresh()
        b.imad(t1, sample, 3, acc, guard=b.guard(p1, negate=True))
        b.mov(acc, t1, guard=b.guard(p1, negate=True))
        b.block_named(join1)
        join2, p2 = divergent_if(b, acc, "refine")
        t2 = b.fresh()
        b.xor(t2, acc, 0x55, guard=b.guard(p2, negate=True))
        b.mov(acc, t2, guard=b.guard(p2, negate=True))
        b.block_named(join2)
        b.iadd(ptr, ptr, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(frames, acc)
        b.exit()
        return b.build()

    return Workload(
        name="heartwall",
        build=build,
        pred_behaviors={
            "track": LoopExit(trips=18),
            "edge": BernoulliLanes(0.5),
            "refine": BernoulliLanes(0.35),
        },
        load_behaviors={"frame": LoadBehavior(uniform_frac=0.10, affine_frac=0.25)},
        divergent_lines=8,
        description="deeply divergent tracking loop",
    )


def _hotspot() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("hotspot")
        b.block("entry")
        tid, temp, power = b.reg(0), b.reg(1), b.reg(2)
        cell = b.fresh()
        b.imad(cell, tid, 4, temp)
        # prologue loads the first stencil; each iteration prefetches the
        # next step's neighbourhood while updating the current cell
        taps = stencil_loads(b, cell, [0, -1, 1, -16, 16], tag="grid")
        header, exit_lbl, i, _ = uniform_loop(b, "steps")
        nxt = stencil_loads(b, cell, [32, 31, 33, 16, 48], tag="grid")
        mixed = wide_expression(b, taps, width=18, depth=2)
        out = compute_chain(b, mixed, 5, float_ops=True)
        b.stg(cell, out)
        for old, new in zip(taps, nxt):
            b.mov(old, new)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="hotspot",
        build=build,
        pred_behaviors={"steps": LoopExit(trips=10)},
        load_behaviors={"grid": LoadBehavior(uniform_frac=0.30, affine_frac=0.50)},
        divergent_lines=2,
        description="5-point stencil, compressible temperatures",
    )


def _hybridsort() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("hybridsort")
        b.block("entry")
        tid, data, buckets = b.reg(0), b.reg(1), b.reg(2)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, data)
        header, exit_lbl, i, _ = uniform_loop(b, "sort")
        v = b.fresh()
        b.ldg(v, ptr, tag="keys")
        join, p = divergent_if(b, v, "bucket")
        # store-heavy path: scatter the value and a tag (stores > loads)
        slot = b.fresh()
        b.imad(slot, v, 128, buckets, guard=b.guard(p, negate=True))
        b.stg(slot, v, guard=b.guard(p, negate=True))
        b.stg(buckets, slot, guard=b.guard(p, negate=True))
        b.block_named(join)
        b.stg(ptr, v)
        b.iadd(ptr, ptr, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="hybridsort",
        build=build,
        pred_behaviors={
            "sort": LoopExit(trips=14),
            "bucket": BernoulliLanes(0.5),
        },
        load_behaviors={"keys": LoadBehavior(uniform_frac=0.08, affine_frac=0.22)},
        divergent_lines=8,
        description="divergent bucketing, store-heavy",
    )


def _kmeans() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("kmeans")
        b.block("entry")
        tid, points, centers = b.reg(0), b.reg(1), b.reg(2)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, points)
        best = b.fresh()
        b.mov(best, 0x7FFFFFF)
        header, exit_lbl, i, _ = uniform_loop(b, "points")
        x = b.fresh()
        b.ldg(x, ptr, tag="pts")
        d = compute_chain(b, x, 6, float_ops=True)
        b.imin(best, best, d)
        b.iadd(ptr, ptr, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(centers, best)
        b.exit()
        return b.build()

    return Workload(
        name="kmeans",
        build=build,
        pred_behaviors={"points": LoopExit(trips=36)},
        load_behaviors={"pts": LoadBehavior(uniform_frac=0.15, affine_frac=0.40)},
        divergent_lines=2,
        description="long uniform distance loop",
    )


def _lavamd() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("lavaMD")
        b.block("entry")
        tid, particles = b.reg(0), b.reg(1)
        box = b.fresh()
        b.imad(box, tid, 4, particles)
        o_header, o_exit, oi, _ = uniform_loop(b, "boxes")
        pos = stencil_loads(b, box, [0, 1], tag="pos")
        i_header, i_exit, ii, _ = uniform_loop(b, "neighbors")
        force = wide_expression(b, pos, width=14, depth=2)
        f2 = sfu_block(b, force, 2)
        mixed = consume_values(b, [f2, pos[0]])
        out = compute_chain(b, mixed, 8, float_ops=True)
        b.stg(box, out)
        b.iadd(ii, ii, 1)
        b.bra(i_header)
        b.block_named(i_exit)
        b.iadd(box, box, 512)
        b.iadd(oi, oi, 1)
        b.bra(o_header)
        b.block_named(o_exit)
        b.exit()
        return b.build()

    return Workload(
        name="lavaMD",
        build=build,
        pred_behaviors={
            "boxes": LoopExit(trips=4),
            "neighbors": LoopExit(trips=8),
        },
        load_behaviors={"pos": LoadBehavior(uniform_frac=0.12, affine_frac=0.33)},
        divergent_lines=2,
        description="long compute regions, nested n-body loops",
    )


def _leukocyte() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("leukocyte")
        b.block("entry")
        tid, img = b.reg(0), b.reg(1)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, img)
        header, exit_lbl, i, _ = uniform_loop(b, "cells")
        taps = stencil_loads(b, ptr, [0, 1, 16], tag="img")
        g = consume_values(b, taps)
        s = sfu_block(b, g, 3)
        out = compute_chain(b, s, 6, float_ops=True)
        b.stg(ptr, out)
        b.iadd(ptr, ptr, 256)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="leukocyte",
        build=build,
        pred_behaviors={"cells": LoopExit(trips=18)},
        load_behaviors={"img": LoadBehavior(uniform_frac=0.15, affine_frac=0.35)},
        divergent_lines=2,
        description="SFU-heavy cell detection",
    )


def _lud() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("lud")
        b.block("entry")
        tid, matrix = b.reg(0), b.reg(1)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, matrix)
        # software-pipelined: the next row's diagonal is loaded while the
        # current row is factored, so the load latency hides under compute
        diag = b.fresh()
        b.ldg(diag, ptr, tag="mat")
        header, exit_lbl, i, _ = uniform_loop(b, "factor")
        nxt_ptr = b.fresh()
        b.iadd(nxt_ptr, ptr, 512)
        nxt_diag = b.fresh()
        b.ldg(nxt_diag, nxt_ptr, tag="mat")
        # long straight-line factorization: the biggest regions in Table 2
        w = wide_expression(b, [diag], width=12, depth=3)
        chain = compute_chain(b, w, 18, float_ops=True)
        b.stg(ptr, chain)
        b.mov(ptr, nxt_ptr)
        b.mov(diag, nxt_diag)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="lud",
        build=build,
        pred_behaviors={"factor": LoopExit(trips=8)},
        load_behaviors={"mat": LoadBehavior(uniform_frac=0.12, affine_frac=0.30)},
        divergent_lines=2,
        description="compute-dense factorization, largest regions",
    )


def _mummergpu() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("mummergpu")
        b.block("entry")
        tid, tree, queries = b.reg(0), b.reg(1), b.reg(2)
        node = b.fresh()
        b.imad(node, tid, 4, tree)
        header, exit_lbl, i, p_exit = uniform_loop(b, "match")
        ch = b.fresh()
        b.ldg(ch, node, tag="suffix")
        join, p = divergent_if(b, ch, "mismatch")
        nxt = b.fresh()
        b.imad(nxt, ch, 128, tree, guard=b.guard(p, negate=True))
        b.mov(node, nxt, guard=b.guard(p, negate=True))
        b.block_named(join)
        t = b.fresh()
        b.and_(t, ch, 0xFF)
        b.iadd(node, node, t)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(queries, node)
        b.exit()
        return b.build()

    return Workload(
        name="mummergpu",
        build=build,
        pred_behaviors={
            "match": DivergentLoopExit(min_trips=6, max_trips=14),
            "mismatch": BernoulliLanes(0.4),
        },
        load_behaviors={"suffix": LoadBehavior(uniform_frac=0.05, affine_frac=0.15)},
        divergent_lines=12,
        description="divergent suffix-tree matching",
    )


def _myocyte() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("myocyte")
        b.block("entry")
        tid, state = b.reg(0), b.reg(1)
        y = b.fresh()
        b.iadd(y, tid, 11)
        header, exit_lbl, i, _ = uniform_loop(b, "ode")
        # three evaluation phases per step: each is wide (liveness peak)
        # then collapses through the SFU pipe (liveness trough)
        k1 = wide_expression(b, [y], width=14, depth=2)
        k1 = sfu_block(b, k1, 1)
        k2 = wide_expression(b, [k1, y], width=14, depth=2)
        k2 = sfu_block(b, k2, 1)
        k3 = wide_expression(b, [k2, y], width=14, depth=2)
        s_ = sfu_block(b, k3, 2)
        y2 = compute_chain(b, s_, 8, float_ops=True)
        b.mov(y, y2)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(state, y)
        b.exit()
        return b.build()

    return Workload(
        name="myocyte",
        build=build,
        pred_behaviors={"ode": LoopExit(trips=7)},
        divergent_lines=2,
        description="huge ODE expressions, 20+ live registers",
    )


def _nn() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("nn")
        b.block("entry")
        tid, records, target = b.reg(0), b.reg(1), b.reg(2)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, records)
        best = b.fresh()
        b.mov(best, 0x7FFFFFF)
        header, exit_lbl, i, _ = uniform_loop(b, "records")
        lat = b.fresh()
        b.ldg(lat, ptr, tag="rec")
        lng = b.fresh()
        addr2 = b.fresh()
        b.iadd(addr2, ptr, 128)
        b.ldg(lng, addr2, tag="rec")
        d1 = b.fresh()
        b.isub(d1, lat, target)
        d2 = b.fresh()
        b.isub(d2, lng, target)
        dist = b.fresh()
        b.imad(dist, d1, d1, d2)
        b.imin(best, best, dist)
        b.iadd(ptr, ptr, 256)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(records, best)
        b.exit()
        return b.build()

    return Workload(
        name="nn",
        build=build,
        pred_behaviors={"records": LoopExit(trips=28)},
        load_behaviors={"rec": LoadBehavior(uniform_frac=0.20, affine_frac=0.40)},
        divergent_lines=2,
        description="streaming nearest neighbour",
    )


def _nw() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("nw")
        b.block("entry")
        tid, score = b.reg(0), b.reg(1)
        cell = b.fresh()
        b.imad(cell, tid, 4, score)
        west = b.fresh()
        b.ldg(west, cell, tag="score")
        header, exit_lbl, i, _ = uniform_loop(b, "antidiag")
        taps = stencil_loads(b, cell, [-1, -16], tag="score")
        nxt_west = b.fresh()
        nxt_addr = b.fresh()
        b.iadd(nxt_addr, cell, 2048)
        b.ldg(nxt_west, nxt_addr, tag="score")
        m = consume_values(b, [west] + taps)
        chain = compute_chain(b, m, 18)
        mx = b.fresh()
        b.imax(mx, chain, west)
        b.stg(cell, mx)
        b.mov(west, nxt_west)
        b.mov(cell, nxt_addr)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="nw",
        build=build,
        pred_behaviors={"antidiag": LoopExit(trips=12)},
        load_behaviors={"score": LoadBehavior(uniform_frac=0.15, affine_frac=0.40)},
        divergent_lines=2,
        description="dense dynamic-programming wavefront",
    )


def _particle_filter() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("particle_filter")
        b.block("entry")
        tid, particles = b.reg(0), b.reg(1)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, particles)
        header, exit_lbl, i, _ = uniform_loop(b, "steps")
        # phase 1: wide likelihood expression (liveness peak)
        obs = b.fresh()
        b.ldg(obs, ptr, tag="obs")
        w1 = wide_expression(b, [obs], width=10, depth=2)
        # phase 2: narrow normalization chain (liveness trough - the seams
        # highlighted in Figure 5)
        n1 = compute_chain(b, w1, 6, float_ops=True)
        # phase 3: second peak (resampling weights)
        w2 = wide_expression(b, [n1, obs], width=9, depth=2)
        n2 = compute_chain(b, w2, 5)
        join, p = divergent_if(b, n2, "resample")
        b.stg(ptr, n2, guard=b.guard(p, negate=True))
        b.block_named(join)
        b.iadd(ptr, ptr, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="particle_filter",
        build=build,
        pred_behaviors={
            "steps": LoopExit(trips=8),
            "resample": BernoulliLanes(0.5),
        },
        load_behaviors={"obs": LoadBehavior(uniform_frac=0.10, affine_frac=0.30)},
        divergent_lines=4,
        description="alternating wide/narrow phases (Figure 5)",
    )


def _pathfinder() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("pathfinder")
        b.block("entry")
        tid, grid = b.reg(0), b.reg(1)
        cell = b.fresh()
        b.imad(cell, tid, 4, grid)
        header, exit_lbl, i, _ = uniform_loop(b, "rows")
        taps = stencil_loads(b, cell, [-1, 0, 1], tag="cost")
        lo = b.fresh()
        b.imin(lo, taps[0], taps[1])
        lo2 = b.fresh()
        b.imin(lo2, lo, taps[2])
        out = compute_chain(b, lo2, 4)
        b.stg(cell, out)
        b.bar()
        b.iadd(cell, cell, 1024)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="pathfinder",
        build=build,
        pred_behaviors={"rows": LoopExit(trips=14)},
        load_behaviors={"cost": LoadBehavior(uniform_frac=0.35, affine_frac=0.45)},
        divergent_lines=2,
        description="row-wise min stencil with barriers",
    )


def _srad_v1() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("srad_v1")
        b.block("entry")
        tid, img = b.reg(0), b.reg(1)
        cell = b.fresh()
        b.imad(cell, tid, 4, img)
        header, exit_lbl, i, _ = uniform_loop(b, "iters")
        taps = stencil_loads(b, cell, [0, -1, 1, -16], tag="img")
        g = wide_expression(b, taps, width=10, depth=2)
        join, p = divergent_if(b, g, "boundary")
        t = b.fresh()
        b.shr(t, g, 2, guard=b.guard(p, negate=True))
        b.stg(cell, t, guard=b.guard(p, negate=True))
        b.block_named(join)
        out = compute_chain(b, g, 5, float_ops=True)
        b.stg(cell, out)
        b.bar()
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="srad_v1",
        build=build,
        pred_behaviors={
            "iters": LoopExit(trips=8),
            "boundary": BernoulliWarp(0.25),
        },
        load_behaviors={"img": LoadBehavior(uniform_frac=0.18, affine_frac=0.40)},
        divergent_lines=2,
        description="diffusion stencil with boundary divergence",
    )


def _srad_v2() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("srad_v2")
        b.block("entry")
        tid, img = b.reg(0), b.reg(1)
        cell = b.fresh()
        b.imad(cell, tid, 4, img)
        header, exit_lbl, i, _ = uniform_loop(b, "iters")
        taps = stencil_loads(b, cell, [0, 16], tag="img")
        g = consume_values(b, taps)
        c1 = compute_chain(b, g, 7, float_ops=True)
        # store-heavy: three result planes per iteration (stores > loads)
        b.stg(cell, c1)
        off = b.fresh()
        b.iadd(off, cell, 4096)
        b.stg(off, g)
        off2 = b.fresh()
        b.iadd(off2, cell, 8192)
        b.stg(off2, c1)
        b.iadd(cell, cell, 1024)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.exit()
        return b.build()

    return Workload(
        name="srad_v2",
        build=build,
        pred_behaviors={"iters": LoopExit(trips=10)},
        load_behaviors={"img": LoadBehavior(uniform_frac=0.15, affine_frac=0.35)},
        divergent_lines=2,
        description="store-heavy diffusion variant",
    )


def _streamcluster() -> Workload:
    def build() -> Kernel:
        b = KernelBuilder("streamcluster")
        b.block("entry")
        tid, pts = b.reg(0), b.reg(1)
        ptr = b.fresh()
        b.imad(ptr, tid, 4, pts)
        assign = b.fresh()
        b.mov(assign, 0)
        header, exit_lbl, i, _ = uniform_loop(b, "medians")
        x = b.fresh()
        b.ldg(x, ptr, tag="pts")
        d = b.fresh()
        b.imad(d, x, x, i)
        p = b.fresh_pred()
        b.setp(p, d, 100, tag="closer")
        # guarded (soft-definition) update: only closer lanes reassign
        b.mov(assign, d, guard=b.guard(p))
        b.iadd(ptr, ptr, 128)
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
        b.stg(pts, assign)
        b.exit()
        return b.build()

    return Workload(
        name="streamcluster",
        build=build,
        pred_behaviors={
            "medians": LoopExit(trips=24),
            "closer": BernoulliLanes(0.3),
        },
        load_behaviors={"pts": LoadBehavior(uniform_frac=0.20, affine_frac=0.40)},
        divergent_lines=2,
        description="tiny regions, guarded soft-definition updates",
    )


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

RODINIA: Dict[str, callable] = {
    "b+tree": _btree,
    "backprop": _backprop,
    "bfs": _bfs,
    "dwt2d": _dwt2d,
    "gaussian": _gaussian,
    "heartwall": _heartwall,
    "hotspot": _hotspot,
    "hybridsort": _hybridsort,
    "kmeans": _kmeans,
    "lavaMD": _lavamd,
    "leukocyte": _leukocyte,
    "lud": _lud,
    "mummergpu": _mummergpu,
    "myocyte": _myocyte,
    "nn": _nn,
    "nw": _nw,
    "particle_filter": _particle_filter,
    "pathfinder": _pathfinder,
    "srad_v1": _srad_v1,
    "srad_v2": _srad_v2,
    "streamcluster": _streamcluster,
}


def make_workload(name: str) -> Workload:
    """Build one benchmark by name."""
    try:
        return RODINIA[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {', '.join(RODINIA)}"
        ) from None


def workload_names() -> list:
    return list(RODINIA)
