"""Reusable kernel fragments for building synthetic benchmarks.

Each helper emits a small idiomatic GPU code shape into a
:class:`~repro.isa.builder.KernelBuilder`:

* :func:`compute_chain` — a dependent ALU chain: intermediates die
  immediately (the "short register lifetime" common case).
* :func:`wide_expression` — computes many independent subexpressions before
  collapsing them: peak live-register pressure (dwt2d/myocyte-style).
* :func:`stencil_loads` — a batch of neighbouring global loads, later
  consumed together (hotspot/srad-style; loads and uses are separated so
  the region splitter has work to do).
* :func:`uniform_loop` / :func:`divergent_if` — control-flow scaffolding
  wired to workload oracles through instruction tags.

All helpers return the registers holding their results so fragments
compose.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..isa.builder import KernelBuilder
from ..isa.opcodes import Opcode
from ..isa.registers import Pred, Reg

__all__ = [
    "compute_chain",
    "wide_expression",
    "stencil_loads",
    "consume_values",
    "uniform_loop",
    "divergent_if",
    "sfu_block",
]

_ALU_ROTATION = (Opcode.IADD, Opcode.IMUL, Opcode.XOR, Opcode.ISUB, Opcode.AND)
_FALU_ROTATION = (Opcode.FADD, Opcode.FMUL, Opcode.FFMA)


def compute_chain(
    b: KernelBuilder,
    seed: Reg,
    length: int,
    float_ops: bool = False,
    ilp: int = 2,
) -> Reg:
    """``length`` ALU ops forming ``ilp`` interleaved dependent chains that
    merge at the end.  Real compilers schedule this much instruction-level
    parallelism into reduction chains, which is what lets a warp dual-issue
    through them."""
    ops = _FALU_ROTATION if float_ops else _ALU_ROTATION
    ilp = max(1, min(ilp, length))
    accs = [seed] * ilp
    for i in range(length - (ilp - 1)):
        nxt = b.fresh()
        op = ops[i % len(ops)]
        lane = i % ilp
        if op is Opcode.FFMA:
            b.emit(op, [nxt], [accs[lane], accs[lane], seed])
        else:
            b.emit(op, [nxt], [accs[lane], i + 1])
        accs[lane] = nxt
    acc = accs[0]
    for other in accs[1:]:
        nxt = b.fresh()
        b.emit(Opcode.IADD, [nxt], [acc, other])
        acc = nxt
    return acc


def wide_expression(
    b: KernelBuilder,
    inputs: Sequence[Reg],
    width: int,
    depth: int = 2,
) -> Reg:
    """``width`` parallel subexpressions, each ``depth`` deep, then a
    reduction tree — peak pressure is about ``width`` live registers.

    Instructions are emitted breadth-first (layer by layer), the schedule a
    latency-aware compiler would produce: consecutive instructions are
    independent, so a single warp can dual-issue through the expression."""
    leaves: List[Reg] = []
    for i in range(width):
        src = inputs[i % len(inputs)]
        val = b.fresh()
        b.imad(val, src, i + 3, src)
        leaves.append(val)
    for d in range(depth - 1):
        for i, val in enumerate(leaves):
            nxt = b.fresh()
            b.xor(nxt, val, d * 7 + i)
            leaves[i] = nxt
    while len(leaves) > 1:
        merged = []
        for i in range(0, len(leaves) - 1, 2):
            out = b.fresh()
            b.iadd(out, leaves[i], leaves[i + 1])
            merged.append(out)
        if len(leaves) % 2:
            merged.append(leaves[-1])
        leaves = merged
    return leaves[0]


def stencil_loads(
    b: KernelBuilder,
    base: Reg,
    offsets: Sequence[int],
    tag: Optional[str] = None,
) -> List[Reg]:
    """Load ``len(offsets)`` neighbouring values; returns the value regs.
    Addresses are affine in the base, so accesses coalesce."""
    values = []
    for i, off in enumerate(offsets):
        addr = b.fresh()
        b.iadd(addr, base, off * 128)
        val = b.fresh()
        b.ldg(val, addr, tag=tag)
        values.append(val)
    return values


def consume_values(b: KernelBuilder, values: Sequence[Reg]) -> Reg:
    """Reduce a list of registers into one (kills them all)."""
    acc = values[0]
    for v in values[1:]:
        nxt = b.fresh()
        b.iadd(nxt, acc, v)
        acc = nxt
    return acc


def uniform_loop(b: KernelBuilder, tag: str) -> Tuple[str, str, Reg, Pred]:
    """Open a loop skeleton.  Emits the header block (induction test) and
    opens the body block; returns ``(header_label, exit_label, induction
    register, exit predicate)``.  The caller emits the body, then calls
    ``close_loop``-style code::

        header, exit_lbl, i, p = uniform_loop(b, "outer")
        ... body ...
        b.iadd(i, i, 1)
        b.bra(header)
        b.block_named(exit_lbl)
    """
    i = b.fresh()
    b.mov(i, 0)
    header = b.label()
    exit_lbl = b.label()
    b.block_named(header)
    p = b.fresh_pred()
    b.setp(p, i, 0x7FFFFFFF, tag=tag)
    b.bra(exit_lbl, pred=p)
    b.block()  # loop body begins
    return header, exit_lbl, i, p


def divergent_if(
    b: KernelBuilder,
    cond_src: Reg,
    tag: str,
) -> Tuple[str, Pred]:
    """Emit a divergent-if header: ``setp`` + branch over the then-block.
    Returns ``(join_label, predicate)``; the caller emits the then-block,
    then opens ``join_label``."""
    p = b.fresh_pred()
    b.setp(p, cond_src, 0, tag=tag)
    join = b.label()
    b.bra(join, pred=p)
    b.block()  # then-block begins
    return join, p


def sfu_block(b: KernelBuilder, src: Reg, n: int = 2) -> Reg:
    """A few special-function ops (transcendental-heavy kernels)."""
    val = src
    for i in range(n):
        nxt = b.fresh()
        if i % 2 == 0:
            b.rsq(nxt, val)
        else:
            b.ex2(nxt, val)
        val = nxt
    return val
