"""Warp state: program counter, SIMT reconvergence stack, scoreboard.

Divergence uses the classic immediate-postdominator stack: a divergent
branch turns the running stack entry into the reconvergence entry (its pc
set to the IPDOM), then pushes the not-taken and taken paths.  Execution
always proceeds from the top entry; when its pc reaches its reconvergence
pc the entry pops.

The scoreboard is per-warp: an instruction may issue only when none of its
source or destination registers/predicates has an outstanding write (RAW and
WAW are both blocked, as in GPGPU-sim's simple scoreboard).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..isa.instructions import Instruction
from ..isa.registers import Pred, Reg
from .oracle import FULL_MASK
from .values import LaneValues, ZERO, mix_hash

__all__ = ["StackEntry", "Warp"]


@dataclass(slots=True)
class StackEntry:
    """One SIMT stack level."""

    reconv_pc: int
    mask: int
    pc: int


@dataclass(slots=True, eq=False)
class Warp:
    """Dynamic state of one warp.

    ``eq=False``: warps are identity objects (hashable, compared with
    ``is``) — pool membership tests and ready-set bookkeeping must not
    field-compare two warps."""

    wid: int
    shard_id: int
    cta_id: int
    entry_pc: int
    sentinel_pc: int  # kernel end: never a real reconvergence point

    stack: List[StackEntry] = field(default_factory=list)
    regs: Dict[int, LaneValues] = field(default_factory=dict)
    preds: Dict[int, int] = field(default_factory=dict)
    pending_regs: Dict[int, int] = field(default_factory=dict)
    pending_preds: Dict[int, int] = field(default_factory=dict)
    #: registers with an in-flight global load (for two-level demotion).
    pending_loads: set = field(default_factory=set)

    exited: bool = False
    at_barrier: bool = False
    #: cycle after which the warp may issue again (short structural stalls).
    stall_until: int = 0
    #: outstanding writebacks (loads + ALU in flight).
    inflight: int = 0
    #: dynamic instruction count.
    issued: int = 0
    #: set by GTO when this warp last issued (greedy stickiness).
    last_issue_cycle: int = -1

    # -- event-driven issue core (repro.sim.shard) ---------------------------
    #: position in the shard's warp list (ring slot for LRR, sort tiebreak).
    slot: int = 0
    #: in the shard's ready set: the issue scan considers this warp.  Blocked
    #: warps leave the set and are re-inserted by the event that unblocks
    #: them (write-back, barrier release, stall expiry, storage wake).
    ready: bool = True
    #: recorded stall bin while parked (stall attribution reads this instead
    #: of reclassifying the warp every cycle).
    park_bin: Optional[str] = None
    #: parked with a bin that can change without a warp event (RegLess
    #: preloading: ``cm_preloading`` <-> ``osu_port``); refreshed per cycle.
    park_dynamic: bool = False
    #: effective pc cached at park time (for the dynamic-bin refresh).
    park_pc: int = -1

    def __post_init__(self) -> None:
        if not self.stack:
            self.stack.append(
                StackEntry(self.sentinel_pc, FULL_MASK, self.entry_pc)
            )

    # -- control state -------------------------------------------------------

    @property
    def top(self) -> StackEntry:
        return self.stack[-1]

    def maybe_reconverge(self) -> None:
        """Pop stack entries whose pc reached their reconvergence point."""
        while len(self.stack) > 1 and self.top.pc == self.top.reconv_pc:
            self.stack.pop()

    @property
    def pc(self) -> int:
        return self.top.pc

    @property
    def active_mask(self) -> int:
        return self.top.mask

    @property
    def done(self) -> bool:
        return self.exited

    @property
    def runnable(self) -> bool:
        return not self.exited and not self.at_barrier

    def advance(self) -> None:
        self.top.pc += 1

    def jump(self, pc: int) -> None:
        self.top.pc = pc

    def diverge(self, reconv_pc: int, taken_pc: int, taken_mask: int,
                fallthrough_pc: int, nottaken_mask: int) -> None:
        """Split the warp at a divergent branch."""
        current = self.top
        current.pc = reconv_pc  # becomes the reconvergence entry
        self.stack.append(StackEntry(reconv_pc, nottaken_mask, fallthrough_pc))
        self.stack.append(StackEntry(reconv_pc, taken_mask, taken_pc))

    # -- register values ---------------------------------------------------------

    def read_reg(self, reg: Reg) -> LaneValues:
        return self.regs.get(reg.index, ZERO)

    def write_reg(self, reg: Reg, value: LaneValues, full: bool = True) -> None:
        """Write a register; a partial (guarded/divergent) write merges with
        the old value, mixing lanes from both — which destroys any affine
        structure unless old and new were identical."""
        if full:
            self.regs[reg.index] = value
        else:
            old = self.regs.get(reg.index, ZERO)
            if old == value:
                return
            self.regs[reg.index] = LaneValues.random(
                mix_hash(value.base, value.stride, value.tag,
                         old.base, old.stride, old.tag, 0x51)
            )

    def read_pred(self, pred: Pred) -> int:
        return self.preds.get(pred.index, 0)

    def write_pred(self, pred: Pred, mask: int) -> None:
        self.preds[pred.index] = mask & FULL_MASK

    def guard_mask(self, insn: Instruction) -> int:
        """Lanes enabled by the instruction's predicate guard."""
        if insn.guard is None:
            return FULL_MASK
        mask = self.read_pred(insn.guard.pred)
        if insn.guard.negate:
            mask = ~mask & FULL_MASK
        return mask

    # -- scoreboard ----------------------------------------------------------------

    def scoreboard_ready(self, insn: Instruction) -> bool:
        pending_regs = self.pending_regs
        if pending_regs:
            for i in insn.reg_idx:
                if i in pending_regs:
                    return False
        pending_preds = self.pending_preds
        if pending_preds:
            for i in insn.pred_idx:
                if i in pending_preds:
                    return False
        return True

    def mark_pending(self, insn: Instruction) -> None:
        pending_regs = self.pending_regs
        for i in insn.dst_idx:
            pending_regs[i] = pending_regs.get(i, 0) + 1
        pending_preds = self.pending_preds
        for i in insn.pred_dst_idx:
            pending_preds[i] = pending_preds.get(i, 0) + 1
        self.inflight += 1

    def clear_pending(self, insn: Instruction) -> None:
        pending_regs = self.pending_regs
        for i in insn.dst_idx:
            n = pending_regs.get(i, 0)
            if n <= 1:
                pending_regs.pop(i, None)
            else:
                pending_regs[i] = n - 1
        pending_preds = self.pending_preds
        for i in insn.pred_dst_idx:
            n = pending_preds.get(i, 0)
            if n <= 1:
                pending_preds.pop(i, None)
            else:
                pending_preds[i] = n - 1
        self.inflight -= 1
