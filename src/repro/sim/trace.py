"""Execution tracing: capture per-cycle pipeline events for debugging.

A :class:`Tracer` hooks a GPU before ``run()`` and records issue,
write-back, and (for RegLess) warp-state events into a bounded ring.  The
text renderer produces a compact pipeline view::

    cycle 142 | S0 w03 pc=17 iadd R4, R4, R7
    cycle 142 | S1 w12 pc=05 ldg R7, R6
    cycle 145 | S0 w03 writeback pc=17

Tracing is strictly opt-in (it costs time and memory); attach it only to
small runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, List, Optional

from ..isa.instructions import Instruction

__all__ = ["TraceEvent", "RegionSpan", "Tracer"]


@dataclass(frozen=True)
class TraceEvent:
    """One pipeline event."""

    cycle: int
    kind: str  # "issue" | "writeback"
    sm: int
    shard: int
    warp: int
    pc: int
    text: str

    def render(self) -> str:
        return (
            f"cycle {self.cycle:>6} | SM{self.sm} S{self.shard} "
            f"w{self.warp:02d} pc={self.pc:<4} {self.kind:<9} {self.text}"
        )


@dataclass(frozen=True)
class RegionSpan:
    """One RegLess region execution: admission to drain completion.

    ``start`` is when the capacity manager reserved the region
    (PRELOADING began), ``active`` when the last preload landed,
    ``drain`` when the last instruction issued, ``end`` when the last
    write-back finished and the reservation was released.
    """

    sm: int
    shard: int
    warp: int
    rid: int
    start: int
    active: int
    drain: int
    end: int

    def render(self) -> str:
        return (
            f"cycle {self.start:>6} | SM{self.sm} S{self.shard} "
            f"w{self.warp:02d} region {self.rid:<3} "
            f"preload {self.active - self.start} "
            f"active {max(0, self.drain - self.active)} "
            f"drain {self.end - self.drain}"
        )


class Tracer:
    """Bounded event recorder wired into a GPU's shards."""

    def __init__(self, capacity: int = 10_000):
        self.capacity = capacity
        self.events: Deque[TraceEvent] = deque(maxlen=capacity)
        self.region_spans: Deque[RegionSpan] = deque(maxlen=capacity)
        self._attached = False

    # -- wiring ----------------------------------------------------------------

    def attach(self, gpu) -> None:
        """Wrap every shard's issue/writeback with recording hooks, and
        subscribe to capacity-manager region lifecycles where the shard's
        storage has one (RegLess backends)."""
        if self._attached:
            raise RuntimeError("tracer already attached")
        self._attached = True
        for sm in gpu.sms:
            for shard in sm.shards:
                self._wrap_shard(gpu, sm, shard)
                cm = getattr(shard.storage, "cm", None)
                if cm is not None:
                    cm.region_trace = self._region_hook(sm.sm_id,
                                                        shard.shard_id)

    def _region_hook(self, sm_id: int, shard_id: int):
        def hook(wid: int, rid: int, start: int, active: int,
                 drain: int, end: int) -> None:
            self.region_spans.append(RegionSpan(
                sm=sm_id, shard=shard_id, warp=wid, rid=rid,
                start=start, active=active, drain=drain, end=end,
            ))
        return hook

    def _wrap_shard(self, gpu, sm, shard) -> None:
        orig_issue = shard.issue
        orig_writeback = shard._writeback

        def traced_issue(warp, pc: int, insn: Instruction):
            self.record("issue", sm.sm_id, shard.shard_id, warp.wid,
                        pc, repr(insn), gpu.wheel.now)
            return orig_issue(warp, pc, insn)

        def traced_writeback(warp, pc: int, insn: Instruction):
            self.record("writeback", sm.sm_id, shard.shard_id, warp.wid,
                        pc, repr(insn), gpu.wheel.now)
            return orig_writeback(warp, pc, insn)

        shard.issue = traced_issue
        shard._writeback = traced_writeback

    # -- recording ----------------------------------------------------------------

    def record(self, kind: str, sm: int, shard: int, warp: int, pc: int,
               text: str, cycle: int) -> None:
        self.events.append(
            TraceEvent(cycle=cycle, kind=kind, sm=sm, shard=shard,
                       warp=warp, pc=pc, text=text)
        )

    # -- queries ---------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def for_warp(self, warp: int) -> List[TraceEvent]:
        return [e for e in self.events if e.warp == warp]

    def issues(self) -> List[TraceEvent]:
        return [e for e in self.events if e.kind == "issue"]

    def between(self, start: int, end: int) -> List[TraceEvent]:
        return [e for e in self.events if start <= e.cycle < end]

    def render(self, events: Optional[Iterable[TraceEvent]] = None,
               limit: int = 200) -> str:
        rows = list(events if events is not None else self.events)[:limit]
        return "\n".join(e.render() for e in rows)
