"""Cross-warp lockstep batching: the cohort layer beneath the region JIT.

Within a convergent region every resident warp executes the same static
instruction stream, so on most cycles the ready set decomposes into
*cohorts*: warps sitting at the same pc with identical issue-eligibility
state (same scoreboard readiness class, same storage admission verdict,
no divergence).  This module exploits that in three ways, each
bit-identical to the scalar per-warp path by construction:

1. **Covered accounting.**  Stall attribution is the hottest per-cycle
   loop (it classifies every ready warp every cycle).  For the pure
   backends a non-issuing ready warp's classification cannot change
   without an observable event on that warp (its own issue, a park, a
   wake), so the batched account *covers* such warps once and then
   re-commits aggregate bin counts per cohort — one ``+= len(cohort)``
   instead of ``len(cohort)`` ladder walks.  Memory-class warps are
   covered under a sentinel (:data:`MEMSENS`) because their bin
   arbitrates each cycle between ``mem_slot`` and ``issue_width`` with
   the SM's shared LDST slot; the resolution is a single parity test
   applied to the whole cohort at commit time.  Only the three
   event-stable classes {``exited``, ``issue_width``, ``MEMSENS``} are
   ever covered; anything else is counted scalar and reclassified every
   pass (defensive catch-all).  The covered map carries the reuse one
   step further: on a cycle with no warp event at all (no park, no bin
   flip, no wake, the same warps issuing, the same LDST-slot parity)
   the cycle's bins dict is provably equal to the previous one, so the
   pass extends the stall tracker's run-length encoding directly in
   O(1) — no histogram rebuild, no dict comparison.

2. **Cohort issue steps.**  :mod:`repro.sim.regionjit` emits an
   additional ``_cstep_{pc}`` per batchable pc of the residency-gated
   flavors (baseline/RFH, pure exec plans only); the generated cycle
   loop dispatches it for the second and later members of a same-pc run
   of issue candidates, sharing the operand-storage admission verdict
   across the cohort (the previous member's CTA-residency answer is
   provably still valid while that member is live).  Write-backs need
   no cohort treatment: same pc ⇒ same latency, so the members' wheel
   pushes land in one bucket in scalar FIFO order by construction.

3. **Matrix lane materialization.**  Divergent address expansion for a
   cohort of memory warps runs through
   :func:`repro.sim.values.mix_hash_lanes_matrix` — one (warps × lanes)
   FNV evaluation instead of per-warp vectors — and the rows are handed
   to the generated LDG/STG steps for consumption at issue time.

``REPRO_BATCH=0`` disables everything (mirroring ``REPRO_JIT=0``); the
fallback ladder in :func:`compat_reason` records why a shard stays
scalar.  The full contract (batchability conditions, staleness proofs,
interaction with the wake-event contract) lives in docs/performance.md
under "cohort batching contract".
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from ..obs.stalls import ISSUED
from .shard import Shard, _ACCT_PARK_BINS
from . import values as _values
from .values import WARP_WIDTH, ValueKind, mix_hash_lanes_matrix

__all__ = [
    "MEMSENS",
    "BatchStats",
    "attach_batch",
    "batch_enabled",
    "collect_batch",
    "compat_reason",
    "off_reason",
    "partition_cohorts",
]

_MASK32 = 0xFFFFFFFF
_RANDOM = ValueKind.RANDOM


def batch_enabled() -> bool:
    """The ``REPRO_BATCH`` escape hatch (default on)."""
    return os.environ.get("REPRO_BATCH", "1") != "0"


def off_reason() -> str:
    """Fallback reason for a shard whose region JIT never armed: batching
    rides beneath the JIT, so ``env_off`` outranks ``jit_off``."""
    return "env_off" if not batch_enabled() else "jit_off"


class _MemSens:
    """Sentinel classification for a ready memory-class warp whose gate
    and scoreboard both passed: its stall bin flips between ``mem_slot``
    and ``issue_width`` with the SM's per-cycle LDST slot, so the cohort
    cache stores the sentinel and resolves the whole count with one
    parity test at commit time."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<MEMSENS>"


MEMSENS = _MemSens()


class BatchStats:
    """Live cohort-efficacy counters for one shard (observability only —
    mutated in place by the generated code and the account pass, never
    feeding back into simulated state)."""

    __slots__ = (
        "cohorts", "batched_warps", "singletons", "scalar_warps",
        "reused_commits", "fresh_passes", "gate_shared",
        "matrix_warps", "size_hist",
    )

    def __init__(self) -> None:
        self.cohorts = 0          # (pc, cycle) cohort observations (size >= 2)
        self.batched_warps = 0    # warp-cycles accounted through a cohort
        self.singletons = 0       # warp-cycles at a pc no other warp shares
        self.scalar_warps = 0     # per-warp classify calls (scalar-path work)
        self.reused_commits = 0   # O(1) passes served by the cached bins dict
        self.fresh_passes = 0     # full rebuilds of the covered map
        self.gate_shared = 0      # admission verdicts shared across a cohort
        self.matrix_warps = 0     # warps whose lines came off the matrix path
        self.size_hist: Dict[int, int] = {}  # cohort growth events by size


def compat_reason(shard: Shard, *, full_loop: bool) -> Optional[str]:
    """Why cohort batching must stay off for ``shard`` (None = batchable).

    Ladder (first match wins; the caller reports ``env_off``/``jit_off``
    for shards the region JIT itself never armed):

    * ``env_off`` — ``REPRO_BATCH=0``;
    * ``no_full_loop`` — a non-stock scheduler kept the JIT from
      generating the cycle loop the cohort dispatch lives in;
    * ``demoting_scheduler`` — two-level demotion makes ready-warp
      classifications event-unstable (``notify_long_stall`` raises
      ``stall_until`` under the cache's feet);
    * ``impure_storage`` — the storage's issue test has side effects
      (RFV's emergency valve), so admission verdicts cannot be shared;
    * ``no_stalls`` — stall attribution is off, so there is no
      accounting pass to batch.
    """
    if not batch_enabled():
        return "env_off"
    if not full_loop:
        return "no_full_loop"
    if not getattr(shard.scheduler, "lockstep_safe", False):
        return "demoting_scheduler"
    if not getattr(shard.storage, "lockstep_pure", False):
        return "impure_storage"
    if shard.stalls is None:
        return "no_stalls"
    return None


def partition_cohorts(warps, key) -> Dict[object, list]:
    """Partition ``warps`` into cohorts by ``key(warp)`` (insertion
    ordered).  Singleton groups are cohorts of size one — those issue
    through the scalar per-warp path."""
    groups: Dict[object, list] = {}
    for w in warps:
        groups.setdefault(key(w), []).append(w)
    return groups


class _BatchState:
    """Per-shard cohort cache: the covered map plus its aggregates.

    ``cov`` maps each *covered* ready warp to its ``(bin, pc)``; the
    aggregate counters mirror it so the accounting pass never iterates
    the map.  ``pcs`` is the live cohort map (pc → covered non-exited
    warp count); ``c2``/``bw``/``s1`` mirror *it* (cohort count, warps
    inside cohorts, singleton pcs) so per-cycle cohort metrics are three
    integer adds, not a map scan.

    ``dirty``/``last_*`` drive the O(1) cached-commit fast path: every
    warp event that can change the cycle's bins dict (a park, a parked
    bin flip) raises ``dirty``; wakes grow ``uncov``.  When neither
    happened and the issuing set and LDST-slot parity match the previous
    pass, this cycle's histogram is provably equal to the last committed
    one, and the pass extends the tracker's run-length encoding in O(1).

    ``last_iss`` doubles as the *previous issuers* list: their pc
    advanced, so the next full pass reclassifies exactly those of them
    that are ready but no longer issuing — they never transit through
    ``uncov``, which therefore holds only woken (and catch-all) warps
    and is empty after every clean pass."""

    __slots__ = ("cov", "uncov", "pcs", "agg_exited", "agg_iw", "memn",
                 "fresh", "stats", "c2", "bw", "s1", "dirty",
                 "last_iss", "last_par")

    def __init__(self) -> None:
        self.cov: dict = {}
        #: ready warps awaiting (re)classification at the next pass
        #: (fed by the ``_make_ready`` hook; may hold stale entries).
        self.uncov: list = []
        self.pcs: Dict[int, int] = {}
        self.agg_exited = 0
        self.agg_iw = 0
        self.memn = 0
        self.fresh = True
        self.stats = BatchStats()
        self.c2 = 0            # pcs covering a cohort (count >= 2)
        self.bw = 0            # covered warps inside those cohorts
        self.s1 = 0            # covered singleton pcs
        self.dirty = True      # a bins-changing event since the last pass
        self.last_iss: tuple = ()   # warps issued by the last pass
        self.last_par = False  # LDST-slot parity at the last full pass

    def drop(self, warp) -> None:
        """Uncover a warp that left the ready set (or issued).  Callers
        own the ``dirty`` flag: the ``_park`` hook raises it, and the
        account pass overwrites it at the pass tail anyway."""
        e = self.cov.pop(warp, None)
        if e is None:
            return
        b, pc = e
        if b is MEMSENS:
            self.memn -= 1
        elif b == "issue_width":
            self.agg_iw -= 1
        else:  # "exited" — never in the cohort map
            self.agg_exited -= 1
            return
        pcs = self.pcs
        n = pcs[pc] - 1
        if n:
            pcs[pc] = n
            if n == 1:
                self.c2 -= 1
                self.bw -= 2
                self.s1 += 1
            else:
                self.bw -= 1
        else:
            del pcs[pc]
            self.s1 -= 1


def attach_batch(shard: Shard, flavor: str, *, classify_b, memsrc,
                 line_bytes: int, divlines: int) -> BatchStats:
    """Install the covered accounting pass on a JIT-armed shard.

    ``classify_b`` is the generated batch classifier (returns
    ``(bin_or_MEMSENS, pc)``); ``memsrc`` maps compiled LDG/STG pcs to
    their address-register index for the matrix materialization path.
    Returns the live :class:`BatchStats` (also at ``shard._batch.stats``).
    """
    st = _BatchState()
    stats = st.stats
    shard._batch = st
    shard._batch_wake = st.uncov.append
    blines: dict = {}
    shard._batch_lines = blines

    cov = st.cov
    pcs = st.pcs
    size_hist = stats.size_hist
    ready = shard._ready
    parked = shard._parked_bins
    commit = shard.stalls.commit
    extend = shard.stalls.extend
    park = shard._park
    sm = shard.sm
    program = shard._program
    acct_park = _ACCT_PARK_BINS
    regless = flavor == "regless"
    dynamic = shard._dynamic
    stall_reason = shard.storage.stall_reason
    reevaluate = shard.reevaluate
    drop = st.drop
    use_matrix = (
        _values._np is not None and line_bytes <= (1 << 30) and bool(memsrc)
    )
    n_lines = max(1, min(WARP_WIDTH, divlines))

    def _precompute(mem_new: List[Tuple[object, int]]) -> None:
        # Cohort address expansion: one (warps x lanes) FNV chain, each
        # row bit-identical to LaneValues.line_addresses' RANDOM path.
        groups: Dict[int, list] = {}
        for warp, p in mem_new:
            v = warp.regs.get(memsrc[p])
            if v is not None and v.kind is _RANDOM:
                groups.setdefault(p, []).append((warp.wid, v.tag))
        for p, members in groups.items():
            if len(members) < 2:
                continue
            rows = mix_hash_lanes_matrix(
                [(tag,) for _, tag in members], n=n_lines
            )
            stats.matrix_warps += len(members)
            for (wid, _), row in zip(members, rows):
                blines[(wid, p)] = ((row * line_bytes) & _MASK32).tolist()

    def _cover(p):
        # Cohort-map transition: one more covered warp at pc ``p``.
        n = pcs.get(p, 0)
        pcs[p] = n + 1
        if n == 0:
            st.s1 += 1
        elif n == 1:
            st.s1 -= 1
            st.c2 += 1
            st.bw += 2
            size_hist[2] = size_hist.get(2, 0) + 1
        else:
            st.bw += 1
            n += 1
            size_hist[n] = size_hist.get(n, 0) + 1

    def _account(now, issued_warps):
        # 1. RegLess preloading arbitration can flip parked bins without
        # a warp event; refresh exactly like the scalar account pass.
        if regless and dynamic:
            for warp in tuple(dynamic):
                p = warp.park_pc
                reason = stall_reason(warp, p, program[p])
                if reason is None:
                    reevaluate(warp)
                elif reason != warp.park_bin:
                    st.dirty = True
                    n = parked[warp.park_bin] - 1
                    if n:
                        parked[warp.park_bin] = n
                    else:
                        del parked[warp.park_bin]
                    parked[reason] = parked.get(reason, 0) + 1
                    warp.park_bin = reason
        # 2. Cached commit: no park or bin flip since the last full pass
        # (``dirty`` clear), no wake (``uncov`` only ever grows between
        # passes, and a clean pass leaves it empty), the same warps
        # issued again (so no previous issuer needs reclassifying), and
        # the LDST-slot parity matches (or no memory-class warp is
        # covered).  Then this cycle's bins dict is provably equal to
        # the last committed one: extend the stall tracker's run-length
        # encoding in O(1) and bump cohort metrics from the mirrored
        # counters.
        t_iss = tuple(issued_warps)
        same_iss = t_iss == st.last_iss
        if (same_iss and not st.dirty and not st.uncov
                and (st.memn == 0
                     or (sm._mem_slot_cycle == now) == st.last_par)):
            extend()
            shard._idle_committed = False
            stats.reused_commits += 1
            stats.cohorts += st.c2
            stats.batched_warps += st.bw
            stats.singletons += st.s1
            return
        bins = dict(parked)
        if st.fresh:
            # First pass (or an explicit invalidation): classify the
            # whole ready set, exactly like the scalar account loop.
            st.fresh = False
            stats.fresh_passes += 1
            del st.uncov[:]
            cov.clear()
            pcs.clear()
            st.agg_exited = st.agg_iw = st.memn = 0
            st.c2 = st.bw = st.s1 = 0
            pending = ready
        elif same_iss:
            # The same warps issued again: none of them can be covered
            # (issuing drops a warp from the map and only the drain
            # re-covers), and no previous issuer needs reclassifying.
            pending = st.uncov
        else:
            for warp in issued_warps:
                if warp in cov:
                    drop(warp)  # issuing now — counted as ISSUED below
            # Last pass's issuers left the covered map when they issued;
            # those that are ready but not issuing now are reclassified
            # by the drain, without ever transiting through ``uncov``.
            pi = st.last_iss
            pending = st.uncov
            if pi:
                pending = list(pi) + pending if pending else pi
        # 3. Drain: classify only warps the cache does not cover.  No
        # wake can fire inside this loop (classify is pure, parks are
        # deferred), so a plain list swap is race-free.
        to_park = None
        mem_new = None
        clean = True
        nxt: list = []
        for warp in pending:
            if not warp.ready or warp in cov or warp in issued_warps:
                continue
            b, p = classify_b(warp, now)
            stats.scalar_warps += 1
            if b is MEMSENS:
                st.memn += 1
                cov[warp] = (b, p)
                _cover(p)
                if use_matrix and p in memsrc:
                    if mem_new is None:
                        mem_new = [(warp, p)]
                    else:
                        mem_new.append((warp, p))
            elif b == "issue_width":
                st.agg_iw += 1
                cov[warp] = (b, p)
                _cover(p)
            elif b == "exited":
                st.agg_exited += 1
                cov[warp] = (b, p)
            elif b in acct_park:
                bins[b] = bins.get(b, 0) + 1
                if to_park is None:
                    to_park = [(warp, b)]
                else:
                    to_park.append((warp, b))
            else:
                # Defensive catch-all (e.g. "barrier"): counted this
                # cycle but never covered — reclassified every pass,
                # exactly like the scalar loop reclassifies per cycle.
                # Its bin can change without an event, so it also pins
                # the pass out of the cached-commit fast path.
                bins[b] = bins.get(b, 0) + 1
                nxt.append(warp)
                clean = False
        # ``uncov`` is identity-stable (the shard's wake hook is a
        # prebound ``append``): sync its contents in place.
        u = st.uncov
        if u:
            del u[:]
        if nxt:
            u.extend(nxt)
        if to_park is not None:
            for warp, b in to_park:
                park(warp, b)
        if mem_new is not None:
            _precompute(mem_new)
        # 4. Merge the covered aggregates (the vectorized increments).
        n = st.agg_exited
        if n:
            bins["exited"] = bins.get("exited", 0) + n
        n = st.agg_iw
        if n:
            bins["issue_width"] = bins.get("issue_width", 0) + n
        par = sm._mem_slot_cycle == now
        n = st.memn
        if n:
            b = "mem_slot" if par else "issue_width"
            bins[b] = bins.get(b, 0) + n
        # 5. Issued warps: parked ones (EXIT/BAR) were counted in the
        # parked snapshot — recount as ISSUED; ready ones reclassify
        # next pass at their advanced pc (via ``last_iss``, not ``nxt``).
        for warp in issued_warps:
            if not warp.ready:
                n = bins[warp.park_bin] - 1
                if n:
                    bins[warp.park_bin] = n
                else:
                    del bins[warp.park_bin]
        if issued_warps:
            bins[ISSUED] = len(issued_warps)
        commit(bins)
        shard._idle_committed = False
        # 6. Cohort efficacy (three adds — the counters mirror the pc
        # map) and the fast-path cache for the next pass.  Mid-pass
        # parks above raised ``dirty``, but their warps are counted in
        # this committed dict under the same bins the next cycle's
        # parked snapshot will report, so the pass result stands as the
        # cache baseline.
        stats.cohorts += st.c2
        stats.batched_warps += st.bw
        stats.singletons += st.s1
        st.last_iss = t_iss
        st.last_par = par
        st.dirty = not clean

    shard._account_stalls = _account
    return stats


def collect_batch(gpu) -> Dict[str, object]:
    """Flatten cohort-batching observability into ``sm{i}.shard{j}.batch.*``
    paths (kept outside SimStats, like the jit report: wall-clock-side
    observability must never enter the bit-identity contract)."""
    out: Dict[str, object] = {}
    report = getattr(gpu, "_jit_report", None) or {}
    for (smid, shid), info in sorted(report.items()):
        prefix = f"sm{smid}.shard{shid}.batch."
        binfo = info.get("batch") or {"armed": 0, "reason": off_reason()}
        armed = binfo.get("armed", 0)
        out[prefix + "armed"] = armed
        if not armed:
            out[prefix + "reason"] = binfo.get("reason", "unknown")
            continue
        stats = info["_shard"]._batch.stats
        out[prefix + "cohorts"] = stats.cohorts
        out[prefix + "batched_warps"] = stats.batched_warps
        out[prefix + "singleton_warps"] = stats.singletons
        out[prefix + "scalar_classified"] = stats.scalar_warps
        out[prefix + "reused_commits"] = stats.reused_commits
        out[prefix + "fresh_passes"] = stats.fresh_passes
        out[prefix + "gate_shared"] = stats.gate_shared
        out[prefix + "matrix_warps"] = stats.matrix_warps
        for size in sorted(stats.size_hist):
            out[prefix + f"cohort_size.{size}"] = stats.size_hist[size]
    return out
