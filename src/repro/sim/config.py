"""Simulation parameters (paper Table 1, GTX 980-like).

The default configuration simulates a single SM: every per-SM metric in the
paper (working set, backing-store accesses, preload locations, L1 bandwidth)
is per-SM, and energy/run-time comparisons are relative so SM count cancels.
``GPUConfig.gtx980()`` gives the full 16-SM machine.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["GPUConfig"]


@dataclass(frozen=True)
class GPUConfig:
    """All knobs of the timing model."""

    # -- core geometry -----------------------------------------------------
    n_sms: int = 1
    warps_per_sm: int = 64
    schedulers_per_sm: int = 4
    warp_width: int = 32
    issue_width: int = 2  # dual issue per scheduler (GTX 980)
    cta_size_warps: int = 8  # warps per CTA, for barriers

    # -- warp scheduling ------------------------------------------------------
    scheduler: str = "gto"  # "gto" | "lrr" | "two_level"
    two_level_active: int = 8

    # -- L1 (register backing store; data bypasses per Table 1) ---------------
    l1_kb: int = 48
    l1_assoc: int = 6
    line_bytes: int = 128
    l1_mshrs: int = 32
    l1_latency: int = 28
    l1_ports: int = 1  # one request per cycle per SM

    # -- L2 / DRAM ---------------------------------------------------------------
    l2_kb: int = 2048
    l2_assoc: int = 16
    l2_latency: int = 120
    dram_latency: int = 220
    #: 224 GB/s at 1 GHz = 1.75 lines of 128 B per cycle.
    dram_lines_per_cycle: float = 1.75
    #: per-SM interconnect injection rate (requests per cycle).
    icnt_per_sm: float = 1.0

    # -- simulation control ---------------------------------------------------------
    max_cycles: int = 400_000
    #: per-cycle stall attribution (repro.obs.stalls): bin every non-issued
    #: warp-cycle into one reason.  Costs a few percent of simulation time;
    #: disable for raw-throughput sweeps.
    stall_attribution: bool = True
    #: skip dead cycles straight to the next event (results are identical;
    #: disable only to measure the optimization itself).
    fast_forward: bool = True
    #: collect the (warp, reg) working set per window for Figure 2.
    track_working_set: bool = False
    working_set_window: int = 100

    # -- derived -----------------------------------------------------------------------
    @property
    def warps_per_scheduler(self) -> int:
        return self.warps_per_sm // self.schedulers_per_sm

    @property
    def l1_lines(self) -> int:
        return self.l1_kb * 1024 // self.line_bytes

    @property
    def l2_lines(self) -> int:
        return self.l2_kb * 1024 // self.line_bytes

    def with_(self, **kwargs) -> "GPUConfig":
        """Return a modified copy (frozen dataclass convenience)."""
        return replace(self, **kwargs)

    @classmethod
    def gtx980(cls) -> "GPUConfig":
        """The paper's full machine: 16 SMs, 64 warps each, 4 schedulers."""
        return cls(n_sms=16)

    @classmethod
    def fast(cls) -> "GPUConfig":
        """Small configuration for unit tests."""
        return cls(warps_per_sm=8, schedulers_per_sm=2, max_cycles=50_000)
