"""One streaming multiprocessor: shards, barriers, L1 port, program views.

The SM owns the flattened program, the reconvergence-point table, the CTA
barrier bookkeeping, the per-cycle LDST issue slot, and the per-SM L1
register cache shared (one request per cycle) by its four RegLess shards.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from ..compiler.domtree import postdominator_tree
from ..compiler.pipeline import CompiledKernel
from ..mem.l1 import L1RegCache
from ..regfile.base import OperandStorage
from .scheduler import make_scheduler
from .shard import Shard
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU

__all__ = ["SM"]


class SM:
    """A streaming multiprocessor."""

    def __init__(
        self,
        gpu: "GPU",
        sm_id: int,
        storage_factory: Callable[[int], OperandStorage],
    ):
        self.gpu = gpu
        self.sm_id = sm_id
        self.config = gpu.config
        self.counters = gpu.counters
        self.wheel = gpu.wheel
        self.hierarchy = gpu.hierarchy
        self.compiled: CompiledKernel = gpu.compiled
        kernel = self.compiled.kernel

        # Program views ------------------------------------------------------
        self.program = [kernel.insn_at(pc) for pc in range(kernel.num_instructions)]
        self.program_len = len(self.program)
        self._block_start: Dict[str, int] = {
            b.label: kernel.block_start_pc(b.label) for b in kernel.blocks
        }
        pdom = postdominator_tree(kernel)
        self._reconv: Dict[str, int] = {}
        for block in kernel.blocks:
            ip = pdom.idom(block.label) if block.label in pdom else None
            if ip is not None and ip in self._block_start:
                self._reconv[block.label] = self._block_start[ip]
            else:
                self._reconv[block.label] = self.program_len
        self._block_of_pc = [
            kernel.block_of_pc(pc) for pc in range(kernel.num_instructions)
        ]

        # Warps / shards --------------------------------------------------------
        cfg = self.config
        self.l1 = L1RegCache(
            sm_id, cfg, gpu.metrics.scope(f"sm{sm_id}.l1"), self.wheel,
            self.hierarchy,
        )
        self.warps: List[Warp] = []
        self.shards: List[Shard] = []
        per_shard = cfg.warps_per_scheduler
        for shard_id in range(cfg.schedulers_per_sm):
            shard_warps = []
            for i in range(per_shard):
                wid = sm_id * cfg.warps_per_sm + shard_id * per_shard + i
                warp = Warp(
                    wid=wid,
                    shard_id=shard_id,
                    cta_id=(shard_id * per_shard + i) // cfg.cta_size_warps,
                    entry_pc=kernel.block_start_pc(kernel.entry),
                    sentinel_pc=self.program_len + 1,
                )
                warp.regs.update(
                    {r: v for r, v in gpu.workload.initial_regs(wid).items()}
                )
                shard_warps.append(warp)
                self.warps.append(warp)
            scheduler = make_scheduler(
                cfg.scheduler, shard_warps, cfg.two_level_active
            )
            self.shards.append(
                Shard(self, shard_id, shard_warps, scheduler, storage_factory(shard_id))
            )

        #: cycle stamp of the last LDST issue (one slot per cycle; stamped
        #: instead of reset each cycle so idle cycles cost nothing).
        self._mem_slot_cycle = -1
        self._barrier_count: Dict[int, int] = {}
        self.warps_done = 0

    # -- program lookups ----------------------------------------------------------

    def block_start(self, label: str) -> int:
        return self._block_start[label]

    def reconv_pc(self, branch_pc: int) -> int:
        return self._reconv[self._block_of_pc[branch_pc]]

    def metadata_slots(self, shard: Shard, warp: Warp, pc: int) -> int:
        return shard.storage.metadata_slots(warp, pc)

    # -- shared per-cycle resources ---------------------------------------------------

    def take_mem_slot(self) -> bool:
        now = self.wheel.now
        if self._mem_slot_cycle == now:
            return False
        self._mem_slot_cycle = now
        return True

    @property
    def mem_slot_busy(self) -> bool:
        return self._mem_slot_cycle == self.wheel.now

    # -- barriers -------------------------------------------------------------------------

    def barrier_arrive(self, warp: Warp) -> None:
        warp.at_barrier = True
        cta = warp.cta_id
        self._barrier_count[cta] = self._barrier_count.get(cta, 0) + 1
        members = [w for w in self.warps if w.cta_id == cta and not w.exited]
        if self._barrier_count[cta] >= len(members):
            self._barrier_count[cta] = 0
            shards = self.shards
            for w in members:
                w.at_barrier = False
                # Wake barrier-parked warps (CTAs can span shards, so this
                # may land in a shard whose cycle already ran — its stall
                # accounting committed before the release, as in the seed).
                shards[w.shard_id].reevaluate(w)

    def notify_warp_done(self, warp: Warp) -> None:
        self.warps_done += 1
        self.gpu.warps_done_total += 1
        # A warp exiting may release its CTA's barrier.
        cta = warp.cta_id
        if self._barrier_count.get(cta, 0) > 0:
            members = [
                w for w in self.warps if w.cta_id == cta and not w.exited
            ]
            waiting = [w for w in members if w.at_barrier]
            if members and len(waiting) >= len(members):
                self._barrier_count[cta] = 0
                shards = self.shards
                for w in waiting:
                    w.at_barrier = False
                    shards[w.shard_id].reevaluate(w)

    # -- simulation ------------------------------------------------------------------------

    def cycle(self) -> int:
        # No per-cycle resets: the L1 port and the LDST slot are
        # cycle-stamped, so quiescent cycles pay nothing here.
        issued = 0
        for shard in self.shards:
            issued += shard.cycle()
        return issued

    def account_skipped(self, cycles: int) -> None:
        """Attribute ``cycles`` fast-forwarded cycles to each shard's
        stall bins (replaying the dead cycle that triggered the skip) and
        let storages shift any called-cycle deadlines across the gap."""
        for shard in self.shards:
            shard.storage.on_fast_forward(cycles)
            if shard.stalls is not None:
                shard.stalls.replay(cycles)

    @property
    def done(self) -> bool:
        # Counter-based: every exit goes through notify_warp_done, so this
        # avoids rescanning every warp each cycle.
        return self.warps_done >= len(self.warps)

    @property
    def inflight(self) -> int:
        return sum(w.inflight for w in self.warps)

    @property
    def storage_idle(self) -> bool:
        return all(s.storage.idle for s in self.shards)
