"""A bucketed event wheel for the cycle-driven simulator.

Callbacks are scheduled at absolute cycles; :meth:`EventWheel.tick` advances
time by one cycle and runs that cycle's bucket.  This keeps the hot path a
dict lookup instead of a priority queue.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

__all__ = ["EventWheel"]


class EventWheel:
    """Schedule callables at future cycles."""

    def __init__(self) -> None:
        self.now = 0
        self._buckets: Dict[int, List[Callable[[], None]]] = {}
        self._pending = 0

    def at(self, cycle: int, fn: Callable[[], None]) -> None:
        if cycle <= self.now:
            raise ValueError(f"cannot schedule at {cycle} <= now {self.now}")
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [fn]
        else:
            bucket.append(fn)
        self._pending += 1

    def after(self, delay: int, fn: Callable[[], None]) -> None:
        # Inlined ``at`` (this is the write-back hot path); cycle > now by
        # construction since delay is clamped to >= 1.
        delay = int(delay)
        cycle = self.now + (delay if delay > 0 else 1)
        bucket = self._buckets.get(cycle)
        if bucket is None:
            self._buckets[cycle] = [fn]
        else:
            bucket.append(fn)
        self._pending += 1

    def tick(self) -> None:
        """Advance one cycle and fire its events."""
        self.now += 1
        bucket = self._buckets.pop(self.now, None)
        if bucket:
            self._pending -= len(bucket)
            for fn in bucket:
                fn()

    def skip_to(self, cycle: int) -> None:
        """Bulk-advance ``now`` to ``cycle`` without ticking — O(1).

        The caller must guarantee no bucket exists in ``(now, cycle]``
        (the fast-forward path jumps to just before
        :meth:`next_event_cycle`, so every skipped bucket is empty by
        construction).  Events and time observers see exactly the state a
        tick-by-tick spin over empty buckets would have produced.
        """
        if cycle > self.now:
            self.now = cycle

    def next_event_cycle(self) -> Optional[int]:
        """The earliest cycle with a scheduled event, or ``None`` when the
        wheel is empty (used by the simulator's fast-forward path)."""
        buckets = self._buckets
        return min(buckets) if buckets else None

    @property
    def pending_events(self) -> int:
        return self._pending
