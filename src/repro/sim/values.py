"""Affine lane-value domain.

The simulator executes instructions *functionally* over a small abstract
domain instead of 32 concrete lane values:

* ``UNIFORM(base)``        — every lane holds ``base``;
* ``AFFINE(base, stride)`` — lane *i* holds ``base + stride * i``;
* ``RANDOM(tag)``          — lanes hold unrelated values (``tag`` keeps
  results deterministic and distinguishable).

This domain is exactly the value structure the RegLess compressor exploits
(paper section 5.3: constant, stride-1, stride-4 and half-warp patterns), so
compressibility statistics emerge from real dataflow: thread-id arithmetic
stays affine, loaded data is as random as the workload says, and address
arithmetic yields realistic coalescing behaviour.

Arithmetic is closed where the real operation would preserve the pattern
(adding two affine values, scaling by a uniform, …) and falls back to
``RANDOM`` with a deterministic tag otherwise.

**Vectorized materialization.**  The abstract domain *is* the closed form —
UNIFORM/AFFINE stay two integers, and a RANDOM value's identity is its
32-bit tag, because tags feed the deterministic tag algebra that every
simulated statistic depends on.  What numpy accelerates is *lane
materialization*: whenever a RANDOM value must be expanded into its 32
concrete per-lane hashes (address expansion in :meth:`line_addresses`,
oracle per-lane masks), the FNV chain is evaluated as one batched array
expression (:func:`mix_hash_lanes`) instead of a Python loop — bit-identical
by construction, since every intermediate stays below 2**57 in uint64.
The scalar reference implementations are preserved in
``tests/sim/naive_values.py`` and the Hypothesis suite drives both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..isa.registers import WARP_WIDTH

try:  # vectorized lane materialization (scalar fallback below)
    import numpy as _np
except ImportError:  # pragma: no cover - the test image bundles numpy
    _np = None

__all__ = [
    "ValueKind",
    "LaneValues",
    "THREAD_ID",
    "ZERO",
    "FLOAT32_EXACT",
    "mix_hash",
    "mix_hash_lanes",
    "mix_hash_lanes_matrix",
]

_MASK32 = 0xFFFFFFFF
_FNV_BASIS = 0x811C9DC5
_FNV_PRIME = 0x01000193

#: Largest integer magnitude exactly representable in a float32 mantissa.
#: Affine float adds whose lanes stay within ±2**24 behave like integer
#: adds bit-for-bit; beyond it rounding destroys the affine structure.
FLOAT32_EXACT = 1 << 24


class ValueKind(enum.Enum):
    UNIFORM = "uniform"
    AFFINE = "affine"
    RANDOM = "random"


def mix_hash(*parts: int) -> int:
    """Deterministic 32-bit FNV-style hash (RANDOM tags, oracles)."""
    h = _FNV_BASIS
    for p in parts:
        h ^= p & _MASK32
        h = (h * _FNV_PRIME) & _MASK32
    return h


_mix = mix_hash

if _np is not None:
    #: lane index vector, reused by every batched materialization.
    _LANE_IDX = _np.arange(WARP_WIDTH, dtype=_np.uint64)


def mix_hash_lanes(prefix, suffix=(), n: int = WARP_WIDTH):
    """Batched FNV over the lane index: element ``i`` equals
    ``mix_hash(*prefix, i, *suffix)`` for ``i`` in ``range(n)``.

    The scalar FNV folds one 32-bit part at a time, so the prefix folds
    once (scalar), the lane index folds as one array xor/multiply, and
    each suffix part folds as another — every intermediate is < 2**57,
    comfortably inside uint64, and the 32-bit mask after each step keeps
    the chain bit-identical to the scalar loop.  Returns a sequence of
    ``n`` ints (a uint64 ndarray when numpy is present).
    """
    h0 = _FNV_BASIS
    for p in prefix:
        h0 ^= p & _MASK32
        h0 = (h0 * _FNV_PRIME) & _MASK32
    if _np is None:
        out = []
        for i in range(n):
            h = ((h0 ^ i) * _FNV_PRIME) & _MASK32
            for p in suffix:
                h = ((h ^ (p & _MASK32)) * _FNV_PRIME) & _MASK32
            out.append(h)
        return out
    if n == WARP_WIDTH:
        lanes = _LANE_IDX
    elif n < WARP_WIDTH:
        lanes = _LANE_IDX[:n]
    else:
        lanes = _np.arange(n, dtype=_np.uint64)
    h = ((h0 ^ lanes) * _FNV_PRIME) & _MASK32
    for p in suffix:
        h = ((h ^ (p & _MASK32)) * _FNV_PRIME) & _MASK32
    return h


def mix_hash_lanes_matrix(prefixes, suffix=(), n: int = WARP_WIDTH):
    """Cohort-widened :func:`mix_hash_lanes`: one FNV chain per *row*.

    ``prefixes`` is a sequence of prefix tuples (one per warp in a
    cohort); row ``w``, element ``i`` equals
    ``mix_hash(*prefixes[w], i, *suffix)``.  The per-row prefix folds
    are scalar (prefixes differ per warp), but the lane fold and every
    suffix fold run once over the whole (warps x lanes) matrix — the
    same uint64 headroom argument as :func:`mix_hash_lanes` applies
    elementwise, so each row is bit-identical to the per-warp call.
    Returns a list of rows (uint64 ndarrays when numpy is present).
    """
    if _np is None:
        return [mix_hash_lanes(prefix, suffix, n) for prefix in prefixes]
    h0s = _np.empty(len(prefixes), dtype=_np.uint64)
    for w, prefix in enumerate(prefixes):
        h0 = _FNV_BASIS
        for p in prefix:
            h0 ^= p & _MASK32
            h0 = (h0 * _FNV_PRIME) & _MASK32
        h0s[w] = h0
    if n == WARP_WIDTH:
        lanes = _LANE_IDX
    elif n < WARP_WIDTH:
        lanes = _LANE_IDX[:n]
    else:
        lanes = _np.arange(n, dtype=_np.uint64)
    h = ((h0s[:, None] ^ lanes[None, :]) * _FNV_PRIME) & _MASK32
    for p in suffix:
        h = ((h ^ (p & _MASK32)) * _FNV_PRIME) & _MASK32
    return list(h)


_UNIFORM = ValueKind.UNIFORM
_AFFINE = ValueKind.AFFINE
_RANDOM = ValueKind.RANDOM


def _f32_exact(base: int, stride: int) -> bool:
    """Are all 32 lanes of ``AFFINE(base, stride)``, read as signed 32-bit
    values, exactly representable in a float32 mantissa?"""
    for i in range(WARP_WIDTH):
        v = (base + stride * i) & _MASK32
        if v >= 0x80000000:
            v -= 0x100000000
        if not -FLOAT32_EXACT <= v <= FLOAT32_EXACT:
            return False
    return True


@dataclass(slots=True)
class LaneValues:
    """One warp-register value across all 32 lanes.

    Treated as immutable by convention (arithmetic returns new instances);
    not ``frozen=True`` because the frozen ``__init__`` costs ~3x on this
    class, which the simulator constructs on every ALU result.
    """

    kind: ValueKind
    base: int = 0
    stride: int = 0
    tag: int = 0

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def uniform(base: int) -> "LaneValues":
        return LaneValues(_UNIFORM, base & _MASK32)

    @staticmethod
    def affine(base: int, stride: int) -> "LaneValues":
        if stride == 0:
            return LaneValues(_UNIFORM, base & _MASK32)
        return LaneValues(_AFFINE, base & _MASK32, stride)

    @staticmethod
    def random(tag: int) -> "LaneValues":
        return LaneValues(_RANDOM, tag=tag & _MASK32)

    # -- properties ----------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        return self.kind is _UNIFORM

    @property
    def is_affine(self) -> bool:
        return self.kind is _AFFINE

    @property
    def is_random(self) -> bool:
        return self.kind is _RANDOM

    def lane(self, i: int) -> int:
        """Concrete value of lane ``i`` (RANDOM lanes are hashed)."""
        if self.kind is _UNIFORM:
            return self.base
        if self.kind is _AFFINE:
            return (self.base + self.stride * i) & _MASK32
        return _mix(self.tag, i)

    def lanes(self):
        """All :data:`WARP_WIDTH` concrete lane values at once.

        The RANDOM expansion is the batched FNV chain
        (:func:`mix_hash_lanes`); UNIFORM/AFFINE expand from their closed
        form.  Equals ``[self.lane(i) for i in range(WARP_WIDTH)]``.
        """
        kind = self.kind
        if _np is None:
            return [self.lane(i) for i in range(WARP_WIDTH)]
        if kind is _UNIFORM:
            return _np.full(WARP_WIDTH, self.base, dtype=_np.uint64)
        if kind is _AFFINE:
            stride = self.stride
            if -0x80000000 <= stride <= 0x7FFFFFFF:
                # Strides may be negative: compute signed (no overflow:
                # |base + 31*stride| < 2**37), then wrap to 32 bits.
                vals = self.base + _np.arange(WARP_WIDTH, dtype=_np.int64) * stride
                return vals.astype(_np.uint64) & _MASK32
            # Unbounded stride (property tests): exact Python arithmetic.
            return [self.lane(i) for i in range(WARP_WIDTH)]
        return mix_hash_lanes((self.tag,))

    # -- arithmetic ------------------------------------------------------------------

    def add(self, other: "LaneValues") -> "LaneValues":
        if self.kind is _RANDOM or other.kind is _RANDOM:
            return LaneValues(
                _RANDOM,
                tag=_mix(self.tag, other.tag, self.base, other.base, 1),
            )
        return LaneValues.affine(
            self.base + other.base, self.stride + other.stride
        )

    def float_add(self, other: "LaneValues") -> "LaneValues":
        """Floating-point add: explicit degrade-to-RANDOM rule.

        RANDOM operands take exactly the integer-add tag path (the tag
        algebra is shared, so FADD and IADD of random data stay
        indistinguishable downstream).  A structured (UNIFORM/AFFINE)
        result keeps its affine form only while every lane of both
        operands and of the sum is exactly representable in a float32
        mantissa (|signed value| <= :data:`FLOAT32_EXACT`); past that,
        float rounding would break the lane-to-lane stride, so the result
        degrades to RANDOM with a deterministic tag.
        """
        if self.kind is _RANDOM or other.kind is _RANDOM:
            return self.add(other)
        base = self.base + other.base
        stride = self.stride + other.stride
        if (
            _f32_exact(self.base, self.stride)
            and _f32_exact(other.base, other.stride)
            and _f32_exact(base, stride)
        ):
            return LaneValues.affine(base, stride)
        return LaneValues(
            _RANDOM,
            tag=_mix(self.base, self.stride, other.base, other.stride, 0x26),
        )

    def sub(self, other: "LaneValues") -> "LaneValues":
        if self.kind is _RANDOM or other.kind is _RANDOM:
            return LaneValues(
                _RANDOM,
                tag=_mix(self.tag, other.tag, self.base, other.base, 2),
            )
        return LaneValues.affine(
            self.base - other.base, self.stride - other.stride
        )

    def mul(self, other: "LaneValues") -> "LaneValues":
        k, ok = self.kind, other.kind
        if k is _UNIFORM and ok is _UNIFORM:
            return LaneValues(_UNIFORM, (self.base * other.base) & _MASK32)
        if k is _UNIFORM and ok is _AFFINE:
            return LaneValues.affine(self.base * other.base, self.base * other.stride)
        if k is _AFFINE and ok is _UNIFORM:
            return LaneValues.affine(self.base * other.base, self.stride * other.base)
        return LaneValues(
            _RANDOM, tag=_mix(self.tag, other.tag, self.base, other.base, 3)
        )

    def shl(self, other: "LaneValues") -> "LaneValues":
        if other.kind is _UNIFORM and self.kind is not _RANDOM:
            factor = 1 << (other.base & 31)
            return LaneValues.affine(self.base * factor, self.stride * factor)
        return LaneValues(
            _RANDOM, tag=_mix(self.tag, other.tag, self.base, other.base, 4)
        )

    def opaque(self, other: Optional["LaneValues"] = None, salt: int = 0) -> "LaneValues":
        """Result of an operation that destroys structure (div, sin, xor...)."""
        o = other if other is not None else ZERO
        if self.kind is _UNIFORM and o.kind is _UNIFORM:
            return LaneValues(_UNIFORM, _mix(self.base, o.base, salt))
        return LaneValues(
            _RANDOM,
            tag=_mix(self.tag, o.tag, self.base, o.base, self.stride, o.stride, salt),
        )

    # -- memory helpers ------------------------------------------------------------------

    def coalesced_lines(self, line_bytes: int, divergent_lines: int = 32) -> int:
        """Distinct cache lines touched when used as a byte address."""
        if self.is_uniform:
            return 1
        if self.is_affine:
            stride = abs(self.stride)
            span = stride * (WARP_WIDTH - 1)
            first = self.base // line_bytes
            last = (self.base + span) // line_bytes
            return int(last - first + 1)
        return max(1, min(WARP_WIDTH, divergent_lines))

    def line_addresses(self, line_bytes: int, divergent_lines: int = 32):
        """The distinct line-aligned addresses touched (deterministic)."""
        if self.is_uniform:
            return [self.base - self.base % line_bytes]
        if self.is_affine:
            n = self.coalesced_lines(line_bytes)
            first = self.base - self.base % line_bytes
            step = line_bytes if self.stride >= 0 else -line_bytes
            return [(first + step * i) & _MASK32 for i in range(n)]
        n = max(1, min(WARP_WIDTH, divergent_lines))
        if _np is None or line_bytes > (1 << 30):
            return [
                (_mix(self.tag, i) * line_bytes) & _MASK32 for i in range(n)
            ]
        # Batched address expansion: one FNV chain over the lane vector,
        # then the line scaling — each product < 2**40, exact in uint64.
        return ((mix_hash_lanes((self.tag,), n=n) * line_bytes)
                & _MASK32).tolist()


#: Lane index vector (thread id within warp): 0, 1, 2, ... 31.
THREAD_ID = LaneValues.affine(0, 1)
ZERO = LaneValues.uniform(0)
