"""Affine lane-value domain.

The simulator executes instructions *functionally* over a small abstract
domain instead of 32 concrete lane values:

* ``UNIFORM(base)``        — every lane holds ``base``;
* ``AFFINE(base, stride)`` — lane *i* holds ``base + stride * i``;
* ``RANDOM(tag)``          — lanes hold unrelated values (``tag`` keeps
  results deterministic and distinguishable).

This domain is exactly the value structure the RegLess compressor exploits
(paper section 5.3: constant, stride-1, stride-4 and half-warp patterns), so
compressibility statistics emerge from real dataflow: thread-id arithmetic
stays affine, loaded data is as random as the workload says, and address
arithmetic yields realistic coalescing behaviour.

Arithmetic is closed where the real operation would preserve the pattern
(adding two affine values, scaling by a uniform, …) and falls back to
``RANDOM`` with a deterministic tag otherwise.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..isa.registers import WARP_WIDTH

__all__ = ["ValueKind", "LaneValues", "THREAD_ID", "ZERO", "mix_hash"]

_MASK32 = 0xFFFFFFFF


class ValueKind(enum.Enum):
    UNIFORM = "uniform"
    AFFINE = "affine"
    RANDOM = "random"


def mix_hash(*parts: int) -> int:
    """Deterministic 32-bit FNV-style hash (RANDOM tags, oracles)."""
    h = 0x811C9DC5
    for p in parts:
        h ^= p & _MASK32
        h = (h * 0x01000193) & _MASK32
    return h


_mix = mix_hash


_UNIFORM = ValueKind.UNIFORM
_AFFINE = ValueKind.AFFINE
_RANDOM = ValueKind.RANDOM


@dataclass(slots=True)
class LaneValues:
    """One warp-register value across all 32 lanes.

    Treated as immutable by convention (arithmetic returns new instances);
    not ``frozen=True`` because the frozen ``__init__`` costs ~3x on this
    class, which the simulator constructs on every ALU result.
    """

    kind: ValueKind
    base: int = 0
    stride: int = 0
    tag: int = 0

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def uniform(base: int) -> "LaneValues":
        return LaneValues(_UNIFORM, base & _MASK32)

    @staticmethod
    def affine(base: int, stride: int) -> "LaneValues":
        if stride == 0:
            return LaneValues(_UNIFORM, base & _MASK32)
        return LaneValues(_AFFINE, base & _MASK32, stride)

    @staticmethod
    def random(tag: int) -> "LaneValues":
        return LaneValues(_RANDOM, tag=tag & _MASK32)

    # -- properties ----------------------------------------------------------------

    @property
    def is_uniform(self) -> bool:
        return self.kind is _UNIFORM

    @property
    def is_affine(self) -> bool:
        return self.kind is _AFFINE

    @property
    def is_random(self) -> bool:
        return self.kind is _RANDOM

    def lane(self, i: int) -> int:
        """Concrete value of lane ``i`` (RANDOM lanes are hashed)."""
        if self.kind is _UNIFORM:
            return self.base
        if self.kind is _AFFINE:
            return (self.base + self.stride * i) & _MASK32
        return _mix(self.tag, i)

    # -- arithmetic ------------------------------------------------------------------

    def add(self, other: "LaneValues") -> "LaneValues":
        if self.kind is _RANDOM or other.kind is _RANDOM:
            return LaneValues(
                _RANDOM,
                tag=_mix(self.tag, other.tag, self.base, other.base, 1),
            )
        return LaneValues.affine(
            self.base + other.base, self.stride + other.stride
        )

    def sub(self, other: "LaneValues") -> "LaneValues":
        if self.kind is _RANDOM or other.kind is _RANDOM:
            return LaneValues(
                _RANDOM,
                tag=_mix(self.tag, other.tag, self.base, other.base, 2),
            )
        return LaneValues.affine(
            self.base - other.base, self.stride - other.stride
        )

    def mul(self, other: "LaneValues") -> "LaneValues":
        k, ok = self.kind, other.kind
        if k is _UNIFORM and ok is _UNIFORM:
            return LaneValues(_UNIFORM, (self.base * other.base) & _MASK32)
        if k is _UNIFORM and ok is _AFFINE:
            return LaneValues.affine(self.base * other.base, self.base * other.stride)
        if k is _AFFINE and ok is _UNIFORM:
            return LaneValues.affine(self.base * other.base, self.stride * other.base)
        return LaneValues(
            _RANDOM, tag=_mix(self.tag, other.tag, self.base, other.base, 3)
        )

    def shl(self, other: "LaneValues") -> "LaneValues":
        if other.kind is _UNIFORM and self.kind is not _RANDOM:
            factor = 1 << (other.base & 31)
            return LaneValues.affine(self.base * factor, self.stride * factor)
        return LaneValues(
            _RANDOM, tag=_mix(self.tag, other.tag, self.base, other.base, 4)
        )

    def opaque(self, other: Optional["LaneValues"] = None, salt: int = 0) -> "LaneValues":
        """Result of an operation that destroys structure (div, sin, xor...)."""
        o = other if other is not None else ZERO
        if self.kind is _UNIFORM and o.kind is _UNIFORM:
            return LaneValues(_UNIFORM, _mix(self.base, o.base, salt))
        return LaneValues(
            _RANDOM,
            tag=_mix(self.tag, o.tag, self.base, o.base, self.stride, o.stride, salt),
        )

    # -- memory helpers ------------------------------------------------------------------

    def coalesced_lines(self, line_bytes: int, divergent_lines: int = 32) -> int:
        """Distinct cache lines touched when used as a byte address."""
        if self.is_uniform:
            return 1
        if self.is_affine:
            stride = abs(self.stride)
            span = stride * (WARP_WIDTH - 1)
            first = self.base // line_bytes
            last = (self.base + span) // line_bytes
            return int(last - first + 1)
        return max(1, min(WARP_WIDTH, divergent_lines))

    def line_addresses(self, line_bytes: int, divergent_lines: int = 32):
        """The distinct line-aligned addresses touched (deterministic)."""
        if self.is_uniform:
            return [self.base - self.base % line_bytes]
        if self.is_affine:
            n = self.coalesced_lines(line_bytes)
            first = self.base - self.base % line_bytes
            step = line_bytes if self.stride >= 0 else -line_bytes
            return [(first + step * i) & _MASK32 for i in range(n)]
        n = max(1, min(WARP_WIDTH, divergent_lines))
        return [
            (_mix(self.tag, i) * line_bytes) & _MASK32 for i in range(n)
        ]


#: Lane index vector (thread id within warp): 0, 1, 2, ... 31.
THREAD_ID = LaneValues.affine(0, 1)
ZERO = LaneValues.uniform(0)
