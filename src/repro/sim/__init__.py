"""Cycle-level GPU simulator: warps, schedulers, shards, SMs."""

from .config import GPUConfig
from .events import EventWheel
from .gpu import DEFAULT_MAX_CYCLES, GPU, SimDeadlock, SimStats, run_simulation
from .oracle import (
    AlwaysTaken,
    BernoulliLanes,
    BernoulliWarp,
    DivergentLoopExit,
    FULL_MASK,
    LoadBehavior,
    LoopExit,
    NeverTaken,
    Oracle,
    PredBehavior,
)
from .trace import RegionSpan, TraceEvent, Tracer
from .watchdog import (
    SimulationHang,
    Watchdog,
    WatchdogConfig,
    check_invariants,
    snapshot_diagnostics,
)
from .scheduler import (
    GTOScheduler,
    LRRScheduler,
    TwoLevelScheduler,
    WarpScheduler,
    make_scheduler,
)
from .values import LaneValues, THREAD_ID, ValueKind, ZERO, mix_hash
from .warp import StackEntry, Warp

__all__ = [
    "GPUConfig",
    "DEFAULT_MAX_CYCLES",
    "EventWheel",
    "GPU",
    "SimDeadlock",
    "SimulationHang",
    "SimStats",
    "Watchdog",
    "WatchdogConfig",
    "check_invariants",
    "snapshot_diagnostics",
    "run_simulation",
    "AlwaysTaken",
    "BernoulliLanes",
    "BernoulliWarp",
    "DivergentLoopExit",
    "FULL_MASK",
    "LoadBehavior",
    "LoopExit",
    "NeverTaken",
    "Oracle",
    "PredBehavior",
    "GTOScheduler",
    "LRRScheduler",
    "TwoLevelScheduler",
    "WarpScheduler",
    "make_scheduler",
    "LaneValues",
    "THREAD_ID",
    "ValueKind",
    "ZERO",
    "mix_hash",
    "StackEntry",
    "Warp",
    "RegionSpan",
    "TraceEvent",
    "Tracer",
]
