"""Functional execution of instructions over the lane-value domain.

:func:`compute_result` evaluates an ALU/SFU instruction's destination value;
control flow, predicates, and memory are handled by the shard (they need
timing and oracle context).

Because instructions are static, each one compiles — on first execution —
to a small closure (``insn.exec_plan``) with its operand fetches and opcode
dispatch resolved ahead of time: immediates become shared pre-built
:class:`LaneValues`, register reads become direct ``regs.get`` calls, and
the opcode ``if``-chain disappears entirely.  The simulator then executes
the same few hundred static instructions hundreds of thousands of times at
one indirect call each.

Plans are deduplicated *globally* by instruction content (``Instruction``
hashes over opcode/operands/guard/target/tag): two ``Instruction`` objects
spelling the same operation — the same kernel compiled in different worker
processes, or re-unpickled from the result cache — share one compiled plan
instead of recompiling per object.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Imm, Pred, Reg
from .values import LaneValues, ZERO
from .warp import Warp

__all__ = ["read_operand", "compute_result"]


def read_operand(warp: Warp, operand) -> LaneValues:
    if isinstance(operand, Reg):
        return warp.read_reg(operand)
    if isinstance(operand, Imm):
        return LaneValues.uniform(operand.value)
    if isinstance(operand, Pred):
        # Predicate as a data source (SEL): lanes are 0/1 — opaque structure.
        return LaneValues.random(warp.read_pred(operand) ^ 0xA5A5)
    raise TypeError(f"unreadable operand {operand!r}")


_SALTS = {
    Opcode.XOR: 0x10,
    Opcode.AND: 0x11,
    Opcode.OR: 0x12,
    Opcode.SHR: 0x13,
    Opcode.IMIN: 0x14,
    Opcode.IMAX: 0x15,
    Opcode.FMIN: 0x16,
    Opcode.FMAX: 0x17,
    Opcode.SEL: 0x18,
    Opcode.CVT: 0x19,
    Opcode.RCP: 0x20,
    Opcode.RSQ: 0x21,
    Opcode.SIN: 0x22,
    Opcode.EX2: 0x23,
    Opcode.LG2: 0x24,
    Opcode.FDIV: 0x25,
    Opcode.FADD: 0x26,
    Opcode.FMUL: 0x27,
    Opcode.FFMA: 0x28,
}

_Fetch = Callable[[Warp], LaneValues]
_Plan = Callable[[Warp], Optional[LaneValues]]


def _fetchers(insn: Instruction) -> List[_Fetch]:
    """One fetch closure per source operand, operand kind pre-dispatched."""
    fns: List[_Fetch] = []
    for s in insn.srcs:
        if type(s) is Reg:
            idx = s.index
            fns.append(lambda warp, _i=idx: warp.regs.get(_i, ZERO))
        elif type(s) is Imm:
            # Immutable by convention, so one shared instance is safe.
            const = LaneValues.uniform(s.value)
            fns.append(lambda warp, _c=const: _c)
        elif type(s) is Pred:
            fns.append(
                lambda warp, _p=s: LaneValues.random(
                    warp.read_pred(_p) ^ 0xA5A5
                )
            )
        else:
            raise TypeError(f"unreadable operand {s!r}")
    return fns


def _build_plan(insn: Instruction) -> _Plan:
    op = insn.opcode
    fs = _fetchers(insn)
    n = len(fs)
    f0 = fs[0] if n > 0 else (lambda warp: ZERO)
    f1 = fs[1] if n > 1 else (lambda warp: ZERO)
    f2 = fs[2] if n > 2 else (lambda warp: ZERO)

    if op is Opcode.MOV or op is Opcode.CVT:
        return f0
    if op is Opcode.IADD:
        return lambda warp: f0(warp).add(f1(warp))
    if op is Opcode.FADD:
        # Float adds preserve affine structure only while every lane stays
        # inside the float32-exact integer range; LaneValues.float_add holds
        # the explicit degrade-to-RANDOM rule.
        return lambda warp: f0(warp).float_add(f1(warp))
    if op is Opcode.ISUB:
        return lambda warp: f0(warp).sub(f1(warp))
    if op is Opcode.IMUL or op is Opcode.FMUL:
        return lambda warp: f0(warp).mul(f1(warp))
    if op is Opcode.IMAD:
        return lambda warp: f0(warp).mul(f1(warp)).add(f2(warp))
    if op is Opcode.FFMA:
        return lambda warp: f0(warp).mul(f1(warp)).float_add(f2(warp))
    if op is Opcode.SHL:
        return lambda warp: f0(warp).shl(f1(warp))
    salt = _SALTS.get(op, 0x3F)
    if n <= 1:
        return lambda warp: f0(warp).opaque(salt=salt)
    if n == 2:
        return lambda warp: f0(warp).opaque(f1(warp), salt=salt)
    rest = fs[1:]
    def chain(warp: Warp) -> LaneValues:
        result = f0(warp)
        for f in rest:
            result = result.opaque(f(warp), salt=salt)
        return result
    return chain


# Content-keyed plan store: ``Instruction`` hashes/compares over its static
# fields only, so equal instructions from different kernels (or different
# unpicklings of the same kernel) land on one plan.  The cap is a leak guard
# for pathological generators, far above any real program's footprint.
_PLAN_CACHE: Dict[Instruction, _Plan] = {}
_PLAN_CACHE_MAX = 8192


def _plan_for(insn: Instruction) -> _Plan:
    plan = _PLAN_CACHE.get(insn)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
        plan = _build_plan(insn)
        _PLAN_CACHE[insn] = plan
    object.__setattr__(insn, "exec_plan", plan)  # frozen: cache slot
    return plan


def compute_result(warp: Warp, insn: Instruction) -> Optional[LaneValues]:
    """Destination value for a (non-memory, non-control) instruction."""
    plan = insn.exec_plan
    if plan is None:
        plan = _plan_for(insn)
    return plan(warp)
