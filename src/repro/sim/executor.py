"""Functional execution of instructions over the lane-value domain.

:func:`compute_result` evaluates an ALU/SFU instruction's destination value;
control flow, predicates, and memory are handled by the shard (they need
timing and oracle context).
"""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..isa.registers import Imm, Pred, Reg
from .values import LaneValues, ZERO
from .warp import Warp

__all__ = ["read_operand", "compute_result"]


def read_operand(warp: Warp, operand) -> LaneValues:
    if isinstance(operand, Reg):
        return warp.read_reg(operand)
    if isinstance(operand, Imm):
        return LaneValues.uniform(operand.value)
    if isinstance(operand, Pred):
        # Predicate as a data source (SEL): lanes are 0/1 — opaque structure.
        return LaneValues.random(warp.read_pred(operand) ^ 0xA5A5)
    raise TypeError(f"unreadable operand {operand!r}")


_SALTS = {
    Opcode.XOR: 0x10,
    Opcode.AND: 0x11,
    Opcode.OR: 0x12,
    Opcode.SHR: 0x13,
    Opcode.IMIN: 0x14,
    Opcode.IMAX: 0x15,
    Opcode.FMIN: 0x16,
    Opcode.FMAX: 0x17,
    Opcode.SEL: 0x18,
    Opcode.CVT: 0x19,
    Opcode.RCP: 0x20,
    Opcode.RSQ: 0x21,
    Opcode.SIN: 0x22,
    Opcode.EX2: 0x23,
    Opcode.LG2: 0x24,
    Opcode.FDIV: 0x25,
    Opcode.FADD: 0x26,
    Opcode.FMUL: 0x27,
    Opcode.FFMA: 0x28,
}


def compute_result(warp: Warp, insn: Instruction) -> Optional[LaneValues]:
    """Destination value for a (non-memory, non-control) instruction."""
    op = insn.opcode
    srcs = [read_operand(warp, s) for s in insn.srcs]
    a = srcs[0] if srcs else ZERO
    b = srcs[1] if len(srcs) > 1 else ZERO
    c = srcs[2] if len(srcs) > 2 else ZERO

    if op is Opcode.MOV or op is Opcode.CVT:
        return a
    if op is Opcode.IADD:
        return a.add(b)
    if op is Opcode.ISUB:
        return a.sub(b)
    if op is Opcode.IMUL:
        return a.mul(b)
    if op is Opcode.IMAD:
        return a.mul(b).add(c)
    if op is Opcode.SHL:
        return a.shl(b)
    if op is Opcode.FADD:
        # Float adds keep integer-affine structure only approximately; treat
        # as structure-preserving like IADD (compression sees raw bits of
        # counters/addresses most often).
        return a.add(b)
    if op is Opcode.FMUL:
        return a.mul(b)
    if op is Opcode.FFMA:
        return a.mul(b).add(c)
    salt = _SALTS.get(op, 0x3F)
    if len(srcs) <= 1:
        return a.opaque(salt=salt)
    result = a
    for s in srcs[1:]:
        result = result.opaque(s, salt=salt)
    return result
