"""Forward-progress watchdog and invariant sanitizer for the simulator.

RegLess's capacity manager must guarantee forward progress (the paper
reserves MRU warp entries precisely so admission can never deadlock,
section 4.3) — but a *buggy* backend, scheduler, or wake path can
livelock the simulator in ways the event loop cannot see: a CM that
never admits, a ``notify_wake`` that never fires, a storage that reports
background work forever and defeats the dead-cycle fast-forward.  The
watchdog turns those silent hangs into a structured
:class:`SimulationHang` carrying the full state a human (or CI log)
needs to diagnose them:

* the stall-attribution snapshot (which bins the warps are stuck in),
* per-shard ready/parked sets and the pending wake heap,
* the capacity manager's blocked-candidate memo and per-state counts.

Three trip conditions, all cheap enough to leave on by default in test
harnesses (the run loop polls every ``check_interval`` iterations, so
the steady-state overhead is a couple of integer ops per cycle):

``no_progress``   the simulated clock advanced ``no_progress_cycles``
                  cycles without a single instruction issuing anywhere
                  (the no-retirement window);
``wall_clock``    the run exceeded ``max_wall_seconds`` of host time;
``cycle_ceiling`` the run exceeded the watchdog's own ``max_cycles``.

The **invariant sanitizer** (:func:`check_invariants`) is opt-in
(``WatchdogConfig(invariants=True)``): at every poll it cross-checks the
event-driven issue core's redundant state — ready/parked disjointness,
scoreboard consistency, OSU capacity conservation — and trips with
reason ``invariant`` on the first violation.  It is pure observation:
a clean run with the sanitizer enabled produces bit-identical
:class:`~repro.sim.gpu.SimStats`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .gpu import GPU

__all__ = [
    "SimDeadlock",
    "SimulationHang",
    "Watchdog",
    "WatchdogConfig",
    "check_invariants",
    "snapshot_diagnostics",
]


class SimDeadlock(RuntimeError):
    """No warp can ever make progress again."""


class SimulationHang(SimDeadlock):
    """A watchdog trip: the simulation stopped making forward progress.

    ``diagnostics`` is the JSON-serializable state snapshot from
    :func:`snapshot_diagnostics`; ``reason`` is one of ``no_progress``,
    ``wall_clock``, ``cycle_ceiling``, ``invariant`` or ``wheel_empty``.
    """

    def __init__(self, reason: str, cycle: int = 0,
                 wall_seconds: float = 0.0,
                 diagnostics: Optional[Dict[str, object]] = None,
                 detail: str = ""):
        self.reason = reason
        self.cycle = cycle
        self.wall_seconds = wall_seconds
        self.diagnostics = diagnostics or {}
        self.detail = detail
        headline = f"simulation hang ({reason}) at cycle {cycle}"
        if detail:
            headline = f"{headline}: {detail}"
        super().__init__(headline)

    def __reduce__(self):
        # Exceptions pickle by re-calling ``cls(*args)``; preserve the
        # structured fields across the worker-process boundary.
        return (
            SimulationHang,
            (self.reason, self.cycle, self.wall_seconds,
             self.diagnostics, self.detail),
        )


@dataclass(frozen=True)
class WatchdogConfig:
    """Knobs of the forward-progress monitor (see docs/robustness.md)."""

    #: absolute simulated-cycle ceiling enforced by the watchdog (raises,
    #: unlike ``GPUConfig.max_cycles`` which stops and returns).
    max_cycles: Optional[int] = None
    #: host wall-clock budget for one run.
    max_wall_seconds: Optional[float] = None
    #: trip when this many simulated cycles pass without any instruction
    #: issuing anywhere on the GPU (the no-retirement window).
    no_progress_cycles: int = 200_000
    #: poll every N run-loop iterations (cycles or fast-forward jumps).
    check_interval: int = 4096
    #: run :func:`check_invariants` at every poll.
    invariants: bool = False


class Watchdog:
    """Cheap forward-progress monitor hooked into ``GPU.run``.

    One instance per run.  ``clock`` is injectable for deterministic
    wall-clock tests.  ``polls`` / ``trips`` are observable afterwards;
    a clean run ends with ``trips == 0`` (a trip raises, so a returned
    ``SimStats`` implies zero trips).
    """

    def __init__(self, config: Optional[WatchdogConfig] = None,
                 clock: Callable[[], float] = time.perf_counter):
        self.config = config or WatchdogConfig()
        self._clock = clock
        self.polls = 0
        self.trips = 0
        self._start_wall = 0.0
        self._last_instructions = -1
        self._progress_cycle = 0

    def start(self, gpu: "GPU") -> None:
        self._start_wall = self._clock()
        self._last_instructions = -1
        self._progress_cycle = 0

    def wall_seconds(self) -> float:
        return self._clock() - self._start_wall

    def poll(self, gpu: "GPU", now: int, instructions: int) -> None:
        """Check every trip condition; raises :class:`SimulationHang`."""
        self.polls += 1
        cfg = self.config
        if instructions != self._last_instructions:
            self._last_instructions = instructions
            self._progress_cycle = now
        elif now - self._progress_cycle >= cfg.no_progress_cycles:
            self._trip(
                gpu, "no_progress", now,
                f"no instruction issued for {now - self._progress_cycle} "
                f"cycles (window {cfg.no_progress_cycles})",
            )
        if cfg.max_cycles is not None and now >= cfg.max_cycles:
            self._trip(gpu, "cycle_ceiling", now,
                       f"exceeded watchdog max_cycles={cfg.max_cycles}")
        if cfg.max_wall_seconds is not None:
            wall = self.wall_seconds()
            if wall >= cfg.max_wall_seconds:
                self._trip(
                    gpu, "wall_clock", now,
                    f"{wall:.2f}s wall-clock exceeds "
                    f"max_wall_seconds={cfg.max_wall_seconds}",
                )
        if cfg.invariants:
            problems = check_invariants(gpu)
            if problems:
                self._trip(gpu, "invariant", now, "; ".join(problems[:4]))

    def _trip(self, gpu: "GPU", reason: str, now: int, detail: str) -> None:
        self.trips += 1
        diag = snapshot_diagnostics(gpu)
        summary = _hang_summary(diag)
        if summary:
            detail = f"{detail} [{summary}]"
        raise SimulationHang(
            reason, cycle=now, wall_seconds=self.wall_seconds(),
            diagnostics=diag, detail=detail,
        )


# -- diagnostics --------------------------------------------------------------


def _json_num(value):
    """inf/-inf (the CM's _NEVER sentinels) are not JSON; map to None."""
    if isinstance(value, float) and (value != value or value in
                                     (float("inf"), float("-inf"))):
        return None
    return value


def _cm_snapshot(cm) -> Dict[str, object]:
    """The capacity manager's admission state, including the
    blocked-candidate memo (why admission is not being retried)."""
    states: Dict[str, int] = {}
    for ctx in cm.ctx.values():
        key = ctx.state.value
        states[key] = states.get(key, 0) + 1
    return {
        "stack": list(cm.stack),
        "reserved": list(cm.reserved),
        "states": states,
        "preloading": cm._preloading_count,
        "stall_cycles": cm._stall_cycles,
        "memo_blocked": cm._memo_blocked,
        "accrued_to": _json_num(cm._accrued_to),
        "aging_at": _json_num(cm._aging_at),
        "emergency_at": _json_num(cm._emergency_at),
    }


def snapshot_diagnostics(gpu: "GPU") -> Dict[str, object]:
    """A JSON-serializable snapshot of everything hang-relevant: per-shard
    parked sets and wake heaps, the CM blocked-candidate memo, and the
    stall-attribution bins accumulated so far."""
    wheel = gpu.wheel
    shards = []
    merged_stalls: Dict[str, int] = {}
    for sm in gpu.sms:
        for shard in sm.shards:
            parked: Dict[str, List[int]] = {}
            for warp in shard.warps:
                if not warp.ready and warp.park_bin is not None:
                    parked.setdefault(warp.park_bin, []).append(warp.wid)
            dominant = max(parked, key=lambda b: len(parked[b]), default=None)
            entry: Dict[str, object] = {
                "sm": sm.sm_id,
                "shard": shard.shard_id,
                "storage": shard.storage.name,
                "storage_idle": bool(shard.storage.idle),
                "ready": sorted(w.wid for w in shard._ready),
                "parked": {b: sorted(v) for b, v in parked.items()},
                "dominant_stall": dominant,
                "wake_heap": [
                    [t, wid] for t, wid, _ in sorted(shard._wake_heap)[:8]
                ],
                "wake_heap_depth": len(shard._wake_heap),
            }
            tracker = shard.stalls
            if tracker is not None:
                bins = dict(tracker.bins)
                entry["stall_bins"] = bins
                for reason, count in bins.items():
                    merged_stalls[reason] = merged_stalls.get(reason, 0) + count
            cm = getattr(shard.storage, "cm", None)
            if cm is not None:
                entry["cm"] = _cm_snapshot(cm)
            shards.append(entry)
    dominant = None
    candidates = [s for s in shards if s["dominant_stall"] is not None]
    if candidates:
        worst = max(
            candidates,
            key=lambda s: sum(len(v) for v in s["parked"].values()),
        )
        dominant = {
            "sm": worst["sm"],
            "shard": worst["shard"],
            "stall": worst["dominant_stall"],
        }
    return {
        "cycle": wheel.now,
        "pending_events": wheel.pending_events,
        "next_event_cycle": wheel.next_event_cycle(),
        "warps_done": gpu.warps_done_total,
        "warps_total": sum(len(sm.warps) for sm in gpu.sms),
        "hierarchy_pending": gpu.hierarchy.pending_total,
        "dominant": dominant,
        "stalls": merged_stalls,
        "shards": shards,
    }


def _hang_summary(diag: Dict[str, object]) -> str:
    dom = diag.get("dominant")
    if not dom:
        return ""
    return (f"sm{dom['sm']}.shard{dom['shard']} dominated by "
            f"'{dom['stall']}'")


# -- invariant sanitizer ------------------------------------------------------


def check_invariants(gpu: "GPU") -> List[str]:
    """Cross-check the issue core's redundant state; returns violation
    descriptions (empty on a healthy GPU).  Pure observation — safe to
    call between any two cycles."""
    problems: List[str] = []
    for sm in gpu.sms:
        for shard in sm.shards:
            tag = f"sm{sm.sm_id}.shard{shard.shard_id}"
            ready = shard._ready
            n_parked = 0
            for warp in shard.warps:
                in_set = warp in ready
                if warp.ready != in_set:
                    problems.append(
                        f"{tag}: warp {warp.wid} ready flag "
                        f"{warp.ready} != set membership {in_set}"
                    )
                if warp.ready:
                    if warp.park_bin is not None:
                        problems.append(
                            f"{tag}: ready warp {warp.wid} still carries "
                            f"park_bin {warp.park_bin!r}"
                        )
                else:
                    n_parked += 1
                    if warp.park_bin is None:
                        problems.append(
                            f"{tag}: parked warp {warp.wid} has no park_bin"
                        )
                # Scoreboard consistency: in-flight write-backs and the
                # pending maps must agree.
                if warp.inflight < 0:
                    problems.append(
                        f"{tag}: warp {warp.wid} negative inflight "
                        f"{warp.inflight}"
                    )
                if warp.inflight == 0 and (warp.pending_regs
                                           or warp.pending_preds):
                    problems.append(
                        f"{tag}: warp {warp.wid} has pending writes with "
                        f"inflight == 0"
                    )
                for reg in warp.pending_loads:
                    if reg not in warp.pending_regs:
                        problems.append(
                            f"{tag}: warp {warp.wid} pending load r{reg} "
                            f"missing from scoreboard"
                        )
            histo = sum(shard._parked_bins.values())
            if histo != n_parked:
                problems.append(
                    f"{tag}: parked histogram {histo} != parked warps "
                    f"{n_parked}"
                )
            problems.extend(_check_storage_invariants(tag, shard.storage))
    return problems


def _check_storage_invariants(tag: str, storage) -> List[str]:
    """OSU capacity conservation for RegLess backends (duck-typed so the
    sanitizer works on any storage without importing repro.regless)."""
    problems: List[str] = []
    cm = getattr(storage, "cm", None)
    osu = getattr(storage, "osu", None)
    if cm is None or osu is None:
        return problems
    expect = [0] * len(cm.reserved)
    for wid, ctx in cm.ctx.items():
        if ctx.reserved is not None:
            for b, need in enumerate(ctx.reserved):
                expect[b] += need
    if expect != list(cm.reserved):
        problems.append(
            f"{tag}: CM reservation totals {cm.reserved} != per-warp sum "
            f"{expect}"
        )
    for b, reserved in enumerate(cm.reserved):
        if reserved < 0:
            problems.append(f"{tag}: CM bank {b} negative reservation "
                            f"{reserved}")
    for b, bank in enumerate(osu.banks):
        active = len(bank.tags) - len(bank.clean) - len(bank.dirty)
        if active < 0:
            problems.append(
                f"{tag}: OSU bank {b} has more clean+dirty entries "
                f"({len(bank.clean)}+{len(bank.dirty)}) than tags "
                f"({len(bank.tags)})"
            )
        for key in bank.clean:
            if key not in bank.tags:
                problems.append(f"{tag}: OSU bank {b} clean key {key} "
                                f"missing tag")
        for key in bank.dirty:
            if key not in bank.tags:
                problems.append(f"{tag}: OSU bank {b} dirty key {key} "
                                f"missing tag")
    return problems
