"""Top-level GPU simulation: SMs, shared memory hierarchy, run loop.

:class:`GPU` ties together the compiled kernel, the workload oracles, the
SMs and the L2/DRAM model, then runs cycle-by-cycle until every warp exits.
A fast-forward optimization skips dead cycles (nothing issuable, no
background work) straight to the next scheduled event, which speeds up
memory-latency-bound phases dramatically without changing results.
"""

from __future__ import annotations

import gc

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from typing import TYPE_CHECKING

from ..compiler.pipeline import CompiledKernel
from ..energy.accounting import Counters
from ..mem.hierarchy import MemoryHierarchy
from ..obs.metrics import MetricsRegistry
from ..obs.stalls import check_conservation, merge_stalls
from .config import GPUConfig
from .events import EventWheel
from .sm import SM
from .watchdog import SimDeadlock, SimulationHang, Watchdog, snapshot_diagnostics

if TYPE_CHECKING:  # pragma: no cover
    from ..regfile.base import OperandStorage
    from ..workloads.base import Workload

__all__ = ["DEFAULT_MAX_CYCLES", "GPU", "SimStats", "SimDeadlock",
           "run_simulation"]

#: Hard safety ceiling applied when the config's ``max_cycles`` is unset
#: (``None`` or <= 0): no workload may spin the event wheel forever, even
#: with the watchdog disabled.  Hitting any ceiling ends the run with
#: ``finished=False`` and a ``cycle_ceiling`` counter instead of hanging.
DEFAULT_MAX_CYCLES = 10_000_000


@dataclass
class SimStats:
    """Results of one simulation run."""

    cycles: int
    instructions: int
    warps_done: int
    warps_total: int
    counters: Dict[str, float]
    finished: bool
    #: distinct (warp, reg) count per working-set window (Figure 2).
    working_set_samples: List[int] = field(default_factory=list)
    #: per-window deltas of selected counters (Figure 3 time series).
    window_series: Dict[str, List[float]] = field(default_factory=dict)
    #: stall attribution, reason -> warp-cycles, summed over all shards
    #: (includes ``issued``; conserves ``warps x cycles``).
    stalls: Dict[str, int] = field(default_factory=dict)
    #: per-shard stall reports: ``{"sm", "shard", "warps", "cycles",
    #: "bins", "occupancy"}`` (see :mod:`repro.obs.stalls`).
    stall_shards: List[Dict[str, object]] = field(default_factory=list)
    #: hierarchical metrics snapshot (``sm0.shard1.cm.region_activations``
    #: style paths; see :mod:`repro.obs.metrics`).
    metrics: Dict[str, float] = field(default_factory=dict)

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0.0)

    def working_set_kb(self) -> float:
        """Mean register working set per window, in KB (128 B per register)."""
        if not self.working_set_samples:
            return 0.0
        mean = sum(self.working_set_samples) / len(self.working_set_samples)
        return mean * 128 / 1024


class GPU:
    """The simulated GPU."""

    def __init__(
        self,
        config: GPUConfig,
        compiled: CompiledKernel,
        workload: "Workload",
        storage_factory: Callable[[int, int], "OperandStorage"],
        watchdog: Optional[Watchdog] = None,
    ):
        self.config = config
        #: optional forward-progress monitor (repro.sim.watchdog); polled
        #: every ``watchdog.config.check_interval`` run-loop iterations.
        self.watchdog = watchdog
        self.compiled = compiled
        self.workload = workload
        self.oracle = workload.oracle()
        self.divergent_lines = workload.divergent_lines
        self.counters = Counters()
        #: hierarchical metrics registry; component scopes mirror every
        #: increment into the flat legacy ``counters`` (repro.obs.metrics).
        self.metrics = MetricsRegistry(self.counters)
        self.wheel = EventWheel()
        self.hierarchy = MemoryHierarchy(config, self.counters, self.wheel)
        self.working_set: Set[Tuple[int, int]] = set()
        #: warps that have exited, across all SMs (bumped by
        #: :meth:`SM.notify_warp_done`; lets the run loop test completion
        #: with one comparison instead of scanning every warp each cycle).
        self.warps_done_total = 0
        self.sms = [
            SM(self, sm_id, lambda shard_id, _sm=sm_id: storage_factory(_sm, shard_id))
            for sm_id in range(config.n_sms)
        ]
        self._storages = [
            shard.storage for sm in self.sms for shard in sm.shards
        ]

    # -- run loop -----------------------------------------------------------------

    def run(self, window_series: Sequence[str] = (),
            max_cycles: Optional[int] = None) -> SimStats:
        # Arm the region JIT first (specialized per-pc issue steps; see
        # repro.sim.regionjit).  Arming inspects instance-level overrides,
        # so anything a tracer/fault wedge installed before run() is seen;
        # per-shard incompatibilities fall back to the interpreter.  The
        # simulated results are bit-identical either way.
        from . import regionjit

        regionjit.arm_gpu(self)
        # The cycle loop allocates heavily (writeback continuations, scan
        # snapshots, per-cycle bin dicts) but almost everything dies by
        # refcount; generational GC only adds full-heap scans to the hot
        # loop.  Pause it for the run, restore on the way out.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            return self._run(window_series, max_cycles)
        finally:
            if gc_was_enabled:
                gc.enable()

    def _run(self, window_series: Sequence[str] = (),
             max_cycles: Optional[int] = None) -> SimStats:
        # The loop body runs once per simulated cycle; everything it touches
        # repeatedly is bound to a local first.
        cfg = self.config
        wheel = self.wheel
        sms = self.sms
        # Pre-bound SM pumps (resolved once, not per cycle).  Bound at run
        # start so instance-level wrappers installed beforehand (e.g.
        # harness.inspect.StateSampler) are honored.
        sm_cycles = [sm.cycle for sm in sms]
        hierarchy = self.hierarchy
        storages = self._storages
        counters = self.counters
        working_set = self.working_set
        warps_total = sum(len(sm.warps) for sm in sms)
        if max_cycles is None:
            max_cycles = cfg.max_cycles
        if not max_cycles or max_cycles <= 0:
            # Safety ceiling: a config that disables the limit must still
            # terminate eventually (satisfied by the watchdog long before
            # this in monitored runs).
            max_cycles = DEFAULT_MAX_CYCLES
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.start(self)
            wd_every = watchdog.config.check_interval
            wd_left = wd_every
        fast_forward = cfg.fast_forward
        track_ws = cfg.track_working_set
        instructions = 0
        ws_samples: List[int] = []
        series: Dict[str, List[float]] = {name: [] for name in window_series}
        last_counter_vals = {name: 0.0 for name in window_series}
        window = cfg.working_set_window
        next_window = window
        idle_cycles = 0
        #: pump cycles elided while the hierarchy had no queued request;
        #: credited (closed-form token regeneration) before its next pump.
        hierarchy_idle = 0

        def sample_window() -> None:
            # Window sampling (Figures 2 and 3); shared by the normal and
            # fast-forward paths.
            nonlocal next_window
            if track_ws:
                ws_samples.append(len(working_set))
                working_set.clear()
            for name in window_series:
                value = counters.get(name)
                series[name].append(value - last_counter_vals[name])
                last_counter_vals[name] = value
            next_window += window

        while wheel.now < max_cycles:
            if (
                self.warps_done_total >= warps_total
                and not self._work_outstanding()
            ):
                break
            if watchdog is not None:
                wd_left -= 1
                if wd_left <= 0:
                    wd_left = wd_every
                    watchdog.poll(self, wheel.now, instructions)

            wheel.tick()
            # Demand-clocked pump: with no queued request the hierarchy can
            # only regenerate tokens, which accrues in closed form — bank
            # the cycle instead of calling in.
            if hierarchy.pending_total:
                if hierarchy_idle:
                    hierarchy.credit_idle(hierarchy_idle)
                    hierarchy_idle = 0
                hierarchy.cycle()
            else:
                hierarchy_idle += 1
            issued = 0
            for sm_cycle in sm_cycles:
                issued += sm_cycle()
            instructions += issued

            if wheel.now >= next_window:
                sample_window()

            if issued or hierarchy.pending_total or not all(st.idle for st in storages):
                idle_cycles = 0
                continue

            # Dead cycle: nothing issued and no background pump has work.
            # Shard-local wake heaps (pipeline-stall expiries; see
            # repro.sim.shard) are deliberately invisible here: a wake due
            # mid-skip is popped at the first simulated cycle after the
            # skip — exactly when the seed's scan-everything loop, which
            # also never simulated skipped cycles, would first have
            # re-attempted the warp.  Routing those wakes through the
            # wheel instead would shrink skip spans and change simulated
            # attempt counts (e.g. RFV's emergency valve).
            if fast_forward:
                nxt = wheel.next_event_cycle()
                if nxt is None:
                    idle_cycles += 1
                    if idle_cycles > 10_000:
                        self._raise_deadlock()
                else:
                    # Fast-forward straight to the next scheduled event:
                    # an O(1) bulk jump — every bucket in the span is empty
                    # by construction, so ticking through them one by one
                    # observed nothing.
                    idle_cycles = 0
                    skip_to = min(nxt - 1, max_cycles)
                    skipped = skip_to - wheel.now
                    if skipped > 0:
                        wheel.skip_to(skip_to)
                        # Window boundaries inside the span sample the same
                        # (unchanged) state the per-tick loop saw: the first
                        # takes the real deltas, the rest read zeros.
                        while next_window <= wheel.now:
                            sample_window()
                        # Skipped cycles replay the dead cycle's stall
                        # bins (no state changes while time jumps over
                        # empty buckets), keeping the attribution
                        # conservative over the full cycle count.
                        for sm in sms:
                            sm.account_skipped(skipped)
            elif wheel.pending_events == 0:
                idle_cycles += 1
                if idle_cycles > 10_000:
                    self._raise_deadlock()
            else:
                idle_cycles = 0

        for sm in self.sms:
            for shard in sm.shards:
                shard.storage.finalize()

        finished = all(sm.done for sm in self.sms)
        if not finished and wheel.now >= max_cycles:
            # The safety ceiling (not natural completion) ended the run;
            # make that visible in counters instead of failing silently.
            self.counters.inc("cycle_ceiling")

        stall_reports, stalls = self._collect_stalls(wheel.now)
        warps_done = sum(sm.warps_done for sm in self.sms)
        warps_total = sum(len(sm.warps) for sm in self.sms)
        return SimStats(
            cycles=wheel.now,
            instructions=instructions,
            warps_done=warps_done,
            warps_total=warps_total,
            counters=self.counters.as_dict(),
            finished=finished,
            working_set_samples=ws_samples,
            window_series=series,
            stalls=stalls,
            stall_shards=stall_reports,
            metrics=self.metrics.as_dict(),
        )

    def _collect_stalls(self, cycles: int):
        """Gather per-shard stall reports; every one must be conservative
        (attributed warp-cycles == warps x cycles)."""
        reports = []
        for sm in self.sms:
            for shard in sm.shards:
                tracker = shard.stalls
                if tracker is None:
                    continue
                report = tracker.report(sm.sm_id, shard.shard_id)
                check_conservation(report)
                assert report["cycles"] == cycles, (
                    f"shard {sm.sm_id}.{shard.shard_id} accounted "
                    f"{report['cycles']} cycles, simulation ran {cycles}"
                )
                reports.append(report)
                scope = self.metrics.scope(
                    f"sm{sm.sm_id}.shard{shard.shard_id}.stall"
                )
                for reason, count in report["bins"].items():
                    self.metrics.inc(f"{scope.path}.{reason}", count)
        return reports, merge_stalls(reports)

    def collect_jit(self) -> Dict[str, object]:
        """Flat ``sm{i}.shard{j}.jit.*`` observability paths for the region
        JIT (armed/fallback reasons, compile time, issue counters).  Kept
        out of :class:`SimStats` so wall-clock-dependent values never enter
        the bit-identity contract."""
        from . import regionjit

        return regionjit.collect_jit(self)

    def collect_batch(self) -> Dict[str, object]:
        """Flat ``sm{i}.shard{j}.batch.*`` observability paths for cohort
        batching (armed/fallback reasons, cohort size histogram, batched
        vs scalar accounting counts).  Same contract as
        :meth:`collect_jit`: never part of :class:`SimStats`."""
        from . import warpbatch

        return warpbatch.collect_batch(self)

    def _work_outstanding(self) -> bool:
        return (
            self.wheel.pending_events > 0
            or self.hierarchy.busy
            or not all(st.idle for st in self._storages)
        )

    def _raise_deadlock(self) -> None:
        stuck = []
        for sm in self.sms:
            for w in sm.warps:
                if not w.exited:
                    stuck.append(
                        f"warp {w.wid}: pc={w.pc} barrier={w.at_barrier} "
                        f"inflight={w.inflight}"
                    )
        detail = "; ".join(stuck[:8])
        watchdog = self.watchdog
        if watchdog is not None:
            watchdog.trips += 1
        raise SimulationHang(
            "wheel_empty",
            cycle=self.wheel.now,
            wall_seconds=watchdog.wall_seconds() if watchdog else 0.0,
            diagnostics=snapshot_diagnostics(self),
            detail=f"no progress possible; stuck warps: {detail}",
        )


def run_simulation(
    config: GPUConfig,
    compiled: CompiledKernel,
    workload: "Workload",
    storage_factory: Callable[[int, int], "OperandStorage"],
    window_series: Sequence[str] = (),
    watchdog: Optional[Watchdog] = None,
    max_cycles: Optional[int] = None,
    jit_out: Optional[Dict[str, object]] = None,
    batch_out: Optional[Dict[str, object]] = None,
) -> SimStats:
    """Convenience wrapper: build a GPU and run it.

    ``watchdog`` attaches a forward-progress monitor
    (:mod:`repro.sim.watchdog`); ``max_cycles`` overrides the config's
    safety ceiling for this run only.  Either way the run is bounded: a
    config with no ceiling falls back to :data:`DEFAULT_MAX_CYCLES`.
    ``jit_out`` / ``batch_out``, when given, receive the region-JIT and
    cohort-batching observability paths (:meth:`GPU.collect_jit` /
    :meth:`GPU.collect_batch`) after the run.
    """
    gpu = GPU(config, compiled, workload, storage_factory, watchdog=watchdog)
    stats = gpu.run(window_series=window_series, max_cycles=max_cycles)
    if jit_out is not None:
        jit_out.update(gpu.collect_jit())
    if batch_out is not None:
        batch_out.update(gpu.collect_batch())
    return stats
