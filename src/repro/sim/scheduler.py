"""Warp schedulers: GTO (baseline), loose round-robin, two-level.

The schedulers are *incremental* over the shard's ready set: the shard
parks warps that block (see :mod:`repro.sim.shard`) and tells the
scheduler via ``notify_ready``/``notify_blocked``, so a cycle's issue scan
touches only warps that might actually issue instead of re-discovering
every cycle that stalled warps are still stalled.  Each cycle the shard
asks for a scan object (:meth:`WarpScheduler.begin_scan`) and pulls
candidates until the issue budget is spent.

Bit-identity contract: the candidate sequence must match what the seed
per-cycle generators produced (``tests/sim/naive_schedulers.py`` keeps
them as executable references), including their mid-scan quirks —

* GTO yields the greedy warp first, then the least-recently-issued order,
  re-checking ``is not greedy`` at each step, so a mid-scan greedy handoff
  lets the *old* greedy come up again at its sorted position;
* LRR reads the ring cursor at each step, so an issue mid-scan rebases the
  ring (warps can be skipped or repeated within one cycle);
* two-level promotes into exit-freed slots only at the next cycle start,
  which delays the promotion penalty by one cycle relative to the exit.

Parked warps are simply absent from a scan: the seed generators yielded
them and the shard's issue test failed without side effects, so skipping
them cannot change simulated results.  The one storage whose issue test
*has* side effects (RFV's emergency valve) opts out of parking entirely
(``OperandStorage.parkable``), so its warps stay in the ready set and are
attempted every cycle exactly as before.

The two-level scheduler (Gebhart et al. [9], used by the RFH comparison
and by Figure 2) keeps a small active pool and demotes warps that stall on
memory; a promoted warp pays a pipeline refill penalty — one reason GTO
outperforms two-level schedulers [56].
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Iterable, List, Optional

from .warp import Warp

__all__ = [
    "WarpScheduler",
    "GTOScheduler",
    "LRRScheduler",
    "TwoLevelScheduler",
    "make_scheduler",
]


class WarpScheduler:
    """Base interface.

    ``order``/``notify_issue``/``notify_long_stall``/``eligible`` are the
    seed API (still used by tests and the fallback scan); the event-driven
    shard additionally drives ``begin_cycle``/``begin_scan`` and the
    ``notify_ready``/``notify_blocked``/``notify_exit`` bookkeeping hooks.
    """

    #: True if ``notify_long_stall`` has an observable effect (two-level
    #: demotion).  The shard must then keep selectable warps in the ready
    #: set even when event-blocked, so the demotion fires at the exact
    #: issue attempt the seed scan would have made.
    demotes = False

    #: True if ready-warp state is event-stable under this scheduler: it
    #: never raises ``stall_until`` or otherwise reclassifies a ready warp
    #: outside that warp's own events.  Cross-warp lockstep batching
    #: (repro.sim.warpbatch) requires this; two-level demotion breaks it.
    lockstep_safe = True

    def __init__(self, warps: List[Warp]):
        self.warps = warps
        for i, w in enumerate(warps):
            w.slot = i
        #: set by the shard: called with each warp promoted out of a
        #: pending pool (the warp's ``stall_until`` was raised and its
        #: recorded stall bin must be re-derived).
        self.on_promote: Optional[Callable[[Warp], None]] = None

    # -- seed API -------------------------------------------------------------

    def order(self, cycle: int) -> Iterable[Warp]:
        raise NotImplementedError

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        """A warp issued this cycle."""

    def notify_long_stall(self, warp: Warp) -> None:
        """A warp blocked on a long-latency (memory) operation."""

    def eligible(self, warp: Warp) -> bool:
        """Is the warp in the scheduler's selectable set this cycle?

        Single-level schedulers consider every warp; the two-level
        scheduler only its active pool.  Stall attribution uses this to
        split ``demoted`` (ready but parked in the pending pool) from
        ``issue_width`` (ready and selectable, but the budget ran out).
        """
        return True

    # -- event-driven API -----------------------------------------------------

    @property
    def quiescent(self) -> bool:
        """True when :meth:`begin_cycle` would be a no-op, so the shard's
        idle fast path may skip it (demand clocking).  Schedulers with
        deferred per-cycle maintenance (two-level purge-and-promote)
        return False while it is pending."""
        return True

    def begin_cycle(self, cycle: int) -> None:
        """Per-cycle state update before wake-ups and the issue scan."""

    def begin_scan(self, cycle: int) -> "_Scan":
        """Start this cycle's candidate scan (default: wrap ``order``)."""
        return _FallbackScan(list(self.order(cycle)))

    def notify_ready(self, warp: Warp) -> None:
        """The shard re-inserted ``warp`` into the ready set."""

    def notify_blocked(self, warp: Warp) -> None:
        """The shard parked ``warp`` (it left the ready set)."""

    def notify_exit(self, warp: Warp) -> None:
        """``warp`` exited (parked terminally)."""


class _Scan:
    """One cycle's candidate stream; ``next_candidate`` returns ``None``
    when exhausted.  ``on_wake`` is called when a warp becomes ready
    mid-scan (barrier release, CTA admission on a warp exit) and must make
    it a candidate iff the seed generator would still have yielded it."""

    __slots__ = ()

    def next_candidate(self) -> Optional[Warp]:
        raise NotImplementedError

    def on_wake(self, warp: Warp) -> None:
        pass


class _FallbackScan(_Scan):
    """Scan over a materialized ``order`` list (custom/test schedulers).

    Parked warps in the list are attempted and fail exactly as in the seed
    issue loop, so schedulers that predate the event API keep working."""

    __slots__ = ("_warps", "_i")

    def __init__(self, warps: List[Warp]):
        self._warps = warps
        self._i = 0

    def next_candidate(self) -> Optional[Warp]:
        i = self._i
        if i >= len(self._warps):
            return None
        self._i = i + 1
        return self._warps[i]


# -- GTO --------------------------------------------------------------------


def _gto_key(w: Warp):
    # last_issue_cycle is the sort key; slot breaks ties exactly like the
    # seed's stable sort over the creation-ordered warp list.
    return (w.last_issue_cycle, w.slot)


class _GTOScan(_Scan):
    __slots__ = ("_sched", "_cands", "_keys", "_i", "_greedy_pending")

    def __init__(self, sched: "GTOScheduler"):
        self._sched = sched
        # Snapshot: the seed generator materialized its sorted list once
        # per cycle; mid-scan issues must not reorder this cycle's scan.
        self._cands = sched._lru[:]
        self._keys = sched._lru_keys[:]
        self._i = 0
        self._greedy_pending = True

    def next_candidate(self) -> Optional[Warp]:
        sched = self._sched
        if self._greedy_pending:
            self._greedy_pending = False
            g = sched._greedy
            if g is not None and not g.done and g.ready:
                return g
        cands = self._cands
        i = self._i
        while i < len(cands):
            w = cands[i]
            i += 1
            if w is sched._greedy:
                continue  # re-checked at each step, as in the seed generator
            self._i = i
            return w
        self._i = i
        return None

    def on_wake(self, warp: Warp) -> None:
        # The seed's sorted list was fixed for the cycle: a warp woken
        # mid-scan was attempted only if its sorted position had not been
        # passed yet.  Keys are unique ((last_issue_cycle, slot)), so the
        # insertion point tells us which side of the cursor it lands on.
        key = _gto_key(warp)
        pos = bisect_left(self._keys, key)
        if pos < self._i:
            return
        self._keys.insert(pos, key)
        self._cands.insert(pos, warp)


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest: keep issuing from the last warp until it stalls,
    then fall back to the warp that has waited longest for an issue slot.

    (With a single launch wave per warp — as in these experiments — a
    static-id fallback would run early warps to completion and leave a
    serial low-parallelism tail; least-recently-issued is the skew-free
    equivalent of "oldest" under continuous CTA replenishment.)

    The ready warps are kept sorted by (last_issue_cycle, slot) and
    updated on issue/park/wake — no per-cycle sort."""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._greedy: Warp = warps[0] if warps else None  # type: ignore
        self._greedy_issued_at = -1
        self._lru: List[Warp] = sorted(warps, key=_gto_key)
        self._lru_keys: List[tuple] = [_gto_key(w) for w in self._lru]

    def order(self, cycle: int) -> Iterable[Warp]:
        # Seed-compatible view (tests, fallback paths; not the hot path).
        if self._greedy is not None and not self._greedy.done:
            yield self._greedy
        for w in sorted(self.warps, key=lambda w: w.last_issue_cycle):
            if w is not self._greedy:
                yield w

    def begin_scan(self, cycle: int) -> _Scan:
        return _GTOScan(self)

    def _lru_remove(self, warp: Warp) -> None:
        i = bisect_left(self._lru_keys, _gto_key(warp))
        # Unique keys: the warp is at its key's position if present.
        if i < len(self._lru) and self._lru[i] is warp:
            del self._lru[i]
            del self._lru_keys[i]

    def notify_ready(self, warp: Warp) -> None:
        key = _gto_key(warp)
        i = bisect_left(self._lru_keys, key)
        self._lru_keys.insert(i, key)
        self._lru.insert(i, warp)

    def notify_blocked(self, warp: Warp) -> None:
        self._lru_remove(warp)

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        if warp.ready:
            # Remove at the old key, stamp, reinsert at the new one
            # (_lru_remove + notify_ready, inlined: this runs per issue).
            keys = self._lru_keys
            lru = self._lru
            i = bisect_left(keys, (warp.last_issue_cycle, warp.slot))
            if i < len(lru) and lru[i] is warp:
                del lru[i]
                del keys[i]
            warp.last_issue_cycle = cycle
            key = (cycle, warp.slot)
            i = bisect_left(keys, key)
            keys.insert(i, key)
            lru.insert(i, warp)
        else:
            warp.last_issue_cycle = cycle
        if warp is self._greedy:
            self._greedy_issued_at = cycle
            return
        # Only hand greediness over when the current greedy warp failed to
        # issue this cycle (it stalled) — a second-slot issue from another
        # warp must not steal it, or GTO degenerates into round-robin and
        # lock-steps every warp through the same program phase.
        if (
            self._greedy is None
            or self._greedy.done
            or self._greedy_issued_at < cycle
        ):
            self._greedy = warp
            self._greedy_issued_at = cycle


# -- LRR --------------------------------------------------------------------


class _LRRScan(_Scan):
    __slots__ = ("_sched", "_i")

    def __init__(self, sched: "LRRScheduler"):
        self._sched = sched
        self._i = 0  # ring offsets consumed, exactly like the seed's i

    def next_candidate(self) -> Optional[Warp]:
        sched = self._sched
        slots = sched._ready_slots  # live: wakes/parks apply immediately
        if not slots:
            return None
        n = len(sched.warps)
        i = self._i
        if i >= n:
            return None
        # The seed yielded warps[(next + i) % n] with a *live* cursor, so
        # an issue rebases the ring mid-scan.  Jump straight to the first
        # ready slot at offset >= i from the current cursor.
        target = (sched._next + i) % n
        j = bisect_left(slots, target)
        s = slots[j] if j < len(slots) else slots[0]
        d = (s - target) % n
        if i + d >= n:
            return None  # only already-passed ring offsets remain
        self._i = i + d + 1
        return sched.warps[s]


class LRRScheduler(WarpScheduler):
    """Loose round-robin over a ring of warp slots; the scan jumps between
    ready slots instead of stepping through blocked ones."""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._next = 0
        self._ready_slots: List[int] = [w.slot for w in warps]

    def order(self, cycle: int) -> Iterable[Warp]:
        n = len(self.warps)
        for i in range(n):
            yield self.warps[(self._next + i) % n]

    def begin_scan(self, cycle: int) -> _Scan:
        return _LRRScan(self)

    def notify_ready(self, warp: Warp) -> None:
        insort(self._ready_slots, warp.slot)

    def notify_blocked(self, warp: Warp) -> None:
        slots = self._ready_slots
        i = bisect_left(slots, warp.slot)
        if i < len(slots) and slots[i] == warp.slot:
            del slots[i]

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        # O(1): the warp knows its ring slot (the seed did list.index).
        self._next = (warp.slot + 1) % len(self.warps)


# -- two-level ---------------------------------------------------------------


class _TwoLevelScan(_Scan):
    """Walks a snapshot of the active pool taken at scan start — exactly
    the ``list(self._active)`` the naive reference materializes once per
    cycle.  The pool mutates mid-scan (the current candidate demoting
    itself, a demotion-triggered ``_refill`` purging warps that exited
    earlier in the same scan, promotions appending new members), and a
    live walk lets those mutations shift unvisited candidates across the
    cursor; the snapshot pins every candidate at its seed position.
    Warps promoted mid-scan are absent from the snapshot, exactly like
    the seed's start-of-cycle list never contained them.  Parked
    (non-ready) members are skipped: their seed attempts failed without
    side effects."""

    __slots__ = ("_cands", "_i")

    def __init__(self, sched: "TwoLevelScheduler"):
        self._cands = sched._active[:]
        self._i = 0

    def next_candidate(self) -> Optional[Warp]:
        cands = self._cands
        i = self._i
        while i < len(cands):
            w = cands[i]
            i += 1
            if w.ready:
                self._i = i
                return w
        self._i = i
        return None


class TwoLevelScheduler(WarpScheduler):
    """Two-level scheduling (Gebhart et al.): only a small active pool is
    eligible; warps that stall on memory are demoted to the pending pool and
    replaced by the next pending warp.  A promoted warp pays a pipeline
    refill penalty (its instructions were flushed from the small active-pool
    buffers).

    Pools are maintained by mutation: exits mark the pool dirty and the
    purge-and-promote pass runs once at the next cycle start (matching the
    seed's next-``order()`` promotion timing), not on every cycle."""

    demotes = True
    lockstep_safe = False
    PROMOTE_PENALTY = 14

    def __init__(self, warps: List[Warp], active_size: int = 8):
        super().__init__(warps)
        self.active_size = active_size
        self._active: List[Warp] = list(warps[:active_size])
        self._pending: List[Warp] = list(warps[active_size:])
        self._now = 0
        self._dirty = False
        #: a warp exited since the last purge.  ``notify_exit`` fires
        #: synchronously (shard._park) before any later ``_refill``, so
        #: this flag being clear proves neither pool holds a done warp and
        #: the purge list rebuilds can be skipped.
        self._done_dirty = False

    def order(self, cycle: int) -> Iterable[Warp]:
        # Seed-compatible view (tests, fallback paths; not the hot path).
        # Callers of the seed API may flip ``warp.exited`` without routing
        # through notify_exit, so force the full purge here.
        self._now = cycle
        self._done_dirty = True
        self._refill()
        return list(self._active)

    @property
    def quiescent(self) -> bool:
        # ``_now`` going stale across skipped begin_cycle calls is safe:
        # it is only read by notify_long_stall-driven refills, which fire
        # from issue attempts — full-path cycles where begin_cycle ran.
        return not self._dirty

    def begin_cycle(self, cycle: int) -> None:
        self._now = cycle
        if self._dirty:
            self._dirty = False
            self._refill()

    def begin_scan(self, cycle: int) -> _Scan:
        return _TwoLevelScan(self)

    def _refill(self) -> None:
        if self._done_dirty:
            self._done_dirty = False
            self._active = [w for w in self._active if not w.done]
            self._pending = [w for w in self._pending if not w.done]
        while len(self._active) < self.active_size and self._pending:
            warp = self._pending.pop(0)
            warp.stall_until = max(
                warp.stall_until, self._now + self.PROMOTE_PENALTY
            )
            self._active.append(warp)
            if self.on_promote is not None:
                self.on_promote(warp)

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        warp.last_issue_cycle = cycle

    def notify_long_stall(self, warp: Warp) -> None:
        if warp in self._active:
            self._active.remove(warp)
            self._pending.append(warp)
            self._refill()

    def notify_exit(self, warp: Warp) -> None:
        self._dirty = True
        self._done_dirty = True

    def eligible(self, warp: Warp) -> bool:
        return warp in self._active

    @property
    def active_pool(self) -> List[Warp]:
        return list(self._active)


def make_scheduler(kind: str, warps: List[Warp], two_level_active: int = 8) -> WarpScheduler:
    if kind == "gto":
        return GTOScheduler(warps)
    if kind == "lrr":
        return LRRScheduler(warps)
    if kind == "two_level":
        return TwoLevelScheduler(warps, two_level_active)
    raise ValueError(f"unknown scheduler {kind!r}")
