"""Warp schedulers: GTO (baseline), loose round-robin, two-level.

The scheduler only produces a *priority order* over its warps each cycle;
the shard walks the order and issues the first ready instructions.  The
two-level scheduler (Gebhart et al. [9], used by the RFH comparison and by
Figure 2) keeps a small active pool and demotes warps that stall on memory.
"""

from __future__ import annotations

from typing import Iterable, List

from .warp import Warp

__all__ = ["WarpScheduler", "GTOScheduler", "LRRScheduler", "TwoLevelScheduler", "make_scheduler"]


class WarpScheduler:
    """Base interface."""

    def __init__(self, warps: List[Warp]):
        self.warps = warps

    def order(self, cycle: int) -> Iterable[Warp]:
        raise NotImplementedError

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        """A warp issued this cycle."""

    def notify_long_stall(self, warp: Warp) -> None:
        """A warp blocked on a long-latency (memory) operation."""

    def eligible(self, warp: Warp) -> bool:
        """Is the warp in the scheduler's selectable set this cycle?

        Single-level schedulers consider every warp; the two-level
        scheduler only its active pool.  Stall attribution uses this to
        split ``demoted`` (ready but parked in the pending pool) from
        ``issue_width`` (ready and selectable, but the budget ran out).
        """
        return True


class GTOScheduler(WarpScheduler):
    """Greedy-then-oldest: keep issuing from the last warp until it stalls,
    then fall back to the warp that has waited longest for an issue slot.

    (With a single launch wave per warp — as in these experiments — a
    static-id fallback would run early warps to completion and leave a
    serial low-parallelism tail; least-recently-issued is the skew-free
    equivalent of "oldest" under continuous CTA replenishment.)"""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._greedy: Warp = warps[0] if warps else None  # type: ignore
        self._greedy_issued_at = -1

    def order(self, cycle: int) -> Iterable[Warp]:
        if self._greedy is not None and not self._greedy.done:
            yield self._greedy
        for w in sorted(self.warps, key=lambda w: w.last_issue_cycle):
            if w is not self._greedy:
                yield w

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        warp.last_issue_cycle = cycle
        if warp is self._greedy:
            self._greedy_issued_at = cycle
            return
        # Only hand greediness over when the current greedy warp failed to
        # issue this cycle (it stalled) — a second-slot issue from another
        # warp must not steal it, or GTO degenerates into round-robin and
        # lock-steps every warp through the same program phase.
        if (
            self._greedy is None
            or self._greedy.done
            or self._greedy_issued_at < cycle
        ):
            self._greedy = warp
            self._greedy_issued_at = cycle


class LRRScheduler(WarpScheduler):
    """Loose round-robin."""

    def __init__(self, warps: List[Warp]):
        super().__init__(warps)
        self._next = 0

    def order(self, cycle: int) -> Iterable[Warp]:
        n = len(self.warps)
        for i in range(n):
            yield self.warps[(self._next + i) % n]

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        self._next = (self.warps.index(warp) + 1) % len(self.warps)


class TwoLevelScheduler(WarpScheduler):
    """Two-level scheduling (Gebhart et al.): only a small active pool is
    eligible; warps that stall on memory are demoted to the pending pool and
    replaced by the next pending warp.  A promoted warp pays a pipeline
    refill penalty (its instructions were flushed from the small active-pool
    buffers) — one reason GTO outperforms two-level schedulers [56]."""

    PROMOTE_PENALTY = 14

    def __init__(self, warps: List[Warp], active_size: int = 8):
        super().__init__(warps)
        self.active_size = active_size
        self._active: List[Warp] = list(warps[:active_size])
        self._pending: List[Warp] = list(warps[active_size:])
        self._now = 0

    def order(self, cycle: int) -> Iterable[Warp]:
        self._now = cycle
        self._refill()
        return list(self._active)

    def _refill(self) -> None:
        self._active = [w for w in self._active if not w.done]
        self._pending = [w for w in self._pending if not w.done]
        while len(self._active) < self.active_size and self._pending:
            warp = self._pending.pop(0)
            warp.stall_until = max(warp.stall_until, self._now + self.PROMOTE_PENALTY)
            self._active.append(warp)

    def notify_issue(self, warp: Warp, cycle: int) -> None:
        warp.last_issue_cycle = cycle

    def notify_long_stall(self, warp: Warp) -> None:
        if warp in self._active:
            self._active.remove(warp)
            self._pending.append(warp)
            self._refill()

    def eligible(self, warp: Warp) -> bool:
        return warp in self._active

    @property
    def active_pool(self) -> List[Warp]:
        return list(self._active)


def make_scheduler(kind: str, warps: List[Warp], two_level_active: int = 8) -> WarpScheduler:
    if kind == "gto":
        return GTOScheduler(warps)
    if kind == "lrr":
        return LRRScheduler(warps)
    if kind == "two_level":
        return TwoLevelScheduler(warps, two_level_active)
    raise ValueError(f"unknown scheduler {kind!r}")
