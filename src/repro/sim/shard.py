"""One warp-scheduler shard: issue, execute, write back.

The GTX 980 SM has four schedulers; RegLess shards its hardware the same
way, so the shard is the natural unit tying a warp scheduler to an operand
storage backend.  Each cycle the shard walks the scheduler's priority order
and issues up to ``issue_width`` ready instructions.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Set

from ..isa.instructions import Instruction
from ..isa.opcodes import FuncUnit, Opcode
from ..obs.stalls import ISSUED, ShardStallTracker
from ..regfile.base import OperandStorage
from .executor import compute_result, read_operand
from .oracle import FULL_MASK
from .scheduler import WarpScheduler
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from .sm import SM

__all__ = ["Shard"]


class Shard:
    """A scheduler slice of an SM plus its operand storage."""

    def __init__(
        self,
        sm: "SM",
        shard_id: int,
        warps: List[Warp],
        scheduler: WarpScheduler,
        storage: OperandStorage,
    ):
        self.sm = sm
        self.shard_id = shard_id
        self.warps = warps
        self.scheduler = scheduler
        self.storage = storage
        self.stalls = (
            ShardStallTracker(len(warps))
            if sm.config.stall_attribution
            else None
        )
        self._issued_wids: Set[int] = set()
        storage.attach(self)

    # -- per-cycle issue loop ---------------------------------------------------

    def cycle(self) -> int:
        """Run one cycle; returns the number of instructions issued."""
        self.storage.cycle()
        sm = self.sm
        scheduler = self.scheduler
        try_issue = self._try_issue
        budget = sm.config.issue_width
        issued = 0
        now = sm.wheel.now
        issued_wids = self._issued_wids
        issued_wids.clear()
        for warp in scheduler.order(now):
            if budget <= 0:
                break
            if not try_issue(warp, now):
                continue
            budget -= 1
            issued += 1
            issued_wids.add(warp.wid)
            scheduler.notify_issue(warp, now)
            # GTX 980 schedulers dual-issue a second, independent
            # instruction from the same warp.
            if budget > 0 and try_issue(warp, now):
                budget -= 1
                issued += 1
        if self.stalls is not None:
            self._account_stalls(now, issued_wids)
        return issued

    # -- stall attribution ------------------------------------------------------

    @staticmethod
    def _effective_pc(warp: Warp) -> int:
        """The pc the warp would execute from, resolving pending
        reconvergence pops *without* mutating the SIMT stack (this is an
        observability pass; state changes belong to the issue path)."""
        stack = warp.stack
        i = len(stack) - 1
        while i > 0 and stack[i].pc == stack[i].reconv_pc:
            i -= 1
        return stack[i].pc

    def _classify(self, warp: Warp, now: int) -> str:
        """The one stall bin for a warp that did not issue this cycle.

        Must be side-effect free: in particular it must NOT call
        ``storage.can_issue`` (RFV's version mutates emergency-valve
        state) — backends expose the pure ``stall_reason`` hook instead.
        """
        if warp.exited:
            return "exited"
        if warp.at_barrier:
            return "barrier"
        if now < warp.stall_until:
            return "pipeline"
        pc = self._effective_pc(warp)
        if pc >= self.sm.program_len:
            # Ran off the end; the exit is synthesized at the next issue
            # attempt, so the warp is as good as gone.
            return "exited"
        insn = self.sm.program[pc]
        if not warp.scoreboard_ready(insn):
            if self._blocked_on_memory(warp, insn):
                return "mem_pending"
            return "scoreboard"
        reason = self.storage.stall_reason(warp, pc, insn)
        if reason is not None:
            return reason
        if insn.opcode.info.unit is FuncUnit.MEM and self.sm.mem_slot_busy:
            return "mem_slot"
        if not self.scheduler.eligible(warp):
            return "demoted"
        return "issue_width"

    def _account_stalls(self, now: int, issued_wids: Set[int]) -> None:
        bins: dict = {}
        classify = self._classify
        for warp in self.warps:
            if warp.wid in issued_wids:
                reason = ISSUED
            else:
                reason = classify(warp, now)
            bins[reason] = bins.get(reason, 0) + 1
        self.stalls.commit(bins)

    def _try_issue(self, warp: Warp, now: int) -> bool:
        if not warp.runnable or now < warp.stall_until:
            return False
        warp.maybe_reconverge()
        pc = warp.pc
        if pc >= self.sm.program_len:
            # Fell off the end without EXIT; treat as done.
            warp.exited = True
            self.storage.on_warp_exit(warp)
            self.sm.notify_warp_done(warp)
            return False
        insn = self.sm.program[pc]
        if not warp.scoreboard_ready(insn):
            if self._blocked_on_memory(warp, insn):
                self.scheduler.notify_long_stall(warp)
            return False
        if not self.storage.can_issue(warp, pc, insn):
            # Warps the storage cannot serve (non-resident CTA, inactive
            # RegLess region) must not pin a two-level active-pool slot.
            self.scheduler.notify_long_stall(warp)
            return False
        if insn.opcode.info.unit is FuncUnit.MEM and not self.sm.take_mem_slot():
            return False
        self.issue(warp, pc, insn)
        return True

    def _blocked_on_memory(self, warp: Warp, insn: Instruction) -> bool:
        """Two-level demotion trigger: a source operand is waiting on an
        in-flight global load (ALU-latency stalls do not demote)."""
        if not warp.pending_loads:
            return False
        return any(r.index in warp.pending_loads for r in insn.reg_srcs)

    # -- issue ------------------------------------------------------------------------

    def issue(self, warp: Warp, pc: int, insn: Instruction) -> None:
        sm = self.sm
        sm.counters.inc("insn_issued")
        warp.issued += 1
        # Metadata instructions ride the fetch/decode path (the decode stage
        # fills the CM's metadata store, section 5.4); they cost fetch
        # energy but no execution-issue slots.
        meta = self.storage.metadata_slots(warp, pc)
        if meta:
            sm.counters.inc("metadata_issue", meta)

        if sm.config.track_working_set:
            ws = sm.gpu.working_set
            for r in insn.regs:
                ws.add((warp.wid, r.index))

        guard_mask = warp.guard_mask(insn)
        active = warp.active_mask & guard_mask
        op = insn.opcode
        info = op.info

        # Control resolution happens at issue (the scoreboard guarantees the
        # guard predicate has been written).
        if info.is_branch:
            self._resolve_branch(warp, insn, pc)
        elif info.is_exit:
            warp.advance()
            warp.exited = True
            self.storage.on_issue(warp, pc, insn)
            self.storage.on_warp_exit(warp)
            sm.notify_warp_done(warp)
            return
        elif info.is_barrier:
            warp.advance()
            self.storage.on_issue(warp, pc, insn)
            sm.barrier_arrive(warp)
            if warp.at_barrier:
                # A barrier-blocked warp must not hold a two-level
                # active-pool slot, or stragglers can never be promoted.
                self.scheduler.notify_long_stall(warp)
            return
        else:
            warp.advance()

        self.storage.on_issue(warp, pc, insn)

        if info.unit is FuncUnit.MEM:
            self._issue_memory(warp, insn, pc, active)
            return

        if op is Opcode.SETP:
            self._issue_setp(warp, insn, pc)
            return

        if insn.reg_dsts:
            self._issue_alu(warp, insn, pc, active, guard_mask)

    # -- instruction classes ---------------------------------------------------------

    def _issue_alu(self, warp: Warp, insn: Instruction, pc: int,
                   active: int, guard_mask: int) -> None:
        value = compute_result(warp, insn)
        full = guard_mask & warp.active_mask == warp.active_mask
        dst = insn.reg_dsts[0]
        warp.write_reg(dst, value, full=full)
        warp.mark_pending(insn)
        latency = insn.opcode.info.latency
        self.sm.wheel.after(latency, lambda: self._writeback(warp, pc, insn))

    def _issue_setp(self, warp: Warp, insn: Instruction, pc: int) -> None:
        mask = self.sm.gpu.oracle.pred_mask(warp.wid, pc, insn.tag)
        warp.write_pred(insn.pred_dsts[0], mask)
        warp.mark_pending(insn)
        latency = insn.opcode.info.latency
        self.sm.wheel.after(latency, lambda: self._writeback(warp, pc, insn))

    def _issue_memory(self, warp: Warp, insn: Instruction, pc: int,
                      active: int) -> None:
        sm = self.sm
        op = insn.opcode
        if op is Opcode.LDS:
            if insn.reg_dsts:
                value = read_operand(warp, insn.srcs[0]).opaque(salt=0x60)
                warp.write_reg(insn.reg_dsts[0], value)
                warp.mark_pending(insn)
                sm.wheel.after(op.info.latency,
                               lambda: self._writeback(warp, pc, insn))
            sm.counters.inc("shared_access")
            return
        if op is Opcode.STS:
            sm.counters.inc("shared_access")
            return

        addr = read_operand(warp, insn.srcs[0])
        lines = addr.line_addresses(
            sm.config.line_bytes, sm.gpu.divergent_lines
        )
        if op is Opcode.STG:
            for line in lines:
                sm.hierarchy.request(sm.sm_id, line, True, None, kind="data")
            sm.counters.inc("gmem_store_lines", len(lines))
            return

        # LDG: the destination is pending until every line returns.
        sm.counters.inc("gmem_load_lines", len(lines))
        value = sm.gpu.oracle.load_value(warp.wid, pc, insn.tag)
        warp.write_reg(insn.reg_dsts[0], value,
                       full=active == warp.active_mask)
        warp.mark_pending(insn)
        warp.pending_loads.add(insn.reg_dsts[0].index)
        remaining = {"n": len(lines)}

        def on_line() -> None:
            remaining["n"] -= 1
            if remaining["n"] == 0:
                self._writeback(warp, pc, insn)

        for line in lines:
            sm.hierarchy.request(sm.sm_id, line, False, on_line, kind="data")

    # -- write-back ----------------------------------------------------------------------

    def _writeback(self, warp: Warp, pc: int, insn: Instruction) -> None:
        warp.clear_pending(insn)
        if insn.opcode.is_global_load and insn.reg_dsts:
            warp.pending_loads.discard(insn.reg_dsts[0].index)
        if self.sm.config.track_working_set and insn.reg_dsts:
            ws = self.sm.gpu.working_set
            for r in insn.reg_dsts:
                ws.add((warp.wid, r.index))
        self.storage.on_writeback(warp, pc, insn)

    # -- control flow -----------------------------------------------------------------------

    def _resolve_branch(self, warp: Warp, insn: Instruction, pc: int) -> None:
        target_pc = self.sm.block_start(insn.target)
        if insn.guard is None:
            warp.jump(target_pc)
            return
        mask = warp.guard_mask(insn)
        taken = warp.active_mask & mask
        nottaken = warp.active_mask & ~mask & FULL_MASK
        if nottaken == 0:
            warp.jump(target_pc)
        elif taken == 0:
            warp.advance()
        else:
            self.sm.counters.inc("divergent_branch")
            reconv_pc = self.sm.reconv_pc(pc)
            warp.diverge(reconv_pc, target_pc, taken, pc + 1, nottaken)
