"""One warp-scheduler shard: issue, execute, write back.

The GTX 980 SM has four schedulers; RegLess shards its hardware the same
way, so the shard is the natural unit tying a warp scheduler to an operand
storage backend.

The issue core is event-driven: the shard keeps an explicit **ready set**
and only scans warps that might actually issue.  A warp that blocks is
*parked* — removed from the set with its stall bin recorded — and is
re-inserted only by the event that unblocks it:

* ``stall_until`` expiry → a shard-local wake heap, popped at the top of
  each simulated cycle (deliberately *not* the global ``EventWheel``:
  pipeline wakes must not create wheel events, or the dead-cycle
  fast-forward in :meth:`repro.sim.gpu.GPU.run` would stop skipping over
  them and simulated attempt counts — e.g. RFV's valve — would change);
* scoreboard / in-flight load clears → :meth:`_writeback`;
* barrier release → :meth:`repro.sim.sm.SM.barrier_arrive` /
  ``notify_warp_done`` call :meth:`reevaluate` on each released warp;
* operand-storage transitions (CTA becomes resident, RegLess region
  activates/preloads) → :meth:`repro.regfile.base.OperandStorage.notify_wake`.

Storages whose issue test has side effects (RFV's emergency valve counts
failed attempts) set ``parkable = False`` and their storage-blocked warps
stay in the ready set, attempted every cycle exactly as before.

Bit-identity contract: parked warps are exactly those whose seed issue
attempt failed without side effects, so skipping them changes no simulated
state; stall attribution bins them from the recorded ``park_bin`` instead
of reclassifying per cycle, preserving the conservation invariant
(sum(bins) == warps × cycles) and the exact per-cycle histograms.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import TYPE_CHECKING, List, Optional

from ..isa.instructions import Instruction
from ..isa.opcodes import Opcode
from ..obs.stalls import ISSUED, ShardStallTracker
from ..regfile.base import OperandStorage
from .executor import compute_result, read_operand
from .oracle import FULL_MASK
from .scheduler import WarpScheduler
from .warp import Warp

if TYPE_CHECKING:  # pragma: no cover
    from .sm import SM

__all__ = ["Shard"]

#: _try_issue outcomes.
_ISSUE_OK = 1
_FAIL_PARK = 2  # blocked until a wake event; leave the ready set
_FAIL_KEEP = 3  # transient (mem-slot arbitration); stay ready

#: bins produced by OperandStorage.stall_reason (parkable only if the
#: storage opts in; a matching notify_wake upcall must exist).
_STORAGE_BINS = frozenset(
    {"occupancy", "rfv_pressure", "cm_inactive", "cm_preloading", "osu_port"}
)
#: bins whose seed issue attempt carried a demotion side effect
#: (``notify_long_stall``).  A warp a demoting scheduler still considers
#: selectable must NOT be parked under these — it stays in the ready set
#: so the demotion fires at the exact scan attempt the seed made.
_DEMOTE_BINS = frozenset({"mem_pending"}) | _STORAGE_BINS
#: bins a *failed issue attempt* may park under.
_SCAN_PARK_BINS = frozenset(
    {"exited", "barrier", "pipeline", "scoreboard", "mem_pending"}
) | _STORAGE_BINS
#: bins the *accounting pass* may park under: never "exited"/"barrier" —
#: a ran-off-the-end warp is binned "exited" but must stay ready so the
#: next scan synthesizes its exit (with on_warp_exit/notify_warp_done side
#: effects) at the seed's cycle.
_ACCT_PARK_BINS = frozenset({"pipeline", "scoreboard", "mem_pending"}) | _STORAGE_BINS
#: bins that can flip without a warp event (RegLess preloading arbitration
#: flips cm_preloading <-> osu_port); refreshed each accounted cycle.
_DYNAMIC_BINS = frozenset({"cm_preloading", "osu_port"})


class _Writeback:
    """Per-issue write-back continuation (avoids a lambda per issue)."""

    __slots__ = ("shard", "warp", "pc", "insn")

    def __init__(self, shard: "Shard", warp: Warp, pc: int, insn: Instruction):
        self.shard = shard
        self.warp = warp
        self.pc = pc
        self.insn = insn

    def __call__(self) -> None:
        self.shard._writeback(self.warp, self.pc, self.insn)


class _LoadContinuation:
    """Counts down the cache lines of one LDG; fires the write-back when
    the last line returns (replaces the seed's ``{"n": ...}`` dict plus
    closure per load)."""

    __slots__ = ("shard", "warp", "pc", "insn", "remaining")

    def __init__(self, shard: "Shard", warp: Warp, pc: int,
                 insn: Instruction, remaining: int):
        self.shard = shard
        self.warp = warp
        self.pc = pc
        self.insn = insn
        self.remaining = remaining

    def __call__(self) -> None:
        self.remaining -= 1
        if self.remaining == 0:
            self.shard._writeback(self.warp, self.pc, self.insn)


class Shard:
    """A scheduler slice of an SM plus its operand storage."""

    def __init__(
        self,
        sm: "SM",
        shard_id: int,
        warps: List[Warp],
        scheduler: WarpScheduler,
        storage: OperandStorage,
    ):
        self.sm = sm
        self.shard_id = shard_id
        self.warps = warps
        self.scheduler = scheduler
        self.storage = storage
        self.stalls = (
            ShardStallTracker(len(warps))
            if sm.config.stall_attribution
            else None
        )
        scheduler.on_promote = self._on_promote
        #: warps currently in the ready set (iterated by stall accounting;
        #: the scan order lives in the scheduler's own structures).
        self._ready: set = set(warps)
        #: stall-bin histogram over currently parked warps (no zero entries).
        self._parked_bins: dict = {}
        #: parked warps whose bin is storage-arbitration dependent.
        self._dynamic: set = set()
        #: (stall_until, wid, warp) pipeline wake heap + dedup map.
        self._wake_heap: list = []
        self._wake_at: dict = {}
        #: the in-progress issue scan (mid-scan wakes are forwarded to it).
        self._scan = None
        self._issued_warps: List[Warp] = []
        # Per-run constants, cached off the attribute chains the per-cycle
        # loops would otherwise re-walk (sm.wheel.now, sm.program[pc], ...).
        self._issue_width = sm.config.issue_width
        self._wheel = sm.wheel
        self._program = sm.program
        self._program_len = sm.program_len
        self._counters_inc = sm.counters.inc
        self._track_ws = sm.config.track_working_set
        #: True while the stall tracker's last committed cycle equals the
        #: current parked histogram — idle cycles then replay it in O(1).
        self._idle_committed = False
        #: cohort-batching cache (repro.sim.warpbatch._BatchState) when the
        #: region JIT armed lockstep batching for this shard, else None.
        #: Kept generic here: shard.py never imports warpbatch.
        self._batch = None
        #: prebound ``uncov.append`` wake hook (the uncov list object is
        #: identity-stable, so the binding survives account passes).
        self._batch_wake = None
        storage.attach(self)
        self._storage_has_work = storage.has_work
        self._storage_cycle = storage.cycle

    # -- per-cycle issue loop ---------------------------------------------------

    def cycle(self) -> int:
        """Run one cycle; returns the number of instructions issued."""
        now = self._wheel.now
        if self._storage_has_work(now):
            self._storage_cycle()
        scheduler = self.scheduler
        heap = self._wake_heap
        if (
            not self._ready
            and not self._dynamic
            and (not heap or heap[0][0] > now)
            and scheduler.quiescent
        ):
            # Idle fast path: every warp is parked with a stable bin, no
            # wake is due, and the scheduler has no deferred maintenance —
            # the full path below would only recommit the same histogram.
            stalls = self.stalls
            if stalls is not None:
                if self._idle_committed:
                    stalls.replay(1)
                else:
                    stalls.commit(dict(self._parked_bins))
                    self._idle_committed = True
            return 0
        scheduler.begin_cycle(now)
        # Pipeline-stall expiries due this cycle.
        if heap:
            wake_at = self._wake_at
            while heap and heap[0][0] <= now:
                t, wid, warp = heappop(heap)
                if wake_at.get(wid) == t:
                    del wake_at[wid]
                    self.reevaluate(warp)
        issued = 0
        issued_warps = self._issued_warps
        issued_warps.clear()
        if self._ready:
            try_issue = self._try_issue
            budget = self._issue_width
            scan = self._scan = scheduler.begin_scan(now)
            while budget > 0:
                warp = scan.next_candidate()
                if warp is None:
                    break
                code = try_issue(warp, now)
                if code is _ISSUE_OK:
                    budget -= 1
                    issued += 1
                    issued_warps.append(warp)
                    scheduler.notify_issue(warp, now)
                    # GTX 980 schedulers dual-issue a second, independent
                    # instruction from the same warp.
                    if budget > 0 and try_issue(warp, now) is _ISSUE_OK:
                        budget -= 1
                        issued += 1
                    if warp.exited or warp.at_barrier:
                        self._park(warp, self._classify(warp, now))
                elif code is _FAIL_PARK:
                    self._maybe_park(warp, now)
            self._scan = None
        if self.stalls is not None:
            self._account_stalls(now, issued_warps)
        return issued

    # -- ready-set maintenance ---------------------------------------------------

    def reevaluate(self, warp: Warp) -> None:
        """Re-check a parked warp after a wake event; make it ready if its
        blocking condition cleared, else re-park it under the current bin.

        Safe to call spuriously; no-op for warps already in the ready set
        (a ready warp's state is re-derived at its next scan attempt, and
        parking it here could snapshot two-level demotion timing with a
        stale ``_now``)."""
        if warp.ready:
            return
        now = self._wheel.now
        if not warp.exited and not warp.at_barrier and now >= warp.stall_until:
            pc = self._effective_pc(warp)
            if pc >= self._program_len:
                # Ran off the end: the next scan synthesizes the exit.
                self._make_ready(warp)
                return
            insn = self._program[pc]
            if warp.scoreboard_ready(insn):
                storage = self.storage
                if not storage.parkable or storage.stall_reason(
                    warp, pc, insn
                ) is None:
                    self._make_ready(warp)
                    return
        bin_ = self._classify(warp, now)
        if (
            bin_ in _DEMOTE_BINS
            and self.scheduler.demotes
            and self.scheduler.eligible(warp)
        ):
            # Still blocked, but the seed would demote it at its next scan
            # attempt — return it to the ready set so that attempt happens.
            self._make_ready(warp)
            return
        self._repark(warp, bin_)

    def _make_ready(self, warp: Warp) -> None:
        self._idle_committed = False
        warp.ready = True
        self._ready.add(warp)
        bins = self._parked_bins
        b = warp.park_bin
        n = bins[b] - 1
        if n:
            bins[b] = n
        else:
            del bins[b]
        warp.park_bin = None
        if warp.park_dynamic:
            warp.park_dynamic = False
            self._dynamic.discard(warp)
        wake = self._batch_wake
        if wake is not None:
            wake(warp)
        self.scheduler.notify_ready(warp)
        if self._scan is not None:
            self._scan.on_wake(warp)

    def _park(self, warp: Warp, bin_: str) -> None:
        """Remove a ready warp from the ready set under ``bin_``."""
        b = self._batch
        if b is not None:
            b.dirty = True
            if warp in b.cov:
                b.drop(warp)
        self._idle_committed = False
        warp.ready = False
        self._ready.discard(warp)
        self.scheduler.notify_blocked(warp)
        self._parked_bins[bin_] = self._parked_bins.get(bin_, 0) + 1
        warp.park_bin = bin_
        if bin_ in _DYNAMIC_BINS:
            warp.park_dynamic = True
            warp.park_pc = self._effective_pc(warp)
            self._dynamic.add(warp)
        elif bin_ == "pipeline":
            self._schedule_wake(warp)
        elif bin_ == "exited":
            self.scheduler.notify_exit(warp)

    def _repark(self, warp: Warp, bin_: str) -> None:
        """Refresh an already-parked warp's recorded bin."""
        self._idle_committed = False
        old = warp.park_bin
        if old == bin_:
            if bin_ == "pipeline":
                self._schedule_wake(warp)  # stall_until may have grown
            return
        if self._batch is not None:
            self._batch.dirty = True  # parked histogram is about to change
        bins = self._parked_bins
        n = bins[old] - 1
        if n:
            bins[old] = n
        else:
            del bins[old]
        bins[bin_] = bins.get(bin_, 0) + 1
        warp.park_bin = bin_
        dynamic = bin_ in _DYNAMIC_BINS
        if dynamic:
            warp.park_pc = self._effective_pc(warp)
            if not warp.park_dynamic:
                warp.park_dynamic = True
                self._dynamic.add(warp)
        elif warp.park_dynamic:
            warp.park_dynamic = False
            self._dynamic.discard(warp)
        if bin_ == "pipeline":
            self._schedule_wake(warp)
        elif bin_ == "exited":
            self.scheduler.notify_exit(warp)

    def _schedule_wake(self, warp: Warp) -> None:
        t = warp.stall_until
        wid = warp.wid
        if self._wake_at.get(wid, -1) >= t:
            return
        self._wake_at[wid] = t
        heappush(self._wake_heap, (t, wid, warp))

    def _maybe_park(self, warp: Warp, now: int) -> None:
        """Park after a failed issue attempt, if the failure is one that
        only a wake event can clear."""
        if not warp.ready:
            # A scan can re-yield an already-parked warp (GTO mid-scan
            # greedy handoff); the repeat attempt is side-effect free.
            return
        bin_ = self._classify(warp, now)
        if bin_ not in _SCAN_PARK_BINS:
            return
        if bin_ in _STORAGE_BINS and not self.storage.parkable:
            return
        if (
            bin_ in _DEMOTE_BINS
            and self.scheduler.demotes
            and self.scheduler.eligible(warp)
        ):
            # Still selectable by a demoting scheduler: stay ready so the
            # next seed-timed attempt can demote it (the attempt that just
            # failed normally demoted it already, making it ineligible).
            return
        self._park(warp, bin_)

    def _on_promote(self, warp: Warp) -> None:
        """Two-level promotion raised a parked warp's ``stall_until``."""
        if not warp.ready:
            self._repark(warp, self._classify(warp, self.sm.wheel.now))

    # -- stall attribution ------------------------------------------------------

    @staticmethod
    def _effective_pc(warp: Warp) -> int:
        """The pc the warp would execute from, resolving pending
        reconvergence pops *without* mutating the SIMT stack (this is an
        observability pass; state changes belong to the issue path)."""
        stack = warp.stack
        i = len(stack) - 1
        while i > 0 and stack[i].pc == stack[i].reconv_pc:
            i -= 1
        return stack[i].pc

    def _classify(self, warp: Warp, now: int) -> str:
        """The one stall bin for a warp that did not issue this cycle.

        Must be side-effect free: in particular it must NOT call
        ``storage.can_issue`` (RFV's version mutates emergency-valve
        state) — backends expose the pure ``stall_reason`` hook instead.
        """
        if warp.exited:
            return "exited"
        if warp.at_barrier:
            return "barrier"
        if now < warp.stall_until:
            return "pipeline"
        # _effective_pc, inlined (this is the hottest call site).
        stack = warp.stack
        i = len(stack) - 1
        entry = stack[i]
        while i > 0 and entry.pc == entry.reconv_pc:
            i -= 1
            entry = stack[i]
        pc = entry.pc
        if pc >= self._program_len:
            # Ran off the end; the exit is synthesized at the next issue
            # attempt, so the warp is as good as gone.
            return "exited"
        insn = self._program[pc]
        if not warp.scoreboard_ready(insn):
            pending_loads = warp.pending_loads
            if pending_loads:
                for i in insn.src_idx:
                    if i in pending_loads:
                        return "mem_pending"
            return "scoreboard"
        reason = self.storage.stall_reason(warp, pc, insn)
        if reason is not None:
            return reason
        if insn.is_mem and self.sm.mem_slot_busy:
            return "mem_slot"
        if not self.scheduler.eligible(warp):
            return "demoted"
        return "issue_width"

    def _account_stalls(self, now: int, issued_warps: List[Warp]) -> None:
        # Parked RegLess-preloading warps flip between cm_preloading and
        # osu_port with OSU port arbitration — no warp event marks the
        # flip, so refresh them here (preloading phases are never
        # fast-forwarded: the CM reports non-idle).
        if self._dynamic:
            bins_live = self._parked_bins
            program = self._program
            storage = self.storage
            for warp in tuple(self._dynamic):
                pc = warp.park_pc
                reason = storage.stall_reason(warp, pc, program[pc])
                if reason is None:
                    # Storage unblocked without an upcall (defensive; the
                    # CM wake hook should have fired).
                    self.reevaluate(warp)
                elif reason != warp.park_bin:
                    n = bins_live[warp.park_bin] - 1
                    if n:
                        bins_live[warp.park_bin] = n
                    else:
                        del bins_live[warp.park_bin]
                    bins_live[reason] = bins_live.get(reason, 0) + 1
                    warp.park_bin = reason
        bins = dict(self._parked_bins)
        classify = self._classify
        storage_parkable = self.storage.parkable
        demotes = self.scheduler.demotes
        # At most issue_width (=2) entries: a list scan beats a set alloc.
        issued_set = issued_warps
        to_park = None
        for warp in self._ready:
            if warp in issued_set:
                continue
            reason = classify(warp, now)
            bins[reason] = bins.get(reason, 0) + 1
            # Ready warps the scan never reached (budget exhausted, or a
            # two-level pending pool) that are in fact event-blocked can
            # park here: the seed's attempts on them (if any) would have
            # been side-effect free, and the recorded bin is stable until
            # the corresponding wake event.
            if reason in _ACCT_PARK_BINS:
                if reason in _STORAGE_BINS and not storage_parkable:
                    continue
                if reason in _DEMOTE_BINS and demotes and \
                        self.scheduler.eligible(warp):
                    continue  # must stay ready for the seed-timed demote
            elif reason == "demoted" and storage_parkable:
                # Pending-pool warp that could otherwise issue: stable
                # until promotion (_on_promote re-bins it) *unless* its
                # next instruction needs the per-cycle memory slot (the
                # seed then flips between demoted and mem_slot) or the
                # storage's pressure state can change under it (RFV).
                pc = self._effective_pc(warp)
                if self._program[pc].is_mem:
                    continue
            else:
                continue
            if to_park is None:
                to_park = [(warp, reason)]
            else:
                to_park.append((warp, reason))
        if to_park is not None:
            for warp, reason in to_park:
                self._park(warp, reason)
        for warp in issued_warps:
            if not warp.ready:
                # Issued then parked (EXIT/BAR): already counted in the
                # parked histogram; count it as ISSUED instead.
                n = bins[warp.park_bin] - 1
                if n:
                    bins[warp.park_bin] = n
                else:
                    del bins[warp.park_bin]
        if issued_warps:
            bins[ISSUED] = len(issued_warps)
        self.stalls.commit(bins)
        # The committed cycle may differ from the parked histogram (ready
        # classifications, ISSUED) — idle cycles must re-commit fresh.
        self._idle_committed = False

    def _try_issue(self, warp: Warp, now: int) -> int:
        if warp.exited or warp.at_barrier or now < warp.stall_until:
            return _FAIL_PARK
        # maybe_reconverge + the pc property, inlined (hot path).
        stack = warp.stack
        top = stack[-1]
        while len(stack) > 1 and top.pc == top.reconv_pc:
            stack.pop()
            top = stack[-1]
        pc = top.pc
        if pc >= self._program_len:
            # Fell off the end without EXIT; treat as done.
            warp.exited = True
            self.storage.on_warp_exit(warp)
            self.sm.notify_warp_done(warp)
            return _FAIL_PARK
        insn = self._program[pc]
        if not warp.scoreboard_ready(insn):
            if self._blocked_on_memory(warp, insn):
                self.scheduler.notify_long_stall(warp)
            return _FAIL_PARK
        if not self.storage.can_issue(warp, pc, insn):
            # Warps the storage cannot serve (non-resident CTA, inactive
            # RegLess region) must not pin a two-level active-pool slot.
            self.scheduler.notify_long_stall(warp)
            return _FAIL_PARK
        if insn.is_mem and not self.sm.take_mem_slot():
            return _FAIL_KEEP
        self.issue(warp, pc, insn)
        return _ISSUE_OK

    def _blocked_on_memory(self, warp: Warp, insn: Instruction) -> bool:
        """Two-level demotion trigger: a source operand is waiting on an
        in-flight global load (ALU-latency stalls do not demote)."""
        pending_loads = warp.pending_loads
        if not pending_loads:
            return False
        for i in insn.src_idx:
            if i in pending_loads:
                return True
        return False

    # -- issue ------------------------------------------------------------------------

    def issue(self, warp: Warp, pc: int, insn: Instruction) -> None:
        sm = self.sm
        counters_inc = self._counters_inc
        counters_inc("insn_issued")
        warp.issued += 1
        # Metadata instructions ride the fetch/decode path (the decode stage
        # fills the CM's metadata store, section 5.4); they cost fetch
        # energy but no execution-issue slots.
        meta = self.storage.metadata_slots(warp, pc)
        if meta:
            counters_inc("metadata_issue", meta)

        if self._track_ws:
            ws = sm.gpu.working_set
            wid = warp.wid
            for i in insn.reg_idx:
                ws.add((wid, i))

        # guard_mask + active_mask, inlined (most instructions are unguarded).
        guard = insn.guard
        if guard is None:
            guard_mask = FULL_MASK
        else:
            guard_mask = warp.preds.get(guard.pred.index, 0)
            if guard.negate:
                guard_mask = ~guard_mask & FULL_MASK
        active_mask = warp.stack[-1].mask
        active = active_mask & guard_mask
        op = insn.opcode
        info = insn.info

        # Control resolution happens at issue (the scoreboard guarantees the
        # guard predicate has been written).
        if info.is_branch:
            self._resolve_branch(warp, insn, pc)
        elif info.is_exit:
            warp.advance()
            warp.exited = True
            self.storage.on_issue(warp, pc, insn)
            self.storage.on_warp_exit(warp)
            sm.notify_warp_done(warp)
            return
        elif info.is_barrier:
            warp.advance()
            self.storage.on_issue(warp, pc, insn)
            sm.barrier_arrive(warp)
            if warp.at_barrier:
                # A barrier-blocked warp must not hold a two-level
                # active-pool slot, or stragglers can never be promoted.
                self.scheduler.notify_long_stall(warp)
            return
        else:
            warp.advance()

        self.storage.on_issue(warp, pc, insn)

        if insn.is_mem:
            self._issue_memory(warp, insn, pc, active)
            return

        if op is Opcode.SETP:
            self._issue_setp(warp, insn, pc)
            return

        if insn.reg_dsts:
            self._issue_alu(warp, insn, pc, active, guard_mask)

    # -- instruction classes ---------------------------------------------------------

    def _issue_alu(self, warp: Warp, insn: Instruction, pc: int,
                   active: int, guard_mask: int) -> None:
        value = compute_result(warp, insn)
        full = active == warp.stack[-1].mask
        dst = insn.reg_dsts[0]
        warp.write_reg(dst, value, full=full)
        warp.mark_pending(insn)
        self._wheel.after(insn.latency, _Writeback(self, warp, pc, insn))

    def _issue_setp(self, warp: Warp, insn: Instruction, pc: int) -> None:
        mask = self.sm.gpu.oracle.pred_mask(warp.wid, pc, insn.tag)
        warp.write_pred(insn.pred_dsts[0], mask)
        warp.mark_pending(insn)
        self._wheel.after(insn.latency, _Writeback(self, warp, pc, insn))

    def _issue_memory(self, warp: Warp, insn: Instruction, pc: int,
                      active: int) -> None:
        sm = self.sm
        op = insn.opcode
        if op is Opcode.LDS:
            if insn.reg_dsts:
                value = read_operand(warp, insn.srcs[0]).opaque(salt=0x60)
                warp.write_reg(insn.reg_dsts[0], value)
                warp.mark_pending(insn)
                self._wheel.after(insn.latency,
                                  _Writeback(self, warp, pc, insn))
            self._counters_inc("shared_access")
            return
        if op is Opcode.STS:
            self._counters_inc("shared_access")
            return

        addr = read_operand(warp, insn.srcs[0])
        lines = addr.line_addresses(
            sm.config.line_bytes, sm.gpu.divergent_lines
        )
        if op is Opcode.STG:
            for line in lines:
                sm.hierarchy.request(sm.sm_id, line, True, None, kind="data")
            self._counters_inc("gmem_store_lines", len(lines))
            return

        # LDG: the destination is pending until every line returns.
        self._counters_inc("gmem_load_lines", len(lines))
        value = sm.gpu.oracle.load_value(warp.wid, pc, insn.tag)
        warp.write_reg(insn.reg_dsts[0], value,
                       full=active == warp.active_mask)
        warp.mark_pending(insn)
        warp.pending_loads.add(insn.reg_dsts[0].index)
        on_line = _LoadContinuation(self, warp, pc, insn, len(lines))
        for line in lines:
            sm.hierarchy.request(sm.sm_id, line, False, on_line, kind="data")

    # -- write-back ----------------------------------------------------------------------

    def _writeback(self, warp: Warp, pc: int, insn: Instruction) -> None:
        warp.clear_pending(insn)
        if insn.opcode.is_global_load and insn.reg_dsts:
            warp.pending_loads.discard(insn.dst_idx[0])
        if self._track_ws and insn.reg_dsts:
            ws = self.sm.gpu.working_set
            wid = warp.wid
            for i in insn.dst_idx:
                ws.add((wid, i))
        self.storage.on_writeback(warp, pc, insn)
        if not warp.ready:
            # Scoreboard/load clear (and possibly a RegLess region finish
            # via on_writeback above): re-check the parked warp.
            self.reevaluate(warp)

    # -- control flow -----------------------------------------------------------------------

    def _resolve_branch(self, warp: Warp, insn: Instruction, pc: int) -> None:
        target_pc = self.sm.block_start(insn.target)
        if insn.guard is None:
            warp.jump(target_pc)
            return
        mask = warp.guard_mask(insn)
        taken = warp.active_mask & mask
        nottaken = warp.active_mask & ~mask & FULL_MASK
        if nottaken == 0:
            warp.jump(target_pc)
        elif taken == 0:
            warp.advance()
        else:
            self.sm.counters.inc("divergent_branch")
            reconv_pc = self.sm.reconv_pc(pc)
            warp.diverge(reconv_pc, target_pc, taken, pc + 1, nottaken)
