"""Workload oracles: branch outcomes and loaded-value structure.

Kernels built by :mod:`repro.workloads` are *structural*: loops, divergent
ifs and loads are real instructions, but their dynamic behaviour (trip
counts, divergence patterns, value entropy of loaded data) is supplied by
the workload through an :class:`Oracle` keyed on instruction ``tag``.

* ``SETP`` instructions consult a :class:`PredBehavior` which yields the
  per-lane predicate mask for each dynamic execution.
* ``LDG``/``LDS`` instructions consult a :class:`LoadBehavior` which yields
  the :class:`~repro.sim.values.LaneValues` structure of the loaded data —
  this is what determines compressibility downstream.

All behaviours are deterministic given the workload seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .values import LaneValues, mix_hash as _mix, mix_hash_lanes as _mix_lanes

try:  # pragma: no cover - exercised only where numpy is installed
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

if _np is not None:
    #: per-lane bit weights for packing a boolean lane vector into a mask.
    _LANE_BITS = (_np.uint64(1) << _np.arange(32, dtype=_np.uint64))

__all__ = [
    "FULL_MASK",
    "PredBehavior",
    "LoopExit",
    "DivergentLoopExit",
    "BernoulliLanes",
    "BernoulliWarp",
    "NeverTaken",
    "AlwaysTaken",
    "LoadBehavior",
    "Oracle",
]

FULL_MASK = (1 << 32) - 1


class PredBehavior:
    """Base class: per-execution predicate masks."""

    def mask(self, warp_id: int, count: int, seed: int) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class LoopExit(PredBehavior):
    """Uniform loop: the exit predicate becomes true (for all lanes) on the
    ``trips``-th execution.  Counts are taken modulo the trip count so a
    nested loop restarts cleanly on every outer iteration.
    ``per_warp_skew`` staggers trip counts across warps."""

    trips: int
    per_warp_skew: int = 0

    def mask(self, warp_id: int, count: int, seed: int) -> int:
        trips = max(1, self.trips + (warp_id % (self.per_warp_skew + 1)))
        return FULL_MASK if (count % trips) == trips - 1 else 0


@dataclass(frozen=True)
class DivergentLoopExit(PredBehavior):
    """Per-lane trip counts drawn from [min_trips, max_trips]: lanes exit
    the loop at different iterations (classic divergent loop).  One loop
    instance always executes its header ``max_trips`` times, so counts are
    taken modulo ``max_trips`` for nesting."""

    min_trips: int
    max_trips: int

    def mask(self, warp_id: int, count: int, seed: int) -> int:
        span = max(1, self.max_trips - self.min_trips + 1)
        phase = count % max(1, self.max_trips)
        if _np is None:
            mask = 0
            for lane in range(32):
                trip = self.min_trips + _mix(seed, warp_id, lane, 7) % span
                if phase >= trip - 1:
                    mask |= 1 << lane
            return mask
        trips = self.min_trips + _mix_lanes((seed, warp_id), (7,)) % span
        exited = phase >= trips.astype(_np.int64) - 1
        return int((exited * _LANE_BITS).sum())


@dataclass(frozen=True)
class BernoulliLanes(PredBehavior):
    """Each lane independently true with probability ``p`` per execution."""

    p: float

    def mask(self, warp_id: int, count: int, seed: int) -> int:
        threshold = int(self.p * 0x10000)
        if _np is None:
            mask = 0
            for lane in range(32):
                if _mix(seed, warp_id, count, lane, 11) % 0x10000 < threshold:
                    mask |= 1 << lane
            return mask
        draws = _mix_lanes((seed, warp_id, count), (11,)) % 0x10000
        return int(((draws < threshold) * _LANE_BITS).sum())


@dataclass(frozen=True)
class BernoulliWarp(PredBehavior):
    """All lanes agree; true with probability ``p`` per execution."""

    p: float

    def mask(self, warp_id: int, count: int, seed: int) -> int:
        threshold = int(self.p * 0x10000)
        if _mix(seed, warp_id, count, 13) % 0x10000 < threshold:
            return FULL_MASK
        return 0


@dataclass(frozen=True)
class NeverTaken(PredBehavior):
    def mask(self, warp_id: int, count: int, seed: int) -> int:
        return 0


@dataclass(frozen=True)
class AlwaysTaken(PredBehavior):
    def mask(self, warp_id: int, count: int, seed: int) -> int:
        return FULL_MASK


@dataclass(frozen=True)
class LoadBehavior:
    """Structure distribution of loaded values.

    With probability ``uniform_frac`` a load returns a UNIFORM value, with
    ``affine_frac`` an AFFINE (stride 1 or 4) value, otherwise RANDOM.
    These fractions model how compressible a benchmark's data is
    (paper section 5.3 / Figure 17).
    """

    uniform_frac: float = 0.2
    affine_frac: float = 0.3
    stride: int = 4

    def value(self, warp_id: int, count: int, seed: int) -> LaneValues:
        r = _mix(seed, warp_id, count, 17) % 0x10000 / 0x10000
        if r < self.uniform_frac:
            return LaneValues.uniform(_mix(seed, warp_id, count, 19))
        if r < self.uniform_frac + self.affine_frac:
            stride = self.stride if (count % 2 == 0) else 1
            return LaneValues.affine(_mix(seed, warp_id, count, 23), stride)
        return LaneValues.random(_mix(seed, warp_id, count, 29))


class Oracle:
    """Per-run dynamic behaviour: tag -> behaviour, with execution counts."""

    def __init__(
        self,
        seed: int = 1,
        pred_behaviors: Optional[Dict[str, PredBehavior]] = None,
        load_behaviors: Optional[Dict[str, LoadBehavior]] = None,
        default_pred: Optional[PredBehavior] = None,
        default_load: Optional[LoadBehavior] = None,
    ):
        self.seed = seed
        self._preds = dict(pred_behaviors or {})
        self._loads = dict(load_behaviors or {})
        self._default_pred = default_pred or BernoulliWarp(0.5)
        self._default_load = default_load or LoadBehavior()
        self._counts: Dict[Tuple[int, int], int] = {}

    def _bump(self, warp_id: int, pc: int) -> int:
        key = (warp_id, pc)
        count = self._counts.get(key, 0)
        self._counts[key] = count + 1
        return count

    def pred_mask(self, warp_id: int, pc: int, tag: Optional[str]) -> int:
        count = self._bump(warp_id, pc)
        behavior = self._preds.get(tag) if tag else None
        if behavior is None:
            behavior = self._default_pred
        return behavior.mask(warp_id, count, _mix(self.seed, pc)) & FULL_MASK

    def load_value(self, warp_id: int, pc: int, tag: Optional[str]) -> LaneValues:
        count = self._bump(warp_id, pc + 1_000_000)
        behavior = self._loads.get(tag) if tag else None
        if behavior is None:
            behavior = self._default_load
        return behavior.value(warp_id, count, _mix(self.seed, pc, 31))

    def reset(self) -> None:
        self._counts.clear()
